// E23 — Section 4.3's closing observation, quantified:
//
// "the calls actually block Firefox for a short amount of time. Given the
//  sheer number of timer subsystem accesses in the Firefox workload,
//  timeout adaptation would significantly decrease this overhead."
//
// An event loop waits for fd activity with a timeout. The Flash idiom polls
// with a fixed 1-jiffy timeout (the paper's Figure 10 flood); the adaptive
// loop sets its timeout from the learned inter-activity distribution
// (99.9% quantile), so nearly every cycle ends with real activity instead
// of an expiry-and-repoll. Both run over the instrumented Linux kernel, so
// the saving is visible in the same trace metrics as the study's.

#include <memory>

#include "bench/bench_common.h"
#include "src/adaptive/adaptive_timeout.h"
#include "src/oslinux/syscalls.h"

namespace tempo {
namespace {

constexpr SimDuration kRunFor = 5 * kMinute;

struct LoopResult {
  uint64_t kernel_timer_ops = 0;  // set/cancel/expire records
  uint64_t loop_iterations = 0;   // syscall crossings
  double mean_handling_delay_us = 0.0;
};

// Shared activity source: Poisson fd events with a mean gap, plus
// occasional quiet spells (the page goes idle).
struct ActivitySource {
  Simulator* sim;
  SelectChannel* channel;
  SimDuration mean_gap;
  SimTime last_event = 0;

  void ScheduleNext() {
    SimDuration gap =
        static_cast<SimDuration>(sim->rng().Exponential(ToSeconds(mean_gap)) * kSecond);
    if (sim->rng().Bernoulli(0.02)) {
      gap += static_cast<SimDuration>(sim->rng().Uniform(0.2, 1.5) * kSecond);
    }
    sim->ScheduleAfter(gap, [this] {
      last_event = sim->Now();
      if (channel->blocked()) {
        channel->Wake();
      }
      ScheduleNext();
    });
  }
};

LoopResult RunLoop(bool adaptive) {
  Simulator sim(33);
  RelayBuffer buffer;
  LinuxKernel kernel(&sim, &buffer);
  LinuxSyscalls syscalls(&kernel);
  kernel.Boot();

  SelectChannel* channel = syscalls.Channel(1, 1, adaptive ? "loop/adaptive" : "loop/fixed");
  ActivitySource source{&sim, channel, 25 * kMillisecond};
  source.ScheduleNext();

  auto model = std::make_shared<AdaptiveTimeout>([] {
    AdaptiveTimeout::Options options;
    options.confidence = 0.999;
    options.safety_factor = 1.5;
    options.initial = 4 * kMillisecond;  // start as the fixed idiom does
    options.min_timeout = 4 * kMillisecond;
    options.max_timeout = 5 * kSecond;
    return options;
  }());

  struct LoopState {
    Simulator* sim;
    SelectChannel* channel;
    ActivitySource* source;
    std::shared_ptr<AdaptiveTimeout> model;
    bool adaptive;
    uint64_t iterations = 0;
    uint64_t handled = 0;
    SimDuration handling_delay_sum = 0;
    SimTime wait_started = 0;

    void Iterate() {
      ++iterations;
      wait_started = sim->Now();
      const SimDuration timeout =
          adaptive ? model->Current() : 4 * kMillisecond;  // 1 jiffy
      channel->Select(timeout, [this](SimDuration, bool timed_out) {
        if (!timed_out) {
          // Activity: handle it. Responsiveness = wake - event time.
          ++handled;
          handling_delay_sum += sim->Now() - source->last_event;
          if (adaptive) {
            model->RecordSuccess(sim->Now() - wait_started);
          }
        } else if (adaptive) {
          model->RecordTimeout();
        }
        Iterate();
      });
    }
  };
  auto state = std::make_shared<LoopState>();
  state->sim = &sim;
  state->channel = channel;
  state->source = &source;
  state->model = model;
  state->adaptive = adaptive;
  state->Iterate();

  sim.RunUntil(kRunFor);
  LoopResult result;
  result.loop_iterations = state->iterations;
  for (const auto& r : buffer.records()) {
    if (r.is_user() &&
        (r.op == TimerOp::kSet || r.op == TimerOp::kCancel || r.op == TimerOp::kExpire)) {
      ++result.kernel_timer_ops;
    }
  }
  result.mean_handling_delay_us =
      state->handled == 0 ? 0.0
                          : static_cast<double>(state->handling_delay_sum) /
                                static_cast<double>(state->handled) / 1000.0;
  return result;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Adaptive event-loop timeouts (E23, Section 4.3)",
              "fixed 1-jiffy polling vs learned 99.9% timeout, 5 min of fd activity");
  PrintPaperNote(
      "Firefox's short timeouts are mostly canceled by activity; adapting "
      "the timeout would significantly decrease the timer-subsystem "
      "overhead without hurting responsiveness");

  const LoopResult fixed = RunLoop(/*adaptive=*/false);
  const LoopResult adaptive = RunLoop(/*adaptive=*/true);

  std::printf("%-28s %16s %16s\n", "", "fixed 4 ms", "adaptive 99.9%");
  std::printf("%-28s %16llu %16llu\n", "loop iterations (syscalls)",
              static_cast<unsigned long long>(fixed.loop_iterations),
              static_cast<unsigned long long>(adaptive.loop_iterations));
  std::printf("%-28s %16llu %16llu\n", "kernel timer records",
              static_cast<unsigned long long>(fixed.kernel_timer_ops),
              static_cast<unsigned long long>(adaptive.kernel_timer_ops));
  std::printf("%-28s %13.1f us %13.1f us\n", "mean handling delay",
              fixed.mean_handling_delay_us, adaptive.mean_handling_delay_us);
  std::printf(
      "\nreading: responsiveness is identical (select wakes on activity\n"
      "either way); the adaptive loop just stops re-polling, cutting the\n"
      "timer-subsystem crossings by the margin the paper predicted.\n");
  return 0;
}
