// E17 — Section 5.1: adaptive timeouts vs the fixed 30-second constant.
//
// An RPC client issues calls over a variable-latency network. We compare
// three timeout policies on (a) failure-detection latency when the server
// dies, (b) false-timeout rate during normal operation, and (c) behaviour
// across a LAN -> WAN level shift (the travelling-user example):
//   * fixed 30 s ("30 seconds is not enough!"-era constant),
//   * SunRPC-style 500 ms with exponential backoff,
//   * AdaptiveTimeout at 99% confidence over the learned distribution.

#include <memory>

#include "bench/bench_common.h"
#include "src/adaptive/adaptive_timeout.h"
#include "src/net/network.h"

namespace tempo {
namespace {

struct Result {
  double false_timeout_rate = 0.0;  // fraction of healthy ops flagged
  double detect_seconds = 0.0;      // latency to report a dead server
  double shift_false_rate = 0.0;    // false rate right after LAN->WAN shift
};

// One request/response exchange with sampled latency; the latency regime is
// controlled by the caller.
class Client {
 public:
  explicit Client(uint64_t seed) : rng_(seed) {}

  // Samples a completion time in the current regime: log-normal around the
  // base RTT plus server time, with a heavy tail.
  SimDuration SampleCompletion() {
    const double base = wan_ ? 0.130 : 0.0005;
    double latency = base * rng_.LogNormal(0.0, 0.35) + 0.0002;
    if (rng_.Bernoulli(0.01)) {
      latency *= 8;  // occasional stall (queueing, retransmit)
    }
    return FromSeconds(latency);
  }

  void set_wan(bool wan) { wan_ = wan; }

 private:
  Rng rng_;
  bool wan_ = false;
};

// Runs `ops` healthy operations, then a failure, under a timeout policy.
// `current` returns the policy's timeout; `on_success`/`on_timeout` feed it.
template <typename CurrentFn, typename SuccessFn, typename TimeoutFn>
Result Evaluate(uint64_t seed, CurrentFn current, SuccessFn on_success,
                TimeoutFn on_timeout) {
  Client client(seed);
  Result result;
  constexpr int kOps = 5000;

  int false_timeouts = 0;
  for (int i = 0; i < kOps; ++i) {
    const SimDuration completion = client.SampleCompletion();
    const SimDuration timeout = current();
    if (completion > timeout) {
      ++false_timeouts;
      on_timeout();
      // The operation eventually completes; the policy sees the (late)
      // completion as a success sample too.
      on_success(completion);
    } else {
      on_success(completion);
    }
  }
  result.false_timeout_rate = static_cast<double>(false_timeouts) / kOps;

  // Server dies: how long until the policy reports it? (One full timeout.)
  result.detect_seconds = ToSeconds(current());

  // Level shift: LAN -> WAN; measure the false rate over the next 200 ops.
  client.set_wan(true);
  int shift_false = 0;
  for (int i = 0; i < 200; ++i) {
    const SimDuration completion = client.SampleCompletion();
    const SimDuration timeout = current();
    if (completion > timeout) {
      ++shift_false;
      on_timeout();
    }
    on_success(completion);
  }
  result.shift_false_rate = shift_false / 200.0;
  return result;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Adaptive timeouts (Section 5.1)",
              "fixed 30 s vs RPC backoff vs learned 99%-confidence timeout");
  PrintPaperNote(
      "fixed values give slow failure detection; adaptation from the learned "
      "wait-time distribution detects failure at the timescale of the actual "
      "latencies while keeping false timeouts rare, and must survive level "
      "shifts (LAN -> WAN)");

  std::printf("%-22s %16s %18s %20s\n", "policy", "false timeouts", "failure detection",
              "false rate at shift");

  {
    // Fixed 30 s.
    const SimDuration fixed = 30 * kSecond;
    const Result r = Evaluate(
        1, [&] { return fixed; }, [](SimDuration) {}, [] {});
    std::printf("%-22s %15.2f%% %16.3f s %19.1f%%\n", "fixed 30 s",
                100 * r.false_timeout_rate, r.detect_seconds, 100 * r.shift_false_rate);
  }
  {
    // SunRPC 500 ms fixed initial with backoff on timeout.
    int backoff = 0;
    const Result r = Evaluate(
        2, [&] { return (500 * kMillisecond) << std::min(backoff, 7); },
        [&](SimDuration) { backoff = 0; }, [&] { ++backoff; });
    std::printf("%-22s %15.2f%% %16.3f s %19.1f%%\n", "rpc 0.5 s + backoff",
                100 * r.false_timeout_rate, r.detect_seconds, 100 * r.shift_false_rate);
  }
  {
    AdaptiveTimeout adaptive;
    const Result r = Evaluate(
        3, [&] { return adaptive.Current(); },
        [&](SimDuration d) { adaptive.RecordSuccess(d); },
        [&] { adaptive.RecordTimeout(); });
    std::printf("%-22s %15.2f%% %16.3f s %19.1f%%\n", "adaptive 99%",
                100 * r.false_timeout_rate, r.detect_seconds, 100 * r.shift_false_rate);
    std::printf("\nadaptive level shifts detected: %llu\n",
                static_cast<unsigned long long>(adaptive.level_shifts()));
  }

  std::printf(
      "\nreading: the adaptive policy detects a dead LAN server in"
      " milliseconds-to-seconds\ninstead of 30 s, at a false-timeout rate"
      " bounded by its confidence setting,\nand re-learns after the WAN"
      " shift instead of failing permanently or paying 30 s forever.\n");
  return 0;
}
