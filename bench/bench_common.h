// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's reported values next to the measured ones so the
// shapes can be compared directly (EXPERIMENTS.md records the comparison).
// Workload benches run the full 30-minute traces of Section 3.5; set
// TEMPO_QUICK=1 in the environment for 3-minute runs.

#ifndef TEMPO_BENCH_BENCH_COMMON_H_
#define TEMPO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/workloads/run.h"

namespace tempo {

// Standard options for reproduction runs.
inline WorkloadOptions BenchOptions() {
  WorkloadOptions options;
  options.duration = 30 * kMinute;
  options.seed = 2008;  // EuroSys'08
  const char* quick = std::getenv("TEMPO_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    options.duration = 3 * kMinute;
  }
  return options;
}

inline void PrintHeader(const std::string& artifact, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintPaperNote(const std::string& note) {
  std::printf("paper: %s\n\n", note.c_str());
}

}  // namespace tempo

#endif  // TEMPO_BENCH_BENCH_COMMON_H_
