// E20 — Section 4.1.1: robustness of the usage-pattern classifier to the
// variance allowance (the paper's experimentally determined 2 ms).
//
// Synthetic traces with known ground-truth patterns are jittered by
// increasing amounts; the bench reports classification accuracy as a
// function of the variance knob, showing why ~2 ms (half a jiffy) is the
// sweet spot at HZ=250.

#include <cstdio>
#include <vector>

#include "src/analysis/classify.h"
#include "src/sim/random.h"

namespace tempo {
namespace {

struct Labeled {
  UsagePattern truth;
  std::vector<TraceRecord> records;
};

TraceRecord Rec(SimTime at, TimerOp op, TimerId timer, SimDuration timeout = 0) {
  TraceRecord r;
  r.timestamp = at;
  r.op = op;
  r.timer = timer;
  r.timeout = timeout;
  r.expiry = op == TimerOp::kSet ? at + timeout : 0;
  return r;
}

// Builds one trace with 40 instances of each ground-truth pattern, with
// set-value jitter and reset-gap jitter of up to `jitter`.
std::vector<Labeled> BuildGroundTruth(SimDuration jitter, uint64_t seed) {
  Rng rng(seed);
  std::vector<Labeled> out;
  TimerId next_timer = 1;
  auto jittered = [&](SimDuration v) {
    return v - static_cast<SimDuration>(rng.Uniform(0, static_cast<double>(jitter)));
  };

  for (int instance = 0; instance < 40; ++instance) {
    {  // periodic: expire, immediately re-set
      Labeled l;
      l.truth = UsagePattern::kPeriodic;
      const TimerId id = next_timer++;
      SimTime t = 0;
      for (int i = 0; i < 12; ++i) {
        l.records.push_back(Rec(t, TimerOp::kSet, id, jittered(kSecond)));
        t += kSecond;
        l.records.push_back(Rec(t, TimerOp::kExpire, id));
        t += static_cast<SimDuration>(rng.Uniform(0, static_cast<double>(jitter)));
      }
      out.push_back(std::move(l));
    }
    {  // watchdog: re-set before expiry
      Labeled l;
      l.truth = UsagePattern::kWatchdog;
      const TimerId id = next_timer++;
      SimTime t = 0;
      for (int i = 0; i < 12; ++i) {
        l.records.push_back(Rec(t, TimerOp::kSet, id, jittered(60 * kSecond)));
        t += 10 * kSecond;
      }
      out.push_back(std::move(l));
    }
    {  // timeout: canceled shortly after set, re-set later
      Labeled l;
      l.truth = UsagePattern::kTimeout;
      const TimerId id = next_timer++;
      SimTime t = 0;
      for (int i = 0; i < 12; ++i) {
        l.records.push_back(Rec(t, TimerOp::kSet, id, jittered(30 * kSecond)));
        t += static_cast<SimDuration>(rng.Uniform(0.005, 0.1) * kSecond);
        l.records.push_back(Rec(t, TimerOp::kCancel, id));
        t += 2 * kSecond;
      }
      out.push_back(std::move(l));
    }
    {  // delay: expires, re-set after a rest
      Labeled l;
      l.truth = UsagePattern::kDelay;
      const TimerId id = next_timer++;
      SimTime t = 0;
      for (int i = 0; i < 12; ++i) {
        l.records.push_back(Rec(t, TimerOp::kSet, id, jittered(kSecond)));
        t += kSecond;
        l.records.push_back(Rec(t, TimerOp::kExpire, id));
        t += 500 * kMillisecond;
      }
      out.push_back(std::move(l));
    }
  }
  return out;
}

double Accuracy(SimDuration trace_jitter, SimDuration variance, uint64_t seed) {
  const auto truth = BuildGroundTruth(trace_jitter, seed);
  ClassifyOptions options;
  options.variance = variance;
  size_t correct = 0;
  size_t total = 0;
  for (const Labeled& l : truth) {
    const auto classes = ClassifyTrace(l.records, options);
    for (const auto& c : classes) {
      ++total;
      correct += c.pattern == l.truth ? 1 : 0;
    }
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(correct) /
                                static_cast<double>(total);
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  std::printf("==============================================================\n");
  std::printf("Classifier variance ablation (Section 4.1.1)\n");
  std::printf("==============================================================\n");
  std::printf(
      "paper: a variance of 2 ms (determined from the fixed-period workqueue\n"
      "timer) absorbs kernel conversion jitter without merging distinct\n"
      "values. Accuracy vs variance, for traces with increasing jitter:\n\n");

  static constexpr SimDuration kVariances[] = {
      0, 500 * kMicrosecond, kMillisecond, 2 * kMillisecond, 4 * kMillisecond,
      10 * kMillisecond, 50 * kMillisecond};
  static constexpr SimDuration kJitters[] = {0, kMillisecond, 2 * kMillisecond,
                                             4 * kMillisecond};

  std::printf("%-18s", "variance \\ jitter");
  for (SimDuration j : kJitters) {
    std::printf("%11s", FormatDuration(j).c_str());
  }
  std::printf("\n");
  for (SimDuration v : kVariances) {
    std::printf("%-18s", FormatDuration(v).c_str());
    for (SimDuration j : kJitters) {
      std::printf("%10.1f%%", Accuracy(j, v, 42));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: variance must be at least the trace jitter (~2 ms at "
      "HZ=250)\nfor full accuracy; far larger windows eventually merge "
      "distinct behaviours.\n");
  return 0;
}
