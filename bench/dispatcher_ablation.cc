// E21 — Section 5.5: can a temporal CPU dispatcher subsume the timer
// interface?
//
// The same application mix — a soft-real-time media task (10 ms frames),
// a dozen background housekeeping tasks (tolerant periodics), and a
// watchdog-guarded request pipeline — is run twice:
//   (a) over the classic set/cancel timer interface (one timer armed per
//       need, every watchdog kick re-arms);
//   (b) declared to the TemporalDispatcher (windows, cadences, guards).
// Compared on: hardware timer programmings (the power/overhead proxy),
// timer-interface operations, and the media task's dispatch lateness.

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/adaptive/timer_service.h"
#include "src/dispatcher/dispatcher.h"

namespace tempo {
namespace {

constexpr SimDuration kRunFor = 5 * kMinute;
constexpr SimDuration kFramePeriod = 10 * kMillisecond;
constexpr int kBackgroundTasks = 12;
constexpr SimDuration kWatchdogTimeout = 2 * kSecond;
constexpr SimDuration kRequestGap = 40 * kMillisecond;

struct Results {
  uint64_t timer_ops = 0;        // set/cancel calls into the timer layer
  uint64_t hardware_programs = 0;
  uint64_t frames = 0;
  double mean_frame_lateness_us = 0.0;
};

// (a) The classic design: everything arms its own timer.
Results RunWithRawTimers() {
  Simulator sim(5);
  SimTimerService service(&sim);
  Results results;

  // Media task: re-arms a 10 ms timer per frame.
  struct Media {
    Simulator* sim;
    SimTimerService* service;
    uint64_t frames = 0;
    SimDuration lateness_sum = 0;
    SimTime next_deadline = 0;
    void Frame() {
      ++frames;
      lateness_sum += std::max<SimDuration>(0, sim->Now() - next_deadline);
      next_deadline += kFramePeriod;
      service->Arm(std::max<SimDuration>(0, next_deadline - sim->Now()),
                   [this] { Frame(); });
    }
  };
  Media media{&sim, &service};
  media.next_deadline = kFramePeriod;
  service.Arm(kFramePeriod, [&media] { media.Frame(); });

  // Background periodics: one timer each, re-armed per tick.
  struct Background {
    Simulator* sim;
    SimTimerService* service;
    SimDuration period;
    void Tick() {
      service->Arm(period, [this] { Tick(); });
    }
  };
  std::vector<std::unique_ptr<Background>> background;
  for (int i = 0; i < kBackgroundTasks; ++i) {
    background.push_back(std::make_unique<Background>(
        Background{&sim, &service, (5 + i) * kSecond}));
    Background* raw = background.back().get();
    service.Arm(raw->period, [raw] { raw->Tick(); });
  }

  // Watchdog-guarded pipeline: every request kicks the watchdog, i.e.
  // cancel + re-arm on the raw interface.
  struct Pipeline {
    Simulator* sim;
    SimTimerService* service;
    ServiceTimerId watchdog = kInvalidServiceTimer;
    void Request() {
      if (watchdog != kInvalidServiceTimer) {
        service->Cancel(watchdog);
      }
      watchdog = service->Arm(kWatchdogTimeout, [] {});
      sim->ScheduleAfter(kRequestGap, [this] { Request(); });
    }
  };
  Pipeline pipeline{&sim, &service};
  pipeline.Request();

  sim.RunUntil(kRunFor);
  results.timer_ops = service.arms();
  // On the raw interface every arm programs the (virtual) hardware timer.
  results.hardware_programs = service.arms();
  results.frames = media.frames;
  results.mean_frame_lateness_us =
      media.frames == 0 ? 0.0
                        : static_cast<double>(media.lateness_sum) /
                              static_cast<double>(media.frames) / 1000.0;
  return results;
}

// (b) The dispatcher design: requirements, not timers.
Results RunWithDispatcher() {
  Simulator sim(5);
  TemporalDispatcher dispatcher(&sim);
  Results results;

  DispatchTask* media = dispatcher.CreateTask("media", /*weight=*/4);
  media->RunEvery(kFramePeriod, 0, [] {});

  for (int i = 0; i < kBackgroundTasks; ++i) {
    DispatchTask* task = dispatcher.CreateTask("bg" + std::to_string(i));
    // The housekeeping truth: "some convenient time around every N s".
    task->RunEvery((5 + i) * kSecond, 4 * kSecond, [] {});
  }

  DispatchTask* pipeline = dispatcher.CreateTask("pipeline");
  struct Guarded {
    Simulator* sim;
    DispatchTask* task;
    RequirementId guard = kInvalidRequirement;
    void Request() {
      if (guard == kInvalidRequirement) {
        guard = task->Guard(kWatchdogTimeout, [] {});
      } else {
        task->Kick(guard);  // bookkeeping only
      }
      sim->ScheduleAfter(kRequestGap, [this] { Request(); });
    }
  };
  Guarded guarded{&sim, pipeline};
  guarded.Request();

  sim.RunUntil(kRunFor);
  results.timer_ops = dispatcher.declared();  // interface crossings
  results.hardware_programs = dispatcher.hardware_programs();
  results.frames = media->dispatches();
  results.mean_frame_lateness_us =
      media->dispatches() == 0
          ? 0.0
          : static_cast<double>(media->total_lateness()) /
                static_cast<double>(media->dispatches()) / 1000.0;
  return results;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Dispatcher vs raw timers (Section 5.5)",
              "media frames + background housekeeping + watchdog pipeline, 5 min");
  PrintPaperNote(
      "\"an application interface to the CPU scheduler ... obviates the need "
      "for a separate timer interface\": declaring what code runs when lets "
      "the system batch wakeups and make watchdog kicks free");

  const Results raw = RunWithRawTimers();
  const Results dispatched = RunWithDispatcher();

  std::printf("%-32s %16s %16s\n", "", "raw timers", "dispatcher");
  std::printf("%-32s %16llu %16llu\n", "timer-interface operations",
              static_cast<unsigned long long>(raw.timer_ops),
              static_cast<unsigned long long>(dispatched.timer_ops));
  std::printf("%-32s %16llu %16llu\n", "hardware timer programmings",
              static_cast<unsigned long long>(raw.hardware_programs),
              static_cast<unsigned long long>(dispatched.hardware_programs));
  std::printf("%-32s %16llu %16llu\n", "media frames delivered",
              static_cast<unsigned long long>(raw.frames),
              static_cast<unsigned long long>(dispatched.frames));
  std::printf("%-32s %13.3f us %13.3f us\n", "mean frame lateness",
              raw.mean_frame_lateness_us, dispatched.mean_frame_lateness_us);
  std::printf(
      "\nreading: the dispatcher serves the same load with a handful of\n"
      "declared requirements instead of tens of thousands of set/cancel\n"
      "calls, fewer hardware programmings (watchdog kicks are free, slack\n"
      "periodics batch), and no loss of soft-real-time cadence.\n");
  return 0;
}
