// E1 — Figure 1: timer usage frequency in Vista, per process group, over a
// 90-second excerpt of the desktop trace.

#include "bench/bench_common.h"
#include "src/analysis/rates.h"
#include "src/analysis/render.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 1", "Vista timer sets per second by process group (90 s excerpt)");
  PrintPaperNote(
      "kernel ~1000/s; Outlook ~70/s idle with bursts to 7000/s (the 5 s "
      "upcall-guard idiom); browser tens/s");

  WorkloadOptions options = BenchOptions();
  options.duration = 3 * kMinute;  // the figure is a 90 s excerpt anyway
  TraceRun run = RunVistaDesktop(options);

  RateGrouping grouping;
  grouping.pid_labels[run.pids.at("outlook.exe")] = "Outlook";
  grouping.pid_labels[run.pids.at("iexplore.exe")] = "Browser";
  RateOptions rate_options;
  rate_options.start = 30 * kSecond;
  rate_options.end = 120 * kSecond;  // the 90 s excerpt
  const auto series = ComputeRates(run.records, grouping, rate_options);

  std::printf("%s\n", RenderRates(series, rate_options.window).c_str());
  std::printf("per-second series (gnuplot columns):\n%s",
              RateColumns(series, rate_options.window).c_str());
  return 0;
}
