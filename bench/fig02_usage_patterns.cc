// E4 — Figure 2: common Linux timer usage patterns per workload.

#include "bench/bench_common.h"
#include "src/analysis/classify.h"
#include "src/analysis/render.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 2", "Linux usage-pattern mix (% of regularly used timers)");
  PrintPaperNote(
      "Idle dominated by periodic background tasks; Webserver uses watchdogs/"
      "timeouts for connections; Skype/Firefox have many unclassified (very "
      "short soft-real-time) timers");

  const WorkloadOptions options = BenchOptions();
  std::vector<std::pair<std::string, std::map<UsagePattern, double>>> workloads;
  for (TraceRun& run : RunAllLinuxWorkloads(options)) {
    const auto classes = ClassifyTrace(run.records, ClassifyOptions{});
    workloads.emplace_back(run.label, PatternHistogram(classes));
  }
  std::printf("%s", RenderPatternHistogram(workloads).c_str());
  std::printf(
      "\n(countdown = the X/icewm/firefox select idiom; the paper counts\n"
      " these under 'other' before filtering them out in Section 4.2)\n");
  return 0;
}
