// E5 — Figure 3: common Linux timer values (>= 2% of sets), per workload.

#include "bench/bench_common.h"
#include "src/analysis/histogram.h"
#include "src/analysis/render.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 3", "common Linux timeout values (>= 2%), unfiltered");
  PrintPaperNote(
      "round human constants dominate: 0.204 (51 j) TCP RTO, 0.248 (62 j) USB "
      "poll, 0.5 (125 j), 1/2/3/15 s, 7200 s keepalive; Skype/Firefox add "
      "1-3 jiffy values");

  const WorkloadOptions options = BenchOptions();
  for (TraceRun& run : RunAllLinuxWorkloads(options)) {
    HistogramOptions histogram_options;  // 2% threshold, jiffy quantisation
    const ValueHistogram h = ComputeValueHistogram(run.records, histogram_options);
    std::printf("--- %s ---\n%s\n", run.label.c_str(),
                RenderValueHistogram(h, /*show_jiffies=*/true).c_str());
  }
  return 0;
}
