// E6 — Figure 4: dot plot of X's timer usage via select — the countdown
// sawtooth of the written-back remaining time.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 4", "Xorg select countdown (timeout value vs time)");
  PrintPaperNote(
      "X sets a constant select timeout; on fd activity Linux writes back "
      "the remaining time and X re-selects with it: values count down "
      "linearly to zero, then reset (sawtooth with slope -1)");

  WorkloadOptions options = BenchOptions();
  TraceRun run = RunLinuxIdle(options);
  const Pid xorg = run.pids.at("Xorg");

  // Collect (set time, timeout value) for Xorg's select timer.
  std::vector<std::pair<double, double>> points;
  for (const auto& r : run.records) {
    if (r.op == TimerOp::kSet && r.pid == xorg) {
      points.emplace_back(ToSeconds(r.timestamp), ToSeconds(r.timeout));
    }
  }
  std::printf("%zu Xorg select sets\n\n", points.size());

  // Coarse ASCII dot plot (time on x, value on y), like the figure.
  constexpr int kCols = 72;
  constexpr int kRows = 20;
  const double t_max = ToSeconds(options.duration);
  double v_max = 0;
  for (const auto& [t, v] : points) {
    v_max = std::max(v_max, v);
  }
  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  for (const auto& [t, v] : points) {
    const int col = std::min(kCols - 1, static_cast<int>(t / t_max * kCols));
    const int row =
        kRows - 1 - std::min(kRows - 1, static_cast<int>(v / (v_max + 1e-9) * kRows));
    grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = '.';
  }
  std::printf("timeout [0..%.0f s] vs time [0..%.0f s]\n", v_max, t_max);
  for (const auto& row : grid) {
    std::printf("|%s|\n", row.c_str());
  }

  // The sawtooth check: successive values decrease by the elapsed time
  // until a reset to the full value.
  size_t countdown_steps = 0;
  size_t resets = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    const double expected = points[i - 1].second - (points[i].first - points[i - 1].first);
    if (std::abs(points[i].second - expected) < 0.01) {
      ++countdown_steps;
    } else if (points[i].second > points[i - 1].second) {
      ++resets;
    }
  }
  std::printf("\ncountdown steps: %zu, resets to full value: %zu (of %zu sets)\n",
              countdown_steps, resets, points.size());
  return 0;
}
