// E7 — Figure 5: common Linux timeout values with the X/icewm
// select-countdown timers filtered out.

#include "bench/bench_common.h"
#include "src/analysis/histogram.h"
#include "src/analysis/render.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 5", "common Linux values (>= 2%), X/icewm countdowns filtered");
  PrintPaperNote(
      "after filtering the select countdowns, almost all remaining values "
      "are compile-time programmer constants (0.04, 0.204, 0.248, 0.5, 1, 2, "
      "3, 4, 5, 15, 7200 s)");

  const WorkloadOptions options = BenchOptions();
  for (TraceRun& run : RunAllLinuxWorkloads(options)) {
    HistogramOptions histogram_options;
    // Filter by pid (X/icewm), as the paper does, and also drop any other
    // detected countdown timers (firefox's 3-jiffy loop).
    auto x = run.pids.find("Xorg");
    auto wm = run.pids.find("icewm");
    if (x != run.pids.end()) {
      histogram_options.exclude_pids.insert(x->second);
    }
    if (wm != run.pids.end()) {
      histogram_options.exclude_pids.insert(wm->second);
    }
    histogram_options.exclude_countdowns = true;
    const ValueHistogram h = ComputeValueHistogram(run.records, histogram_options);
    std::printf("--- %s ---\n%s\n", run.label.c_str(),
                RenderValueHistogram(h, /*show_jiffies=*/true).c_str());
  }
  return 0;
}
