// E8 — Figure 6: common Linux timeout values set from user space via
// system calls.

#include "bench/bench_common.h"
#include "src/analysis/histogram.h"
#include "src/analysis/render.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 6", "common Linux syscall (user-space) timeout values (>= 2%)");
  PrintPaperNote(
      "human time-scales dominate user-space too: 0, 0.004-0.012 (Firefox), "
      "0.4999/0.5 (Skype), 1, 2, 5, 15, 30, 60 s");

  const WorkloadOptions options = BenchOptions();
  for (TraceRun& run : RunAllLinuxWorkloads(options)) {
    HistogramOptions histogram_options;
    histogram_options.user_only = true;
    auto x = run.pids.find("Xorg");
    auto wm = run.pids.find("icewm");
    if (x != run.pids.end()) {
      histogram_options.exclude_pids.insert(x->second);
    }
    if (wm != run.pids.end()) {
      histogram_options.exclude_pids.insert(wm->second);
    }
    const ValueHistogram h = ComputeValueHistogram(run.records, histogram_options);
    std::printf("--- %s ---\n%s\n", run.label.c_str(),
                RenderValueHistogram(h, /*show_jiffies=*/false).c_str());
  }
  return 0;
}
