// E9 — Figure 7: common Vista timeout values per workload.

#include "bench/bench_common.h"
#include "src/analysis/histogram.h"
#include "src/analysis/render.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Figure 7", "common Vista timeout values (>= 2%)");
  PrintPaperNote(
      "same story as Linux: round constants (0.001, 0.003, 0.01, 0.0156, "
      "0.1156, 0.25, 0.5, 0.5156, 1, 2, 3 s) dominate; tick-derived values "
      "(15.6 ms multiples) appear because Vista quantises to the clock "
      "interrupt");

  const WorkloadOptions options = BenchOptions();
  for (TraceRun& run : RunAllVistaWorkloads(options)) {
    HistogramOptions histogram_options;
    histogram_options.jiffy_quantise_kernel = false;  // no jiffies on Vista
    const ValueHistogram h = ComputeValueHistogram(run.records, histogram_options);
    std::printf("--- %s ---\n%s\n", run.label.c_str(),
                RenderValueHistogram(h, /*show_jiffies=*/false).c_str());
  }
  return 0;
}
