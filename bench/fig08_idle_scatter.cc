// E10 — Figure 8: expiry/cancellation scatter, Idle workload.

#include "bench/scatter_bench.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  return RunScatterBench(
      "Figure 8", "Idle",
      "Linux: most timers expire at their set time, a few canceled "
      "immediately; Vista: many more timeouts, small and large, delivered at "
      "variable delays",
      RunLinuxIdle, RunVistaIdle);
}
