// E11 — Figure 9: expiry/cancellation scatter, Skype workload.

#include "bench/scatter_bench.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  return RunScatterBench(
      "Figure 9", "Skype",
      "large cluster of adaptive/irregular points below 1 s (select/poll); "
      "array of cancellations up to 50% at 3 s (socket timers); 5 s ARP "
      "timeouts canceled at random; Linux jiffy quantisation visible",
      RunLinuxSkype, RunVistaSkype);
}
