// E12 — Figure 10: expiry/cancellation scatter, Firefox workload.

#include "bench/scatter_bench.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  return RunScatterBench(
      "Figure 10", "Firefox",
      "a very large number of very short timers (soft real time over a "
      "best-effort substrate); sub-10 ms timeouts show the hyperbolic "
      "delivery-latency curve; on Vista sub-ms timers land at essentially "
      "random percentages (cut off at 250%)",
      RunLinuxFirefox, RunVistaFirefox);
}
