// E13 — Figure 11: expiry/cancellation scatter, Webserver workload.

#include "bench/scatter_bench.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  return RunScatterBench(
      "Figure 11", "Webserver",
      "Linux: connection timeouts canceled at tiny percentages (RTT << "
      "timeout), 7200 s keepalives canceled near 0%; Vista pane resembles "
      "Idle and lacks the keepalive entirely",
      RunLinuxWebserver, RunVistaWebserver);
}
