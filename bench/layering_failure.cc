// E16 — Section 2.2.2: the layered-timeout pathology.
//
// Healthy case: opening \\fileserver\share completes shortly after the
// 130 ms round trip. Failure case: every layer (SMB connect retries, NFS's
// SunRPC 500 ms-doubling backoff, WebDAV's 30 s connect timeout) must give
// up before the user hears anything — over a minute, although the network
// answered (with a refusal) within a round trip. The bench also shows what
// the TimeoutStack elision and an adaptive timeout would do to the same
// stack.

#include <memory>

#include "bench/bench_common.h"
#include "src/adaptive/adaptive_timeout.h"
#include "src/adaptive/interfaces.h"
#include "src/net/fileaccess.h"

namespace tempo {
namespace {

struct Scenario {
  Simulator sim{2008};
  SimNetwork net{&sim};
  NodeId self;
  NodeId dns_node;
  NodeId server_node;
  std::unique_ptr<NameProvider> dns;
  std::unique_ptr<NameProvider> wins;
  std::unique_ptr<ParallelResolver> resolver;
  std::unique_ptr<RpcClient> rpc;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<FileBrowser> browser;

  Scenario() {
    self = net.AddNode("desktop");
    dns_node = net.AddNode("dns");
    server_node = net.AddNode("fileserver");
    LinkParams wan;
    wan.latency = 65 * kMillisecond;  // the paper's 130 ms round trip
    wan.jitter_sigma = 0.05;
    net.SetLinkBoth(self, server_node, wan);
    dns = std::make_unique<NameProvider>(&sim, &net, self, dns_node, "dns",
                                         NameProvider::Options{});
    NameProvider::Options wins_options;
    wins_options.timeout = FromMilliseconds(1500);
    wins_options.retries = 2;
    wins = std::make_unique<NameProvider>(&sim, &net, self, dns_node, "wins", wins_options);
    dns->Register("fileserver", server_node);
    resolver = std::make_unique<ParallelResolver>(&sim);
    resolver->AddProvider(wins.get());
    resolver->AddProvider(dns.get());
    rpc = std::make_unique<RpcClient>(&sim, &net, self);
    server = std::make_unique<RpcServer>(&sim, &net, server_node);
    browser = std::make_unique<FileBrowser>(&sim, &net, resolver.get(), rpc.get(), self);
    for (const auto& spec : DefaultFileProtocols()) {
      browser->AddProtocol(spec);
    }
  }

  FileBrowser::Result Open(const char* name, bool server_exists) {
    FileBrowser::Result result;
    browser->Open(name, server_exists ? server.get() : nullptr,
                  [&](FileBrowser::Result r) { result = r; });
    sim.RunUntil(sim.Now() + 10 * kMinute);
    return result;
  }
};

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Layering failure (Section 2.2.2)",
              "time to open \\\\fileserver\\share vs time to report failure");
  PrintPaperNote(
      "healthy open: shortly after the 130 ms RTT; recovering from a typo / "
      "dead server: over a minute (NFS over SunRPC: 7 retries doubling "
      "500 ms)");

  {
    Scenario healthy;
    const auto r = healthy.Open("fileserver", true);
    std::printf("healthy open:        %-8s via %-7s in %8.3f s\n",
                r.success ? "success" : "FAILURE", r.protocol.c_str(),
                ToSeconds(r.elapsed));
  }
  {
    Scenario refused;
    refused.server->set_refuse_connections(true);
    const auto r = refused.Open("fileserver", true);
    std::printf("server refusing:     %-8s             in %8.3f s  <- \"over a minute\"\n",
                r.success ? "success" : "failure", ToSeconds(r.elapsed));
  }
  {
    Scenario typo;
    const auto r = typo.Open("fileserv3r", false);
    std::printf("unresolvable typo:   %-8s             in %8.3f s  (resolver schedules)\n",
                r.success ? "success" : "failure", ToSeconds(r.elapsed));
  }

  // What the Section-5 machinery would do to the same failure.
  {
    Simulator sim(7);
    SimTimerService service(&sim);
    TimeoutStack stack(&service);
    // The nested stack of the example: the browser gives the whole open
    // 60 s; NFS's SunRPC backoff would take 63.5 s (longer than anyone is
    // still listening -> elided); TCP's 3 s SYN timer is binding.
    const uint64_t gui = stack.Push(60 * kSecond, [] {});
    const uint64_t rpc_frame = stack.Push(FromSeconds(63.5), [] {});
    const uint64_t tcp_frame = stack.Push(3 * kSecond, [] {});
    std::printf("\nnested timeouts armed without elision: 3; with TimeoutStack: %llu "
                "(elided %llu)\n",
                static_cast<unsigned long long>(stack.armed_count()),
                static_cast<unsigned long long>(stack.elided_count()));
    stack.Pop(tcp_frame);
    stack.Pop(rpc_frame);
    stack.Pop(gui);
  }
  {
    // An adaptive timeout trained on healthy RTTs reports the same failure
    // in well under a second.
    AdaptiveTimeout adaptive;
    for (int i = 0; i < 200; ++i) {
      adaptive.RecordSuccess(130 * kMillisecond + i % 7 * kMillisecond);
    }
    std::printf("adaptive (99%% confidence) would report failure after: %.3f s\n",
                ToSeconds(adaptive.Current()));
  }
  return 0;
}
