// micro_c10m — timer backends under million-connection load.
//
// Two parts, both feeding BENCH_c10m.json:
//
//   1. Queue churn. Every TimerQueue backend is bulk-loaded (ScheduleBatch)
//      to 1M and, memory permitting, 10M live timers, then churned with the
//      connection-timer op mix (reschedule-heavy, insurance cancels) and
//      drained by Advance. Reported per backend and population: cycles/op
//      for insert, churn and expire, plus bytes/timer from MemoryBytes().
//      Accounting is exact at every phase boundary (live count, fired
//      count, drain to zero) — a backend that leaks or double-fires fails
//      the gate, so the numbers can be trusted.
//
//   2. The C10M server scenario (src/net/server.h): a serial-vs-threaded
//      identity run, then the full million-connection proof — peak live
//      timers >= 2x connections, teardown drains the service to zero, and
//      the report fingerprint is deterministic in the seed.
//
// Gates: `gate_1m` (all backends complete the 1M churn with exact
// accounting) and `gate_server` must pass on any box that can run the
// bench at full size; `gate_10m` self-skips — never vacuously passes —
// when the projected footprint does not fit in available memory.
// TEMPO_QUICK / TEMPO_SMOKE shrink the populations and mark the full-size
// gates "skipped: ..." so a small run can never masquerade as a green
// full-size one.
//
// --proof runs only part 2 at full size (the c10m_million ctest); --queue
// selects the server backend (tools/common convention).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "src/net/server.h"
#include "src/obs/probe.h"
#include "src/sim/random.h"
#include "src/timer/lawn.h"
#include "src/timer/queue.h"
#include "tools/common.h"

namespace tempo {
namespace {

// Timeout values cluster hard in the paper's traces (0.04 s delayed ACK,
// 0.204 s RTO floor, 3 s SYN-ACK, the 30 s default...). The churn draws
// from such a class mix with small jitter: realistic for every backend and
// exactly the regime the lawn's per-TTL FIFOs are designed for.
constexpr SimDuration kTimeoutClasses[] = {
    40 * kMillisecond,  204 * kMillisecond, 500 * kMillisecond, kSecond,
    3 * kSecond,        5 * kSecond,        30 * kSecond,       75 * kSecond,
};

SimTime DrawExpiry(Rng& rng, SimTime now) {
  const SimDuration base =
      kTimeoutClasses[rng.UniformInt(0, std::size(kTimeoutClasses) - 1)];
  return now + base + rng.UniformInt(0, 16) * kMillisecond;
}

struct ChurnResult {
  std::string queue;
  size_t population = 0;
  double insert_cycles_per_op = 0;
  double churn_cycles_per_op = 0;
  double expire_cycles_per_op = 0;
  double bytes_per_timer = 0;
  size_t ttl_buckets = 0;  // lawn only; 0 elsewhere
  bool accounting_ok = false;
};

// The connection op mix: 60% reschedule (keepalive/idle re-arm), 25%
// cancel+schedule (ACK kills the insurance timer, next segment re-arms),
// 15% advance a little (ticks interleave with ops in a real server).
ChurnResult RunChurn(const std::string& queue_name, size_t population, int run_id) {
  ChurnResult result;
  result.queue = queue_name;
  result.population = population;

  TimerQueueOptions options;
  options.name = queue_name;
  options.stats_label = queue_name + "-c10m" + std::to_string(run_id);
  auto queue = MakeTimerQueue(options);
  Rng rng(2008 + static_cast<uint64_t>(run_id));

  // --- bulk load via the batch entry point ---
  std::vector<TimerBatchEntry> entries(population);
  for (auto& entry : entries) {
    entry.expiry = DrawExpiry(rng, 0);
  }
  uint64_t t0 = obs::WallCycleClock();
  queue->ScheduleBatch(entries, [](TimerHandle) {});
  uint64_t t1 = obs::WallCycleClock();
  result.insert_cycles_per_op =
      static_cast<double>(t1 - t0) / static_cast<double>(population);

  bool ok = queue->Size() == population;
  result.bytes_per_timer = static_cast<double>(queue->MemoryBytes()) /
                           static_cast<double>(population);
  if (const auto* lawn = dynamic_cast<const LawnTimerQueue*>(queue.get())) {
    result.ttl_buckets = lawn->ttl_buckets();
  }

  // --- churn ---
  // The advance step is deliberately small (time crawls relative to the op
  // rate, as it does for a server handling millions of events per second);
  // a big step would turn the wheel backends' tick loops into the entire
  // benchmark.
  const size_t churn_ops = population / 4;
  SimTime now = 0;
  const SimTime advance_step = 50 * kMicrosecond;
  size_t fired = 0;
  size_t replaced = 0;  // dead victims revived by the ops below
  t0 = obs::WallCycleClock();
  for (size_t i = 0; i < churn_ops; ++i) {
    const size_t victim = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(population) - 1));
    const double p = rng.NextDouble();
    const SimTime expiry = DrawExpiry(rng, now);
    if (p < 0.60) {
      if (queue->Reschedule(entries[victim].handle, expiry) == kInvalidTimerHandle) {
        // Fired during an advance step below; replace it to keep the
        // population roughly constant.
        entries[victim].handle = queue->Schedule(expiry, [](TimerHandle) {});
        ++replaced;
      }
    } else if (p < 0.85) {
      if (!queue->Cancel(entries[victim].handle)) {
        ++replaced;  // already fired; the fresh schedule below revives it
      }
      entries[victim].handle = queue->Schedule(expiry, [](TimerHandle) {});
    } else {
      now += advance_step;
      fired += queue->Advance(now);
    }
  }
  t1 = obs::WallCycleClock();
  result.churn_cycles_per_op =
      static_cast<double>(t1 - t0) / static_cast<double>(churn_ops);
  // Every fire removed one live timer; every revival added one back.
  ok = ok && queue->Size() + fired == population + replaced;

  // --- drain ---
  const size_t remaining = queue->Size();
  size_t drained = 0;
  t0 = obs::WallCycleClock();
  while (queue->Size() > 0) {
    now += kSecond;
    drained += queue->Advance(now);
  }
  t1 = obs::WallCycleClock();
  result.expire_cycles_per_op = remaining > 0
      ? static_cast<double>(t1 - t0) / static_cast<double>(remaining)
      : 0;
  ok = ok && drained == remaining && queue->Size() == 0 &&
       queue->NextExpiry() == kNeverTime;
  result.accounting_ok = ok;
  return result;
}

size_t AvailableMemoryBytes() {
  std::FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "MemAvailable: %zu kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

struct ServerResult {
  C10MReport proof;
  uint64_t identity_fingerprint = 0;
  bool identity_ok = false;
  bool proof_ok = false;
  double wall_seconds = 0;
  std::string queue;
};

ServerResult RunServer(const std::string& queue_name, size_t connections) {
  ServerResult result;
  result.queue = queue_name;

  // Identity: serial and threaded lanes must produce bit-identical reports.
  C10MOptions identity_options;
  identity_options.queue = queue_name;
  identity_options.connections = std::max<size_t>(connections / 10, 1000);
  identity_options.lanes = 4;
  identity_options.seed = 2008;
  identity_options.duration = 500 * kMillisecond;
  identity_options.keepalive_interval = 300 * kMillisecond;
  identity_options.idle_timeout = kSecond;
  const C10MReport serial = C10MServer(identity_options).Run();
  const C10MReport threaded = C10MServer(identity_options).RunThreaded();
  result.identity_ok = serial == threaded;
  result.identity_fingerprint = serial.fingerprint;

  // Proof: full-size run; every connection holds 2+ live timers at peak
  // and teardown leaves nothing behind.
  C10MOptions options;
  options.queue = queue_name;
  options.connections = connections;
  options.lanes = 4;
  options.seed = 2008;
  options.duration = 300 * kMillisecond;
  options.event_rate = 0.01;
  const auto start = std::chrono::steady_clock::now();
  C10MServer server(options);
  result.proof = server.RunThreaded();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const C10MReport& r = result.proof;
  result.proof_ok = r.peak_live_timers >= 2 * r.connections &&
                    r.teardown_canceled == r.teardown_collected &&
                    r.final_live_timers == 0;
  return result;
}

void PrintServerResult(const ServerResult& s) {
  const C10MReport& r = s.proof;
  std::printf("server (%s): %zu connections, %zu lanes, %llu ticks, %.1f s wall\n",
              s.queue.c_str(), r.connections, r.lanes,
              static_cast<unsigned long long>(r.ticks), s.wall_seconds);
  std::printf("  peak live timers   %llu (>= 2x connections: %s)\n",
              static_cast<unsigned long long>(r.peak_live_timers),
              r.peak_live_timers >= 2 * r.connections ? "yes" : "NO");
  std::printf("  sched/resched/cancel %llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.timers_scheduled),
              static_cast<unsigned long long>(r.timers_rescheduled),
              static_cast<unsigned long long>(r.timers_canceled));
  std::printf("  fires: rto %llu  keepalive %llu  idle %llu  dack %llu "
              "(coalesced %llu, stale %llu)\n",
              static_cast<unsigned long long>(r.retransmits_fired),
              static_cast<unsigned long long>(r.keepalive_probes),
              static_cast<unsigned long long>(r.idle_closures),
              static_cast<unsigned long long>(r.delayed_acks_fired),
              static_cast<unsigned long long>(r.delayed_acks_coalesced),
              static_cast<unsigned long long>(r.stale_fires));
  std::printf("  teardown: collected %llu canceled %llu  final live %llu\n",
              static_cast<unsigned long long>(r.teardown_collected),
              static_cast<unsigned long long>(r.teardown_canceled),
              static_cast<unsigned long long>(r.final_live_timers));
  std::printf("  fingerprint %016llx   serial==threaded: %s\n",
              static_cast<unsigned long long>(r.fingerprint),
              s.identity_ok ? "yes" : "NO");
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  using tempo::tools::FlagSpec;

  const FlagSpec kFlags[] = {
      tools::QueueFlag(),
      {"proof", 0, "", "run only the full-size server proof (the c10m_million ctest)"},
      {"connections", 1, "N", "server connections for the proof (default 1000000)"},
  };
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    tools::PrintUsage(stderr, argv[0], "", kFlags);
    return 2;
  }
  const std::string queue = tools::ResolveQueueName(args, "hierarchical_wheel");
  if (queue.empty()) {
    return 2;
  }

  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const bool quick = !smoke && quick_env != nullptr && quick_env[0] == '1';
  const char* mode = smoke ? "smoke" : quick ? "quick" : "full";

  // Population tiers. The small modes exercise identical code on smaller
  // sets; their full-size gates are marked skipped, never passed.
  const size_t base_population = smoke ? 20'000 : quick ? 100'000 : 1'000'000;
  const size_t big_population = 10'000'000;
  size_t server_connections = smoke ? 20'000 : quick ? 100'000 : 1'000'000;
  server_connections = args.UintValue("connections", server_connections);

  if (args.Has("proof")) {
    std::printf("=== c10m server proof (%s, %zu connections) ===\n", queue.c_str(),
                server_connections);
    const ServerResult s = RunServer(queue, server_connections);
    PrintServerResult(s);
    return s.identity_ok && s.proof_ok ? 0 : 1;
  }

  std::printf("==============================================================\n");
  std::printf("micro_c10m — timer backends at C10M populations (%s mode)\n", mode);
  std::printf("==============================================================\n\n");

  std::vector<ChurnResult> churn;
  int run_id = 0;
  bool base_ok = true;
  for (const std::string& name : TimerQueueNames()) {
    const ChurnResult r = RunChurn(name, base_population, run_id++);
    base_ok = base_ok && r.accounting_ok;
    std::printf("  %-20s %9zu timers  insert %7.1f  churn %7.1f  expire %7.1f "
                "cyc/op  %6.1f B/timer%s%s\n",
                r.queue.c_str(), r.population, r.insert_cycles_per_op,
                r.churn_cycles_per_op, r.expire_cycles_per_op, r.bytes_per_timer,
                r.ttl_buckets > 0
                    ? ("  ttl_buckets=" + std::to_string(r.ttl_buckets)).c_str()
                    : "",
                r.accounting_ok ? "" : "  ACCOUNTING MISMATCH");
    churn.push_back(r);
  }

  // 10M tier: project the footprint from the measured bytes/timer (plus
  // the transient batch-entry buffer) and skip honestly if it cannot fit.
  std::string gate_10m = "skipped: not a full run";
  if (!smoke && !quick) {
    double worst_bpt = 0;
    for (const ChurnResult& r : churn) {
      worst_bpt = std::max(worst_bpt, r.bytes_per_timer);
    }
    const size_t projected = static_cast<size_t>(
        worst_bpt * static_cast<double>(big_population) * 2.0 +
        static_cast<double>(big_population) * sizeof(TimerBatchEntry));
    const size_t available = AvailableMemoryBytes();
    if (available == 0) {
      gate_10m = "skipped: cannot read MemAvailable";
    } else if (projected > available) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "skipped: projected %zu MB > available %zu MB",
                    projected >> 20, available >> 20);
      gate_10m = buf;
    } else {
      std::printf("\n");
      bool big_ok = true;
      for (const std::string& name : TimerQueueNames()) {
        const ChurnResult r = RunChurn(name, big_population, run_id++);
        big_ok = big_ok && r.accounting_ok;
        std::printf("  %-20s %9zu timers  insert %7.1f  churn %7.1f  expire %7.1f "
                    "cyc/op  %6.1f B/timer%s%s\n",
                    r.queue.c_str(), r.population, r.insert_cycles_per_op,
                    r.churn_cycles_per_op, r.expire_cycles_per_op, r.bytes_per_timer,
                    r.ttl_buckets > 0
                        ? ("  ttl_buckets=" + std::to_string(r.ttl_buckets)).c_str()
                        : "",
                    r.accounting_ok ? "" : "  ACCOUNTING MISMATCH");
        churn.push_back(r);
      }
      gate_10m = big_ok ? "pass" : "fail";
    }
  }

  std::printf("\n");
  const ServerResult server = RunServer(queue, server_connections);
  PrintServerResult(server);

  const std::string gate_1m =
      smoke || quick ? std::string("skipped: ") + mode + " run"
                     : (base_ok ? "pass" : "fail");
  const std::string gate_server =
      (smoke || quick) && !args.Has("connections")
          ? std::string("skipped: ") + mode + " run"
          : (server.identity_ok && server.proof_ok ? "pass" : "fail");
  // Identity and accounting still gate the small modes: a smoke run that
  // leaks timers or diverges between serial and threaded must fail loudly.
  const bool small_ok = base_ok && server.identity_ok &&
                        server.proof.final_live_timers == 0;

  std::printf("\ngates: 1m=%s  10m=%s  server=%s\n", gate_1m.c_str(), gate_10m.c_str(),
              gate_server.c_str());

  FILE* out = std::fopen("BENCH_c10m.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"experiment\": \"micro_c10m\",\n");
    std::fprintf(out, "  \"mode\": \"%s\",\n", mode);
    std::fprintf(out, "  \"churn\": [\n");
    for (size_t i = 0; i < churn.size(); ++i) {
      const ChurnResult& r = churn[i];
      std::fprintf(out,
                   "    {\"queue\": \"%s\", \"population\": %zu, "
                   "\"insert_cycles_per_op\": %.1f, \"churn_cycles_per_op\": %.1f, "
                   "\"expire_cycles_per_op\": %.1f, \"bytes_per_timer\": %.1f, "
                   "\"ttl_buckets\": %zu, \"accounting_ok\": %s}%s\n",
                   r.queue.c_str(), r.population, r.insert_cycles_per_op,
                   r.churn_cycles_per_op, r.expire_cycles_per_op, r.bytes_per_timer,
                   r.ttl_buckets, r.accounting_ok ? "true" : "false",
                   i + 1 < churn.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    const C10MReport& r = server.proof;
    std::fprintf(out,
                 "  \"server\": {\"queue\": \"%s\", \"connections\": %zu, "
                 "\"peak_live_timers\": %llu, \"timers_scheduled\": %llu, "
                 "\"timers_rescheduled\": %llu, \"timers_canceled\": %llu, "
                 "\"teardown_canceled\": %llu, \"final_live_timers\": %llu, "
                 "\"fingerprint\": \"%016llx\", \"identity_ok\": %s, "
                 "\"wall_seconds\": %.2f},\n",
                 server.queue.c_str(), r.connections,
                 static_cast<unsigned long long>(r.peak_live_timers),
                 static_cast<unsigned long long>(r.timers_scheduled),
                 static_cast<unsigned long long>(r.timers_rescheduled),
                 static_cast<unsigned long long>(r.timers_canceled),
                 static_cast<unsigned long long>(r.teardown_canceled),
                 static_cast<unsigned long long>(r.final_live_timers),
                 static_cast<unsigned long long>(r.fingerprint),
                 server.identity_ok ? "true" : "false", server.wall_seconds);
    std::fprintf(out, "  \"gate_1m\": {\"status\": \"%s\"},\n", gate_1m.c_str());
    std::fprintf(out, "  \"gate_10m\": {\"status\": \"%s\"},\n", gate_10m.c_str());
    std::fprintf(out, "  \"gate_server\": {\"status\": \"%s\"}\n", gate_server.c_str());
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_c10m.json\n");
  }

  const bool gates_ok = gate_1m != "fail" && gate_10m != "fail" &&
                        gate_server != "fail" && small_ok;
  return gates_ok ? 0 : 1;
}
