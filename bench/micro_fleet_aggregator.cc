// micro_fleet_aggregator — per-host cost of fleet collection.
//
// Every summary a host publishes is encoded into a wire frame, decoded by
// the collector and merged into the fleet view. That pipeline is the whole
// marginal cost of watching one more host, so the honest unit is cycles
// per host-second of observed fleet time: frames-per-second times the
// encode+decode+ingest cost of one frame. This bench replays a fleet of
// hosts publishing realistic summaries (16 process series, 8 origins, the
// pattern mix, 2 relay channels, 2 exported metrics — what a tempotop
// desktop actually ships) through EncodeSummaryFrame -> FrameDecoder ->
// FleetAggregator::Ingest at a 500 ms publish period, and charges the
// whole round trip to the aggregating side.
//
// Gate: collection must cost at most kGateCyclesPerHostSecond cycles per
// host-second (documented in EXPERIMENTS.md; at this budget a single
// 3 GHz core aggregates a six-figure host fleet). Results go to
// BENCH_fleet.json.
//
// TEMPO_QUICK=1 / TEMPO_SMOKE=1 shrink the round count for CI; the gate
// still runs (it is a per-host-second number, not a throughput number).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/fleet/aggregator.h"
#include "src/fleet/wire.h"
#include "src/obs/probe.h"
#include "src/sim/time.h"

namespace tempo {
namespace {

constexpr double kGateCyclesPerHostSecond = 150'000.0;
constexpr SimDuration kPublishPeriod = 500 * kMillisecond;

fleet::SeriesSummary MakeSeries(const std::string& label, uint64_t round,
                                uint64_t salt) {
  fleet::SeriesSummary s;
  s.label = label;
  s.sets = (round + 1) * (500 + salt * 37);
  s.expires = s.sets - salt;
  s.cancels = salt * 3;
  s.mean_rate = 1000.0 + static_cast<double>(salt);
  s.last_rate = 990.0 + static_cast<double>((round * 7 + salt) % 40);
  s.peak_rate = 7000.0;
  s.burst_active = (round + salt) % 16 == 0;
  s.bursts = round / 8;
  s.burst_peak_rate = s.bursts > 0 ? 6900.0 : 0.0;
  return s;
}

// The summary host `h` publishes in round `r`: cumulative totals, fresh
// clock, the series/pattern/channel population of a real desktop.
fleet::HostSummary MakeSummary(const std::string& host, uint64_t h, uint64_t r) {
  fleet::HostSummary summary;
  summary.host = host;
  summary.sequence = r + 1;
  summary.now = static_cast<SimTime>(r + 1) * kPublishPeriod;
  summary.window = kSecond;
  summary.records = (r + 1) * 12'000;
  summary.processes.reserve(16);
  for (uint64_t i = 0; i < 16; ++i) {
    summary.processes.push_back(MakeSeries("proc" + std::to_string(i), r, h + i));
  }
  summary.origins.reserve(8);
  for (uint64_t i = 0; i < 8; ++i) {
    summary.origins.push_back(MakeSeries("origin" + std::to_string(i), r, h + i));
  }
  summary.patterns = {{"periodic", 40 + r}, {"watchdog", 8}, {"oneshot", 3 + h % 5}};
  summary.classifier_tracked = 96;
  summary.classifier_evictions = r;
  summary.channels = {{host + "/kernel", (r + 1) * 8'000, 0},
                      {host + "/outlook", (r + 1) * 4'000, 0}};
  summary.metrics = {{"relay_accepted", static_cast<int64_t>((r + 1) * 12'000)},
                     {"drainer_emitted", static_cast<int64_t>((r + 1) * 12'000)}};
  return summary;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const bool quick = (quick_env != nullptr && quick_env[0] == '1') ||
                     (smoke_env != nullptr && smoke_env[0] == '1');
  const uint64_t hosts = 64;
  const uint64_t rounds = quick ? 40 : 400;

  std::printf("micro_fleet_aggregator: %llu hosts x %llu publish rounds%s\n",
              static_cast<unsigned long long>(hosts),
              static_cast<unsigned long long>(rounds), quick ? " (quick)" : "");

  std::vector<std::string> names;
  names.reserve(hosts);
  for (uint64_t h = 0; h < hosts; ++h) {
    names.push_back("desktop-" + std::to_string(h));
  }

  fleet::FleetAggregator aggregator;
  // One decoder per host connection, as the collector keeps per source.
  std::vector<fleet::FrameDecoder> decoders(hosts);

  uint64_t frames = 0;
  uint64_t bytes = 0;
  bool lossless = true;
  const uint64_t begin = obs::WallCycleClock();
  for (uint64_t r = 0; r < rounds; ++r) {
    for (uint64_t h = 0; h < hosts; ++h) {
      const std::vector<uint8_t> frame =
          fleet::EncodeSummaryFrame(MakeSummary(names[h], h, r));
      bytes += frame.size();
      decoders[h].Feed(frame.data(), frame.size());
      fleet::HostSummary decoded;
      fleet::FleetReadError error;
      if (decoders[h].Next(&decoded, &error) != fleet::FrameDecoder::Status::kFrame) {
        lossless = false;
        continue;
      }
      aggregator.Ingest(decoded, names[h]);
      ++frames;
    }
  }
  const uint64_t cycles = obs::WallCycleClock() - begin;

  const double host_seconds = static_cast<double>(hosts) *
                              ToSeconds(static_cast<SimTime>(rounds) * kPublishPeriod);
  const double per_host_second = static_cast<double>(cycles) / host_seconds;
  const double per_frame = static_cast<double>(cycles) / static_cast<double>(frames);
  const fleet::FleetView view = aggregator.TakeView();

  std::printf("  %10llu frames, %.1f MiB on the wire (%.0f bytes/frame)\n",
              static_cast<unsigned long long>(frames),
              static_cast<double>(bytes) / (1024.0 * 1024.0),
              static_cast<double>(bytes) / static_cast<double>(frames));
  std::printf("  %10.0f cycles/frame (encode + decode + ingest)\n", per_frame);
  std::printf("  %10.0f cycles/host-second at a %.1fs publish period\n",
              per_host_second, ToSeconds(kPublishPeriod));
  std::printf("  aggregator: %llu hosts, %llu frames, clean=%s\n",
              static_cast<unsigned long long>(view.hosts_total),
              static_cast<unsigned long long>(view.frames_total),
              view.clean() ? "true" : "false");

  const bool sane = lossless && view.hosts_total == hosts &&
                    view.frames_total == hosts * rounds && view.clean();
  if (!sane) {
    std::fprintf(stderr, "error: collection path lost frames\n");
  }
  const bool gate_pass = sane && per_host_second <= kGateCyclesPerHostSecond;
  std::printf("aggregator gate (<=%.0f cycles/host-second): %s\n",
              kGateCyclesPerHostSecond, gate_pass ? "pass" : "fail");

  std::FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_fleet_aggregator\",\n");
    std::fprintf(json, "  \"hosts\": %llu,\n",
                 static_cast<unsigned long long>(hosts));
    std::fprintf(json, "  \"rounds\": %llu,\n",
                 static_cast<unsigned long long>(rounds));
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"publish_period_s\": %.1f,\n", ToSeconds(kPublishPeriod));
    std::fprintf(json, "  \"bytes_per_frame\": %.0f,\n",
                 static_cast<double>(bytes) / static_cast<double>(frames));
    std::fprintf(json, "  \"cycles_per_frame\": %.0f,\n", per_frame);
    std::fprintf(json, "  \"cycles_per_host_second\": %.0f,\n", per_host_second);
    std::fprintf(json, "  \"gate\": {\"threshold\": %.0f, \"cycles_per_host_second\": "
                       "%.0f, \"status\": \"%s\"}\n",
                 kGateCyclesPerHostSecond, per_host_second,
                 gate_pass ? "pass" : "fail");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_fleet.json\n");
  }
  return gate_pass ? 0 : 1;
}
