// micro_latency — per-record cost of the slack tracker on the relay drain
// path, with the live == offline identity proven inside the bench.
//
// The latency observatory taps the same drainer emit callback the live
// analyzer uses (tempotop dual-ingests both), so its cost is paid once per
// traced event on the consumer side. This bench replays a deterministic
// synthetic stream — arms carrying both the requested timeout and a
// post-rounding expiry, paired expiries, cancels and re-arms — through the
// drain path twice: once into a counting sink, once into a SlackTracker,
// and charges the difference to the tracker.
//
// Two checks:
//   identity — the tracker's fold must equal the offline SlackState fold
//     over the same stream (the tentpole's live == offline contract). This
//     is a correctness assert and runs at every size; a mismatch exits 1.
//   gate — the tracker must add at most kGateCyclesPerRecord cycles per
//     record. Cycle measurements on a small smoke stream are noise, so
//     TEMPO_QUICK/TEMPO_SMOKE runs mark the gate "skipped: smoke run" —
//     never "pass" — and only a full run can pass or fail it.
//
// Results go to BENCH_latency.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/analysis/latency.h"
#include "src/live/slack_tracker.h"
#include "src/obs/probe.h"
#include "src/trace/relay.h"

namespace tempo {
namespace {

constexpr double kGateCyclesPerRecord = 1500.0;

// Arms carry both the requested timeout and a (sometimes rounded-up)
// absolute expiry; closes are expiries, cancels and re-arms in realistic
// proportions, so every SlackState path is hot.
std::vector<TraceRecord> GenerateStream(size_t count) {
  uint64_t state = 2008 * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<TraceRecord> records;
  records.reserve(count);
  SimTime now = 0;
  constexpr size_t kTimers = 4096;
  std::vector<bool> open(kTimers + 1, false);
  while (records.size() < count) {
    now += next() % (2 * kMillisecond);
    TraceRecord r;
    r.timestamp = now;
    r.timer = 1 + next() % kTimers;
    r.pid = static_cast<Pid>(next() % 8);
    r.callsite = static_cast<CallsiteId>(next() % 32);
    if (!open[r.timer] || next() % 2 == 0) {
      r.op = TimerOp::kSet;
      r.timeout = static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      r.expiry = now + r.timeout;
      if (next() % 3 == 0) {
        // Jiffy-style round-up: the deadline moves past the request.
        r.expiry += static_cast<SimDuration>(next() % (4 * kMillisecond));
        r.flags |= kFlagRounded;
      }
      if (next() % 8 == 0) {
        r.flags |= kFlagDeferrable;
      }
      open[r.timer] = true;
    } else if (next() % 4 == 0) {
      r.op = TimerOp::kCancel;
      open[r.timer] = false;
    } else {
      r.op = TimerOp::kExpire;
      open[r.timer] = false;
    }
    records.push_back(r);
  }
  return records;
}

// Drains `records` through a relay channel into `emit`, the way a real run
// reaches the tracker, and returns cycles per record for the whole drain
// path (harvest + merge + emit).
template <typename Emit>
double DrainCyclesPerRecord(const std::vector<TraceRecord>& records, Emit emit) {
  RelayChannelSet channels;
  RelayChannel* lane = channels.Register("bench/latency");
  RelayDrainer drainer(&channels, emit);
  const uint64_t begin = obs::WallCycleClock();
  size_t logged = 0;
  for (const TraceRecord& r : records) {
    if (!lane->TryLog(r)) {
      drainer.Poll();
      lane->TryLog(r);
    }
    if (++logged % 4096 == 0) {
      drainer.Poll();
    }
  }
  channels.CloseAll();
  drainer.Finish();
  const uint64_t cycles = obs::WallCycleClock() - begin;
  return static_cast<double>(cycles) / static_cast<double>(records.size());
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const bool quick = (quick_env != nullptr && quick_env[0] == '1') ||
                     (smoke_env != nullptr && smoke_env[0] == '1');
  const size_t record_count = quick ? 500'000 : 5'000'000;

  std::printf("micro_latency: %zu records%s\n", record_count, quick ? " (quick)" : "");
  const std::vector<TraceRecord> records = GenerateStream(record_count);

  // Baseline: the drain path with a do-nothing consumer.
  size_t sink_count = 0;
  const double base_cycles = DrainCyclesPerRecord(
      records, [&sink_count](const TraceRecord&) { ++sink_count; });

  // SlackTracker on the same stream, obs instruments live like tempotop's.
  live::SlackTracker tracker("bench");
  const double tracked_cycles = DrainCyclesPerRecord(
      records, [&tracker](const TraceRecord& r) { tracker.Ingest(r); });
  tracker.SyncObs();
  const double delta = tracked_cycles - base_cycles;

  // Identity: the live fold must equal the offline pass over the stream.
  SlackState offline;
  offline.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  const bool identical = tracker.state() == offline;

  const SlackHist& total = tracker.state().total();
  std::printf("  drain only      %8.1f cycles/record (%zu records emitted)\n",
              base_cycles, sink_count);
  std::printf("  drain + slack   %8.1f cycles/record\n", tracked_cycles);
  std::printf("  slack tracker   %8.1f cycles/record added\n", delta);
  std::printf("  spans: %llu fired, %llu canceled, %llu re-armed; slack p50 %s p99 %s\n",
              static_cast<unsigned long long>(tracker.state().fired_spans()),
              static_cast<unsigned long long>(tracker.state().canceled_spans()),
              static_cast<unsigned long long>(tracker.state().rearmed_spans()),
              FormatDuration(static_cast<SimDuration>(total.Quantile(0.50))).c_str(),
              FormatDuration(static_cast<SimDuration>(total.Quantile(0.99))).c_str());
  std::printf("live == offline identity: %s\n", identical ? "pass" : "FAIL");
  if (!identical || sink_count != records.size()) {
    std::fprintf(stderr, "error: %s\n",
                 identical ? "drain path lost records" : "live fold diverged");
    return 1;
  }

  // Cycle gates are meaningless on a smoke-sized stream: mark skipped, not
  // passed, so a green smoke run can never masquerade as a bench result.
  const bool gate_pass = delta <= kGateCyclesPerRecord;
  const std::string gate_status =
      quick ? "skipped: smoke run" : (gate_pass ? "pass" : "fail");
  std::printf("overhead gate (<=%.0f cycles/record): %s\n", kGateCyclesPerRecord,
              gate_status.c_str());

  std::FILE* json = std::fopen("BENCH_latency.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_latency\",\n");
    std::fprintf(json, "  \"records\": %zu,\n", record_count);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"drain_cycles_per_record\": %.1f,\n", base_cycles);
    std::fprintf(json, "  \"tracked_cycles_per_record\": %.1f,\n", tracked_cycles);
    std::fprintf(json, "  \"tracker_cycles_per_record\": %.1f,\n", delta);
    std::fprintf(json, "  \"fired_spans\": %llu,\n",
                 static_cast<unsigned long long>(tracker.state().fired_spans()));
    std::fprintf(json, "  \"slack_p50_ns\": %.0f,\n", total.Quantile(0.50));
    std::fprintf(json, "  \"slack_p99_ns\": %.0f,\n", total.Quantile(0.99));
    std::fprintf(json, "  \"live_offline_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(json, "  \"gate\": {\"threshold\": %.0f, \"added\": %.1f, "
                       "\"status\": \"%s\"}\n",
                 kGateCyclesPerRecord, delta, gate_status.c_str());
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_latency.json\n");
  }
  return quick || gate_pass ? 0 : 1;
}
