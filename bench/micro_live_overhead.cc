// micro_live_overhead — per-record cost of the live analysis layer on the
// relay drain path.
//
// The live observatory (src/live) taps the drainer's emit callback, so its
// per-record cost is paid once per traced event, on the consumer side. The
// paper budgets 236 cycles for the *producer* side logging cost; the drain
// side has no paper number, but it must stay cheap enough that one
// consumer thread keeps up with every producer. This bench replays the
// same deterministic synthetic stream through the drain path twice — once
// into a sink that only counts records, once into the full LiveAnalyzer
// (rate rings + burst detector + online classifier) — and charges the
// difference to the analyzer.
//
// Gate: the analyzer must add at most kGateCyclesPerRecord cycles per
// record (generous: the hot path is two hash probes, a ring increment and
// a classifier transition). Results go to BENCH_live.json.
//
// TEMPO_QUICK=1 / TEMPO_SMOKE=1 shrink the stream for CI; the gate still
// runs (it is a per-record number, not a throughput number).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/analysis/rates.h"
#include "src/live/live_analyzer.h"
#include "src/obs/probe.h"
#include "src/trace/relay.h"

namespace tempo {
namespace {

constexpr double kGateCyclesPerRecord = 2000.0;

std::vector<TraceRecord> GenerateStream(size_t count) {
  uint64_t state = 2008 * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<TraceRecord> records;
  records.reserve(count);
  SimTime now = 0;
  constexpr size_t kTimers = 8192;  // 2x the classifier LRU: forces churn
  std::vector<bool> open(kTimers + 1, false);
  while (records.size() < count) {
    now += next() % (2 * kMillisecond);
    TraceRecord r;
    r.timestamp = now;
    r.timer = 1 + next() % kTimers;
    r.pid = static_cast<Pid>(next() % 8);  // 0=kernel, 7 user processes
    if (!open[r.timer]) {
      r.op = TimerOp::kSet;
      r.timeout = static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      open[r.timer] = true;
    } else {
      const uint64_t pick = next() % 4;
      if (pick == 0) {
        r.op = TimerOp::kCancel;
        open[r.timer] = false;
      } else if (pick == 1) {
        r.op = TimerOp::kExpire;
        open[r.timer] = false;
      } else {
        r.op = TimerOp::kSet;  // re-arm
        r.timeout = static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      }
    }
    records.push_back(r);
  }
  return records;
}

// Drains `records` through a relay channel into `emit`, the way a real run
// reaches the analyzer, and returns cycles per record for the whole drain
// path (harvest + merge + emit).
template <typename Emit>
double DrainCyclesPerRecord(const std::vector<TraceRecord>& records, Emit emit) {
  RelayChannelSet channels;
  RelayChannel* lane = channels.Register("bench/live");
  RelayDrainer drainer(&channels, emit);
  const uint64_t begin = obs::WallCycleClock();
  size_t logged = 0;
  for (const TraceRecord& r : records) {
    if (!lane->TryLog(r)) {
      // Ring full: drain in place (single-threaded bench, same work the
      // consumer thread would do).
      drainer.Poll();
      lane->TryLog(r);
    }
    if (++logged % 4096 == 0) {
      drainer.Poll();
    }
  }
  channels.CloseAll();
  drainer.Finish();
  const uint64_t cycles = obs::WallCycleClock() - begin;
  return static_cast<double>(cycles) / static_cast<double>(records.size());
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const bool quick = (quick_env != nullptr && quick_env[0] == '1') ||
                     (smoke_env != nullptr && smoke_env[0] == '1');
  const size_t record_count = quick ? 500'000 : 5'000'000;

  std::printf("micro_live_overhead: %zu records%s\n", record_count,
              quick ? " (quick)" : "");
  const std::vector<TraceRecord> records = GenerateStream(record_count);

  // Baseline: the drain path with a do-nothing consumer.
  size_t sink_count = 0;
  const double base_cycles = DrainCyclesPerRecord(
      records, [&sink_count](const TraceRecord&) { ++sink_count; });

  // Full live analyzer on the same stream, with a per-pid grouping like
  // tempotop builds.
  live::LiveOptions options;
  options.window = kSecond;
  options.ring_windows = 1 << 15;
  for (Pid pid = 1; pid < 8; ++pid) {
    options.grouping.pid_labels[pid] = "proc" + std::to_string(pid);
  }
  options.stats_label = "bench";
  options.classifier.stats_label = "bench";
  live::LiveAnalyzer analyzer(options);
  const double live_cycles = DrainCyclesPerRecord(
      records, [&analyzer](const TraceRecord& r) { analyzer.Ingest(r); });
  const double delta = live_cycles - base_cycles;

  std::printf("  drain only      %8.1f cycles/record (%zu records emitted)\n",
              base_cycles, sink_count);
  std::printf("  drain + live    %8.1f cycles/record\n", live_cycles);
  std::printf("  live analyzer   %8.1f cycles/record added\n", delta);
  std::printf("  classifier: %zu tracked, %llu evicted; %llu windows evicted\n",
              analyzer.classifier().tracked(),
              static_cast<unsigned long long>(analyzer.classifier().evictions()),
              static_cast<unsigned long long>(analyzer.windows_evicted()));

  const bool sane = analyzer.records_ingested() == records.size() &&
                    sink_count == records.size();
  if (!sane) {
    std::fprintf(stderr, "error: drain path lost records (%zu/%zu/%zu)\n",
                 sink_count, analyzer.records_ingested(), records.size());
  }
  const bool gate_pass = sane && delta <= kGateCyclesPerRecord;
  std::printf("overhead gate (<=%.0f cycles/record): %s\n", kGateCyclesPerRecord,
              gate_pass ? "pass" : "fail");

  std::FILE* json = std::fopen("BENCH_live.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_live_overhead\",\n");
    std::fprintf(json, "  \"records\": %zu,\n", record_count);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"drain_cycles_per_record\": %.1f,\n", base_cycles);
    std::fprintf(json, "  \"live_cycles_per_record\": %.1f,\n", live_cycles);
    std::fprintf(json, "  \"analyzer_cycles_per_record\": %.1f,\n", delta);
    std::fprintf(json, "  \"paper_producer_cycles_per_record\": 236,\n");
    std::fprintf(json, "  \"classifier_tracked\": %zu,\n",
                 analyzer.classifier().tracked());
    std::fprintf(json, "  \"classifier_evictions\": %llu,\n",
                 static_cast<unsigned long long>(analyzer.classifier().evictions()));
    std::fprintf(json, "  \"gate\": {\"threshold\": %.0f, \"added\": %.1f, "
                       "\"status\": \"%s\"}\n",
                 kGateCyclesPerRecord, delta, gate_pass ? "pass" : "fail");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_live.json\n");
  }
  return gate_pass ? 0 : 1;
}
