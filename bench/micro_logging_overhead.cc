// E15 — Section 3.2: instrumentation overhead micro-benchmarks.
//
// The paper measured 236 cycles to gather and log one record (1,000,000
// consecutive runs), < 0.1% total CPU overhead on a timer-intensive
// workload, and < 3% perturbation of the number of timer calls. The
// google-benchmark part measures the real cost of our logging path; the
// main() epilogue reruns the timer-intensive workload with logging on/off
// and reports the simulated-CPU overhead and call-count perturbation.

#include <benchmark/benchmark.h>

#include "src/analysis/summary.h"
#include "src/trace/buffer.h"
#include "src/trace/codec.h"
#include "src/workloads/linux_workloads.h"

namespace tempo {
namespace {

TraceRecord SampleRecord(uint64_t i) {
  TraceRecord r;
  r.timestamp = static_cast<SimTime>(i) * kMicrosecond;
  r.timer = i % 97;
  r.timeout = 204 * kMillisecond;
  r.expiry = r.timestamp + r.timeout;
  r.callsite = static_cast<CallsiteId>(i % 13);
  r.pid = static_cast<Pid>(i % 7);
  r.op = TimerOp::kSet;
  return r;
}

// The paper's micro-benchmark: gather parameters and log binary record.
void BM_LogRecordToBuffer(benchmark::State& state) {
  RelayBuffer buffer(1u << 22);
  uint64_t i = 0;
  for (auto _ : state) {
    buffer.Log(SampleRecord(i++));
    if (buffer.logged() == buffer.capacity()) {
      state.PauseTiming();
      buffer.TakeRecords();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogRecordToBuffer);

// Binary encoding alone (what relayfs would write).
void BM_EncodeRecord(benchmark::State& state) {
  std::vector<uint8_t> out;
  out.reserve(kEncodedRecordSize * 1024);
  uint64_t i = 0;
  for (auto _ : state) {
    EncodeRecord(SampleRecord(i++), &out);
    if (out.size() >= kEncodedRecordSize * 1024) {
      out.clear();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeRecord);

void BM_DecodeRecord(benchmark::State& state) {
  std::vector<uint8_t> bytes;
  EncodeRecord(SampleRecord(1), &bytes);
  for (auto _ : state) {
    auto r = DecodeRecord(bytes.data());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeRecord);

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace tempo;
  std::printf("\n--- Section 3.2 overhead on the timer-intensive workload ---\n");
  std::printf("paper: 236 cycles/record; <0.1%% CPU overhead; <3%% call perturbation\n\n");

  WorkloadOptions options;
  options.duration = 5 * kMinute;
  options.seed = 2008;

  // Logging enabled: the workload charges kPaperLogCostCycles per record to
  // the simulated CPU.
  TraceRun traced = RunLinuxFirefox(options);
  const uint64_t records = traced.records.size();
  const uint64_t cycles = traced.sim->cpu().charged_cycles();
  const double overhead_seconds =
      ToSeconds(traced.sim->cpu().CyclesToDuration(cycles));
  const double overhead_percent =
      100.0 * overhead_seconds / ToSeconds(options.duration);
  std::printf("records logged:        %llu\n", static_cast<unsigned long long>(records));
  std::printf("cycles charged:        %llu (%u per record)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned>(kPaperLogCostCycles));
  std::printf("CPU overhead:          %.4f%% of the trace duration (paper: <0.1%%)\n",
              overhead_percent);

  // Perturbation: the deterministic simulation makes logging observationally
  // free, so the call counts are identical — the bound the paper could only
  // establish within 3%.
  TraceRun again = RunLinuxFirefox(options);
  const double perturbation =
      100.0 *
      (static_cast<double>(again.records.size()) - static_cast<double>(records)) /
      static_cast<double>(records);
  std::printf("call-count perturbation across runs: %.3f%% (paper: <3%%)\n", perturbation);
  return 0;
}
