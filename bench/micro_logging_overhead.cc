// E15 — Section 3.2: instrumentation overhead micro-benchmarks.
//
// The paper measured 236 cycles to gather and log one record (1,000,000
// consecutive runs), < 0.1% total CPU overhead on a timer-intensive
// workload, and < 3% perturbation of the number of timer calls. Three
// parts:
//
//   1. google-benchmark micros: the legacy RelayBuffer sink path and the
//      binary codec in isolation.
//   2. Multi-producer relay scalability: 1/2/4/8 producer threads, each
//      logging through its own RelayChannel while a drainer merges and
//      streams to disk via TraceStreamWriter. Measures producer-side
//      cycles/record against the paper's 236-cycle figure, gates the
//      1 -> 8 producer degradation at <= 2x, and proves the merged
//      streamed file is byte-identical to a single-threaded buffered
//      serialization of the same records. Writes BENCH_logging.json.
//   3. A main() epilogue rerunning the timer-intensive workload with
//      logging on, reporting simulated-CPU overhead and perturbation.
//
// TEMPO_SMOKE=1 runs only part 2 with small record counts and no
// scalability gate (CI runners are oversubscribed); the identity proof
// always gates.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/summary.h"
#include "src/obs/probe.h"
#include "src/trace/buffer.h"
#include "src/trace/codec.h"
#include "src/trace/file.h"
#include "src/trace/relay.h"
#include "src/trace/stream_writer.h"
#include "src/workloads/linux_workloads.h"

namespace tempo {
namespace {

TraceRecord SampleRecord(uint64_t i) {
  TraceRecord r;
  r.timestamp = static_cast<SimTime>(i) * kMicrosecond;
  r.timer = i % 97;
  r.timeout = 204 * kMillisecond;
  r.expiry = r.timestamp + r.timeout;
  r.callsite = static_cast<CallsiteId>(i % 13);
  r.pid = static_cast<Pid>(i % 7);
  r.op = TimerOp::kSet;
  return r;
}

// The paper's micro-benchmark: gather parameters and log binary record.
void BM_LogRecordToBuffer(benchmark::State& state) {
  RelayBuffer buffer(1u << 22);
  uint64_t i = 0;
  for (auto _ : state) {
    buffer.Log(SampleRecord(i++));
    if (buffer.logged() == buffer.capacity()) {
      state.PauseTiming();
      buffer.TakeRecords();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogRecordToBuffer);

// The relay hot path alone: plain stores into the open sub-buffer.
void BM_LogRecordToChannel(benchmark::State& state) {
  RelayChannel channel("bench_micro", RelayChannelConfig::ForCapacity(1u << 22));
  std::vector<TraceRecord> drain;
  uint64_t i = 0;
  for (auto _ : state) {
    if (!channel.TryLog(SampleRecord(i++))) {
      state.PauseTiming();
      channel.FlushOpen();
      drain.clear();
      channel.Harvest(&drain);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LogRecordToChannel);

// Binary encoding alone (what relayfs would write).
void BM_EncodeRecord(benchmark::State& state) {
  std::vector<uint8_t> out;
  out.reserve(kEncodedRecordSize * 1024);
  uint64_t i = 0;
  for (auto _ : state) {
    EncodeRecord(SampleRecord(i++), &out);
    if (out.size() >= kEncodedRecordSize * 1024) {
      out.clear();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeRecord);

void BM_DecodeRecord(benchmark::State& state) {
  std::vector<uint8_t> bytes;
  EncodeRecord(SampleRecord(1), &bytes);
  for (auto _ : state) {
    auto r = DecodeRecord(bytes.data());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeRecord);

// --- Part 2: multi-producer relay scalability ----------------------------

// Producer p's record i. Timestamps are globally unique and increasing per
// producer (the relay ordering contract), so the expected merge order is a
// strict total order any reference can reproduce with a sort.
TraceRecord ProducerRecord(int producer, uint64_t i) {
  TraceRecord r = SampleRecord(i);
  r.timestamp = static_cast<SimTime>(i) * 1000 + producer;
  r.tid = producer;
  return r;
}

struct ScaleResult {
  int producers = 0;
  uint64_t records = 0;
  uint64_t dropped = 0;
  double cycles_per_record = 0;
  double seconds = 0;
  bool identical = false;
};

ScaleResult MeasureProducers(int producers, uint64_t records_per_producer,
                             const std::string& trace_path) {
  ScaleResult result;
  result.producers = producers;

  RelayChannelSet channels;
  std::vector<RelayChannel*> lanes;
  for (int p = 0; p < producers; ++p) {
    // Capacity covers the whole run, so the identity proof cannot lose
    // records even if the drainer falls behind; sub-buffers are lazy, so
    // only the backlog that actually forms is allocated.
    lanes.push_back(channels.Register(
        "bench/p" + std::to_string(producers) + "/" + std::to_string(p),
        RelayChannelConfig::ForCapacity(records_per_producer)));
  }

  CallsiteRegistry callsites;
  callsites.Intern("bench_logging_overhead");
  TraceStreamWriter writer(trace_path, &callsites);
  RelayDrainer drainer(&channels, [&writer](const TraceRecord& r) { writer.Append(r); });

  std::atomic<bool> start{false};
  std::atomic<bool> producers_done{false};
  std::vector<uint64_t> cycles(producers, 0);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      RelayChannel* channel = lanes[p];
      while (!start.load(std::memory_order_acquire)) {
      }
      const uint64_t begin = obs::WallCycleClock();
      for (uint64_t i = 0; i < records_per_producer; ++i) {
        channel->TryLog(ProducerRecord(p, i));
      }
      cycles[p] = obs::WallCycleClock() - begin;
    });
  }
  std::thread drain_thread([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      if (drainer.Poll() == 0) {
        std::this_thread::yield();
      }
    }
  });

  const auto wall_start = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& t : threads) {
    t.join();
  }
  producers_done.store(true, std::memory_order_release);
  drain_thread.join();
  // Producers and the polling drainer are quiescent: final flush + merge +
  // file assembly from this thread.
  channels.CloseAll();
  drainer.Finish();
  const bool wrote = writer.Close();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  uint64_t total_cycles = 0;
  for (int p = 0; p < producers; ++p) {
    total_cycles += cycles[p];
    result.dropped += lanes[p]->dropped();
  }
  result.records = drainer.emitted();
  const uint64_t produced =
      static_cast<uint64_t>(producers) * records_per_producer;
  result.cycles_per_record =
      static_cast<double>(total_cycles) / static_cast<double>(produced);

  // Identity proof: the streamed multi-producer file must be byte-identical
  // to a single-threaded buffered serialization of the same records in
  // timestamp order.
  std::vector<TraceRecord> reference;
  reference.reserve(produced);
  for (uint64_t i = 0; i < records_per_producer; ++i) {
    for (int p = 0; p < producers; ++p) {
      reference.push_back(ProducerRecord(p, i));  // ts = i*1000 + p: sorted
    }
  }
  const std::vector<uint8_t> expected = SerializeTrace(reference, callsites);
  std::vector<uint8_t> streamed;
  if (wrote) {
    std::FILE* f = std::fopen(trace_path.c_str(), "rb");
    if (f != nullptr) {
      uint8_t buf[1 << 16];
      size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        streamed.insert(streamed.end(), buf, buf + n);
      }
      std::fclose(f);
    }
  }
  result.identical = wrote && streamed == expected;
  std::remove(trace_path.c_str());
  return result;
}

int RunRelayScalability(bool smoke) {
  const uint64_t records_per_producer = smoke ? 20000 : 1000000;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("\n--- multi-producer relay channels -> streamed v2 trace ---\n");
  std::printf("paper reference: %u cycles/record (Section 3.2)\n",
              static_cast<unsigned>(kPaperLogCostCycles));
  std::printf("%u records/producer, hardware threads: %u%s\n\n",
              static_cast<unsigned>(records_per_producer), hw,
              smoke ? " [smoke]" : "");
  std::printf("  %-10s %14s %12s %10s %9s %10s\n", "producers", "cycles/record",
              "vs 1-prod", "dropped", "seconds", "identical");

  std::vector<ScaleResult> results;
  for (const int producers : {1, 2, 4, 8}) {
    results.push_back(MeasureProducers(producers, records_per_producer,
                                       "BENCH_logging_stream.trc"));
    const ScaleResult& r = results.back();
    const double ratio = r.cycles_per_record / results.front().cycles_per_record;
    std::printf("  %-10d %14.1f %11.2fx %10llu %9.3f %10s\n", r.producers,
                r.cycles_per_record, ratio,
                static_cast<unsigned long long>(r.dropped), r.seconds,
                r.identical ? "yes" : "NO");
  }

  bool identity_ok = true;
  bool lossless_ok = true;
  for (const ScaleResult& r : results) {
    identity_ok = identity_ok && r.identical;
    lossless_ok = lossless_ok && r.dropped == 0 &&
                  r.records == static_cast<uint64_t>(r.producers) * records_per_producer;
  }
  // The <= 2x degradation gate only applies while producers have real
  // cores; oversubscribed runs measure the scheduler, not the channels.
  bool scaling_ok = true;
  double worst_ratio = 1.0;
  for (const ScaleResult& r : results) {
    if (static_cast<unsigned>(r.producers) > hw) {
      continue;
    }
    const double ratio = r.cycles_per_record / results.front().cycles_per_record;
    worst_ratio = ratio > worst_ratio ? ratio : worst_ratio;
    if (!smoke && ratio > 2.0) {
      scaling_ok = false;
    }
  }

  std::printf("\nmerged streamed output byte-identical to buffered trace: %s\n",
              identity_ok ? "PASS" : "FAIL");
  std::printf("lossless below capacity (0 drops, all records merged): %s\n",
              lossless_ok ? "PASS" : "FAIL");
  std::printf("per-record cost degradation 1 -> %u producers <= 2x: %s (worst %.2fx)\n",
              hw < 8 ? hw : 8,
              smoke ? "SKIPPED (smoke)" : (scaling_ok ? "PASS" : "FAIL"),
              worst_ratio);

  FILE* out = std::fopen("BENCH_logging.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"experiment\": \"micro_logging_overhead\",\n");
    std::fprintf(out, "  \"paper_cycles_per_record\": %u,\n",
                 static_cast<unsigned>(kPaperLogCostCycles));
    std::fprintf(out, "  \"records_per_producer\": %llu,\n",
                 static_cast<unsigned long long>(records_per_producer));
    std::fprintf(out, "  \"smoke\": %s,\n  \"producers\": [\n", smoke ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
      const ScaleResult& r = results[i];
      std::fprintf(out,
                   "    {\"producers\": %d, \"cycles_per_record\": %.1f, "
                   "\"ratio_vs_1\": %.3f, \"dropped\": %llu, "
                   "\"identical\": %s}%s\n",
                   r.producers, r.cycles_per_record,
                   r.cycles_per_record / results.front().cycles_per_record,
                   static_cast<unsigned long long>(r.dropped),
                   r.identical ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"identity_ok\": %s,\n", identity_ok ? "true" : "false");
    std::fprintf(out, "  \"lossless_ok\": %s,\n", lossless_ok ? "true" : "false");
    std::fprintf(out, "  \"scaling_gate\": \"%s\",\n",
                 smoke ? "skipped" : (scaling_ok ? "pass" : "fail"));
    std::fprintf(out, "  \"worst_ratio_within_cores\": %.3f\n}\n", worst_ratio);
    std::fclose(out);
    std::printf("wrote BENCH_logging.json\n");
  }
  return (identity_ok && lossless_ok && scaling_ok) ? 0 : 1;
}

// --- Part 3: Section 3.2 overhead on the timer-intensive workload --------

void RunWorkloadEpilogue() {
  std::printf("\n--- Section 3.2 overhead on the timer-intensive workload ---\n");
  std::printf("paper: 236 cycles/record; <0.1%% CPU overhead; <3%% call perturbation\n\n");

  WorkloadOptions options;
  options.duration = 5 * kMinute;
  options.seed = 2008;

  // Logging enabled: the workload charges kPaperLogCostCycles per record to
  // the simulated CPU.
  TraceRun traced = RunLinuxFirefox(options);
  const uint64_t records = traced.records.size();
  const uint64_t cycles = traced.sim->cpu().charged_cycles();
  const double overhead_seconds =
      ToSeconds(traced.sim->cpu().CyclesToDuration(cycles));
  const double overhead_percent =
      100.0 * overhead_seconds / ToSeconds(options.duration);
  std::printf("records logged:        %llu\n", static_cast<unsigned long long>(records));
  std::printf("cycles charged:        %llu (%u per record)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned>(kPaperLogCostCycles));
  std::printf("CPU overhead:          %.4f%% of the trace duration (paper: <0.1%%)\n",
              overhead_percent);

  // Perturbation: the deterministic simulation makes logging observationally
  // free, so the call counts are identical — the bound the paper could only
  // establish within 3%.
  TraceRun again = RunLinuxFirefox(options);
  const double perturbation =
      100.0 *
      (static_cast<double>(again.records.size()) - static_cast<double>(records)) /
      static_cast<double>(records);
  std::printf("call-count perturbation across runs: %.3f%% (paper: <3%%)\n", perturbation);
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';

  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  const int rc = tempo::RunRelayScalability(smoke);

  if (!smoke) {
    tempo::RunWorkloadEpilogue();
  }
  return rc;
}
