// Section 3.2 methodology applied to tempo's own probes.
//
// The paper validated its instrumentation by measuring it: 236 cycles to
// gather and log one record over 1,000,000 consecutive runs, <0.1% total
// CPU. This bench does the same for the obs layer: cycles per counter
// increment, per histogram record, and per ScopedProbe in all three
// states — enabled, runtime-disabled, and compiled out — over 1M-iteration
// TSC-timed loops (plus google-benchmark timings for cross-checking).
// Results land in BENCH_metrics.json; the acceptance bar is <10 cycles per
// disabled probe.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"

namespace tempo {
namespace {

obs::Counter* BenchCounter() {
  return obs::Registry::Global().GetCounter("bench_counter", {}, "overhead bench");
}

obs::Histogram* BenchHistogram() {
  return obs::Registry::Global().GetHistogram("bench_histogram", {}, "overhead bench");
}

// Mirror of the TEMPO_OBS_COMPILED_OUT ScopedProbe (this TU builds with
// probes compiled in, so the compiled-out flavour is reproduced locally;
// the codegen is identical — empty ctor/dtor, argument unused).
class CompiledOutProbe {
 public:
  explicit CompiledOutProbe(obs::Histogram*) {}
  CompiledOutProbe(const CompiledOutProbe&) = delete;
  CompiledOutProbe& operator=(const CompiledOutProbe&) = delete;
};

void BM_CounterInc(benchmark::State& state) {
  obs::Counter* counter = BenchCounter();
  for (auto _ : state) {
    counter->Inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* hist = BenchHistogram();
  uint64_t i = 0;
  for (auto _ : state) {
    hist->Record(i++ & 0xffff);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedProbeEnabled(benchmark::State& state) {
  obs::SetProbesEnabled(true);
  obs::Histogram* hist = BenchHistogram();
  for (auto _ : state) {
    obs::ScopedProbe probe(hist);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedProbeEnabled);

void BM_ScopedProbeDisabled(benchmark::State& state) {
  obs::SetProbesEnabled(false);
  obs::Histogram* hist = BenchHistogram();
  for (auto _ : state) {
    obs::ScopedProbe probe(hist);
    benchmark::ClobberMemory();
  }
  obs::SetProbesEnabled(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedProbeDisabled);

void BM_ScopedProbeCompiledOut(benchmark::State& state) {
  obs::Histogram* hist = BenchHistogram();
  for (auto _ : state) {
    CompiledOutProbe probe(hist);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedProbeCompiledOut);

// The paper's own loop shape: N consecutive runs bracketed by one pair of
// TSC reads, reporting cycles per operation. `Op` must not be optimised
// away; each op touches registry state, which ClobberMemory pins.
template <typename Op>
double CyclesPerOp(Op op, uint64_t iterations) {
  // Warm-up pass so the measured loop sees hot caches and a resolved
  // branch predictor, like the paper's "1,000,000 consecutive runs".
  for (uint64_t i = 0; i < iterations / 10; ++i) {
    op(i);
    benchmark::ClobberMemory();
  }
  const uint64_t start = obs::WallCycleClock();
  for (uint64_t i = 0; i < iterations; ++i) {
    op(i);
    benchmark::ClobberMemory();
  }
  const uint64_t end = obs::WallCycleClock();
  return static_cast<double>(end - start) / static_cast<double>(iterations);
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  constexpr uint64_t kIterations = 1000000;  // the paper's run count
  obs::Counter* counter = BenchCounter();
  obs::Histogram* hist = BenchHistogram();

  const double counter_cycles = CyclesPerOp([&](uint64_t) { counter->Inc(); }, kIterations);
  const double record_cycles =
      CyclesPerOp([&](uint64_t i) { hist->Record(i & 0xffff); }, kIterations);
  obs::SetProbesEnabled(true);
  const double probe_enabled_cycles =
      CyclesPerOp([&](uint64_t) { obs::ScopedProbe probe(hist); }, kIterations);
  obs::SetProbesEnabled(false);
  const double probe_disabled_cycles =
      CyclesPerOp([&](uint64_t) { obs::ScopedProbe probe(hist); }, kIterations);
  obs::SetProbesEnabled(true);
  const double probe_compiled_out_cycles =
      CyclesPerOp([&](uint64_t) { CompiledOutProbe probe(hist); }, kIterations);

  std::printf("\ncycles/op over %llu consecutive runs (paper: 236 cycles/record):\n",
              static_cast<unsigned long long>(kIterations));
  std::printf("  counter inc           %8.2f\n", counter_cycles);
  std::printf("  histogram record      %8.2f\n", record_cycles);
  std::printf("  scoped probe enabled  %8.2f\n", probe_enabled_cycles);
  std::printf("  scoped probe disabled %8.2f\n", probe_disabled_cycles);
  std::printf("  scoped probe compiled out %4.2f\n", probe_compiled_out_cycles);

  const bool disabled_ok = probe_disabled_cycles < 10.0;
  std::printf("disabled path < 10 cycles: %s\n", disabled_ok ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_metrics.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"experiment\": \"micro_metrics_overhead\",\n"
                 "  \"paper_cycles_per_record\": 236,\n"
                 "  \"iterations\": %llu,\n"
                 "  \"cycles_per_counter_inc\": %.2f,\n"
                 "  \"cycles_per_histogram_record\": %.2f,\n"
                 "  \"cycles_per_probe_enabled\": %.2f,\n"
                 "  \"cycles_per_probe_disabled\": %.2f,\n"
                 "  \"cycles_per_probe_compiled_out\": %.2f,\n"
                 "  \"disabled_under_10_cycles\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(kIterations), counter_cycles,
                 record_cycles, probe_enabled_cycles, probe_disabled_cycles,
                 probe_compiled_out_cycles, disabled_ok ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_metrics.json\n");
  }
  return disabled_ok ? 0 : 1;
}
