// micro_sim_parallel — windowed parallel simulator throughput.
//
// Runs a fixed 4-domain timer workload (per-domain event chains with RNG
// work per event plus cross-domain posts) through the windowed driver at
// 1, 2 and 4 worker threads and measures aggregate timer events per
// second. Two gates:
//
//   * identity (always enforced): every threaded run must produce exactly
//     the serial run's per-domain checksums, event counts and final
//     clocks — the determinism contract of the clock-domain design;
//   * scaling (>= 2x at 4 threads): enforced only on machines with at
//     least 4 hardware threads, SKIPPED otherwise — never passed vacuously.
//
// TEMPO_QUICK=1 shrinks the chains; TEMPO_SMOKE=1 shrinks further for the
// per-PR ctest smoke run. Results go to BENCH_sim_parallel.json.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/clock_domain.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tempo {
namespace {

constexpr size_t kCpus = 4;
constexpr size_t kChainsPerDomain = 4;
constexpr double kSpeedupThreshold = 2.0;
constexpr size_t kGateThreads = 4;
// Wide windows amortize the barrier: the workload's cross-domain latency
// is never below this, matching an IPI-scale 100us lookahead.
constexpr SimDuration kLookahead = 100 * kMicrosecond;

struct DomainState {
  uint64_t checksum = 0;
  uint64_t events = 0;
};

struct RunOutcome {
  size_t threads = 0;
  double millis = 0;
  double events_per_sec = 0;
  double speedup = 1.0;
  bool identical = true;
  uint64_t events = 0;
  uint64_t fingerprint = 0;
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// Seeds every domain with kChainsPerDomain independent timer chains. Each
// event draws `spin` RNG values (the simulated per-timer work), folds them
// into the domain checksum, occasionally posts a cross-domain wakeup, and
// re-arms itself at an RNG-dependent offset — a cartoon of AdvanceAll-style
// per-CPU timer servicing.
using StepFn = std::function<void(int)>;
using Keepalive = std::vector<std::shared_ptr<void>>;

// Re-arms `*step` via a weak_ptr so the chain lambda never owns itself
// (a shared_ptr cycle would leak); the caller's keepalive owns the chain.
void Rearm(ClockDomain& dom, SimDuration delay,
           const std::weak_ptr<StepFn>& weak, int remaining) {
  dom.ScheduleAfter(delay, [weak, remaining] {
    if (const std::shared_ptr<StepFn> step = weak.lock()) {
      (*step)(remaining);
    }
  });
}

void BuildLoad(Simulator* sim, std::vector<DomainState>* states,
               Keepalive* keepalive, int hops, int spin) {
  states->assign(sim->cpu_count(), DomainState{});
  for (size_t d = 0; d < sim->cpu_count(); ++d) {
    for (size_t chain = 0; chain < kChainsPerDomain; ++chain) {
      auto step = std::make_shared<StepFn>();
      keepalive->push_back(step);
      const std::weak_ptr<StepFn> weak = step;
      *step = [sim, states, d, spin, weak](int remaining) {
        ClockDomain& dom = sim->domain(d);
        DomainState& state = (*states)[d];
        uint64_t acc = 0;
        for (int i = 0; i < spin; ++i) {
          acc = Mix(acc, dom.rng().NextU64());
        }
        state.checksum = Mix(Mix(state.checksum, acc), static_cast<uint64_t>(dom.Now()));
        ++state.events;
        if (remaining <= 0) {
          return;
        }
        if (acc % 16 == 0) {
          const size_t target = (d + 1 + acc % (kCpus - 1)) % kCpus;
          dom.Post(target, static_cast<SimDuration>(acc % (200 * kMicrosecond)),
                   [sim, states, target, acc] {
                     DomainState& t = (*states)[target];
                     t.checksum = Mix(Mix(t.checksum, acc),
                                      static_cast<uint64_t>(sim->domain(target).Now()));
                     ++t.events;
                   });
        }
        Rearm(dom, static_cast<SimDuration>(1 + acc % (50 * kMicrosecond)),
              weak, remaining - 1);
      };
      Rearm(sim->domain(d), static_cast<SimDuration>(1 + d * 7 + chain * 13),
            weak, hops);
    }
  }
}

RunOutcome RunOnce(size_t threads, int hops, int spin) {
  Simulator::Options options;
  options.seed = 20080419;
  options.cpus = kCpus;
  options.lookahead = kLookahead;
  options.stats_label = "";  // keep obs registry churn out of the timing
  Simulator sim(options);
  std::vector<DomainState> states;
  Keepalive keepalive;
  BuildLoad(&sim, &states, &keepalive, hops, spin);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunParallel(threads);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome outcome;
  outcome.threads = threads;
  outcome.millis =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  outcome.events = sim.events_executed();
  outcome.events_per_sec =
      outcome.millis > 0 ? static_cast<double>(outcome.events) / (outcome.millis / 1000.0)
                         : 0;
  uint64_t fp = 0;
  for (size_t d = 0; d < kCpus; ++d) {
    fp = Mix(fp, states[d].checksum);
    fp = Mix(fp, states[d].events);
    fp = Mix(fp, static_cast<uint64_t>(sim.domain(d).Now()));
  }
  outcome.fingerprint = Mix(fp, outcome.events);
  return outcome;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const bool quick = quick_env != nullptr && quick_env[0] == '1';
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const int hops = smoke ? 100 : quick ? 1000 : 5000;
  const int spin = smoke ? 200 : 2000;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("micro_sim_parallel: %zu domains, %zu chains/domain, %d hops, spin %d, %u cores%s\n",
              kCpus, kChainsPerDomain, hops, spin, cores,
              smoke ? " (TEMPO_SMOKE)" : quick ? " (TEMPO_QUICK)" : "");

  std::vector<RunOutcome> runs;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    RunOutcome r = RunOnce(threads, hops, spin);
    if (!runs.empty()) {
      r.identical = r.fingerprint == runs.front().fingerprint &&
                    r.events == runs.front().events;
      r.speedup = runs.front().millis / r.millis;
    }
    std::printf("  threads=%zu  %10.1f ms  %12.0f events/s  speedup %.2fx  state %s\n",
                r.threads, r.millis, r.events_per_sec, r.speedup,
                r.identical ? "identical" : "DIFFERS");
    runs.push_back(r);
  }

  bool identity_ok = true;
  for (const RunOutcome& r : runs) {
    identity_ok = identity_ok && r.identical;
  }
  double gate_speedup = 0;
  for (const RunOutcome& r : runs) {
    if (r.threads == kGateThreads) {
      gate_speedup = r.speedup;
    }
  }
  std::string gate_status;
  bool gate_failed = false;
  if (cores < kGateThreads) {
    gate_status = "skipped: only " + std::to_string(cores) + " hardware threads";
  } else if (gate_speedup >= kSpeedupThreshold) {
    gate_status = "pass";
  } else {
    gate_status = "fail";
    gate_failed = true;
  }
  std::printf("identity gate: %s\n", identity_ok ? "pass" : "FAIL");
  std::printf("scaling gate (>=%.1fx at %zu threads): %s\n", kSpeedupThreshold,
              kGateThreads, gate_status.c_str());

  std::FILE* json = std::fopen("BENCH_sim_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_sim_parallel\",\n");
    std::fprintf(json, "  \"domains\": %zu,\n", kCpus);
    std::fprintf(json, "  \"chains_per_domain\": %zu,\n", kChainsPerDomain);
    std::fprintf(json, "  \"hops\": %d,\n", hops);
    std::fprintf(json, "  \"spin\": %d,\n", spin);
    std::fprintf(json, "  \"lookahead_ns\": %lld,\n",
                 static_cast<long long>(kLookahead));
    std::fprintf(json, "  \"events\": %llu,\n",
                 static_cast<unsigned long long>(runs.front().events));
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"identity\": {\"status\": \"%s\"},\n",
                 identity_ok ? "pass" : "fail");
    std::fprintf(json, "  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %zu, \"millis\": %.1f, \"events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"identical\": %s}%s\n",
                   runs[i].threads, runs[i].millis, runs[i].events_per_sec,
                   runs[i].speedup, runs[i].identical ? "true" : "false",
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"gate\": {\"threshold\": %.1f, \"at_threads\": %zu, "
                       "\"speedup\": %.3f, \"status\": \"%s\"}\n",
                 kSpeedupThreshold, kGateThreads, gate_speedup, gate_status.c_str());
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_sim_parallel.json\n");
  }

  if (!identity_ok) {
    std::fprintf(stderr, "error: threaded run state differs from serial\n");
    return 1;
  }
  return gate_failed ? 1 : 0;
}
