// E18 — timing-wheel vs heap/tree micro-benchmarks (the Varghese & Lauck
// claim the kernel designs rest on: O(1) wheel operations vs O(log n)).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/queue.h"

namespace tempo {
namespace {

std::unique_ptr<TimerQueue> MakeByIndex(int index) {
  TimerQueueOptions options;
  options.name = TimerQueueNames()[static_cast<size_t>(index)];
  return MakeTimerQueue(options);
}

// Schedule/cancel churn at a given live population — the webserver pattern
// (arm a timeout per request, cancel it a moment later).
void BM_ScheduleCancel(benchmark::State& state) {
  auto queue = MakeByIndex(static_cast<int>(state.range(0)));
  const int population = static_cast<int>(state.range(1));
  Rng rng(7);
  std::vector<TimerHandle> live;
  live.reserve(static_cast<size_t>(population));
  SimTime now = 0;
  for (int i = 0; i < population; ++i) {
    live.push_back(queue->Schedule(now + rng.UniformInt(kMillisecond, 10 * kSecond),
                                   [](TimerHandle) {}));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    queue->Cancel(live[cursor]);
    live[cursor] = queue->Schedule(now + rng.UniformInt(kMillisecond, 10 * kSecond),
                                   [](TimerHandle) {});
    cursor = (cursor + 1) % live.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(queue->Name());
}
BENCHMARK(BM_ScheduleCancel)
    ->ArgsProduct({{0, 1, 2, 3}, {100, 10000, 100000}});

// Tick-driven advance with a steady timer population (the kernel-tick
// pattern): cost per tick of walking the structure.
void BM_AdvanceTick(benchmark::State& state) {
  auto queue = MakeByIndex(static_cast<int>(state.range(0)));
  const int population = static_cast<int>(state.range(1));
  Rng rng(9);
  SimTime now = 0;
  // Self-rearming periodic timers keep the population constant.
  std::function<void(TimerHandle)> rearm;
  std::vector<SimDuration> periods(static_cast<size_t>(population));
  for (auto& p : periods) {
    p = rng.UniformInt(10 * kMillisecond, 10 * kSecond);
  }
  for (int i = 0; i < population; ++i) {
    const SimDuration period = periods[static_cast<size_t>(i)];
    std::shared_ptr<std::function<void(TimerHandle)>> self =
        std::make_shared<std::function<void(TimerHandle)>>();
    TimerQueue* q = queue.get();
    SimTime* now_ptr = &now;
    *self = [q, now_ptr, period, self](TimerHandle) {
      q->Schedule(*now_ptr + period, *self);
    };
    queue->Schedule(now + rng.UniformInt(0, period), *self);
  }
  for (auto _ : state) {
    now += kMillisecond;  // one tick
    queue->Advance(now);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(queue->Name());
}
BENCHMARK(BM_AdvanceTick)->ArgsProduct({{0, 1, 2, 3}, {1000, 100000}});

// NextExpiry query cost — what dynticks pays to pick the next wakeup; cheap
// on a tree, expensive on wheels (one of the hrtimer motivations).
void BM_NextExpiry(benchmark::State& state) {
  auto queue = MakeByIndex(static_cast<int>(state.range(0)));
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    queue->Schedule(rng.UniformInt(kMillisecond, 100 * kSecond), [](TimerHandle) {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue->NextExpiry());
  }
  state.SetLabel(queue->Name());
}
BENCHMARK(BM_NextExpiry)->DenseRange(0, 3);

}  // namespace
}  // namespace tempo

BENCHMARK_MAIN();
