// Timer-service scaling microbenchmarks.
//
// Two questions, both feeding BENCH_timer_service.json:
//
//   1. NextExpiry cost. The OS models call NextExpiry() on every
//      hardware-reprogram decision; the seed implementation answered with a
//      full O(slots x nodes) scan. With 10k pending timers the cached
//      minimum must beat the retained reference scan by >= 10x (the PR's
//      acceptance bar; the bench exits non-zero if it does not).
//
//   2. Multi-producer set/cancel throughput. 1/2/4/8 producer threads x all
//      four queue implementations, each multi-thread configuration run
//      against a single global lock (shards=1) and against one shard per
//      thread — the sharding win is the ratio between the two.
//
// TEMPO_QUICK=1 shrinks the op counts for CI.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/hashed_wheel.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/queue.h"
#include "src/timer/timer_service.h"
#include "tools/common.h"

namespace tempo {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// --- Part 1: NextExpiry cached vs reference scan -------------------------

struct NextExpiryResult {
  std::string queue;
  double scan_ns = 0;
  double cached_ns = 0;
  double speedup = 0;
};

// The cached path gets a much larger iteration budget than the scan: it is
// too fast to time over the scan's loop count.
template <typename Wheel>
NextExpiryResult MeasureNextExpiry(const std::string& name, Wheel* wheel, int population,
                                   int scan_iters, int cached_iters) {
  Rng rng(42);
  for (int i = 0; i < population; ++i) {
    wheel->Schedule(rng.UniformInt(kMillisecond, 100 * kSecond), [](TimerHandle) {});
  }
  NextExpiryResult result;
  result.queue = name;
  SimTime sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < scan_iters; ++i) {
    sink ^= wheel->NextExpiryScan();
  }
  result.scan_ns = SecondsSince(start) * 1e9 / scan_iters;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < cached_iters; ++i) {
    sink ^= wheel->NextExpiry();
  }
  result.cached_ns = SecondsSince(start) * 1e9 / cached_iters;
  if (sink == 42) {  // defeat dead-code elimination without volatile
    std::fprintf(stderr, "#");
  }
  result.speedup = result.cached_ns > 0 ? result.scan_ns / result.cached_ns : 0;
  return result;
}

// --- Part 2: multi-producer throughput -----------------------------------

struct ThroughputResult {
  std::string queue;
  int threads = 0;
  size_t shards = 0;
  uint64_t ops = 0;
  double seconds = 0;
  double mops_per_sec = 0;
  uint64_t contended_locks = 0;
  double cache_hit_rate = 0;
};

// Each producer churns schedule/cancel pairs on its home shard — the
// webserver insurance-timer pattern (arm a timeout, cancel it shortly
// after) that dominates the paper's traces.
ThroughputResult MeasureThroughput(const std::string& queue, int threads, size_t shards,
                                   int ops_per_thread, int run_id) {
  TimerService::Options options;
  options.queue = queue;
  options.shards = shards;
  options.stats_label =
      queue + "-bench" + std::to_string(run_id);  // instruments are per-run
  TimerService service(options);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&service, &go, t, ops_per_thread] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::vector<TimerHandle> window(64, kInvalidTimerHandle);
      for (int i = 0; i < ops_per_thread; ++i) {
        const size_t slot = static_cast<size_t>(i) % window.size();
        if (window[slot] != kInvalidTimerHandle) {
          service.Cancel(window[slot]);
        }
        window[slot] =
            service.ScheduleOn(static_cast<size_t>(t),
                               rng.UniformInt(kMillisecond, 10 * kSecond), [](TimerHandle) {});
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) {
    worker.join();
  }
  ThroughputResult result;
  result.queue = queue;
  result.threads = threads;
  result.shards = service.shard_count();
  result.ops = service.set_count() + service.cancel_count();
  result.seconds = SecondsSince(start);
  result.mops_per_sec = static_cast<double>(result.ops) / result.seconds / 1e6;
  result.contended_locks = service.contended_locks();
  const double hits = static_cast<double>(service.deadline_cache_hits());
  const double misses = static_cast<double>(service.deadline_cache_misses());
  result.cache_hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0;
  return result;
}

}  // namespace
}  // namespace tempo

int main(int argc, char** argv) {
  using namespace tempo;
  const tempo::tools::FlagSpec kFlags[] = {tools::QueueFlag()};
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, kFlags);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    tools::PrintUsage(stderr, argv[0], "", kFlags);
    return 2;
  }
  std::vector<std::string> queues = TimerQueueNames();
  if (args.Has("queue")) {
    const std::string selected = tools::ResolveQueueName(args, "");
    if (selected.empty()) {
      return 2;
    }
    queues = {selected};
  }
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const bool quick = quick_env != nullptr && quick_env[0] == '1';
  const int population = 10000;
  const int scan_iters = quick ? 200 : 2000;
  const int cached_iters = quick ? 200000 : 2000000;
  const int ops_per_thread = quick ? 20000 : 100000;

  std::printf("==============================================================\n");
  std::printf("micro_timer_service — sharded TimerService scaling\n");
  std::printf("==============================================================\n\n");

  std::vector<NextExpiryResult> next_results;
  {
    HierarchicalWheelTimerQueue wheel(kMillisecond, "hier-bench-next");
    next_results.push_back(MeasureNextExpiry("hierarchical_wheel", &wheel, population,
                                             scan_iters, cached_iters));
  }
  {
    HashedWheelTimerQueue wheel(kMillisecond, 256, "hashed-bench-next");
    next_results.push_back(
        MeasureNextExpiry("hashed_wheel", &wheel, population, scan_iters, cached_iters));
  }

  std::printf("NextExpiry with %d pending timers (acceptance: >= 10x):\n", population);
  for (const auto& r : next_results) {
    std::printf("  %-20s scan %10.1f ns   cached %8.2f ns   speedup %8.1fx\n",
                r.queue.c_str(), r.scan_ns, r.cached_ns, r.speedup);
  }

  std::printf("\nset/cancel churn, %d ops/thread (schedule+cancel pairs):\n",
              ops_per_thread);
  std::printf("  %-20s %8s %7s %10s %12s %10s %9s\n", "queue", "threads", "shards",
              "Mops/s", "contended", "hit-rate", "seconds");
  std::vector<ThroughputResult> throughput;
  int run_id = 0;
  for (const std::string& queue : queues) {
    for (const int threads : {1, 2, 4, 8}) {
      std::vector<size_t> shard_configs = {1};
      if (threads > 1) {
        shard_configs.push_back(static_cast<size_t>(threads));
      }
      for (const size_t shards : shard_configs) {
        const auto r = MeasureThroughput(queue, threads, shards, ops_per_thread, run_id++);
        std::printf("  %-20s %8d %7zu %10.3f %12llu %10.3f %9.3f\n", r.queue.c_str(),
                    r.threads, r.shards, r.mops_per_sec,
                    static_cast<unsigned long long>(r.contended_locks), r.cache_hit_rate,
                    r.seconds);
        throughput.push_back(r);
      }
    }
  }

  bool speedup_ok = true;
  for (const auto& r : next_results) {
    if (r.speedup < 10.0) {
      speedup_ok = false;
    }
  }
  std::printf("\ncached NextExpiry >= 10x reference scan: %s\n",
              speedup_ok ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_timer_service.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"experiment\": \"micro_timer_service\",\n");
    std::fprintf(out, "  \"population\": %d,\n  \"next_expiry\": [\n", population);
    for (size_t i = 0; i < next_results.size(); ++i) {
      const auto& r = next_results[i];
      std::fprintf(out,
                   "    {\"queue\": \"%s\", \"scan_ns\": %.1f, \"cached_ns\": %.2f, "
                   "\"speedup\": %.1f}%s\n",
                   r.queue.c_str(), r.scan_ns, r.cached_ns, r.speedup,
                   i + 1 < next_results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"speedup_at_least_10x\": %s,\n",
                 speedup_ok ? "true" : "false");
    std::fprintf(out, "  \"throughput\": [\n");
    for (size_t i = 0; i < throughput.size(); ++i) {
      const auto& r = throughput[i];
      std::fprintf(out,
                   "    {\"queue\": \"%s\", \"threads\": %d, \"shards\": %zu, "
                   "\"mops_per_sec\": %.3f, \"contended_locks\": %llu, "
                   "\"deadline_cache_hit_rate\": %.3f}%s\n",
                   r.queue.c_str(), r.threads, r.shards, r.mops_per_sec,
                   static_cast<unsigned long long>(r.contended_locks), r.cache_hit_rate,
                   i + 1 < throughput.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_timer_service.json\n");
  }
  return speedup_ok ? 0 : 1;
}
