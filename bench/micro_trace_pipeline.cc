// micro_trace_pipeline — parallel streaming analysis throughput.
//
// Generates a large synthetic trace (10M records by default; TEMPO_QUICK=1
// drops to 1M), writes it as a chunked v2 file, then runs the full
// tracestat pass set over the file with 1, 2 and 4 workers. For every
// worker count the rendered report must be byte-identical to the serial
// one (the ordered-merge guarantee); on machines with 4+ cores the 4-way
// run must be at least 3x faster than serial. Results go to
// BENCH_trace_pipeline.json in the working directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/provenance.h"
#include "src/analysis/summary.h"
#include "src/trace/chunked.h"
#include "src/trace/codec.h"
#include "src/trace/file.h"

namespace tempo {
namespace {

constexpr double kSpeedupThreshold = 3.0;
constexpr size_t kGateJobs = 4;

std::vector<CallsiteId> MakeSites(CallsiteRegistry* callsites) {
  const CallsiteId ip = callsites->Intern("net/ip");
  const CallsiteId tcp = callsites->Intern("net/tcp", ip);
  std::vector<CallsiteId> sites;
  sites.push_back(callsites->Intern("app/select"));
  sites.push_back(tcp);
  sites.push_back(callsites->Intern("net/tcp_retransmit", tcp));
  sites.push_back(callsites->Intern("kernel/watchdog"));
  sites.push_back(callsites->Intern("app/poll"));
  sites.push_back(callsites->Intern("kernel/writeback"));
  return sites;
}

// Deterministic synthetic trace: overlapping episodes, re-arms, cancels,
// expiries, a mix of user/kernel records and timeout magnitudes — the
// same shapes the real workloads produce, at arbitrary scale.
std::vector<TraceRecord> GenerateTrace(size_t count,
                                       const std::vector<CallsiteId>& sites) {
  uint64_t state = 2008 * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr size_t kTimers = 4096;
  std::vector<bool> open(kTimers + 1, false);
  SimTime now = 0;
  std::vector<TraceRecord> records;
  records.reserve(count);
  while (records.size() < count) {
    now += static_cast<SimTime>(next() % 3) * kMillisecond;
    TraceRecord r;
    r.timestamp = now;
    r.timer = 1 + next() % kTimers;
    r.callsite = sites[next() % sites.size()];
    r.pid = static_cast<Pid>(next() % 4);
    if (r.pid != kKernelPid) {
      r.flags |= kFlagUser;
    }
    if (!open[r.timer]) {
      r.op = next() % 4 == 0 ? TimerOp::kBlock : TimerOp::kSet;
      open[r.timer] = true;
    } else {
      switch (next() % 6) {
        case 0:
        case 1:
          r.op = TimerOp::kCancel;
          open[r.timer] = false;
          break;
        case 2:
          r.op = TimerOp::kExpire;
          open[r.timer] = false;
          break;
        case 3:
          r.op = TimerOp::kUnblock;
          if (next() % 2 == 0) {
            r.flags |= kFlagWaitSatisfied;
          }
          open[r.timer] = false;
          break;
        default:
          r.op = TimerOp::kSet;
          break;
      }
    }
    if (r.op == TimerOp::kSet || r.op == TimerOp::kBlock) {
      r.timeout = next() % 16 == 0
                      ? static_cast<SimDuration>(7 + next() % 90) * kSecond
                      : static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      r.expiry = r.timestamp + r.timeout;
      if (!r.is_user() && next() % 2 == 0) {
        r.flags |= kFlagJiffyWheel;
      }
    }
    records.push_back(r);
  }
  return records;
}

// The tracestat pass set (with a blame window), so the bench measures the
// tool's real workload.
std::vector<std::unique_ptr<AnalysisPass>> MakePasses(const CallsiteRegistry& callsites) {
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<SummaryPass>("bench"));
  passes.push_back(std::make_unique<ClassifyPass>());
  passes.push_back(std::make_unique<HistogramPass>());
  OriginOptions origin_options;
  origin_options.min_percent = 0.5;
  passes.push_back(std::make_unique<OriginsPass>(&callsites, origin_options));
  passes.push_back(std::make_unique<ProvenancePass>(&callsites));
  passes.push_back(std::make_unique<BlamePass>(&callsites, 10 * kSecond, kMinute));
  return passes;
}

class StringSink : public RenderSink {
 public:
  void Section(const std::string& key, const std::string& text) override {
    (void)key;
    report += text;
  }
  std::string report;
};

struct RunResult {
  size_t jobs = 0;
  double millis = 0;
  double speedup = 1.0;
  bool identical = true;
};

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const bool quick = quick_env != nullptr && quick_env[0] == '1';
  const size_t record_count = quick ? 1'000'000 : 10'000'000;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("micro_trace_pipeline: %zu records, %u cores%s\n", record_count, cores,
              quick ? " (TEMPO_QUICK)" : "");

  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const std::string path = "bench_trace_pipeline.trc";
  uint64_t file_bytes = 0;
  {
    std::printf("generating synthetic trace...\n");
    auto records = GenerateTrace(record_count, sites);
    std::printf("writing %s...\n", path.c_str());
    TraceWriteOptions options;  // chunked v2, default chunk size
    if (!WriteTraceFile(path, records, callsites, options)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
  }  // the records vector dies here: from now on the trace is streamed

  TraceReadError error = TraceReadError::kIo;
  const auto reader = TraceChunkReader::Open(path, &error);
  if (!reader.has_value()) {
    std::fprintf(stderr, "error: cannot reopen %s: %s\n", path.c_str(),
                 TraceReadErrorName(error));
    return 1;
  }
  file_bytes = reader->record_count() * kEncodedRecordSize;  // payload only

  std::vector<RunResult> runs;
  std::string serial_report;
  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{4}}) {
    PipelineOptions options;
    options.jobs = jobs;
    options.stats_label = "bench";
    PipelineRunner runner(options);
    auto passes = MakePasses(reader->callsites());
    const auto t0 = std::chrono::steady_clock::now();
    if (!runner.Run(*reader, passes, &error)) {
      std::fprintf(stderr, "error: pipeline run failed: %s\n", TraceReadErrorName(error));
      return 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    StringSink sink;
    for (const auto& pass : passes) {
      pass->Render(sink);
    }
    RunResult result;
    result.jobs = jobs;
    result.millis =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    if (jobs == 1) {
      serial_report = sink.report;
    } else {
      result.identical = sink.report == serial_report;
    }
    result.speedup = runs.empty() ? 1.0 : runs.front().millis / result.millis;
    std::printf("  jobs=%zu  %10.1f ms  speedup %.2fx  output %s\n", jobs, result.millis,
                result.speedup, result.identical ? "identical" : "DIFFERS");
    runs.push_back(result);
  }
  std::remove(path.c_str());

  bool outputs_ok = true;
  for (const RunResult& r : runs) {
    outputs_ok = outputs_ok && r.identical;
  }
  double gate_speedup = 0;
  for (const RunResult& r : runs) {
    if (r.jobs == kGateJobs) {
      gate_speedup = r.speedup;
    }
  }
  std::string gate_status;
  bool gate_failed = false;
  if (cores < kGateJobs) {
    gate_status = "skipped: only " + std::to_string(cores) + " hardware threads";
  } else if (gate_speedup >= kSpeedupThreshold) {
    gate_status = "pass";
  } else {
    gate_status = "fail";
    gate_failed = true;
  }
  std::printf("speedup gate (>=%.1fx at %zu jobs): %s\n", kSpeedupThreshold, kGateJobs,
              gate_status.c_str());

  std::FILE* json = std::fopen("BENCH_trace_pipeline.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_trace_pipeline\",\n");
    std::fprintf(json, "  \"records\": %zu,\n", record_count);
    std::fprintf(json, "  \"payload_bytes\": %llu,\n",
                 static_cast<unsigned long long>(file_bytes));
    std::fprintf(json, "  \"chunk_records\": %u,\n", kDefaultChunkRecords);
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"outputs_identical\": %s,\n", outputs_ok ? "true" : "false");
    std::fprintf(json, "  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(json,
                   "    {\"jobs\": %zu, \"millis\": %.1f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   runs[i].jobs, runs[i].millis, runs[i].speedup,
                   runs[i].identical ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"gate\": {\"threshold\": %.1f, \"at_jobs\": %zu, "
                       "\"speedup\": %.3f, \"status\": \"%s\"}\n",
                 kSpeedupThreshold, kGateJobs, gate_speedup, gate_status.c_str());
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_trace_pipeline.json\n");
  }

  if (!outputs_ok) {
    std::fprintf(stderr, "error: parallel output differs from serial\n");
    return 1;
  }
  return gate_failed ? 1 : 0;
}
