// micro_trace_query — columnar trace format (v3) storage and query gates.
//
// Generates the paper-shaped synthetic trace (same generator as
// micro_trace_pipeline), writes it as both chunked v2 and columnar v3,
// and proves the three v3 claims:
//
//   size:      the v3 file is at most 0.5x the v2 file;
//   scan:      an analysis scan that declares the fields it reads (a
//              per-op rate summary: timestamp + op) runs at least 2x
//              faster from v3 than from v2, with byte-identical rendered
//              output — projection pushdown decodes 2 of 10 stripes
//              where the row format must decode all 48 bytes of every
//              record. A full all-fields decode of both files is also
//              digest-compared (bit-identical records) and its timing
//              reported, unrated: materializing every field costs the
//              same columns-to-rows transpose no matter the layout.
//   selective: a query whose time window touches <10% of the chunks
//              decodes <10% of the payload bytes (zone-map pushdown),
//              with the answer identical to the full-scan v2 run and the
//              report byte-identical to a 4-worker run.
//
// The TempoLz block-codec variant (off by default in TraceWriteOptions)
// is measured alongside: its size and full-decode time land in the JSON
// so the disk-versus-scan tradeoff stays visible.
//
// 8M records by default (TEMPO_QUICK=1 drops to 1M, TEMPO_SMOKE=1 to
// 200k). Under TEMPO_SMOKE the two wall-clock/fraction gates report
// "skipped: smoke run" — identity checks are always enforced. Results go
// to BENCH_trace_query.json in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "src/analysis/pipeline.h"
#include "src/analysis/query.h"
#include "src/trace/chunked.h"
#include "src/trace/codec.h"
#include "src/trace/file.h"
#include "src/trace/predicate.h"

namespace tempo {
namespace {

constexpr double kScanSpeedupThreshold = 2.0;
constexpr double kSizeRatioThreshold = 0.5;
constexpr double kSelectiveFractionThreshold = 0.10;
// Small chunks: the v3 decode scratch stays cache-resident (the win
// erodes once a chunk's stripes outgrow L2) and even the smoke trace has
// enough chunks for a selective window to prove skipping.
constexpr uint32_t kChunkRecords = 4096;
constexpr int kScanReps = 3;

std::vector<CallsiteId> MakeSites(CallsiteRegistry* callsites) {
  const CallsiteId ip = callsites->Intern("net/ip");
  const CallsiteId tcp = callsites->Intern("net/tcp", ip);
  std::vector<CallsiteId> sites;
  sites.push_back(callsites->Intern("app/select"));
  sites.push_back(tcp);
  sites.push_back(callsites->Intern("net/tcp_retransmit", tcp));
  sites.push_back(callsites->Intern("kernel/watchdog"));
  sites.push_back(callsites->Intern("app/poll"));
  sites.push_back(callsites->Intern("kernel/writeback"));
  return sites;
}

// The micro_trace_pipeline generator: overlapping episodes, re-arms,
// cancels, expiries, user/kernel mix — the shapes the real workloads
// produce, at arbitrary scale.
std::vector<TraceRecord> GenerateTrace(size_t count,
                                       const std::vector<CallsiteId>& sites) {
  uint64_t state = 2008 * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  constexpr size_t kTimers = 4096;
  std::vector<bool> open(kTimers + 1, false);
  SimTime now = 0;
  std::vector<TraceRecord> records;
  records.reserve(count);
  while (records.size() < count) {
    now += static_cast<SimTime>(next() % 3) * kMillisecond;
    TraceRecord r;
    r.timestamp = now;
    r.timer = 1 + next() % kTimers;
    r.callsite = sites[next() % sites.size()];
    r.pid = static_cast<Pid>(next() % 4);
    if (r.pid != kKernelPid) {
      r.flags |= kFlagUser;
    }
    if (!open[r.timer]) {
      r.op = next() % 4 == 0 ? TimerOp::kBlock : TimerOp::kSet;
      open[r.timer] = true;
    } else {
      switch (next() % 6) {
        case 0:
        case 1:
          r.op = TimerOp::kCancel;
          open[r.timer] = false;
          break;
        case 2:
          r.op = TimerOp::kExpire;
          open[r.timer] = false;
          break;
        case 3:
          r.op = TimerOp::kUnblock;
          if (next() % 2 == 0) {
            r.flags |= kFlagWaitSatisfied;
          }
          open[r.timer] = false;
          break;
        default:
          r.op = TimerOp::kSet;
          break;
      }
    }
    if (r.op == TimerOp::kSet || r.op == TimerOp::kBlock) {
      r.timeout = next() % 16 == 0
                      ? static_cast<SimDuration>(7 + next() % 90) * kSecond
                      : static_cast<SimDuration>(1 + next() % 500) * kMillisecond;
      r.expiry = r.timestamp + r.timeout;
      if (!r.is_user() && next() % 2 == 0) {
        r.flags |= kFlagJiffyWheel;
      }
    }
    records.push_back(r);
  }
  return records;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

// ---------------------------------------------------------------------------
// The gated scan: a per-op rate summary through the analysis pipeline.
// The pass reads only timestamp and op and says so via fields(), so the
// v3 cursor decodes 2 of the 10 stripes; the v2 cursor has no choice but
// to decode whole rows. Rendered output is deterministic and must be
// byte-identical across formats and worker counts.

constexpr size_t kOpCount = static_cast<uint8_t>(TimerOp::kUnblock) + 1;

class OpRatePass : public AnalysisPass {
 public:
  const char* name() const override { return "op_rate"; }
  std::unique_ptr<AnalysisPass> Fork() const override {
    return std::make_unique<OpRatePass>();
  }

  void Accumulate(std::span<const TraceRecord> records) override {
    for (const TraceRecord& r : records) {
      ++ops_[static_cast<uint8_t>(r.op)];
    }
    if (!records.empty()) {
      if (records_ == 0) {
        first_ = records.front().timestamp;
      }
      last_ = records.back().timestamp;
      records_ += records.size();
    }
  }

  void Merge(AnalysisPass&& other) override {
    auto& o = static_cast<OpRatePass&>(other);
    for (size_t i = 0; i < kOpCount; ++i) {
      ops_[i] += o.ops_[i];
    }
    if (o.records_ != 0) {
      if (records_ == 0) {
        first_ = o.first_;
      }
      last_ = o.last_;
      records_ += o.records_;
    }
  }

  void Render(RenderSink& sink) override { sink.Section("op_rate", Report()); }

  uint16_t fields() const override { return kFieldTimestamp | kFieldOp; }

  std::string Report() const {
    char head[128];
    std::snprintf(head, sizeof(head), "records %llu window [%lld, %lld]",
                  static_cast<unsigned long long>(records_),
                  static_cast<long long>(first_), static_cast<long long>(last_));
    std::string report = head;
    for (size_t i = 0; i < kOpCount; ++i) {
      char row[64];
      std::snprintf(row, sizeof(row), " op%zu=%llu", i,
                    static_cast<unsigned long long>(ops_[i]));
      report += row;
    }
    report += "\n";
    return report;
  }

 private:
  uint64_t ops_[kOpCount] = {};
  uint64_t records_ = 0;
  SimTime first_ = 0;
  SimTime last_ = 0;
};

struct PipelineScan {
  std::string report;
  double millis = 0;
  uint64_t records = 0;
  bool ok = false;
};

// Best-of-N projected scan via the pipeline; every repetition must render
// the same report.
PipelineScan ScanPipeline(const TraceChunkReader& reader, size_t jobs, int reps) {
  PipelineScan best;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<AnalysisPass>> passes;
    passes.push_back(std::make_unique<OpRatePass>());
    PipelineOptions options;
    options.jobs = jobs;
    options.stats_label = "bench_scan";
    PipelineRunner runner(options);
    TraceReadError error = TraceReadError::kIo;
    const auto t0 = std::chrono::steady_clock::now();
    if (!runner.Run(reader, passes, &error)) {
      std::fprintf(stderr, "error: scan run failed: %s\n", TraceReadErrorName(error));
      return best;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double millis =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    const std::string report = static_cast<OpRatePass*>(passes[0].get())->Report();
    if (rep > 0 && report != best.report) {
      std::fprintf(stderr, "error: scan report unstable across repetitions\n");
      return best;
    }
    if (rep == 0 || millis < best.millis) {
      best.millis = millis;
    }
    best.report = report;
    best.records = runner.stats().records;
  }
  best.ok = true;
  return best;
}

// ---------------------------------------------------------------------------
// Full-decode identity: FNV-1a over every field of every record, in trace
// order — two scans with the same digest decoded bit-identical records.

struct ScanResult {
  uint64_t digest = 0xcbf29ce484222325ULL;
  uint64_t records = 0;
  double millis = 0;
  bool ok = false;
};

inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

ScanResult ScanOnce(const TraceChunkReader& reader) {
  ScanResult result;
  TraceChunkReader::Cursor cursor = reader.MakeCursor();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < reader.chunk_count(); ++i) {
    const auto chunk = cursor.Read(i);
    if (!cursor.ok()) {
      return result;
    }
    for (const TraceRecord& r : chunk) {
      uint64_t h = result.digest;
      h = Mix(h, static_cast<uint64_t>(r.timestamp));
      h = Mix(h, r.timer);
      h = Mix(h, static_cast<uint64_t>(r.timeout));
      h = Mix(h, static_cast<uint64_t>(r.expiry));
      h = Mix(h, r.callsite);
      h = Mix(h, r.stack);
      h = Mix(h, static_cast<uint64_t>(static_cast<uint16_t>(r.pid)));
      h = Mix(h, static_cast<uint64_t>(static_cast<uint16_t>(r.tid)));
      h = Mix(h, static_cast<uint64_t>(r.op));
      h = Mix(h, r.flags);
      result.digest = h;
    }
    result.records += chunk.size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.millis =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
  result.ok = true;
  return result;
}

// Best-of-N full decode; the digest must be stable across repetitions.
ScanResult ScanBest(const TraceChunkReader& reader, int reps) {
  ScanResult best;
  for (int rep = 0; rep < reps; ++rep) {
    const ScanResult r = ScanOnce(reader);
    if (!r.ok) {
      return r;
    }
    if (rep == 0 || r.millis < best.millis) {
      best = r;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// One pushed-down query: records of a time window, grouped by call site.
// `report` is the rendered JSON (byte-comparable between runs over the
// same file); `result` is just the query answer — matched count and the
// group aggregates — which must also match across file formats, where
// the diagnostic "scanned" count legitimately differs (v2 has no zone
// maps to skip by).

struct QueryRun {
  std::string report;
  std::string result;
  PipelineStats stats;
  bool ok = false;
};

std::string CanonicalResult(const QueryPass& pass) {
  std::string s = std::to_string(pass.matched());
  for (const auto& [key, group] : pass.groups()) {
    char row[160];
    std::snprintf(row, sizeof(row), "|%llu:%llu,%llu,%llu,%lld,%lld",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(group.records),
                  static_cast<unsigned long long>(group.sets),
                  static_cast<unsigned long long>(group.timeout_sum),
                  static_cast<long long>(group.first), static_cast<long long>(group.last));
    s += row;
  }
  return s;
}

QueryRun RunQuery(const TraceChunkReader& reader, SimTime begin, SimTime end,
                  size_t jobs) {
  QueryRun run;
  QueryOptions options;
  options.predicate.time_begin = begin;
  options.predicate.time_end = end;
  options.group_by = QueryGroupBy::kCallsite;
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  passes.push_back(std::make_unique<QueryPass>(options, &reader.callsites()));
  PipelineOptions pipeline_options;
  pipeline_options.jobs = jobs;
  pipeline_options.stats_label = "bench_query";
  PipelineRunner runner(pipeline_options);
  TraceReadError error = TraceReadError::kIo;
  if (!runner.Run(reader, passes, &error)) {
    std::fprintf(stderr, "error: query run failed: %s\n", TraceReadErrorName(error));
    return run;
  }
  const QueryPass& pass = *static_cast<QueryPass*>(passes[0].get());
  run.report = pass.RenderJson();
  run.result = CanonicalResult(pass);
  run.stats = runner.stats();
  run.ok = true;
  return run;
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  const char* smoke_env = std::getenv("TEMPO_SMOKE");
  const char* quick_env = std::getenv("TEMPO_QUICK");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const bool quick = !smoke && quick_env != nullptr && quick_env[0] == '1';
  const size_t record_count = smoke ? 200'000 : quick ? 1'000'000 : 8'000'000;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("micro_trace_query: %zu records, chunk_records %u, %u cores%s\n",
              record_count, kChunkRecords, cores,
              smoke ? " (TEMPO_SMOKE)" : quick ? " (TEMPO_QUICK)" : "");

  CallsiteRegistry callsites;
  const auto sites = MakeSites(&callsites);
  const std::string v2_path = "bench_trace_query_v2.trc";
  const std::string v3_path = "bench_trace_query_v3.trc";
  const std::string lz_path = "bench_trace_query_v3lz.trc";
  SimTime trace_begin = 0;
  SimTime trace_end = 0;
  {
    std::printf("generating synthetic trace...\n");
    auto records = GenerateTrace(record_count, sites);
    trace_begin = records.front().timestamp;
    trace_end = records.back().timestamp;
    TraceWriteOptions options;
    options.chunk_records = kChunkRecords;
    options.version = kTraceFileVersionChunked;
    if (!WriteTraceFile(v2_path, records, callsites, options)) {
      std::fprintf(stderr, "error: cannot write %s\n", v2_path.c_str());
      return 1;
    }
    options.version = kTraceFileVersionColumnar;
    if (!WriteTraceFile(v3_path, records, callsites, options)) {
      std::fprintf(stderr, "error: cannot write %s\n", v3_path.c_str());
      return 1;
    }
    options.block_codec = BlockCodecId::kTempoLz;
    if (!WriteTraceFile(lz_path, records, callsites, options)) {
      std::fprintf(stderr, "error: cannot write %s\n", lz_path.c_str());
      return 1;
    }
  }  // the records vector dies here: everything below streams from disk

  const uint64_t v2_bytes = FileBytes(v2_path);
  const uint64_t v3_bytes = FileBytes(v3_path);
  const uint64_t lz_bytes = FileBytes(lz_path);
  const double size_ratio = v2_bytes == 0 ? 1.0 : static_cast<double>(v3_bytes) / v2_bytes;
  std::printf("size: v2 %llu bytes, v3 %llu (%.4fx, %.2f B/rec), v3+lz %llu (%.4fx)\n",
              static_cast<unsigned long long>(v2_bytes),
              static_cast<unsigned long long>(v3_bytes), size_ratio,
              static_cast<double>(v3_bytes) / record_count,
              static_cast<unsigned long long>(lz_bytes),
              v2_bytes == 0 ? 1.0 : static_cast<double>(lz_bytes) / v2_bytes);

  TraceReadError error = TraceReadError::kIo;
  const auto v2_reader = TraceChunkReader::Open(v2_path, &error);
  const auto v3_reader =
      v2_reader.has_value() ? TraceChunkReader::Open(v3_path, &error) : std::nullopt;
  const auto lz_reader =
      v3_reader.has_value() ? TraceChunkReader::Open(lz_path, &error) : std::nullopt;
  if (!lz_reader.has_value()) {
    std::fprintf(stderr, "error: cannot reopen traces: %s\n", TraceReadErrorName(error));
    return 1;
  }

  // --- scan gate: projected per-op rate scan, v2 vs v3 -----------------
  const PipelineScan v2_pipe = ScanPipeline(*v2_reader, 1, kScanReps);
  const PipelineScan v3_pipe = ScanPipeline(*v3_reader, 1, kScanReps);
  const PipelineScan v3_pipe4 = ScanPipeline(*v3_reader, 4, 1);
  if (!v2_pipe.ok || !v3_pipe.ok || !v3_pipe4.ok) {
    return 1;
  }
  const bool scan_identical =
      v2_pipe.report == v3_pipe.report && v3_pipe.report == v3_pipe4.report;
  const double scan_speedup = v3_pipe.millis > 0 ? v2_pipe.millis / v3_pipe.millis : 0;
  std::printf("scan (projected ts|op): v2 %.1f ms, v3 %.1f ms (%.2fx), reports %s\n",
              v2_pipe.millis, v3_pipe.millis, scan_speedup,
              scan_identical ? "identical" : "DIFFER");

  // --- full-decode identity: every field of every record ---------------
  const ScanResult v2_scan = ScanBest(*v2_reader, kScanReps);
  const ScanResult v3_scan = ScanBest(*v3_reader, kScanReps);
  const ScanResult lz_scan = ScanBest(*lz_reader, kScanReps);
  if (!v2_scan.ok || !v3_scan.ok || !lz_scan.ok) {
    std::fprintf(stderr, "error: full-decode scan failed\n");
    return 1;
  }
  const bool decode_identical = v2_scan.digest == v3_scan.digest &&
                                v2_scan.digest == lz_scan.digest &&
                                v2_scan.records == v3_scan.records &&
                                v2_scan.records == lz_scan.records;
  const double decode_speedup = v3_scan.millis > 0 ? v2_scan.millis / v3_scan.millis : 0;
  std::printf("full decode: v2 %.1f ms, v3 %.1f ms (%.2fx), v3+lz %.1f ms, records %s\n",
              v2_scan.millis, v3_scan.millis, decode_speedup, lz_scan.millis,
              decode_identical ? "identical" : "DIFFER");

  // --- selective gate: a 2%-of-the-trace window ------------------------
  const SimTime span = trace_end - trace_begin;
  const SimTime window_begin = trace_begin + span * 60 / 100;
  const SimTime window_end = trace_begin + span * 62 / 100;
  const QueryRun v3_query = RunQuery(*v3_reader, window_begin, window_end, 1);
  const QueryRun v3_query4 = RunQuery(*v3_reader, window_begin, window_end, 4);
  const QueryRun v2_query = RunQuery(*v2_reader, window_begin, window_end, 1);
  if (!v3_query.ok || !v3_query4.ok || !v2_query.ok) {
    return 1;
  }
  const bool query_identical =
      v3_query.result == v2_query.result && v3_query.report == v3_query4.report;
  const double chunk_fraction =
      static_cast<double>(v3_query.stats.chunks) / v3_reader->chunk_count();
  const double byte_fraction =
      static_cast<double>(v3_query.stats.encoded_bytes) / v3_reader->payload_bytes();
  std::printf("selective: decoded %llu of %zu chunks (%.1f%%), %llu of %llu bytes "
              "(%.1f%%), reports %s\n",
              static_cast<unsigned long long>(v3_query.stats.chunks),
              v3_reader->chunk_count(), chunk_fraction * 100,
              static_cast<unsigned long long>(v3_query.stats.encoded_bytes),
              static_cast<unsigned long long>(v3_reader->payload_bytes()),
              byte_fraction * 100, query_identical ? "identical" : "DIFFER");

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(lz_path.c_str());

  // --- gates -----------------------------------------------------------
  // Identity is enforced unconditionally; the wall-clock and fraction
  // gates are only meaningful at full scale, so smoke runs mark them
  // skipped rather than vacuously passed.
  const bool identities_ok = scan_identical && decode_identical && query_identical;
  std::string scan_status;
  std::string size_status;
  std::string selective_status;
  bool gate_failed = false;
  if (smoke) {
    scan_status = "skipped: smoke run";
    selective_status = "skipped: smoke run";
  } else {
    scan_status = scan_speedup >= kScanSpeedupThreshold ? "pass" : "fail";
    selective_status = chunk_fraction < kSelectiveFractionThreshold &&
                               byte_fraction < kSelectiveFractionThreshold
                           ? "pass"
                           : "fail";
  }
  // The size ratio is scale-independent enough to gate even in smoke.
  size_status = size_ratio <= kSizeRatioThreshold ? "pass" : "fail";
  gate_failed = scan_status == "fail" || size_status == "fail" ||
                selective_status == "fail";
  std::printf("scan gate (>=%.1fx): %s\n", kScanSpeedupThreshold, scan_status.c_str());
  std::printf("size gate (<=%.2fx): %s\n", kSizeRatioThreshold, size_status.c_str());
  std::printf("selective gate (<%.0f%% chunks and bytes): %s\n",
              kSelectiveFractionThreshold * 100, selective_status.c_str());

  std::FILE* json = std::fopen("BENCH_trace_query.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"micro_trace_query\",\n");
    std::fprintf(json, "  \"records\": %zu,\n", record_count);
    std::fprintf(json, "  \"chunk_records\": %u,\n", kChunkRecords);
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", cores);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json, "  \"v2_bytes\": %llu,\n",
                 static_cast<unsigned long long>(v2_bytes));
    std::fprintf(json, "  \"v3_bytes\": %llu,\n",
                 static_cast<unsigned long long>(v3_bytes));
    std::fprintf(json, "  \"v3_bytes_per_record\": %.3f,\n",
                 static_cast<double>(v3_bytes) / record_count);
    std::fprintf(json,
                 "  \"v3_lz\": {\"bytes\": %llu, \"bytes_per_record\": %.3f, "
                 "\"full_decode_millis\": %.1f},\n",
                 static_cast<unsigned long long>(lz_bytes),
                 static_cast<double>(lz_bytes) / record_count, lz_scan.millis);
    std::fprintf(json,
                 "  \"scan\": {\"fields\": \"timestamp|op\", \"v2_millis\": %.1f, "
                 "\"v3_millis\": %.1f, \"speedup\": %.3f, \"identical\": %s},\n",
                 v2_pipe.millis, v3_pipe.millis, scan_speedup,
                 scan_identical ? "true" : "false");
    std::fprintf(json,
                 "  \"full_decode\": {\"v2_millis\": %.1f, \"v3_millis\": %.1f, "
                 "\"speedup\": %.3f, \"identical\": %s},\n",
                 v2_scan.millis, v3_scan.millis, decode_speedup,
                 decode_identical ? "true" : "false");
    std::fprintf(json,
                 "  \"selective\": {\"chunks_decoded\": %llu, \"chunks_skipped\": %llu, "
                 "\"chunk_fraction\": %.4f, \"bytes_decoded\": %llu, "
                 "\"byte_fraction\": %.4f, \"identical\": %s},\n",
                 static_cast<unsigned long long>(v3_query.stats.chunks),
                 static_cast<unsigned long long>(v3_query.stats.chunks_skipped),
                 chunk_fraction,
                 static_cast<unsigned long long>(v3_query.stats.encoded_bytes),
                 byte_fraction, query_identical ? "true" : "false");
    std::fprintf(json, "  \"gates\": {\n");
    std::fprintf(json,
                 "    \"scan\": {\"threshold\": %.1f, \"speedup\": %.3f, "
                 "\"status\": \"%s\"},\n",
                 kScanSpeedupThreshold, scan_speedup, scan_status.c_str());
    std::fprintf(json,
                 "    \"size\": {\"threshold\": %.2f, \"ratio\": %.4f, "
                 "\"status\": \"%s\"},\n",
                 kSizeRatioThreshold, size_ratio, size_status.c_str());
    std::fprintf(json,
                 "    \"selective\": {\"threshold\": %.2f, \"chunk_fraction\": %.4f, "
                 "\"byte_fraction\": %.4f, \"status\": \"%s\"}\n",
                 kSelectiveFractionThreshold, chunk_fraction, byte_fraction,
                 selective_status.c_str());
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_trace_query.json\n");
  }

  if (!identities_ok) {
    std::fprintf(stderr, "error: v2/v3 or serial/parallel outputs differ\n");
    return 1;
  }
  return gate_failed ? 1 : 0;
}
