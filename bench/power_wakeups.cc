// E19 — Sections 2.1/5.3: CPU wakeup reduction from round_jiffies,
// deferrable timers, dynticks, and slack-window batching.
//
// The power proxy is the number of timer interrupts / CPU wakeups over the
// 30-minute idle-desktop trace. The ablations mirror the kernel history:
// 2.6.20 round_jiffies, 2.6.21 dynticks, 2.6.22 deferrable, and the
// Section 5.3 generalisation (explicit slack windows batched by the timer
// service).

#include <memory>

#include "bench/bench_common.h"
#include "src/adaptive/interfaces.h"
#include "src/adaptive/slack.h"
#include "src/workloads/linux_workloads.h"

namespace tempo {
namespace {

struct Ablation {
  const char* name;
  WorkloadOptions options;
};

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Power/wakeups ablation (Sections 2.1, 5.3)",
              "timer interrupts and CPU wakeups on the Idle workload");
  PrintPaperNote(
      "an otherwise idle CPU has to wake up frequently to serve expiring "
      "timers; round_jiffies batches imprecise timers on whole seconds, "
      "dynticks removes idle ticks entirely, deferrable timers stop waking "
      "the idle CPU");

  WorkloadOptions base = BenchOptions();
  // round_jiffies and deferrable only matter once dynticks removed the
  // unconditional tick, so the ladder applies dynticks first.
  Ablation ablations[4] = {
      {"periodic tick (baseline)", base},
      {"+ dynticks", base},
      {"+ dynticks + round_jiffies", base},
      {"+ dynticks + round + defer", base},
  };
  ablations[1].options.dynticks = true;
  ablations[2].options.dynticks = true;
  ablations[2].options.round_jiffies = true;
  ablations[3].options.dynticks = true;
  ablations[3].options.round_jiffies = true;
  ablations[3].options.deferrable = true;

  std::printf("%-28s %14s %14s %14s\n", "configuration", "ticks", "skipped",
              "timer irqs");
  uint64_t baseline_irqs = 0;
  for (const Ablation& ablation : ablations) {
    TraceRun run = RunLinuxIdle(ablation.options);
    const uint64_t irqs = run.sim->cpu().timer_interrupts();
    if (baseline_irqs == 0) {
      baseline_irqs = irqs;
    }
    std::printf("%-28s %14llu %14llu %11llu (%5.1f%%)\n", ablation.name,
                static_cast<unsigned long long>(run.linux_kernel->ticks_serviced()),
                static_cast<unsigned long long>(run.linux_kernel->ticks_skipped()),
                static_cast<unsigned long long>(irqs),
                100.0 * static_cast<double>(irqs) / static_cast<double>(baseline_irqs));
  }

  // Section 5.3: the slack-window generalisation, shown on a synthetic set
  // of background housekeeping tickers.
  std::printf("\nslack batching (Section 5.3), 12 housekeeping tickers, 30 min:\n");
  {
    Simulator sim(3);
    SimTimerService service(&sim);
    // Exact periodic tickers: every expiry is its own wakeup.
    std::vector<std::unique_ptr<PeriodicTicker>> exact;
    static constexpr SimDuration kPeriods[] = {5 * kSecond, 10 * kSecond, 30 * kSecond,
                                               60 * kSecond};
    for (int i = 0; i < 12; ++i) {
      exact.push_back(std::make_unique<PeriodicTicker>(&service, kPeriods[i % 4], [] {}));
      exact.back()->Start();
    }
    sim.RunUntil(30 * kMinute);
    std::printf("  exact periods:    %8llu wakeups\n",
                static_cast<unsigned long long>(service.arms()));
  }
  {
    Simulator sim(3);
    SimTimerService base_service(&sim);
    BatchingTimerService batching(&base_service);
    std::vector<std::unique_ptr<SlackTicker>> loose;
    static constexpr SimDuration kPeriods[] = {5 * kSecond, 10 * kSecond, 30 * kSecond,
                                               60 * kSecond};
    for (int i = 0; i < 12; ++i) {
      const SimDuration period = kPeriods[i % 4];
      loose.push_back(
          std::make_unique<SlackTicker>(&batching, period, period / 2, [] {}));
      loose.back()->Start();
    }
    sim.RunUntil(30 * kMinute);
    std::printf("  50%% slack, batched: %6llu wakeups for %llu tick requests\n",
                static_cast<unsigned long long>(batching.wakeups_scheduled()),
                static_cast<unsigned long long>(batching.requests()));
  }
  return 0;
}
