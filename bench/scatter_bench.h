// Shared driver for the Figure 8-11 benches: one workload, Linux and Vista
// panes, expiry/cancellation percentage vs timeout value.

#ifndef TEMPO_BENCH_SCATTER_BENCH_H_
#define TEMPO_BENCH_SCATTER_BENCH_H_

#include <functional>

#include "bench/bench_common.h"
#include "src/analysis/render.h"
#include "src/analysis/scatter.h"

namespace tempo {

inline int RunScatterBench(const std::string& figure, const std::string& workload,
                           const std::string& paper_note,
                           const std::function<TraceRun(const WorkloadOptions&)>& linux_run,
                           const std::function<TraceRun(const WorkloadOptions&)>& vista_run) {
  PrintHeader(figure, "expiry/cancellation time as % of set timeout — " + workload);
  PrintPaperNote(paper_note);

  const WorkloadOptions options = BenchOptions();
  struct Pane {
    const char* name;
    TraceRun run;
  };
  Pane panes[2] = {{"Linux", linux_run(options)}, {"Vista", vista_run(options)}};
  for (Pane& pane : panes) {
    ScatterOptions scatter_options;
    // The figures filter the X/icewm select-loop timers from Linux.
    auto x = pane.run.pids.find("Xorg");
    auto wm = pane.run.pids.find("icewm");
    if (x != pane.run.pids.end()) {
      scatter_options.exclude_pids.insert(x->second);
    }
    if (wm != pane.run.pids.end()) {
      scatter_options.exclude_pids.insert(wm->second);
    }
    const auto points = ComputeScatter(pane.run.records, scatter_options);
    std::printf("--- %s (%s) ---\n%s\n", pane.name, workload.c_str(),
                RenderScatter(points).c_str());
    std::printf("columns:\n%s\n", ScatterColumns(points).c_str());
  }
  return 0;
}

}  // namespace tempo

#endif  // TEMPO_BENCH_SCATTER_BENCH_H_
