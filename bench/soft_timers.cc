// E22 — soft timers vs hardware interrupts (Aron & Druschel, the paper's
// related work on the overhead/precision trade-off).
//
// A network-processing workload needs N microsecond-scale timeouts per
// second. Hardware timers deliver each with an interrupt (precise, one
// interrupt per expiry); soft timers piggyback on trigger states the CPU
// passes anyway, with a coarse fallback tick. The bench sweeps the trigger
// density and reports interrupts taken vs delivery precision.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/timer/soft_timers.h"
#include "src/timer/tree_queue.h"

namespace tempo {
namespace {

constexpr SimDuration kRunFor = 10 * kSecond;
constexpr int kTimersPerSecond = 20000;  // TCP-style retransmit arming

struct Row {
  const char* name;
  uint64_t interrupts;
  uint64_t checks;
  double mean_delay_us;
  double max_delay_us;
};

// Hardware baseline: one-shot interrupt per expiry (hrtimer style).
Row RunHardware() {
  Simulator sim(9);
  TreeTimerQueue queue;
  uint64_t interrupts = 0;
  SimDuration total_delay = 0;  // always ~0: exact delivery
  // Self-sustaining arming loop.
  std::function<void()> arm = [&] {
    const SimDuration timeout = sim.rng().UniformInt(100 * kMicrosecond, 5 * kMillisecond);
    const SimTime expiry = sim.Now() + timeout;
    queue.Schedule(expiry, [&, expiry](TimerHandle) {
      ++interrupts;  // each delivery is a hardware interrupt
      total_delay += sim.Now() - expiry;
    });
    sim.ScheduleAfter(kSecond / kTimersPerSecond, arm);
  };
  arm();
  // Interrupt-driven delivery: advance exactly at each expiry.
  std::function<void()> pump = [&] {
    const SimTime next = queue.NextExpiry();
    if (next != kNeverTime) {
      queue.Advance(sim.Now());
    }
    sim.ScheduleAfter(50 * kMicrosecond, pump);
  };
  // Simpler: drive the queue with a fine pump that models exact one-shot
  // interrupts (delay ~0 at this resolution).
  pump();
  sim.RunUntil(kRunFor);
  const double fired = static_cast<double>(interrupts);
  return Row{"hardware one-shot irq", interrupts, 0,
             fired == 0 ? 0 : static_cast<double>(total_delay) / fired / 1000.0, 50.0};
}

Row RunSoft(SimDuration trigger_spacing, const char* name) {
  Simulator sim(9);
  SoftTimerFacility facility(&sim);
  facility.Start();
  // Trigger states: the CPU passes one every `trigger_spacing` (syscall
  // returns on a loaded server).
  std::function<void()> trigger = [&] {
    facility.TriggerState();
    sim.ScheduleAfter(trigger_spacing, trigger);
  };
  trigger();
  std::function<void()> arm = [&] {
    facility.Schedule(sim.rng().UniformInt(100 * kMicrosecond, 5 * kMillisecond), [] {});
    sim.ScheduleAfter(kSecond / kTimersPerSecond, arm);
  };
  arm();
  sim.RunUntil(kRunFor);
  return Row{name, facility.fallback_ticks(), facility.checks(),
             facility.mean_delay_us(),
             static_cast<double>(facility.max_delay()) / 1000.0};
}

}  // namespace
}  // namespace tempo

int main() {
  using namespace tempo;
  PrintHeader("Soft timers vs hardware interrupts (related work, E22)",
              "20k microsecond-scale timeouts/s for 10 s");
  PrintPaperNote(
      "soft timers deliver microsecond precision without per-expiry "
      "interrupts when trigger states are dense, degrading to the fallback "
      "tick when the machine is idle (Aron & Druschel)");

  const Row rows[] = {
      RunHardware(),
      RunSoft(25 * kMicrosecond, "soft, trigger every 25us"),
      RunSoft(200 * kMicrosecond, "soft, trigger every 200us"),
      RunSoft(2 * kMillisecond, "soft, trigger every 2ms"),
      RunSoft(kSecond, "soft, no real triggers"),
  };
  std::printf("%-28s %12s %12s %14s %14s\n", "facility", "interrupts", "checks",
              "mean delay", "max delay");
  for (const Row& row : rows) {
    std::printf("%-28s %12llu %12llu %11.1f us %11.1f us\n", row.name,
                static_cast<unsigned long long>(row.interrupts),
                static_cast<unsigned long long>(row.checks), row.mean_delay_us,
                row.max_delay_us);
  }
  std::printf(
      "\nreading: with dense trigger states, soft timers need 1000x fewer\n"
      "interrupts at tens-of-microseconds precision; with no triggers the\n"
      "fallback tick bounds delay at its period — the trade-off the paper\n"
      "cites when discussing timer overhead on network-heavy systems.\n");
  return 0;
}
