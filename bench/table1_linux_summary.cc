// E2 — Table 1: Linux trace summary across the four workloads.

#include "bench/bench_common.h"
#include "src/analysis/render.h"
#include "src/analysis/summary.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Table 1", "Linux trace summary (Idle / Skype / Firefox / Webserver)");
  PrintPaperNote(
      "timers 47/74/95/103; concurrency 25/32/36/31; accesses "
      "165345/535686/3948490/283634; user >> kernel except Webserver; "
      "canceled > expired on Linux");

  const WorkloadOptions options = BenchOptions();
  std::vector<TraceSummary> summaries;
  for (TraceRun& run : RunAllLinuxWorkloads(options)) {
    summaries.push_back(Summarize(run.records, run.label));
  }
  std::printf("%s", RenderSummaryTable(summaries).c_str());

  std::printf("\nshape checks:\n");
  const TraceSummary& idle = summaries[0];
  const TraceSummary& web = summaries[3];
  std::printf("  idle user-space > kernel:        %s (%llu vs %llu)\n",
              idle.user_space > idle.kernel ? "yes" : "NO",
              static_cast<unsigned long long>(idle.user_space),
              static_cast<unsigned long long>(idle.kernel));
  std::printf("  webserver kernel > user-space:   %s (%llu vs %llu)\n",
              web.kernel > web.user_space ? "yes" : "NO",
              static_cast<unsigned long long>(web.kernel),
              static_cast<unsigned long long>(web.user_space));
  bool canceled_dominates = true;
  for (const TraceSummary& s : summaries) {
    canceled_dominates = canceled_dominates && s.canceled > s.expired / 2;
  }
  std::printf("  cancellations prominent (Linux): %s\n", canceled_dominates ? "yes" : "NO");
  return 0;
}
