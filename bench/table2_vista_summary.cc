// E3 — Table 2: Vista trace summary across the four workloads.

#include "bench/bench_common.h"
#include "src/analysis/render.h"
#include "src/analysis/summary.h"
#include "src/workloads/vista_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Table 2", "Vista trace summary (Idle / Skype / Firefox / Webserver)");
  PrintPaperNote(
      "timers 144/219/228/135; accesses 270691/2169896/5202502/275786; "
      "expired >> canceled on Vista; Firefox the heaviest workload");

  const WorkloadOptions options = BenchOptions();
  std::vector<TraceSummary> summaries;
  for (TraceRun& run : RunAllVistaWorkloads(options)) {
    summaries.push_back(Summarize(run.records, run.label));
  }
  std::printf("%s", RenderSummaryTable(summaries).c_str());

  std::printf("\nshape checks:\n");
  bool expiry_dominates = true;
  for (const TraceSummary& s : summaries) {
    expiry_dominates = expiry_dominates && s.expired > s.canceled;
  }
  std::printf("  expiries dominate cancellations: %s\n", expiry_dominates ? "yes" : "NO");
  std::printf("  Firefox heaviest:                %s\n",
              summaries[2].accesses > summaries[0].accesses &&
                      summaries[2].accesses > summaries[1].accesses &&
                      summaries[2].accesses > summaries[3].accesses
                  ? "yes"
                  : "NO");
  std::printf("  Webserver resembles Idle:        %s (%llu vs %llu accesses)\n",
              summaries[3].accesses < 2 * summaries[0].accesses ? "yes" : "NO",
              static_cast<unsigned long long>(summaries[3].accesses),
              static_cast<unsigned long long>(summaries[0].accesses));
  return 0;
}
