// E14 — Table 3: origins and classification of frequent Linux timeout
// values (Idle + Webserver, as in the paper's discussion).

#include "bench/bench_common.h"
#include "src/analysis/origins.h"
#include "src/analysis/render.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;
  PrintHeader("Table 3", "origins and classification of frequent Linux timeout values");
  PrintPaperNote(
      "0.004 block I/O timeout; 0.04 sockets; 0.204 TCP RTO timeout; 0.248 "
      "USB poll periodic; 0.5 clocksource watchdog; 1 workqueue periodic + "
      "apache event loop timeout; 2 workqueue/ARP/e1000 periodic; 3 sockets; "
      "4 ARP; 5 writeback/init periodic + ARP timeout; 8 ARP flush; 15 "
      "apache poll; 30 IDE timeout; 7200 TCP keepalive");

  const WorkloadOptions options = BenchOptions();
  for (const char* which : {"Idle", "Webserver"}) {
    TraceRun run = std::string(which) == "Idle" ? RunLinuxIdle(options)
                                                : RunLinuxWebserver(options);
    OriginOptions origin_options;
    origin_options.min_percent = 0.2;
    const auto rows = ComputeOrigins(run.records, run.callsites(), origin_options);
    std::printf("--- %s ---\n%s\n", which, RenderOrigins(rows).c_str());
  }
  return 0;
}
