file(REMOVE_RECURSE
  "../bench/adaptive_select"
  "../bench/adaptive_select.pdb"
  "CMakeFiles/adaptive_select.dir/adaptive_select.cc.o"
  "CMakeFiles/adaptive_select.dir/adaptive_select.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
