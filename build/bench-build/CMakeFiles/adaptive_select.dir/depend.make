# Empty dependencies file for adaptive_select.
# This may be replaced when dependencies are built.
