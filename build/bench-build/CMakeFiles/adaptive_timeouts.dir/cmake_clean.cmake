file(REMOVE_RECURSE
  "../bench/adaptive_timeouts"
  "../bench/adaptive_timeouts.pdb"
  "CMakeFiles/adaptive_timeouts.dir/adaptive_timeouts.cc.o"
  "CMakeFiles/adaptive_timeouts.dir/adaptive_timeouts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
