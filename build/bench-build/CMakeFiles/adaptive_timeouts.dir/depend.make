# Empty dependencies file for adaptive_timeouts.
# This may be replaced when dependencies are built.
