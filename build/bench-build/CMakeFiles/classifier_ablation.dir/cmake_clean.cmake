file(REMOVE_RECURSE
  "../bench/classifier_ablation"
  "../bench/classifier_ablation.pdb"
  "CMakeFiles/classifier_ablation.dir/classifier_ablation.cc.o"
  "CMakeFiles/classifier_ablation.dir/classifier_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
