file(REMOVE_RECURSE
  "../bench/dispatcher_ablation"
  "../bench/dispatcher_ablation.pdb"
  "CMakeFiles/dispatcher_ablation.dir/dispatcher_ablation.cc.o"
  "CMakeFiles/dispatcher_ablation.dir/dispatcher_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatcher_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
