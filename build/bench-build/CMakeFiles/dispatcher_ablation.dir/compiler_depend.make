# Empty compiler generated dependencies file for dispatcher_ablation.
# This may be replaced when dependencies are built.
