file(REMOVE_RECURSE
  "../bench/fig01_vista_rates"
  "../bench/fig01_vista_rates.pdb"
  "CMakeFiles/fig01_vista_rates.dir/fig01_vista_rates.cc.o"
  "CMakeFiles/fig01_vista_rates.dir/fig01_vista_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_vista_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
