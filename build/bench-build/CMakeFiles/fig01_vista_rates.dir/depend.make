# Empty dependencies file for fig01_vista_rates.
# This may be replaced when dependencies are built.
