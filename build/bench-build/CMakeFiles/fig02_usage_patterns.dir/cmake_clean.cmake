file(REMOVE_RECURSE
  "../bench/fig02_usage_patterns"
  "../bench/fig02_usage_patterns.pdb"
  "CMakeFiles/fig02_usage_patterns.dir/fig02_usage_patterns.cc.o"
  "CMakeFiles/fig02_usage_patterns.dir/fig02_usage_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_usage_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
