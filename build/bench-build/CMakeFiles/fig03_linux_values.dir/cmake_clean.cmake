file(REMOVE_RECURSE
  "../bench/fig03_linux_values"
  "../bench/fig03_linux_values.pdb"
  "CMakeFiles/fig03_linux_values.dir/fig03_linux_values.cc.o"
  "CMakeFiles/fig03_linux_values.dir/fig03_linux_values.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_linux_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
