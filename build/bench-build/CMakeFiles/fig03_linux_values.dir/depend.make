# Empty dependencies file for fig03_linux_values.
# This may be replaced when dependencies are built.
