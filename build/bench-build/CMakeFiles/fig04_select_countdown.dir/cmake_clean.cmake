file(REMOVE_RECURSE
  "../bench/fig04_select_countdown"
  "../bench/fig04_select_countdown.pdb"
  "CMakeFiles/fig04_select_countdown.dir/fig04_select_countdown.cc.o"
  "CMakeFiles/fig04_select_countdown.dir/fig04_select_countdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_select_countdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
