# Empty compiler generated dependencies file for fig04_select_countdown.
# This may be replaced when dependencies are built.
