file(REMOVE_RECURSE
  "../bench/fig05_filtered_values"
  "../bench/fig05_filtered_values.pdb"
  "CMakeFiles/fig05_filtered_values.dir/fig05_filtered_values.cc.o"
  "CMakeFiles/fig05_filtered_values.dir/fig05_filtered_values.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_filtered_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
