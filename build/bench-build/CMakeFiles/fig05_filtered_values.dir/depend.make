# Empty dependencies file for fig05_filtered_values.
# This may be replaced when dependencies are built.
