file(REMOVE_RECURSE
  "../bench/fig06_syscall_values"
  "../bench/fig06_syscall_values.pdb"
  "CMakeFiles/fig06_syscall_values.dir/fig06_syscall_values.cc.o"
  "CMakeFiles/fig06_syscall_values.dir/fig06_syscall_values.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_syscall_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
