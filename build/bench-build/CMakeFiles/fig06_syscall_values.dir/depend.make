# Empty dependencies file for fig06_syscall_values.
# This may be replaced when dependencies are built.
