file(REMOVE_RECURSE
  "../bench/fig07_vista_values"
  "../bench/fig07_vista_values.pdb"
  "CMakeFiles/fig07_vista_values.dir/fig07_vista_values.cc.o"
  "CMakeFiles/fig07_vista_values.dir/fig07_vista_values.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_vista_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
