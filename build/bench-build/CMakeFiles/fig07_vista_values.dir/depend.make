# Empty dependencies file for fig07_vista_values.
# This may be replaced when dependencies are built.
