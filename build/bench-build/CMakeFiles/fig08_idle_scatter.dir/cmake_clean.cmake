file(REMOVE_RECURSE
  "../bench/fig08_idle_scatter"
  "../bench/fig08_idle_scatter.pdb"
  "CMakeFiles/fig08_idle_scatter.dir/fig08_idle_scatter.cc.o"
  "CMakeFiles/fig08_idle_scatter.dir/fig08_idle_scatter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_idle_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
