# Empty compiler generated dependencies file for fig08_idle_scatter.
# This may be replaced when dependencies are built.
