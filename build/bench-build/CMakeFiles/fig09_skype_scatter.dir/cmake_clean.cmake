file(REMOVE_RECURSE
  "../bench/fig09_skype_scatter"
  "../bench/fig09_skype_scatter.pdb"
  "CMakeFiles/fig09_skype_scatter.dir/fig09_skype_scatter.cc.o"
  "CMakeFiles/fig09_skype_scatter.dir/fig09_skype_scatter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_skype_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
