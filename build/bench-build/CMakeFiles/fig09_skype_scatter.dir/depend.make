# Empty dependencies file for fig09_skype_scatter.
# This may be replaced when dependencies are built.
