file(REMOVE_RECURSE
  "../bench/fig10_firefox_scatter"
  "../bench/fig10_firefox_scatter.pdb"
  "CMakeFiles/fig10_firefox_scatter.dir/fig10_firefox_scatter.cc.o"
  "CMakeFiles/fig10_firefox_scatter.dir/fig10_firefox_scatter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_firefox_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
