# Empty compiler generated dependencies file for fig10_firefox_scatter.
# This may be replaced when dependencies are built.
