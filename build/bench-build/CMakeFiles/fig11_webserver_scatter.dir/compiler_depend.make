# Empty compiler generated dependencies file for fig11_webserver_scatter.
# This may be replaced when dependencies are built.
