file(REMOVE_RECURSE
  "../bench/layering_failure"
  "../bench/layering_failure.pdb"
  "CMakeFiles/layering_failure.dir/layering_failure.cc.o"
  "CMakeFiles/layering_failure.dir/layering_failure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layering_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
