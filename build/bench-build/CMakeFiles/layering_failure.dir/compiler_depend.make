# Empty compiler generated dependencies file for layering_failure.
# This may be replaced when dependencies are built.
