file(REMOVE_RECURSE
  "../bench/micro_logging_overhead"
  "../bench/micro_logging_overhead.pdb"
  "CMakeFiles/micro_logging_overhead.dir/micro_logging_overhead.cc.o"
  "CMakeFiles/micro_logging_overhead.dir/micro_logging_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_logging_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
