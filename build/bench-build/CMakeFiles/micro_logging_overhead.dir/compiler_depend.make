# Empty compiler generated dependencies file for micro_logging_overhead.
# This may be replaced when dependencies are built.
