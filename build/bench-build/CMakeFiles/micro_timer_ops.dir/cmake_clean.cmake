file(REMOVE_RECURSE
  "../bench/micro_timer_ops"
  "../bench/micro_timer_ops.pdb"
  "CMakeFiles/micro_timer_ops.dir/micro_timer_ops.cc.o"
  "CMakeFiles/micro_timer_ops.dir/micro_timer_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_timer_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
