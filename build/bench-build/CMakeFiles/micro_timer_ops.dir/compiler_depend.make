# Empty compiler generated dependencies file for micro_timer_ops.
# This may be replaced when dependencies are built.
