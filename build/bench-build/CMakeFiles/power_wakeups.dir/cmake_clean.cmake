file(REMOVE_RECURSE
  "../bench/power_wakeups"
  "../bench/power_wakeups.pdb"
  "CMakeFiles/power_wakeups.dir/power_wakeups.cc.o"
  "CMakeFiles/power_wakeups.dir/power_wakeups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_wakeups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
