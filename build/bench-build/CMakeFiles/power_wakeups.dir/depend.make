# Empty dependencies file for power_wakeups.
# This may be replaced when dependencies are built.
