file(REMOVE_RECURSE
  "../bench/soft_timers"
  "../bench/soft_timers.pdb"
  "CMakeFiles/soft_timers.dir/soft_timers.cc.o"
  "CMakeFiles/soft_timers.dir/soft_timers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
