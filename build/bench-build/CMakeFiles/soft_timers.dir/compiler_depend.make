# Empty compiler generated dependencies file for soft_timers.
# This may be replaced when dependencies are built.
