# Empty dependencies file for table1_linux_summary.
# This may be replaced when dependencies are built.
