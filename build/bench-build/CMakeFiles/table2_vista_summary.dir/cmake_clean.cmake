file(REMOVE_RECURSE
  "../bench/table2_vista_summary"
  "../bench/table2_vista_summary.pdb"
  "CMakeFiles/table2_vista_summary.dir/table2_vista_summary.cc.o"
  "CMakeFiles/table2_vista_summary.dir/table2_vista_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vista_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
