# Empty compiler generated dependencies file for table2_vista_summary.
# This may be replaced when dependencies are built.
