file(REMOVE_RECURSE
  "../bench/table3_origins"
  "../bench/table3_origins.pdb"
  "CMakeFiles/table3_origins.dir/table3_origins.cc.o"
  "CMakeFiles/table3_origins.dir/table3_origins.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_origins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
