# Empty compiler generated dependencies file for table3_origins.
# This may be replaced when dependencies are built.
