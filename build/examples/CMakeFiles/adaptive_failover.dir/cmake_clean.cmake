file(REMOVE_RECURSE
  "CMakeFiles/adaptive_failover.dir/adaptive_failover.cpp.o"
  "CMakeFiles/adaptive_failover.dir/adaptive_failover.cpp.o.d"
  "adaptive_failover"
  "adaptive_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
