# Empty compiler generated dependencies file for adaptive_failover.
# This may be replaced when dependencies are built.
