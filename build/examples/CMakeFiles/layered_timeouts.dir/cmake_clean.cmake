file(REMOVE_RECURSE
  "CMakeFiles/layered_timeouts.dir/layered_timeouts.cpp.o"
  "CMakeFiles/layered_timeouts.dir/layered_timeouts.cpp.o.d"
  "layered_timeouts"
  "layered_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
