# Empty dependencies file for layered_timeouts.
# This may be replaced when dependencies are built.
