file(REMOVE_RECURSE
  "CMakeFiles/media_dispatcher.dir/media_dispatcher.cpp.o"
  "CMakeFiles/media_dispatcher.dir/media_dispatcher.cpp.o.d"
  "media_dispatcher"
  "media_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
