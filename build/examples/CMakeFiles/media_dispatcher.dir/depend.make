# Empty dependencies file for media_dispatcher.
# This may be replaced when dependencies are built.
