
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/power_savings.cpp" "examples/CMakeFiles/power_savings.dir/power_savings.cpp.o" "gcc" "examples/CMakeFiles/power_savings.dir/power_savings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tempo_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/tempo_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/osvista/CMakeFiles/tempo_osvista.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tempo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/oslinux/CMakeFiles/tempo_oslinux.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
