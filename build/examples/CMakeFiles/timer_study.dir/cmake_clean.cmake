file(REMOVE_RECURSE
  "CMakeFiles/timer_study.dir/timer_study.cpp.o"
  "CMakeFiles/timer_study.dir/timer_study.cpp.o.d"
  "timer_study"
  "timer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
