# Empty dependencies file for timer_study.
# This may be replaced when dependencies are built.
