
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/adaptive_timeout.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/adaptive_timeout.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/adaptive_timeout.cc.o.d"
  "/root/repo/src/adaptive/dependency.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/dependency.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/dependency.cc.o.d"
  "/root/repo/src/adaptive/distribution.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/distribution.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/distribution.cc.o.d"
  "/root/repo/src/adaptive/interfaces.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/interfaces.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/interfaces.cc.o.d"
  "/root/repo/src/adaptive/phi_accrual.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/phi_accrual.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/phi_accrual.cc.o.d"
  "/root/repo/src/adaptive/slack.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/slack.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/slack.cc.o.d"
  "/root/repo/src/adaptive/timer_service.cc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/timer_service.cc.o" "gcc" "src/adaptive/CMakeFiles/tempo_adaptive.dir/timer_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oslinux/CMakeFiles/tempo_oslinux.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
