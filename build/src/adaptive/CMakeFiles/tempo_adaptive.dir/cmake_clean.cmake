file(REMOVE_RECURSE
  "CMakeFiles/tempo_adaptive.dir/adaptive_timeout.cc.o"
  "CMakeFiles/tempo_adaptive.dir/adaptive_timeout.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/dependency.cc.o"
  "CMakeFiles/tempo_adaptive.dir/dependency.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/distribution.cc.o"
  "CMakeFiles/tempo_adaptive.dir/distribution.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/interfaces.cc.o"
  "CMakeFiles/tempo_adaptive.dir/interfaces.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/phi_accrual.cc.o"
  "CMakeFiles/tempo_adaptive.dir/phi_accrual.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/slack.cc.o"
  "CMakeFiles/tempo_adaptive.dir/slack.cc.o.d"
  "CMakeFiles/tempo_adaptive.dir/timer_service.cc.o"
  "CMakeFiles/tempo_adaptive.dir/timer_service.cc.o.d"
  "libtempo_adaptive.a"
  "libtempo_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
