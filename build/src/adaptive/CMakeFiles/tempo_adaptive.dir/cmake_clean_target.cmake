file(REMOVE_RECURSE
  "libtempo_adaptive.a"
)
