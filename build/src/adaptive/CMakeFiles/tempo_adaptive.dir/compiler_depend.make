# Empty compiler generated dependencies file for tempo_adaptive.
# This may be replaced when dependencies are built.
