
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/classify.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/classify.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/classify.cc.o.d"
  "/root/repo/src/analysis/histogram.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/histogram.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/histogram.cc.o.d"
  "/root/repo/src/analysis/lifetimes.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/lifetimes.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/lifetimes.cc.o.d"
  "/root/repo/src/analysis/origins.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/origins.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/origins.cc.o.d"
  "/root/repo/src/analysis/provenance.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/provenance.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/provenance.cc.o.d"
  "/root/repo/src/analysis/rates.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/rates.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/rates.cc.o.d"
  "/root/repo/src/analysis/render.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/render.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/render.cc.o.d"
  "/root/repo/src/analysis/scatter.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/scatter.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/scatter.cc.o.d"
  "/root/repo/src/analysis/summary.cc" "src/analysis/CMakeFiles/tempo_analysis.dir/summary.cc.o" "gcc" "src/analysis/CMakeFiles/tempo_analysis.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/oslinux/CMakeFiles/tempo_oslinux.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
