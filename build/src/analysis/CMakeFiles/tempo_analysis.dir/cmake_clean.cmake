file(REMOVE_RECURSE
  "CMakeFiles/tempo_analysis.dir/classify.cc.o"
  "CMakeFiles/tempo_analysis.dir/classify.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/histogram.cc.o"
  "CMakeFiles/tempo_analysis.dir/histogram.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/lifetimes.cc.o"
  "CMakeFiles/tempo_analysis.dir/lifetimes.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/origins.cc.o"
  "CMakeFiles/tempo_analysis.dir/origins.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/provenance.cc.o"
  "CMakeFiles/tempo_analysis.dir/provenance.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/rates.cc.o"
  "CMakeFiles/tempo_analysis.dir/rates.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/render.cc.o"
  "CMakeFiles/tempo_analysis.dir/render.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/scatter.cc.o"
  "CMakeFiles/tempo_analysis.dir/scatter.cc.o.d"
  "CMakeFiles/tempo_analysis.dir/summary.cc.o"
  "CMakeFiles/tempo_analysis.dir/summary.cc.o.d"
  "libtempo_analysis.a"
  "libtempo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
