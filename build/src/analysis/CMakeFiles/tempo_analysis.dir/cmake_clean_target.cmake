file(REMOVE_RECURSE
  "libtempo_analysis.a"
)
