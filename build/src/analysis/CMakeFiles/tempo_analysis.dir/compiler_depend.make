# Empty compiler generated dependencies file for tempo_analysis.
# This may be replaced when dependencies are built.
