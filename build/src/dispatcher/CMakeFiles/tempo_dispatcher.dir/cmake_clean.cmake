file(REMOVE_RECURSE
  "CMakeFiles/tempo_dispatcher.dir/dispatcher.cc.o"
  "CMakeFiles/tempo_dispatcher.dir/dispatcher.cc.o.d"
  "libtempo_dispatcher.a"
  "libtempo_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
