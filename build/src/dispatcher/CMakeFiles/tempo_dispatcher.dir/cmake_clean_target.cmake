file(REMOVE_RECURSE
  "libtempo_dispatcher.a"
)
