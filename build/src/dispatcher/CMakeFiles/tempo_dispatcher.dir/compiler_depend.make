# Empty compiler generated dependencies file for tempo_dispatcher.
# This may be replaced when dependencies are built.
