
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dhcp.cc" "src/net/CMakeFiles/tempo_net.dir/dhcp.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/dhcp.cc.o.d"
  "/root/repo/src/net/fileaccess.cc" "src/net/CMakeFiles/tempo_net.dir/fileaccess.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/fileaccess.cc.o.d"
  "/root/repo/src/net/http.cc" "src/net/CMakeFiles/tempo_net.dir/http.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/http.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/tempo_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/network.cc.o.d"
  "/root/repo/src/net/resolver.cc" "src/net/CMakeFiles/tempo_net.dir/resolver.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/resolver.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/net/CMakeFiles/tempo_net.dir/rpc.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/rpc.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/tempo_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/tempo_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oslinux/CMakeFiles/tempo_oslinux.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
