file(REMOVE_RECURSE
  "CMakeFiles/tempo_net.dir/dhcp.cc.o"
  "CMakeFiles/tempo_net.dir/dhcp.cc.o.d"
  "CMakeFiles/tempo_net.dir/fileaccess.cc.o"
  "CMakeFiles/tempo_net.dir/fileaccess.cc.o.d"
  "CMakeFiles/tempo_net.dir/http.cc.o"
  "CMakeFiles/tempo_net.dir/http.cc.o.d"
  "CMakeFiles/tempo_net.dir/network.cc.o"
  "CMakeFiles/tempo_net.dir/network.cc.o.d"
  "CMakeFiles/tempo_net.dir/resolver.cc.o"
  "CMakeFiles/tempo_net.dir/resolver.cc.o.d"
  "CMakeFiles/tempo_net.dir/rpc.cc.o"
  "CMakeFiles/tempo_net.dir/rpc.cc.o.d"
  "CMakeFiles/tempo_net.dir/tcp.cc.o"
  "CMakeFiles/tempo_net.dir/tcp.cc.o.d"
  "libtempo_net.a"
  "libtempo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
