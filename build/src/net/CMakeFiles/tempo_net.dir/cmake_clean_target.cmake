file(REMOVE_RECURSE
  "libtempo_net.a"
)
