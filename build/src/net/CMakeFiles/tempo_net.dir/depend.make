# Empty dependencies file for tempo_net.
# This may be replaced when dependencies are built.
