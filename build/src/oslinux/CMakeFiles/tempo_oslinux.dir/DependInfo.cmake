
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oslinux/kernel.cc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/kernel.cc.o" "gcc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/kernel.cc.o.d"
  "/root/repo/src/oslinux/subsystems.cc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/subsystems.cc.o" "gcc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/subsystems.cc.o.d"
  "/root/repo/src/oslinux/syscalls.cc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/syscalls.cc.o" "gcc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/syscalls.cc.o.d"
  "/root/repo/src/oslinux/timer_stats.cc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/timer_stats.cc.o" "gcc" "src/oslinux/CMakeFiles/tempo_oslinux.dir/timer_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
