file(REMOVE_RECURSE
  "CMakeFiles/tempo_oslinux.dir/kernel.cc.o"
  "CMakeFiles/tempo_oslinux.dir/kernel.cc.o.d"
  "CMakeFiles/tempo_oslinux.dir/subsystems.cc.o"
  "CMakeFiles/tempo_oslinux.dir/subsystems.cc.o.d"
  "CMakeFiles/tempo_oslinux.dir/syscalls.cc.o"
  "CMakeFiles/tempo_oslinux.dir/syscalls.cc.o.d"
  "CMakeFiles/tempo_oslinux.dir/timer_stats.cc.o"
  "CMakeFiles/tempo_oslinux.dir/timer_stats.cc.o.d"
  "libtempo_oslinux.a"
  "libtempo_oslinux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_oslinux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
