file(REMOVE_RECURSE
  "libtempo_oslinux.a"
)
