# Empty compiler generated dependencies file for tempo_oslinux.
# This may be replaced when dependencies are built.
