file(REMOVE_RECURSE
  "CMakeFiles/tempo_osvista.dir/kernel.cc.o"
  "CMakeFiles/tempo_osvista.dir/kernel.cc.o.d"
  "CMakeFiles/tempo_osvista.dir/userapi.cc.o"
  "CMakeFiles/tempo_osvista.dir/userapi.cc.o.d"
  "libtempo_osvista.a"
  "libtempo_osvista.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_osvista.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
