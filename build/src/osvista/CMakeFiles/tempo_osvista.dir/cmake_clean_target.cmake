file(REMOVE_RECURSE
  "libtempo_osvista.a"
)
