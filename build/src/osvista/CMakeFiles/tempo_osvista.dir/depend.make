# Empty dependencies file for tempo_osvista.
# This may be replaced when dependencies are built.
