file(REMOVE_RECURSE
  "CMakeFiles/tempo_sim.dir/cpu.cc.o"
  "CMakeFiles/tempo_sim.dir/cpu.cc.o.d"
  "CMakeFiles/tempo_sim.dir/event_queue.cc.o"
  "CMakeFiles/tempo_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tempo_sim.dir/process.cc.o"
  "CMakeFiles/tempo_sim.dir/process.cc.o.d"
  "CMakeFiles/tempo_sim.dir/random.cc.o"
  "CMakeFiles/tempo_sim.dir/random.cc.o.d"
  "CMakeFiles/tempo_sim.dir/simulator.cc.o"
  "CMakeFiles/tempo_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tempo_sim.dir/time.cc.o"
  "CMakeFiles/tempo_sim.dir/time.cc.o.d"
  "libtempo_sim.a"
  "libtempo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
