file(REMOVE_RECURSE
  "libtempo_sim.a"
)
