# Empty dependencies file for tempo_sim.
# This may be replaced when dependencies are built.
