
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timer/factory.cc" "src/timer/CMakeFiles/tempo_timer.dir/factory.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/factory.cc.o.d"
  "/root/repo/src/timer/hashed_wheel.cc" "src/timer/CMakeFiles/tempo_timer.dir/hashed_wheel.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/hashed_wheel.cc.o.d"
  "/root/repo/src/timer/heap_queue.cc" "src/timer/CMakeFiles/tempo_timer.dir/heap_queue.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/heap_queue.cc.o.d"
  "/root/repo/src/timer/hierarchical_wheel.cc" "src/timer/CMakeFiles/tempo_timer.dir/hierarchical_wheel.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/hierarchical_wheel.cc.o.d"
  "/root/repo/src/timer/soft_timers.cc" "src/timer/CMakeFiles/tempo_timer.dir/soft_timers.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/soft_timers.cc.o.d"
  "/root/repo/src/timer/tree_queue.cc" "src/timer/CMakeFiles/tempo_timer.dir/tree_queue.cc.o" "gcc" "src/timer/CMakeFiles/tempo_timer.dir/tree_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
