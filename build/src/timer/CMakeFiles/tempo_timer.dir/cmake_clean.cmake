file(REMOVE_RECURSE
  "CMakeFiles/tempo_timer.dir/factory.cc.o"
  "CMakeFiles/tempo_timer.dir/factory.cc.o.d"
  "CMakeFiles/tempo_timer.dir/hashed_wheel.cc.o"
  "CMakeFiles/tempo_timer.dir/hashed_wheel.cc.o.d"
  "CMakeFiles/tempo_timer.dir/heap_queue.cc.o"
  "CMakeFiles/tempo_timer.dir/heap_queue.cc.o.d"
  "CMakeFiles/tempo_timer.dir/hierarchical_wheel.cc.o"
  "CMakeFiles/tempo_timer.dir/hierarchical_wheel.cc.o.d"
  "CMakeFiles/tempo_timer.dir/soft_timers.cc.o"
  "CMakeFiles/tempo_timer.dir/soft_timers.cc.o.d"
  "CMakeFiles/tempo_timer.dir/tree_queue.cc.o"
  "CMakeFiles/tempo_timer.dir/tree_queue.cc.o.d"
  "libtempo_timer.a"
  "libtempo_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
