file(REMOVE_RECURSE
  "libtempo_timer.a"
)
