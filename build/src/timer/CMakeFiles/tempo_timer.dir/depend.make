# Empty dependencies file for tempo_timer.
# This may be replaced when dependencies are built.
