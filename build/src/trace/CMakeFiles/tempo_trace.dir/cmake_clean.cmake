file(REMOVE_RECURSE
  "CMakeFiles/tempo_trace.dir/buffer.cc.o"
  "CMakeFiles/tempo_trace.dir/buffer.cc.o.d"
  "CMakeFiles/tempo_trace.dir/callsite.cc.o"
  "CMakeFiles/tempo_trace.dir/callsite.cc.o.d"
  "CMakeFiles/tempo_trace.dir/codec.cc.o"
  "CMakeFiles/tempo_trace.dir/codec.cc.o.d"
  "CMakeFiles/tempo_trace.dir/file.cc.o"
  "CMakeFiles/tempo_trace.dir/file.cc.o.d"
  "CMakeFiles/tempo_trace.dir/record.cc.o"
  "CMakeFiles/tempo_trace.dir/record.cc.o.d"
  "libtempo_trace.a"
  "libtempo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
