file(REMOVE_RECURSE
  "libtempo_trace.a"
)
