# Empty dependencies file for tempo_trace.
# This may be replaced when dependencies are built.
