file(REMOVE_RECURSE
  "CMakeFiles/tempo_workloads.dir/linux_workloads.cc.o"
  "CMakeFiles/tempo_workloads.dir/linux_workloads.cc.o.d"
  "CMakeFiles/tempo_workloads.dir/select_apps.cc.o"
  "CMakeFiles/tempo_workloads.dir/select_apps.cc.o.d"
  "CMakeFiles/tempo_workloads.dir/vista_apps.cc.o"
  "CMakeFiles/tempo_workloads.dir/vista_apps.cc.o.d"
  "CMakeFiles/tempo_workloads.dir/vista_workloads.cc.o"
  "CMakeFiles/tempo_workloads.dir/vista_workloads.cc.o.d"
  "libtempo_workloads.a"
  "libtempo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
