file(REMOVE_RECURSE
  "libtempo_workloads.a"
)
