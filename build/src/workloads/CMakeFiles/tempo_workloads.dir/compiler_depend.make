# Empty compiler generated dependencies file for tempo_workloads.
# This may be replaced when dependencies are built.
