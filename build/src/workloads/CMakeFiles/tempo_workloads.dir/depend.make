# Empty dependencies file for tempo_workloads.
# This may be replaced when dependencies are built.
