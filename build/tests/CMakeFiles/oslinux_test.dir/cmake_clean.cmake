file(REMOVE_RECURSE
  "CMakeFiles/oslinux_test.dir/oslinux_test.cc.o"
  "CMakeFiles/oslinux_test.dir/oslinux_test.cc.o.d"
  "oslinux_test"
  "oslinux_test.pdb"
  "oslinux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oslinux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
