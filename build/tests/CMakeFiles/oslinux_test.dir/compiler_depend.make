# Empty compiler generated dependencies file for oslinux_test.
# This may be replaced when dependencies are built.
