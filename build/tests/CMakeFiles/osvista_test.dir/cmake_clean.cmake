file(REMOVE_RECURSE
  "CMakeFiles/osvista_test.dir/osvista_test.cc.o"
  "CMakeFiles/osvista_test.dir/osvista_test.cc.o.d"
  "osvista_test"
  "osvista_test.pdb"
  "osvista_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osvista_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
