# Empty compiler generated dependencies file for osvista_test.
# This may be replaced when dependencies are built.
