file(REMOVE_RECURSE
  "CMakeFiles/phi_accrual_test.dir/phi_accrual_test.cc.o"
  "CMakeFiles/phi_accrual_test.dir/phi_accrual_test.cc.o.d"
  "phi_accrual_test"
  "phi_accrual_test.pdb"
  "phi_accrual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phi_accrual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
