# Empty compiler generated dependencies file for phi_accrual_test.
# This may be replaced when dependencies are built.
