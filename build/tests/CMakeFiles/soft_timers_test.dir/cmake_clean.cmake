file(REMOVE_RECURSE
  "CMakeFiles/soft_timers_test.dir/soft_timers_test.cc.o"
  "CMakeFiles/soft_timers_test.dir/soft_timers_test.cc.o.d"
  "soft_timers_test"
  "soft_timers_test.pdb"
  "soft_timers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_timers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
