file(REMOVE_RECURSE
  "CMakeFiles/tracefile_test.dir/tracefile_test.cc.o"
  "CMakeFiles/tracefile_test.dir/tracefile_test.cc.o.d"
  "tracefile_test"
  "tracefile_test.pdb"
  "tracefile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracefile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
