# Empty compiler generated dependencies file for tracefile_test.
# This may be replaced when dependencies are built.
