# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/timer_test[1]_include.cmake")
include("/root/repo/build/tests/oslinux_test[1]_include.cmake")
include("/root/repo/build/tests/osvista_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/dispatcher_test[1]_include.cmake")
include("/root/repo/build/tests/soft_timers_test[1]_include.cmake")
include("/root/repo/build/tests/tracefile_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dhcp_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_property_test[1]_include.cmake")
include("/root/repo/build/tests/phi_accrual_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
