file(REMOVE_RECURSE
  "../tools/trace2txt"
  "../tools/trace2txt.pdb"
  "CMakeFiles/trace2txt.dir/trace2txt.cc.o"
  "CMakeFiles/trace2txt.dir/trace2txt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace2txt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
