# Empty compiler generated dependencies file for trace2txt.
# This may be replaced when dependencies are built.
