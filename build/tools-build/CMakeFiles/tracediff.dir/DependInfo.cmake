
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/tracediff.cc" "tools-build/CMakeFiles/tracediff.dir/tracediff.cc.o" "gcc" "tools-build/CMakeFiles/tracediff.dir/tracediff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tempo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/oslinux/CMakeFiles/tempo_oslinux.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/tempo_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
