file(REMOVE_RECURSE
  "../tools/tracediff"
  "../tools/tracediff.pdb"
  "CMakeFiles/tracediff.dir/tracediff.cc.o"
  "CMakeFiles/tracediff.dir/tracediff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracediff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
