file(REMOVE_RECURSE
  "../tools/tracerec"
  "../tools/tracerec.pdb"
  "CMakeFiles/tracerec.dir/tracerec.cc.o"
  "CMakeFiles/tracerec.dir/tracerec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracerec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
