# Empty dependencies file for tracerec.
# This may be replaced when dependencies are built.
