file(REMOVE_RECURSE
  "../tools/tracestat"
  "../tools/tracestat.pdb"
  "CMakeFiles/tracestat.dir/tracestat.cc.o"
  "CMakeFiles/tracestat.dir/tracestat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracestat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
