# Empty dependencies file for tracestat.
# This may be replaced when dependencies are built.
