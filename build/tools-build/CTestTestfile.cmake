# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_record "/root/repo/build/tools/tracerec" "linux-idle" "/root/repo/build/ctest_idle.trc" "1" "7")
set_tests_properties(tools_record PROPERTIES  FIXTURES_SETUP "trace_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_record_b "/root/repo/build/tools/tracerec" "linux-idle" "/root/repo/build/ctest_idle_b.trc" "1" "9")
set_tests_properties(tools_record_b PROPERTIES  FIXTURES_SETUP "trace_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_trace2txt "/root/repo/build/tools/trace2txt" "/root/repo/build/ctest_idle.trc" "10")
set_tests_properties(tools_trace2txt PROPERTIES  FIXTURES_REQUIRED "trace_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tracestat "/root/repo/build/tools/tracestat" "/root/repo/build/ctest_idle.trc" "--blame" "5" "30")
set_tests_properties(tools_tracestat PROPERTIES  FIXTURES_REQUIRED "trace_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tracediff "/root/repo/build/tools/tracediff" "/root/repo/build/ctest_idle.trc" "/root/repo/build/ctest_idle_b.trc")
set_tests_properties(tools_tracediff PROPERTIES  FIXTURES_REQUIRED "trace_file" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_trace2txt_missing_file "/root/repo/build/tools/trace2txt" "/nonexistent.trc")
set_tests_properties(tools_trace2txt_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
