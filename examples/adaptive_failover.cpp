// Adaptive failure detection for a replicated service (Section 5.1 put to
// work): a client load-balances requests over two replicas and uses a
// learned 99%-confidence timeout per replica instead of a hardcoded
// 30-second constant. When a replica dies mid-run, the client fails over
// at the timescale of the observed latencies.
//
// Demonstrates the public API: Simulator + SimNetwork + RpcServer/RpcClient
// for the substrate, AdaptiveTimeout + TimerService for the policy.

#include <cstdio>
#include <memory>

#include "src/adaptive/adaptive_timeout.h"
#include "src/adaptive/timer_service.h"
#include "src/net/rpc.h"

namespace {

using namespace tempo;

// A client slot bound to one replica, with its own learned timeout.
class ReplicaClient {
 public:
  ReplicaClient(Simulator* sim, SimNetwork* net, TimerService* timers, NodeId self,
                RpcServer* replica, const char* name)
      : sim_(sim), timers_(timers), replica_(replica), name_(name),
        rpc_(sim, net, self, NoRetryOptions()) {}

  // Issues one request; cb(ok) after reply or adaptive timeout.
  void Call(std::function<void(bool)> cb) {
    const SimTime started = sim_->Now();
    auto done = std::make_shared<bool>(false);
    const SimDuration timeout = adaptive_.Current();
    const ServiceTimerId guard = timers_->Arm(timeout, [this, done, cb] {
      if (*done) {
        return;
      }
      *done = true;
      adaptive_.RecordTimeout();
      ++timeouts_;
      cb(false);
    });
    rpc_.Call(replica_, 256, [this, done, guard, started, cb](RpcClient::Result r) {
      if (*done) {
        return;  // already timed out; late reply only feeds the model
      }
      *done = true;
      timers_->Cancel(guard);
      if (r.ok) {
        adaptive_.RecordSuccess(sim_->Now() - started);
        ++successes_;
      }
      cb(r.ok);
    });
  }

  const char* name() const { return name_; }
  SimDuration current_timeout() const { return adaptive_.Current(); }
  uint64_t successes() const { return successes_; }
  uint64_t timeouts() const { return timeouts_; }

 private:
  static RpcClient::Options NoRetryOptions() {
    RpcClient::Options options;
    options.max_retries = 0;  // the adaptive guard handles failure
    options.initial_timeout = 10 * kMinute;
    return options;
  }

  Simulator* sim_;
  TimerService* timers_;
  RpcServer* replica_;
  const char* name_;
  RpcClient rpc_;
  AdaptiveTimeout adaptive_;
  uint64_t successes_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace

int main() {
  Simulator sim(77);
  SimNetwork net(&sim);
  SimTimerService timers(&sim);

  const NodeId client_node = net.AddNode("client");
  const NodeId a_node = net.AddNode("replica-a");
  const NodeId b_node = net.AddNode("replica-b");
  LinkParams lan;
  lan.latency = 300 * kMicrosecond;
  lan.jitter_sigma = 0.4;
  net.SetLinkBoth(client_node, a_node, lan);
  LinkParams wan;
  wan.latency = 40 * kMillisecond;  // replica B is in another region
  wan.jitter_sigma = 0.3;
  net.SetLinkBoth(client_node, b_node, wan);

  RpcServer replica_a(&sim, &net, a_node);
  RpcServer replica_b(&sim, &net, b_node);
  ReplicaClient a(&sim, &net, &timers, client_node, &replica_a, "A(lan)");
  ReplicaClient b(&sim, &net, &timers, client_node, &replica_b, "B(wan)");

  // Round-robin requests every ~50 ms; fail over to the other replica on
  // timeout. Replica A dies at t=60 s.
  sim.ScheduleAt(60 * kSecond, [&] {
    std::printf("t=60s: replica A crashes (silently drops requests)\n");
    replica_a.set_down(true);
  });

  uint64_t failovers = 0;
  SimTime first_detection = 0;
  std::function<void(int)> issue = [&](int i) {
    ReplicaClient& primary = (i % 2 == 0) ? a : b;
    ReplicaClient& backup = (i % 2 == 0) ? b : a;
    primary.Call([&, i](bool ok) {
      if (!ok) {
        ++failovers;
        if (first_detection == 0 && sim.Now() > 60 * kSecond) {
          first_detection = sim.Now();
          std::printf("t=%.3fs: first timeout on dead replica detected after %.3f s\n",
                      ToSeconds(sim.Now()), ToSeconds(sim.Now() - 60 * kSecond));
        }
        backup.Call([](bool) {});
      }
    });
    if (i < 2400) {
      sim.ScheduleAfter(50 * kMillisecond, [&issue, i] { issue(i + 1); });
    }
  };
  issue(0);
  sim.RunUntil(3 * kMinute);

  std::printf("\nafter %s:\n", FormatDuration(sim.Now()).c_str());
  for (const ReplicaClient* r : {&a, &b}) {
    std::printf("  %-7s successes=%llu timeouts=%llu learned timeout=%s\n", r->name(),
                static_cast<unsigned long long>(r->successes()),
                static_cast<unsigned long long>(r->timeouts()),
                FormatDuration(r->current_timeout()).c_str());
  }
  std::printf("  failovers: %llu\n", static_cast<unsigned long long>(failovers));
  std::printf(
      "\nnote: with the classic fixed 30 s timeout, every request to the dead\n"
      "replica would stall for 30 s; the learned timeouts detect failure at\n"
      "each replica's own latency scale (sub-second for the LAN replica).\n");
  return 0;
}
