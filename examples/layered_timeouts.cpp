// The Section 2.2.2 story as a runnable scenario: a user types a server
// name into the file browser. Name resolution fans out to WINS and DNS in
// parallel; on success, SMB, NFS (SunRPC) and WebDAV connections race.
// Every layer has its own timeouts; the example shows the healthy path,
// the failure path, and how the dependency-aware tools of Section 5.2
// (TimerDependencyGraph, TimeoutStack) describe and shrink the timer stack.

#include <cstdio>
#include <memory>

#include "src/adaptive/dependency.h"
#include "src/adaptive/interfaces.h"
#include "src/net/fileaccess.h"

int main() {
  using namespace tempo;

  Simulator sim(42);
  SimNetwork net(&sim);
  const NodeId desktop = net.AddNode("desktop");
  const NodeId dns_node = net.AddNode("dns");
  const NodeId server_node = net.AddNode("fileserver");
  LinkParams wan;
  wan.latency = 65 * kMillisecond;  // 130 ms round trip, as in the paper
  wan.jitter_sigma = 0.05;
  net.SetLinkBoth(desktop, server_node, wan);

  NameProvider dns(&sim, &net, desktop, dns_node, "dns", NameProvider::Options{});
  NameProvider::Options wins_options;
  wins_options.timeout = FromMilliseconds(1500);
  wins_options.retries = 2;
  NameProvider wins(&sim, &net, desktop, dns_node, "wins", wins_options);
  dns.Register("fileserver", server_node);
  ParallelResolver resolver(&sim);
  resolver.AddProvider(&wins);
  resolver.AddProvider(&dns);
  RpcClient rpc(&sim, &net, desktop);
  RpcServer server(&sim, &net, server_node);
  FileBrowser browser(&sim, &net, &resolver, &rpc, desktop);
  for (const auto& spec : DefaultFileProtocols()) {
    browser.AddProtocol(spec);
  }

  std::printf("the user types \\\\fileserver\\share...\n");
  browser.Open("fileserver", &server, [&](FileBrowser::Result r) {
    std::printf("  -> %s via %s after %.3f s (round trip is 0.13 s)\n",
                r.success ? "opened" : "FAILED", r.protocol.c_str(), ToSeconds(r.elapsed));
  });
  sim.RunUntil(sim.Now() + 5 * kMinute);

  std::printf("\nnow the server starts refusing connections; the user retries...\n");
  server.set_refuse_connections(true);
  browser.Open("fileserver", &server, [&](FileBrowser::Result r) {
    std::printf("  -> %s after %.1f s — \"recovering from a typing error can take "
                "over a minute!\"\n",
                r.success ? "opened" : "failure reported", ToSeconds(r.elapsed));
  });
  sim.RunUntil(sim.Now() + 5 * kMinute);

  // Declaring the relationships (Section 5.2) exposes the redundancy.
  std::printf("\ndeclaring the timer stack to a TimerDependencyGraph:\n");
  TimerDependencyGraph graph;
  const uint32_t browser_t = graph.AddTimer("browser-open", 120 * kSecond);
  const uint32_t nfs_backoff = graph.AddTimer("nfs-rpc-backoff", FromSeconds(63.5));
  const uint32_t webdav = graph.AddTimer("webdav-connect", 30 * kSecond);
  const uint32_t smb = graph.AddTimer("smb-connect", 9 * kSecond);
  const uint32_t tcp_syn = graph.AddTimer("tcp-syn", 3 * kSecond);
  graph.Relate(browser_t, nfs_backoff, TimerRelation::kOverlapMaxWins);
  graph.Relate(browser_t, webdav, TimerRelation::kOverlapMaxWins);
  graph.Relate(browser_t, smb, TimerRelation::kOverlapMaxWins);
  graph.Relate(smb, tcp_syn, TimerRelation::kOverlapMaxWins);
  const DependencyAnalysis analysis = graph.Analyse();
  std::printf("  timers declared: %zu; provably redundant under max-wins: %zu\n",
              graph.timers().size(), analysis.removable.size());
  for (uint32_t id : analysis.removable) {
    std::printf("    redundant: %s\n", graph.timers()[id].label.c_str());
  }
  std::printf("  concurrent armed timers: %zu naive -> %zu after overlap->dependency "
              "rewrite\n",
              analysis.concurrent_before, analysis.concurrent_after);

  // The per-thread TimeoutStack achieves the elision at runtime.
  SimTimerService service(&sim);
  TimeoutStack stack(&service);
  const uint64_t t1 = stack.Push(120 * kSecond, [] {});
  const uint64_t t2 = stack.Push(FromSeconds(63.5), [] {});  // shorter: armed
  const uint64_t t3 = stack.Push(90 * kSecond, [] {});       // longer than t2: elided
  std::printf("\nTimeoutStack at runtime: pushed 3 nested timeouts, armed %llu, "
              "elided %llu\n",
              static_cast<unsigned long long>(stack.armed_count()),
              static_cast<unsigned long long>(stack.elided_count()));
  stack.Pop(t3);
  stack.Pop(t2);
  stack.Pop(t1);
  return 0;
}
