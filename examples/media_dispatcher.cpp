// A soft-real-time media pipeline written against the temporal dispatcher
// (Section 5.5) instead of timers.
//
// The paper observes that Skype and Firefox's Flash plugin flood the timer
// subsystem with 1-3 jiffy timeouts "to create a soft real time execution
// environment over a best-effort system". This example shows the same
// application needs expressed the way Section 5.5 proposes: an audio pump
// at a strict 10 ms cadence, a video compositor at 33 ms with a little
// slack, UI housekeeping "about every second", and a stall watchdog over
// the decode pipeline — all declared to the dispatcher, which runs the
// right code at the right time from a single underlying timer.

#include <cstdio>

#include "src/dispatcher/dispatcher.h"
#include "src/sim/random.h"

int main() {
  using namespace tempo;
  Simulator sim(21);
  TemporalDispatcher dispatcher(&sim);

  // The audio pump has the tightest requirement and the highest weight.
  DispatchTask* audio = dispatcher.CreateTask("audio", /*weight=*/8);
  uint64_t audio_frames = 0;
  audio->RunEvery(10 * kMillisecond, 0, [&] {
    ++audio_frames;
    audio->ChargeWork(500 * kMicrosecond);  // decode + mix
  });

  // Video can tolerate a few ms of slack — that tolerance is what lets the
  // dispatcher batch it with other wakeups.
  DispatchTask* video = dispatcher.CreateTask("video", /*weight=*/4);
  uint64_t video_frames = 0;
  video->RunEvery(33 * kMillisecond, 6 * kMillisecond, [&] {
    ++video_frames;
    video->ChargeWork(4 * kMillisecond);
  });

  // UI housekeeping: "about every second".
  DispatchTask* ui = dispatcher.CreateTask("ui");
  uint64_t ui_ticks = 0;
  ui->RunEvery(kSecond, 800 * kMillisecond, [&] {
    ++ui_ticks;
    ui->ChargeWork(kMillisecond);
  });

  // The decode pipeline is guarded: every delivered network chunk kicks
  // the watchdog; a 2 s gap means the stream stalled.
  DispatchTask* pipeline = dispatcher.CreateTask("pipeline");
  uint64_t stalls = 0;
  const RequirementId guard = pipeline->Guard(2 * kSecond, [&] { ++stalls; });
  // Chunks arrive roughly every 80 ms, except one 3-second outage at t=20 s.
  struct Feed {
    Simulator* sim;
    DispatchTask* task;
    RequirementId guard;
    void Chunk() {
      task->Kick(guard);
      SimDuration gap = static_cast<SimDuration>(sim->rng().Uniform(0.05, 0.11) * kSecond);
      if (sim->Now() >= 20 * kSecond && sim->Now() < 20 * kSecond + 200 * kMillisecond) {
        gap = 3 * kSecond;  // network outage
      }
      sim->ScheduleAfter(gap, [this] { Chunk(); });
    }
  };
  Feed feed{&sim, pipeline, guard};
  feed.Chunk();

  sim.RunUntil(kMinute);

  std::printf("one minute of playback through the dispatcher:\n");
  std::printf("  audio:    %llu frames, worst lateness %s\n",
              static_cast<unsigned long long>(audio_frames),
              FormatDuration(audio->worst_lateness()).c_str());
  std::printf("  video:    %llu frames, worst lateness %s (6 ms slack declared)\n",
              static_cast<unsigned long long>(video_frames),
              FormatDuration(video->worst_lateness()).c_str());
  std::printf("  ui:       %llu ticks\n", static_cast<unsigned long long>(ui_ticks));
  std::printf("  pipeline: %llu stall(s) detected (the t=20 s outage)\n",
              static_cast<unsigned long long>(stalls));
  std::printf("\ndispatcher economics:\n");
  std::printf("  requirements declared:     %llu\n",
              static_cast<unsigned long long>(dispatcher.declared()));
  std::printf("  dispatches performed:      %llu\n",
              static_cast<unsigned long long>(dispatcher.dispatched()));
  std::printf("  piggybacked (no own wakeup): %llu\n",
              static_cast<unsigned long long>(dispatcher.piggybacked_dispatches()));
  std::printf("  hardware timer programmings: %llu\n",
              static_cast<unsigned long long>(dispatcher.hardware_programs()));
  std::printf(
      "\ncompare: the Flash-over-Firefox idiom in the paper issues a timer\n"
      "syscall per frame (Figure 10's thousands of sub-10 ms timers); here\n"
      "four declarations cover the whole run.\n");
  return 0;
}
