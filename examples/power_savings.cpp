// Power management with timers (Sections 2.1 and 5.3): how many times does
// an idle machine wake up, and what do round_jiffies, dynticks, deferrable
// timers, and explicit slack windows each buy?
//
// Uses the public workload/kernel options for the Linux ablations and the
// BatchingTimerService + SlackTicker for the clean-slate design.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/adaptive/interfaces.h"
#include "src/adaptive/slack.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;

  WorkloadOptions base;
  base.duration = 10 * kMinute;
  base.seed = 1;

  struct Config {
    const char* name;
    bool round;
    bool dynticks;
    bool deferrable;
  };
  // round_jiffies and deferrable only pay off once dynticks has removed
  // the unconditional periodic tick, so the ladder applies dynticks first.
  const Config configs[] = {
      {"periodic tick (pre-2.6.21)", false, false, false},
      {"dynticks", false, true, false},
      {"dynticks + round_jiffies", true, true, false},
      {"dynticks + round + deferrable", true, true, true},
  };

  std::printf("idle desktop, %s simulated: CPU wakeups by kernel generation\n\n",
              FormatDuration(base.duration).c_str());
  std::printf("%-30s %12s %12s\n", "kernel", "timer irqs", "vs baseline");
  uint64_t baseline = 0;
  for (const Config& config : configs) {
    WorkloadOptions options = base;
    options.round_jiffies = config.round;
    options.dynticks = config.dynticks;
    options.deferrable = config.deferrable;
    TraceRun run = RunLinuxIdle(options);
    const uint64_t irqs = run.sim->cpu().timer_interrupts();
    if (baseline == 0) {
      baseline = irqs;
    }
    std::printf("%-30s %12llu %11.1f%%\n", config.name,
                static_cast<unsigned long long>(irqs),
                100.0 * static_cast<double>(irqs) / static_cast<double>(baseline));
  }

  // The Section 5.3 proposal: say what you mean. "Wake me at some
  // convenient time in the next ten minutes" batches with everything else.
  std::printf("\nclean-slate comparison: 16 housekeeping tasks over %s\n",
              FormatDuration(base.duration).c_str());
  static constexpr SimDuration kPeriods[] = {5 * kSecond, 15 * kSecond, 30 * kSecond,
                                             60 * kSecond};
  {
    Simulator sim(3);
    SimTimerService service(&sim);
    std::vector<std::unique_ptr<PeriodicTicker>> tickers;
    for (int i = 0; i < 16; ++i) {
      tickers.push_back(
          std::make_unique<PeriodicTicker>(&service, kPeriods[i % 4], [] {}));
      tickers.back()->Start();
    }
    sim.RunUntil(base.duration);
    uint64_t ticks = 0;
    for (const auto& t : tickers) {
      ticks += t->ticks();
    }
    std::printf("  precise periodic tickers: %llu ticks -> %llu wakeups\n",
                static_cast<unsigned long long>(ticks),
                static_cast<unsigned long long>(service.arms()));
  }
  {
    Simulator sim(3);
    SimTimerService base_service(&sim);
    BatchingTimerService batching(&base_service);
    std::vector<std::unique_ptr<SlackTicker>> tickers;
    for (int i = 0; i < 16; ++i) {
      const SimDuration period = kPeriods[i % 4];
      tickers.push_back(std::make_unique<SlackTicker>(&batching, period,
                                                      period / 2, [] {}));
      tickers.back()->Start();
    }
    sim.RunUntil(base.duration);
    uint64_t ticks = 0;
    for (const auto& t : tickers) {
      ticks += t->ticks();
    }
    std::printf("  50%% slack + batching:     %llu ticks -> %llu wakeups\n",
                static_cast<unsigned long long>(ticks),
                static_cast<unsigned long long>(batching.wakeups_scheduled()));
    std::printf("  average periods held: ");
    for (size_t i = 0; i < 4; ++i) {
      std::printf("%s%.1fs", i ? ", " : "", ToSeconds(tickers[i]->average_period()));
    }
    std::printf(" (nominal 5/15/30/60 s)\n");
  }
  return 0;
}
