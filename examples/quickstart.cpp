// Quickstart: trace a workload and analyse its timer usage.
//
// Runs a short Linux "idle desktop" trace on the simulated machine, then
// runs the paper's analysis pipeline over it: trace summary (Table 1
// style), usage-pattern classification (Figure 2), common timeout values
// (Figure 3) and the origins table (Table 3).

#include <cstdio>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/render.h"
#include "src/analysis/summary.h"
#include "src/trace/codec.h"
#include "src/workloads/linux_workloads.h"

int main() {
  using namespace tempo;

  // 1. Run a five-minute idle-desktop trace (the paper uses 30 minutes).
  WorkloadOptions options;
  options.duration = 5 * kMinute;
  options.seed = 42;
  TraceRun run = RunLinuxIdle(options);
  std::printf("traced %zu records over %s of simulated time\n\n", run.records.size(),
              FormatDuration(options.duration).c_str());

  // A peek at the raw trace.
  std::printf("first records:\n");
  for (size_t i = 0; i < run.records.size() && i < 6; ++i) {
    std::printf("  %s\n", FormatRecord(run.records[i], run.callsites()).c_str());
  }
  std::printf("\n");

  // 2. Summary statistics (the Table 1 row for this workload).
  const TraceSummary summary = Summarize(run.records, run.label);
  std::printf("%s\n", RenderSummaryTable({summary}).c_str());

  // 3. Usage-pattern classification (Figure 2).
  const auto classes = ClassifyTrace(run.records, ClassifyOptions{});
  std::printf("usage patterns:\n%s\n",
              RenderPatternHistogram({{run.label, PatternHistogram(classes)}}).c_str());

  // 4. Common timeout values (Figure 3).
  HistogramOptions histogram_options;
  const ValueHistogram histogram = ComputeValueHistogram(run.records, histogram_options);
  std::printf("common timeout values:\n%s\n",
              RenderValueHistogram(histogram, /*show_jiffies=*/true).c_str());

  // 5. Who sets which value (Table 3).
  OriginOptions origin_options;
  const auto origins = ComputeOrigins(run.records, run.callsites(), origin_options);
  std::printf("origins of frequent values:\n%s", RenderOrigins(origins).c_str());
  return 0;
}
