// The full study, end to end: traces all eight workloads (four per OS),
// runs every analysis of Section 4, and prints a compact report — the
// closest thing to re-running the paper in one command.
//
// Pass --quick for 3-minute traces (default: the paper's 30 minutes).

#include <cstdio>
#include <cstring>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/render.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"
#include "src/workloads/linux_workloads.h"
#include "src/workloads/vista_workloads.h"

namespace {

using namespace tempo;

void AnalyseOs(const char* os_name, std::vector<TraceRun> runs, bool jiffies) {
  std::printf("\n######################## %s ########################\n\n", os_name);

  std::vector<TraceSummary> summaries;
  std::vector<std::pair<std::string, std::map<UsagePattern, double>>> patterns;
  for (TraceRun& run : runs) {
    summaries.push_back(Summarize(run.records, run.label));
    patterns.emplace_back(run.label,
                          PatternHistogram(ClassifyTrace(run.records, ClassifyOptions{})));
  }
  std::printf("trace summary:\n%s\n", RenderSummaryTable(summaries).c_str());
  std::printf("usage patterns (%% of regularly used timers):\n%s\n",
              RenderPatternHistogram(patterns).c_str());

  for (TraceRun& run : runs) {
    HistogramOptions histogram_options;
    histogram_options.jiffy_quantise_kernel = jiffies;
    auto x = run.pids.find("Xorg");
    if (x != run.pids.end()) {
      histogram_options.exclude_pids.insert(x->second);
    }
    auto wm = run.pids.find("icewm");
    if (wm != run.pids.end()) {
      histogram_options.exclude_pids.insert(wm->second);
    }
    const ValueHistogram h = ComputeValueHistogram(run.records, histogram_options);
    std::printf("common values, %s (select countdowns filtered):\n%s\n", run.label.c_str(),
                RenderValueHistogram(h, jiffies).c_str());
  }

  // One scatter per OS is plenty for the report: the busiest workload.
  ScatterOptions scatter_options;
  const auto points = ComputeScatter(runs[2].records, scatter_options);
  std::printf("expiry/cancel scatter, %s:\n%s\n", runs[2].label.c_str(),
              RenderScatter(points).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadOptions options;
  options.duration = 30 * kMinute;
  options.seed = 2008;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.duration = 3 * kMinute;
    }
  }
  std::printf("tracing 8 workloads x %s of simulated time...\n",
              FormatDuration(options.duration).c_str());

  AnalyseOs("Linux 2.6.23 model", RunAllLinuxWorkloads(options), /*jiffies=*/true);
  AnalyseOs("Vista model", RunAllVistaWorkloads(options), /*jiffies=*/false);

  // Table 3 origins on the Linux idle trace.
  TraceRun idle = RunLinuxIdle(options);
  OriginOptions origin_options;
  origin_options.min_percent = 0.2;
  std::printf("origins of frequent Linux values (Idle):\n%s\n",
              RenderOrigins(ComputeOrigins(idle.records, idle.callsites(),
                                           origin_options)).c_str());
  return 0;
}
