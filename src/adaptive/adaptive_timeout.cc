#include "src/adaptive/adaptive_timeout.h"

#include <algorithm>

namespace tempo {

SimDuration AdaptiveTimeout::Clamp(SimDuration d) const {
  return std::clamp(d, options_.min_timeout, options_.max_timeout);
}

SimDuration AdaptiveTimeout::Current() const {
  SimDuration base;
  if (!warmed_up()) {
    base = options_.initial;
  } else {
    const SimDuration q = distribution_.Quantile(options_.confidence);
    base = static_cast<SimDuration>(static_cast<double>(q) * options_.safety_factor);
  }
  base = Clamp(base);
  // Outstanding backoff from unanswered operations doubles the clamped
  // base, up to the maximum.
  const int shift = std::min(backoff_shift_, 16);
  if (shift > 0) {
    base = base << shift;
  }
  return Clamp(base);
}

void AdaptiveTimeout::RecordSuccess(SimDuration elapsed) {
  backoff_shift_ = 0;
  // Level-shift detection: successes that keep landing beyond the learned
  // 90th percentile mean the environment changed (e.g. the network file
  // system is now across a WAN). The detector deliberately uses a lower
  // quantile than the timeout: the timeout quantile would absorb the new
  // regime's samples before a run could accumulate. Old evidence is
  // decayed away so the new regime dominates quickly.
  if (warmed_up()) {
    const SimDuration bound = distribution_.Quantile(0.9);
    if (elapsed > bound) {
      ++over_bound_run_;
      if (over_bound_run_ >= options_.shift_run) {
        distribution_.Decay(options_.shift_decay);
        over_bound_run_ = 0;
        ++level_shifts_;
      }
    } else {
      over_bound_run_ = 0;
    }
  }
  distribution_.Add(elapsed);
}

void AdaptiveTimeout::RecordTimeout() {
  // An unanswered operation tells us nothing about the completion-time
  // distribution (the reply may never come) but plenty about the immediate
  // environment: back off, as TCP does.
  ++backoff_shift_;
}

}  // namespace tempo
