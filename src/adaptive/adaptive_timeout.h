// Adaptive timeouts (Section 5.1).
//
// Instead of an arbitrary hardcoded constant ("wait 30 seconds"), an
// AdaptiveTimeout learns the distribution of completion times for an
// operation and picks the timeout at a requested confidence level:
// "time out once the system is 99% confident a reply will never arrive".
//
// Two complications the paper raises are handled:
//   * before enough samples exist, a conservative initial timeout is used
//     (learning must not cause premature failure reports);
//   * sudden level shifts (LAN -> WAN in the travelling-user example) make
//     the learned distribution wrong; a run of observations beyond the
//     current confidence bound triggers decay of the old distribution and
//     a temporary fallback to backoff, so the estimator re-learns quickly.

#ifndef TEMPO_SRC_ADAPTIVE_ADAPTIVE_TIMEOUT_H_
#define TEMPO_SRC_ADAPTIVE_ADAPTIVE_TIMEOUT_H_

#include <cstdint>

#include "src/adaptive/distribution.h"

namespace tempo {

// Learns completion times and produces timeout values.
class AdaptiveTimeout {
 public:
  struct Options {
    double confidence;         // quantile used for the timeout (0.99)
    double safety_factor;      // multiplier on the quantile (2.0)
    SimDuration initial;       // before warmup completes (the classic 30 s)
    SimDuration min_timeout;
    SimDuration max_timeout;
    uint64_t warmup_samples;   // samples before the estimate is trusted
    int shift_run;             // consecutive over-bound events => level shift
    double shift_decay;        // weight multiplier applied on shift

    Options()
        : confidence(0.99),
          safety_factor(2.0),
          initial(30 * kSecond),
          min_timeout(1 * kMillisecond),
          max_timeout(600 * kSecond),
          warmup_samples(10),
          shift_run(4),
          shift_decay(0.05) {}
  };

  AdaptiveTimeout() : AdaptiveTimeout(Options()) {}
  explicit AdaptiveTimeout(Options options) : options_(options) {}

  // Records a completed wait of `elapsed`.
  void RecordSuccess(SimDuration elapsed);

  // Records that the current timeout fired without completion. Applies
  // exponential backoff to subsequent timeouts until a success arrives.
  void RecordTimeout();

  // The timeout to use now.
  SimDuration Current() const;

  bool warmed_up() const { return distribution_.count() >= options_.warmup_samples; }
  uint64_t level_shifts() const { return level_shifts_; }
  int backoff_shift() const { return backoff_shift_; }
  const StreamingDistribution& distribution() const { return distribution_; }

 private:
  SimDuration Clamp(SimDuration d) const;

  Options options_;
  StreamingDistribution distribution_;
  int over_bound_run_ = 0;
  int backoff_shift_ = 0;
  uint64_t level_shifts_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_ADAPTIVE_TIMEOUT_H_
