#include "src/adaptive/dependency.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace tempo {

const char* TimerRelationName(TimerRelation relation) {
  switch (relation) {
    case TimerRelation::kOverlapMaxWins:
      return "overlap-max-wins";
    case TimerRelation::kOverlapMinWins:
      return "overlap-min-wins";
    case TimerRelation::kOverlapCancelTogether:
      return "overlap-cancel-together";
    case TimerRelation::kDependsOn:
      return "depends-on";
  }
  return "?";
}

uint32_t TimerDependencyGraph::AddTimer(const std::string& label, SimDuration timeout) {
  const uint32_t id = static_cast<uint32_t>(timers_.size());
  timers_.push_back(DeclaredTimer{id, label, timeout});
  return id;
}

bool TimerDependencyGraph::Relate(uint32_t t1, uint32_t t2, TimerRelation relation) {
  if (t1 == t2 && relation != TimerRelation::kDependsOn) {
    return false;  // only self-dependency (periodic) is meaningful
  }
  if (t1 >= timers_.size() || t2 >= timers_.size()) {
    return false;
  }
  // Overlap relations constrain the timeout ordering: t1 is the enclosing
  // timer, so for it to "overlap" t2 its expiry must not be earlier.
  if (relation == TimerRelation::kOverlapMaxWins ||
      relation == TimerRelation::kOverlapMinWins ||
      relation == TimerRelation::kOverlapCancelTogether) {
    if (timers_[t1].timeout < timers_[t2].timeout) {
      return false;
    }
  }
  edges_.push_back(TimerEdge{t1, t2, relation});
  return true;
}

DependencyAnalysis TimerDependencyGraph::Analyse() const {
  DependencyAnalysis analysis;
  std::set<uint32_t> removable;

  // Redundancy: under max-wins, the enclosed (shorter) timer t2 never
  // changes the outcome; under min-wins, the enclosing t1 does not.
  for (const TimerEdge& edge : edges_) {
    if (edge.relation == TimerRelation::kOverlapMaxWins) {
      removable.insert(edge.t2);
    } else if (edge.relation == TimerRelation::kOverlapMinWins) {
      removable.insert(edge.t1);
    }
  }
  analysis.removable.assign(removable.begin(), removable.end());

  // Cancel groups: connected components over cancel-together edges.
  std::map<uint32_t, uint32_t> parent;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second != x) {
      it->second = find(it->second);
    }
    return it->second;
  };
  for (const TimerEdge& edge : edges_) {
    if (edge.relation == TimerRelation::kOverlapCancelTogether) {
      parent[find(edge.t1)] = find(edge.t2);
    }
  }
  std::map<uint32_t, std::vector<uint32_t>> groups;
  for (const auto& [node, p] : parent) {
    groups[find(node)].push_back(node);
  }
  for (auto& [root, members] : groups) {
    if (members.size() > 1) {
      std::sort(members.begin(), members.end());
      analysis.cancel_groups.push_back(members);
    }
  }

  // Concurrency: naively, every non-removable timer is armed at once.
  // Rewriting each overlap edge into a dependency chain (arm t2; on its
  // completion arm t1 for the remaining time) means each overlap chain
  // contributes a single armed timer at any instant.
  std::set<uint32_t> live;
  for (const DeclaredTimer& t : timers_) {
    live.insert(t.id);
  }
  analysis.concurrent_before = live.size();
  // Chained timers: an overlap edge merges two concurrent slots into one.
  // Count connected components over all overlap edges among live timers.
  std::map<uint32_t, uint32_t> cparent;
  std::function<uint32_t(uint32_t)> cfind = [&](uint32_t x) {
    auto it = cparent.find(x);
    if (it == cparent.end()) {
      cparent[x] = x;
      return x;
    }
    if (it->second != x) {
      it->second = cfind(it->second);
    }
    return it->second;
  };
  for (uint32_t id : live) {
    cfind(id);
  }
  for (const TimerEdge& edge : edges_) {
    if (edge.relation != TimerRelation::kDependsOn && edge.t1 != edge.t2) {
      cparent[cfind(edge.t1)] = cfind(edge.t2);
    }
  }
  std::set<uint32_t> roots;
  for (uint32_t id : live) {
    roots.insert(cfind(id));
  }
  analysis.concurrent_after = roots.size();
  return analysis;
}

}  // namespace tempo
