// Timer provenance and dependency tracking (Section 5.2).
//
// Timers rarely stand alone: layered software nests them ("operations that
// time out at one layer are retried until an enclosing timeout fires").
// The paper enumerates the possible relationships between two timers t1
// (set first / enclosing) and t2:
//
//   1. t1 overlaps t2 (t1 set no later, expires later), waiting on the
//      same event:
//      (a) max-wins — both (or just t1) expiring signals failure: the
//          effective expiry is max(t1, t2), so t2 is redundant;
//      (b) min-wins — only t2 matters: effective expiry min(t1, t2), so
//          t1 is redundant;
//      (c) cancel-together — neither needs to expire; when one is
//          canceled, cancel the other.
//   2. t2 depends on t1 — t2 is set only on t1's expiry/cancellation
//      (periodic timers are self-dependent).
//
// Overlap and dependency are interchangeable: an overlap can be rewritten
// as a dependency (set only t2; on expiry set t1 for the remainder),
// reducing the number of concurrently armed timers. The graph computes
// which timers are redundant and what the rewrite saves.

#ifndef TEMPO_SRC_ADAPTIVE_DEPENDENCY_H_
#define TEMPO_SRC_ADAPTIVE_DEPENDENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace tempo {

// Relationship kinds between two timers, per Section 5.2.
enum class TimerRelation : uint8_t {
  kOverlapMaxWins = 0,     // 1(a): expiry is max(t1, t2); t2 removable
  kOverlapMinWins = 1,     // 1(b): expiry is min(t1, t2); t1 removable
  kOverlapCancelTogether,  // 1(c): cancellation propagates
  kDependsOn,              // 2: t2 set upon t1's completion
};

const char* TimerRelationName(TimerRelation relation);

// A declared-timer node.
struct DeclaredTimer {
  uint32_t id = 0;
  std::string label;
  SimDuration timeout = 0;
};

// An edge t1 -> t2.
struct TimerEdge {
  uint32_t t1 = 0;
  uint32_t t2 = 0;
  TimerRelation relation = TimerRelation::kDependsOn;
};

// Result of analysing the graph.
struct DependencyAnalysis {
  // Timers provably redundant under max-wins/min-wins overlaps.
  std::vector<uint32_t> removable;
  // Cancel-propagation groups (each inner vector cancels together).
  std::vector<std::vector<uint32_t>> cancel_groups;
  // Concurrent-timer count before/after rewriting overlaps to
  // dependencies (chained arming): the Section 5.2 optimisation.
  size_t concurrent_before = 0;
  size_t concurrent_after = 0;
};

// Declared relationships between the timers of one logical operation.
class TimerDependencyGraph {
 public:
  // Declares a timer; returns its id.
  uint32_t AddTimer(const std::string& label, SimDuration timeout);

  // Declares a relationship. For overlaps, t1 must be the one set first
  // with the later expiry where that matters; the graph validates the
  // timeout ordering for max/min-wins edges and rejects inconsistent ones.
  // Returns false if the edge is invalid (unknown ids, self-edge, or
  // timeout order contradicting the relation).
  bool Relate(uint32_t t1, uint32_t t2, TimerRelation relation);

  // Runs the redundancy / rewrite analysis.
  DependencyAnalysis Analyse() const;

  const std::vector<DeclaredTimer>& timers() const { return timers_; }
  const std::vector<TimerEdge>& edges() const { return edges_; }

 private:
  std::vector<DeclaredTimer> timers_;
  std::vector<TimerEdge> edges_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_DEPENDENCY_H_
