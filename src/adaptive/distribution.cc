#include "src/adaptive/distribution.h"

#include <algorithm>
#include <cmath>

namespace tempo {

namespace {
// Bucket 0 starts at 1 us.
constexpr double kLogBase = 1e3;  // 1 us in nanoseconds
}  // namespace

int StreamingDistribution::BucketFor(SimDuration value) {
  if (value <= 0) {
    return 0;
  }
  const double ratio = static_cast<double>(value) / kLogBase;
  if (ratio <= 1.0) {
    return 0;
  }
  const int bucket =
      static_cast<int>(std::floor(std::log10(ratio) * kBucketsPerDecade));
  return std::clamp(bucket, 0, kBuckets - 1);
}

SimDuration StreamingDistribution::BucketUpperEdge(int index) {
  const double edge =
      kLogBase * std::pow(10.0, static_cast<double>(index + 1) / kBucketsPerDecade);
  return static_cast<SimDuration>(edge);
}

void StreamingDistribution::Add(SimDuration value) {
  weights_[static_cast<size_t>(BucketFor(value))] += 1.0;
  total_ += 1.0;
  ++count_;
}

void StreamingDistribution::Decay(double factor) {
  if (factor < 0.0) {
    factor = 0.0;
  }
  if (factor > 1.0) {
    factor = 1.0;
  }
  for (double& w : weights_) {
    w *= factor;
  }
  total_ *= factor;
}

SimDuration StreamingDistribution::Quantile(double q) const {
  if (total_ <= 0.0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_;
  double acc = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += weights_[static_cast<size_t>(i)];
    if (acc >= target) {
      return BucketUpperEdge(i);
    }
  }
  return BucketUpperEdge(kBuckets - 1);
}

}  // namespace tempo
