// Streaming wait-time distributions.
//
// Section 5.1 proposes learning the distribution of wait times per timer
// object so a timeout can be phrased as "fire once the system is 99%
// confident the event will never arrive". The estimator here is a
// log-bucketed streaming histogram: constant memory, O(1) insert,
// monotone quantile queries, and exponential decay so the learned
// distribution can track level shifts.

#ifndef TEMPO_SRC_ADAPTIVE_DISTRIBUTION_H_
#define TEMPO_SRC_ADAPTIVE_DISTRIBUTION_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace tempo {

// Log-bucketed histogram over durations in [1 us, ~10^5 s).
class StreamingDistribution {
 public:
  // 12 buckets per decade over 11 decades.
  static constexpr int kBucketsPerDecade = 12;
  static constexpr int kDecades = 11;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  StreamingDistribution() { weights_.fill(0.0); }

  // Inserts one observation.
  void Add(SimDuration value);

  // Multiplies all weights by `factor` (0 < factor <= 1). Used to age the
  // distribution so newer observations dominate after a level shift.
  void Decay(double factor);

  // Value below which a fraction `q` (0..1) of the observed weight lies.
  // Returns 0 when empty. Quantiles are resolved to bucket granularity
  // (about 21% relative error at 12 buckets/decade), which is ample for
  // timeout selection.
  SimDuration Quantile(double q) const;

  double total_weight() const { return total_; }
  uint64_t count() const { return count_; }

  // Upper edge of bucket i (exposed for tests).
  static SimDuration BucketUpperEdge(int index);
  static int BucketFor(SimDuration value);

 private:
  std::array<double, kBuckets> weights_;
  double total_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_DISTRIBUTION_H_
