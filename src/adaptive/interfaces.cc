#include "src/adaptive/interfaces.h"

#include <algorithm>
#include <utility>

namespace tempo {

// --- PeriodicTicker ---

PeriodicTicker::PeriodicTicker(TimerService* service, SimDuration period,
                               std::function<void()> fn, SimDuration slack)
    : service_(service), period_(period), slack_(slack), fn_(std::move(fn)) {}

void PeriodicTicker::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  epoch_ = service_->Now();
  ticks_ = 0;
  ArmNext();
}

void PeriodicTicker::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
    current_ = kInvalidServiceTimer;
  }
}

void PeriodicTicker::ArmNext() {
  // Drift-free: the k-th tick is scheduled off the epoch, not off "now", so
  // callback latency does not accumulate — one of the things clients of the
  // raw interface must hand-roll (Section 5.4).
  const SimTime nominal = epoch_ + static_cast<SimDuration>(ticks_ + 1) * period_;
  const SimDuration delay = std::max<SimDuration>(0, nominal - service_->Now());
  current_ = service_->Arm(delay + slack_ / 2, [this, nominal] {
    current_ = kInvalidServiceTimer;
    if (!running_) {
      return;
    }
    ++ticks_;
    max_drift_ = std::max(max_drift_, service_->Now() - nominal);
    if (fn_) {
      fn_();
    }
    if (running_) {
      ArmNext();
    }
  });
}

// --- Watchdog ---

Watchdog::Watchdog(TimerService* service, SimDuration timeout, std::function<void()> on_expire)
    : service_(service), timeout_(timeout), on_expire_(std::move(on_expire)) {}

void Watchdog::Kick() {
  ++kicks_;
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
  }
  current_ = service_->Arm(timeout_, [this] {
    current_ = kInvalidServiceTimer;
    ++expiries_;
    if (on_expire_) {
      on_expire_();
    }
  });
}

void Watchdog::Stop() {
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
    current_ = kInvalidServiceTimer;
  }
}

// --- ScopedTimeout ---

ScopedTimeout::ScopedTimeout(TimerService* service, SimDuration timeout,
                             std::function<void()> on_timeout)
    : service_(service) {
  current_ = service_->Arm(timeout, [this, cb = std::move(on_timeout)] {
    current_ = kInvalidServiceTimer;
    expired_ = true;
    if (cb) {
      cb();
    }
  });
}

ScopedTimeout::~ScopedTimeout() {
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
    current_ = kInvalidServiceTimer;
  }
}

// --- DeferredAction ---

DeferredAction::DeferredAction(TimerService* service, SimDuration idle_period,
                               std::function<void()> action)
    : service_(service), idle_period_(idle_period), action_(std::move(action)) {}

void DeferredAction::Touch() {
  last_touch_ = service_->Now();
  if (!active_) {
    active_ = true;
    ArmFor(idle_period_);
  }
  // If a timer is already pending we do nothing: OnTimer() re-arms for the
  // remaining idle time. This turns N touches into O(elapsed/idle_period)
  // timer operations instead of N.
}

void DeferredAction::ArmFor(SimDuration d) {
  ++arms_;
  current_ = service_->Arm(d, [this] {
    current_ = kInvalidServiceTimer;
    OnTimer();
  });
}

void DeferredAction::OnTimer() {
  const SimTime idle_since = last_touch_ + idle_period_;
  const SimTime now = service_->Now();
  if (now < idle_since) {
    ArmFor(idle_since - now);  // there was activity: keep waiting
    return;
  }
  active_ = false;
  ++fired_;
  if (action_) {
    action_();
  }
}

void DeferredAction::Cancel() {
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
    current_ = kInvalidServiceTimer;
  }
  active_ = false;
}

// --- TimeoutStack ---

uint64_t TimeoutStack::Push(SimDuration timeout, std::function<void()> on_timeout) {
  const uint64_t token = next_token_++;
  const SimTime deadline = service_->Now() + timeout;
  // If an enclosing timeout fires earlier (or at the same time), this inner
  // timeout can never be the one that matters: elide it.
  bool shadowed = false;
  for (const Frame& frame : frames_) {
    if (frame.timer != kInvalidServiceTimer && frame.deadline <= deadline) {
      shadowed = true;
      break;
    }
  }
  Frame frame;
  frame.token = token;
  frame.deadline = deadline;
  if (shadowed) {
    frame.timer = kInvalidServiceTimer;
    ++elided_;
  } else {
    frame.timer = service_->Arm(timeout, std::move(on_timeout));
    ++armed_;
  }
  frames_.push_back(frame);
  return token;
}

void TimeoutStack::Pop(uint64_t token) {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    if (it->token == token) {
      if (it->timer != kInvalidServiceTimer) {
        service_->Cancel(it->timer);
      }
      frames_.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace tempo
