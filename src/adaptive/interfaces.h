// Use-case-specific timer interfaces (Section 5.4).
//
// The study found the one generic set/cancel interface serving at least
// five distinct purposes. These classes give each purpose its own
// abstraction, which lets the implementation optimise per use case:
//
//   PeriodicTicker — "every period t, invoke f" (drift-free; a precision
//                    parameter lets imprecise tickers batch);
//   Watchdog       — "if this code path has not executed within t, invoke
//                    f" (Kick() defers);
//   ScopedTimeout  — "if this procedure has not returned in t, invoke e"
//                    (the Win32 auto-object idiom: constructor arms,
//                    destructor cancels);
//   DelayTimer     — "after time t, invoke e" (the bare legacy case);
//   DeferredAction — "run f once this activity has been idle for t"
//                    (Vista's lazy registry-handle close);
//   TimeoutStack   — nested-timeout tracking: an inner timeout that cannot
//                    fire before an enclosing one is elided (Section 5.4's
//                    dependency-aware optimisation).

#ifndef TEMPO_SRC_ADAPTIVE_INTERFACES_H_
#define TEMPO_SRC_ADAPTIVE_INTERFACES_H_

#include <functional>
#include <vector>

#include "src/adaptive/timer_service.h"

namespace tempo {

// Drift-free periodic ticker.
class PeriodicTicker {
 public:
  // `slack`: permissible lateness. A ticker with non-zero slack maintains
  // the average frequency while tolerating local variation (Section 5.4),
  // allowing the service to batch it with other wakeups.
  PeriodicTicker(TimerService* service, SimDuration period, std::function<void()> fn,
                 SimDuration slack = 0);
  ~PeriodicTicker() { Stop(); }
  PeriodicTicker(const PeriodicTicker&) = delete;
  PeriodicTicker& operator=(const PeriodicTicker&) = delete;

  void Start();
  void Stop();

  bool running() const { return running_; }
  uint64_t ticks() const { return ticks_; }
  // Max drift of any tick from its nominal time (for precision tests).
  SimDuration max_drift() const { return max_drift_; }

 private:
  void ArmNext();

  TimerService* service_;
  SimDuration period_;
  SimDuration slack_;
  std::function<void()> fn_;
  bool running_ = false;
  SimTime epoch_ = 0;
  uint64_t ticks_ = 0;
  SimDuration max_drift_ = 0;
  ServiceTimerId current_ = kInvalidServiceTimer;
};

// Deadman switch.
class Watchdog {
 public:
  Watchdog(TimerService* service, SimDuration timeout, std::function<void()> on_expire);
  ~Watchdog() { Stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Arms (or re-arms) the full timeout.
  void Kick();
  void Stop();

  bool armed() const { return current_ != kInvalidServiceTimer; }
  uint64_t kicks() const { return kicks_; }
  uint64_t expiries() const { return expiries_; }

 private:
  TimerService* service_;
  SimDuration timeout_;
  std::function<void()> on_expire_;
  ServiceTimerId current_ = kInvalidServiceTimer;
  uint64_t kicks_ = 0;
  uint64_t expiries_ = 0;
};

// RAII timeout covering a scope (arm on construction, cancel on
// destruction) — the idiom Outlook wraps around UI upcalls (Section 2.2.1).
class ScopedTimeout {
 public:
  ScopedTimeout(TimerService* service, SimDuration timeout, std::function<void()> on_timeout);
  ~ScopedTimeout();
  ScopedTimeout(const ScopedTimeout&) = delete;
  ScopedTimeout& operator=(const ScopedTimeout&) = delete;

  bool expired() const { return expired_; }

 private:
  TimerService* service_;
  ServiceTimerId current_ = kInvalidServiceTimer;
  bool expired_ = false;
};

// One-shot delay.
class DelayTimer {
 public:
  explicit DelayTimer(TimerService* service) : service_(service) {}

  // Schedules fn after `delay`; returns a cancelable id.
  ServiceTimerId After(SimDuration delay, std::function<void()> fn) {
    return service_->Arm(delay, std::move(fn));
  }
  bool Cancel(ServiceTimerId id) { return service_->Cancel(id); }

 private:
  TimerService* service_;
};

// Runs an action once its subject has been idle for `idle_period`. Touch()
// marks activity. Internally a deferrable watchdog — the Vista "deferred
// operation" pattern, but with the deferral made cheap: Touch() only
// records a timestamp, and the timer re-arms itself lazily on expiry,
// instead of re-setting a kernel timer on every activity burst.
class DeferredAction {
 public:
  DeferredAction(TimerService* service, SimDuration idle_period, std::function<void()> action);
  ~DeferredAction() { Cancel(); }
  DeferredAction(const DeferredAction&) = delete;
  DeferredAction& operator=(const DeferredAction&) = delete;

  // Marks activity; the action is postponed until idle_period of quiet.
  void Touch();
  void Cancel();

  uint64_t fired() const { return fired_; }
  // Kernel-timer arms actually performed (compare with Touch() count).
  uint64_t arms() const { return arms_; }

 private:
  void ArmFor(SimDuration d);
  void OnTimer();

  TimerService* service_;
  SimDuration idle_period_;
  std::function<void()> action_;
  ServiceTimerId current_ = kInvalidServiceTimer;
  SimTime last_touch_ = 0;
  bool active_ = false;
  uint64_t fired_ = 0;
  uint64_t arms_ = 0;
};

// Per-thread nested-timeout tracker: pushing a timeout that could only fire
// after an already-pending enclosing timeout is pointless, so it is elided
// (never armed). Used by layered code where each layer defensively wraps
// calls in its own timeout.
class TimeoutStack {
 public:
  explicit TimeoutStack(TimerService* service) : service_(service) {}

  // Enters a scope with `timeout`; on_timeout fires only if this is the
  // binding (innermost-effective) timeout. Returns a token for Pop.
  uint64_t Push(SimDuration timeout, std::function<void()> on_timeout);

  // Leaves the scope (cancels if armed).
  void Pop(uint64_t token);

  uint64_t armed_count() const { return armed_; }
  uint64_t elided_count() const { return elided_; }

 private:
  struct Frame {
    uint64_t token;
    SimTime deadline;
    ServiceTimerId timer;  // kInvalidServiceTimer if elided
  };
  TimerService* service_;
  std::vector<Frame> frames_;
  uint64_t next_token_ = 1;
  uint64_t armed_ = 0;
  uint64_t elided_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_INTERFACES_H_
