#include "src/adaptive/phi_accrual.h"

#include <algorithm>
#include <cmath>

namespace tempo {

void PhiAccrualDetector::Heartbeat(SimTime now) {
  if (last_heartbeat_ != kNeverTime && now > last_heartbeat_) {
    intervals_.push_back(now - last_heartbeat_);
    if (intervals_.size() > options_.window_size) {
      intervals_.pop_front();
    }
  }
  last_heartbeat_ = now;
}

SimDuration PhiAccrualDetector::mean_interval() const {
  if (intervals_.empty()) {
    return options_.initial_interval;
  }
  long double sum = 0;
  for (SimDuration d : intervals_) {
    sum += static_cast<long double>(d);
  }
  return static_cast<SimDuration>(sum / static_cast<long double>(intervals_.size()));
}

SimDuration PhiAccrualDetector::stddev_interval() const {
  if (intervals_.size() < 2) {
    return std::max(options_.min_stddev, options_.initial_interval / 4);
  }
  const long double mean = static_cast<long double>(mean_interval());
  long double acc = 0;
  for (SimDuration d : intervals_) {
    const long double err = static_cast<long double>(d) - mean;
    acc += err * err;
  }
  const auto stddev = static_cast<SimDuration>(
      std::sqrt(static_cast<double>(acc / static_cast<long double>(intervals_.size()))));
  return std::max(stddev, options_.min_stddev);
}

double PhiAccrualDetector::Phi(SimTime now) const {
  if (last_heartbeat_ == kNeverTime || now <= last_heartbeat_) {
    return 0.0;
  }
  const double elapsed = static_cast<double>(now - last_heartbeat_);
  const double mean = static_cast<double>(mean_interval());
  const double stddev = static_cast<double>(stddev_interval());
  // P(next heartbeat later than `elapsed`) under a normal model, using the
  // logistic approximation of the normal CDF that production detectors use
  // (numerically stable far into the tail).
  const double y = (elapsed - mean) / stddev;
  const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
  double p_later;
  if (elapsed > mean) {
    p_later = e / (1.0 + e);
  } else {
    p_later = 1.0 - 1.0 / (1.0 + e);
  }
  p_later = std::max(p_later, 1e-300);
  return -std::log10(p_later);
}

SimDuration PhiAccrualDetector::TimeoutForThreshold(double threshold) const {
  // Invert phi by bisection over elapsed time; phi is monotone in elapsed.
  SimDuration lo = 0;
  SimDuration hi = std::max<SimDuration>(mean_interval(), kMillisecond);
  const SimTime base = last_heartbeat_ == kNeverTime ? 0 : last_heartbeat_;
  while (Phi(base + hi) < threshold && hi < 100 * kHour) {
    hi *= 2;
  }
  for (int i = 0; i < 64 && lo + 1 < hi; ++i) {
    const SimDuration mid = lo + (hi - lo) / 2;
    if (Phi(base + mid) < threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace tempo
