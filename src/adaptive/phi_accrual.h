// Phi-accrual failure detection — the fully-adaptive endpoint of the
// paper's Section 5.1 proposal.
//
// "Rather than specifying a willingness to wait for an (arbitrary) 30
//  seconds, the programmer should request to 'time out' once the system is
//  99% confident that a message will never be arriving."
//
// A binary timeout answers late; a *suspicion level* answers continuously.
// The phi-accrual detector (Hayashibara et al., and the design inside
// today's Cassandra/Akka) models heartbeat inter-arrival times and reports
//   phi(t) = -log10( P(a heartbeat arrives after waiting t) )
// so phi = 2 means 99% confidence the peer is gone, phi = 3 means 99.9%.
// Callers pick the confidence, not a duration — exactly the interface the
// paper argues for.

#ifndef TEMPO_SRC_ADAPTIVE_PHI_ACCRUAL_H_
#define TEMPO_SRC_ADAPTIVE_PHI_ACCRUAL_H_

#include <cstdint>
#include <deque>

#include "src/sim/time.h"

namespace tempo {

// Accrual failure detector over heartbeat arrivals.
class PhiAccrualDetector {
 public:
  struct Options {
    // Sliding window of inter-arrival samples.
    size_t window_size;
    // Conservative default before the window fills.
    SimDuration initial_interval;
    // Variance floor, so a perfectly regular stream does not make the
    // detector infinitely confident after one lost heartbeat.
    SimDuration min_stddev;

    Options()
        : window_size(128), initial_interval(kSecond), min_stddev(20 * kMillisecond) {}
  };

  PhiAccrualDetector() : PhiAccrualDetector(Options()) {}
  explicit PhiAccrualDetector(Options options) : options_(options) {}

  // Records a heartbeat arrival at `now`.
  void Heartbeat(SimTime now);

  // Suspicion level at `now`: 0 when a heartbeat just arrived, rising as
  // the silence outgrows the learned inter-arrival distribution.
  double Phi(SimTime now) const;

  // True once phi exceeds `threshold` (e.g. 2.0 for 99%, 3.0 for 99.9%).
  bool Suspect(SimTime now, double threshold) const { return Phi(now) >= threshold; }

  // How long after the last heartbeat phi crosses `threshold` — the
  // effective (adaptive) timeout this detector implies.
  SimDuration TimeoutForThreshold(double threshold) const;

  size_t samples() const { return intervals_.size(); }
  SimDuration mean_interval() const;
  SimDuration stddev_interval() const;

 private:
  Options options_;
  std::deque<SimDuration> intervals_;
  SimTime last_heartbeat_ = kNeverTime;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_PHI_ACCRUAL_H_
