#include "src/adaptive/slack.h"

#include <algorithm>
#include <utility>

namespace tempo {

struct BatchingTimerService::Batch {
  SimTime at = 0;
  ServiceTimerId base_timer = kInvalidServiceTimer;
  std::vector<std::pair<ServiceTimerId, std::function<void()>>> members;
};

BatchingTimerService::BatchingTimerService(TimerService* base) : base_(base) {}

BatchingTimerService::~BatchingTimerService() = default;

ServiceTimerId BatchingTimerService::Arm(const TimeSpec& spec, std::function<void()> fire) {
  ++requests_;
  const SimTime now = base_->Now();
  const SimTime earliest = now + std::max<SimDuration>(spec.earliest, 0);
  const SimTime latest = now + std::max(spec.latest, spec.earliest);
  const ServiceTimerId id = next_++;

  // Reuse the first already-scheduled wakeup inside the window.
  auto it = batches_.lower_bound(earliest);
  if (it != batches_.end() && it->first <= latest) {
    it->second->members.emplace_back(id, std::move(fire));
    live_.emplace(id, it->second.get());
    return id;
  }

  // No batch fits: schedule a fresh wakeup at `latest` — the lazy choice
  // that maximises the chance of future requests joining this batch.
  auto batch = std::make_unique<Batch>();
  Batch* raw = batch.get();
  raw->at = latest;
  raw->members.emplace_back(id, std::move(fire));
  batches_.emplace(latest, std::move(batch));
  live_.emplace(id, raw);
  ++wakeups_scheduled_;
  raw->base_timer = base_->Arm(latest - now, [this, raw] { FireBatch(raw); });
  return id;
}

void BatchingTimerService::FireBatch(Batch* batch) {
  auto it = batches_.find(batch->at);
  if (it == batches_.end() || it->second.get() != batch) {
    return;
  }
  std::unique_ptr<Batch> owned = std::move(it->second);
  batches_.erase(it);
  for (auto& [id, fire] : owned->members) {
    live_.erase(id);
  }
  for (auto& [id, fire] : owned->members) {
    if (fire) {
      fire();
    }
  }
}

bool BatchingTimerService::Cancel(ServiceTimerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  Batch* batch = it->second;
  live_.erase(it);
  auto member = std::find_if(batch->members.begin(), batch->members.end(),
                             [id](const auto& m) { return m.first == id; });
  if (member != batch->members.end()) {
    batch->members.erase(member);
  }
  if (batch->members.empty()) {
    // Last member gone: cancel the underlying wakeup entirely.
    base_->Cancel(batch->base_timer);
    batches_.erase(batch->at);
  }
  return true;
}

SlackTicker::SlackTicker(BatchingTimerService* service, SimDuration period, SimDuration slack,
                         std::function<void()> fn)
    : service_(service), period_(period), slack_(slack), fn_(std::move(fn)) {}

void SlackTicker::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  epoch_ = service_->Now();
  last_tick_ = epoch_;
  ticks_ = 0;
  ArmNext();
}

void SlackTicker::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (current_ != kInvalidServiceTimer) {
    service_->Cancel(current_);
    current_ = kInvalidServiceTimer;
  }
}

void SlackTicker::ArmNext() {
  // Schedule off the nominal grid so the average frequency holds even when
  // individual ticks land late within their slack windows.
  const SimTime nominal = epoch_ + static_cast<SimDuration>(ticks_ + 1) * period_;
  const SimTime now = service_->Now();
  const SimDuration earliest = std::max<SimDuration>(0, nominal - slack_ / 2 - now);
  const SimDuration latest = std::max<SimDuration>(earliest, nominal + slack_ / 2 - now);
  current_ = service_->Arm(TimeSpec::Window(earliest, latest), [this] {
    current_ = kInvalidServiceTimer;
    if (!running_) {
      return;
    }
    ++ticks_;
    last_tick_ = service_->Now();
    if (fn_) {
      fn_();
    }
    if (running_) {
      ArmNext();
    }
  });
}

SimDuration SlackTicker::average_period() const {
  if (ticks_ == 0) {
    return 0;
  }
  return (last_tick_ - epoch_) / static_cast<SimDuration>(ticks_);
}

}  // namespace tempo
