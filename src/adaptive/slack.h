// A richer notion of time (Section 5.3).
//
// "Please wake up this thread at some convenient time in the next 10
//  minutes" — most background timers carry far more precision than their
//  owners need. A TimeSpec makes the tolerance explicit ([earliest,
//  latest] window), and the BatchingTimerService coalesces every window
//  that overlaps an already-scheduled wakeup onto that wakeup — the
//  generalisation of Linux's round_jiffies whole-second batching, and the
//  mechanism behind the power savings quantified in bench/power_wakeups.

#ifndef TEMPO_SRC_ADAPTIVE_SLACK_H_
#define TEMPO_SRC_ADAPTIVE_SLACK_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/adaptive/timer_service.h"

namespace tempo {

// A tolerant expiry specification, relative to now.
struct TimeSpec {
  SimDuration earliest = 0;
  SimDuration latest = 0;

  // Exact time: no tolerance.
  static TimeSpec Exact(SimDuration at) { return TimeSpec{at, at}; }
  // "Any time after d, but within d + slack."
  static TimeSpec After(SimDuration d, SimDuration slack) { return TimeSpec{d, d + slack}; }
  // Explicit window.
  static TimeSpec Window(SimDuration earliest, SimDuration latest) {
    return TimeSpec{earliest, latest};
  }

  SimDuration slack() const { return latest - earliest; }
};

// Builds the Section 5.3 "statistical" expiry expression — "after we have
// exceeded k standard deviations above the mean round-trip time to this
// host" — as a concrete window: earliest at mean + k*stddev, with the
// given slack for batching. `mean`/`stddev` typically come from a
// JacobsonEstimator or PhiAccrualDetector tracking the peer.
inline TimeSpec AfterDeviations(SimDuration mean, SimDuration stddev, double k,
                                SimDuration slack = 0) {
  const SimDuration threshold =
      mean + static_cast<SimDuration>(k * static_cast<double>(stddev));
  return TimeSpec::After(threshold, slack);
}

// Coalescing layer over a TimerService. Each underlying wakeup serves every
// pending request whose window contains the wakeup time.
class BatchingTimerService {
 public:
  explicit BatchingTimerService(TimerService* base);
  ~BatchingTimerService();
  BatchingTimerService(const BatchingTimerService&) = delete;
  BatchingTimerService& operator=(const BatchingTimerService&) = delete;

  // Arms within the window; fire runs at some time in [earliest, latest].
  ServiceTimerId Arm(const TimeSpec& spec, std::function<void()> fire);

  bool Cancel(ServiceTimerId id);

  SimTime Now() const { return base_->Now(); }

  // Requests armed through this layer.
  uint64_t requests() const { return requests_; }
  // Wakeups actually scheduled on the base service — the power metric.
  uint64_t wakeups_scheduled() const { return wakeups_scheduled_; }

 private:
  struct Batch;
  void FireBatch(Batch* batch);

  TimerService* base_;
  // Scheduled batches keyed by absolute wakeup time.
  std::map<SimTime, std::unique_ptr<Batch>> batches_;
  std::map<ServiceTimerId, Batch*> live_;
  ServiceTimerId next_ = 1;
  uint64_t requests_ = 0;
  uint64_t wakeups_scheduled_ = 0;
};

// A low-precision periodic ticker over the batching service: "every period
// on average", tolerating per-tick lateness of up to `slack` — e.g. "every
// 5 minutes, on average over an hour" (Section 5.3).
class SlackTicker {
 public:
  SlackTicker(BatchingTimerService* service, SimDuration period, SimDuration slack,
              std::function<void()> fn);
  ~SlackTicker() { Stop(); }

  void Start();
  void Stop();

  uint64_t ticks() const { return ticks_; }
  // Long-run average period so far (0 before the second tick).
  SimDuration average_period() const;

 private:
  void ArmNext();

  BatchingTimerService* service_;
  SimDuration period_;
  SimDuration slack_;
  std::function<void()> fn_;
  bool running_ = false;
  SimTime epoch_ = 0;
  SimTime last_tick_ = 0;
  uint64_t ticks_ = 0;
  ServiceTimerId current_ = kInvalidServiceTimer;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_SLACK_H_
