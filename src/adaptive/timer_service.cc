#include "src/adaptive/timer_service.h"

#include <memory>
#include <utility>

namespace tempo {

ServiceTimerId SimTimerService::Arm(SimDuration timeout, std::function<void()> fire) {
  const ServiceTimerId id = next_++;
  ++arms_;
  auto fn = std::make_shared<std::function<void()>>(std::move(fire));
  const EventId event = sim_->ScheduleAfter(timeout, [this, id, fn] {
    live_.erase(id);
    (*fn)();
  });
  live_.emplace(id, event);
  return id;
}

bool SimTimerService::Cancel(ServiceTimerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  sim_->Cancel(it->second);
  live_.erase(it);
  return true;
}

LinuxTimerService::LinuxTimerService(LinuxKernel* kernel, const std::string& callsite, Pid pid)
    : kernel_(kernel), callsite_(callsite), pid_(pid) {}

SimTime LinuxTimerService::Now() const { return kernel_->sim().Now(); }

ServiceTimerId LinuxTimerService::Arm(SimDuration timeout, std::function<void()> fire) {
  Slot* slot = nullptr;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slots_.push_back(std::make_unique<Slot>());
    slot = slots_.back().get();
    slot->timer = kernel_->InitTimer(callsite_, [slot, this] {
      const ServiceTimerId id = slot->current;
      slot->current = kInvalidServiceTimer;
      auto fire_fn = std::move(slot->fire);
      slot->fire = nullptr;
      live_.erase(id);
      free_slots_.push_back(slot);
      if (fire_fn) {
        fire_fn();
      }
    }, pid_);
  }
  const ServiceTimerId id = next_++;
  ++arms_;
  slot->current = id;
  slot->fire = std::move(fire);
  live_.emplace(id, slot);
  kernel_->ModTimerUser(slot->timer, timeout);
  return id;
}

bool LinuxTimerService::Cancel(ServiceTimerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  Slot* slot = it->second;
  kernel_->DelTimer(slot->timer);
  slot->current = kInvalidServiceTimer;
  slot->fire = nullptr;
  live_.erase(it);
  free_slots_.push_back(slot);
  return true;
}

}  // namespace tempo
