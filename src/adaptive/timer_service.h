// Substrate-independent timer surface for the Section-5 libraries.
//
// The adaptive and use-case-specific interfaces are deliberately written
// against a four-method surface, so they run over a bare simulator (tests,
// benches), over the instrumented Linux kernel model (so their activity is
// traceable like any other timer client), or — in a real system — over
// whatever the host provides.

#ifndef TEMPO_SRC_ADAPTIVE_TIMER_SERVICE_H_
#define TEMPO_SRC_ADAPTIVE_TIMER_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/oslinux/kernel.h"
#include "src/sim/simulator.h"

namespace tempo {

// Handle to an armed service timer; 0 invalid.
using ServiceTimerId = uint64_t;
inline constexpr ServiceTimerId kInvalidServiceTimer = 0;

// The minimal set/cancel surface (the very interface the paper argues is
// too low-level — everything in this module is built on top of it).
class TimerService {
 public:
  virtual ~TimerService() = default;

  // Arms a one-shot timer `timeout` from now.
  virtual ServiceTimerId Arm(SimDuration timeout, std::function<void()> fire) = 0;

  // Cancels; false if already fired/canceled/unknown.
  virtual bool Cancel(ServiceTimerId id) = 0;

  // Current time.
  virtual SimTime Now() const = 0;

  // Number of Arm calls (for overhead comparisons).
  virtual uint64_t arms() const = 0;
};

// TimerService over a bare simulator.
class SimTimerService : public TimerService {
 public:
  explicit SimTimerService(Simulator* sim) : sim_(sim) {}

  ServiceTimerId Arm(SimDuration timeout, std::function<void()> fire) override;
  bool Cancel(ServiceTimerId id) override;
  SimTime Now() const override { return sim_->Now(); }
  uint64_t arms() const override { return arms_; }

 private:
  Simulator* sim_;
  std::map<ServiceTimerId, EventId> live_;
  ServiceTimerId next_ = 1;
  uint64_t arms_ = 0;
};

// TimerService over the instrumented Linux kernel model: every Arm is a
// real (traced) kernel timer set from the given call-site.
class LinuxTimerService : public TimerService {
 public:
  LinuxTimerService(LinuxKernel* kernel, const std::string& callsite, Pid pid);

  ServiceTimerId Arm(SimDuration timeout, std::function<void()> fire) override;
  bool Cancel(ServiceTimerId id) override;
  SimTime Now() const override;
  uint64_t arms() const override { return arms_; }

 private:
  struct Slot {
    LinuxTimer* timer = nullptr;
    ServiceTimerId current = kInvalidServiceTimer;
    std::function<void()> fire;
  };
  LinuxKernel* kernel_;
  std::string callsite_;
  Pid pid_;
  std::deque<std::unique_ptr<Slot>> slots_;
  std::deque<Slot*> free_slots_;
  std::map<ServiceTimerId, Slot*> live_;
  ServiceTimerId next_ = 1;
  uint64_t arms_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ADAPTIVE_TIMER_SERVICE_H_
