#include "src/analysis/classify.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/analysis/render.h"

namespace tempo {

const char* UsagePatternName(UsagePattern pattern) {
  switch (pattern) {
    case UsagePattern::kPeriodic:
      return "periodic";
    case UsagePattern::kWatchdog:
      return "watchdog";
    case UsagePattern::kDelay:
      return "delay";
    case UsagePattern::kTimeout:
      return "timeout";
    case UsagePattern::kDeferred:
      return "deferred";
    case UsagePattern::kCountdown:
      return "countdown";
    case UsagePattern::kOther:
      return "other";
    case UsagePattern::kSingleUse:
      return "single-use";
  }
  return "?";
}

namespace {

// Finds the largest cluster of values within +/- variance of a common
// centre. Returns {count, centre}. O(n log n).
std::pair<size_t, SimDuration> DominantValue(std::vector<SimDuration> values,
                                             SimDuration variance) {
  if (values.empty()) {
    return {0, 0};
  }
  std::sort(values.begin(), values.end());
  size_t best = 0;
  SimDuration centre = values.front();
  size_t lo = 0;
  for (size_t hi = 0; hi < values.size(); ++hi) {
    while (values[hi] - values[lo] > 2 * variance) {
      ++lo;
    }
    const size_t count = hi - lo + 1;
    if (count > best) {
      best = count;
      centre = values[lo + (hi - lo) / 2];
    }
  }
  return {best, centre};
}

bool Near(SimDuration a, SimDuration b, SimDuration variance) {
  const SimDuration diff = a > b ? a - b : b - a;
  return diff <= variance;
}

}  // namespace

TimerClass ClassifyGroup(const std::vector<Episode>& group, const ClassifyOptions& options) {
  TimerClass result;
  if (group.empty()) {
    return result;
  }
  result.key = ClusterKeyFor(group.front());
  result.callsite = group.front().callsite;
  result.pid = group.front().pid;
  result.episodes = group.size();
  result.user = group.front().user();

  const size_t n = group.size();
  if (n < options.min_episodes) {
    result.pattern = UsagePattern::kSingleUse;
    result.dominant_timeout = group.front().timeout;
    return result;
  }

  // Countdown detection: the next set's value is the previous value minus
  // the elapsed time (select writes back the remaining time, Figure 4).
  size_t countdown_pairs = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const SimDuration elapsed = group[i + 1].set_time - group[i].set_time;
    const SimDuration expected = group[i].timeout - elapsed;
    if (expected > 0 && group[i + 1].timeout < group[i].timeout &&
        Near(group[i + 1].timeout, expected, options.variance)) {
      ++countdown_pairs;
    }
  }
  if (static_cast<double>(countdown_pairs) >= 0.5 * static_cast<double>(n - 1)) {
    result.pattern = UsagePattern::kCountdown;
    // The dominant value of a countdown is its starting (full) value.
    SimDuration full = 0;
    for (const Episode& e : group) {
      full = std::max(full, e.timeout);
    }
    result.dominant_timeout = full;
    return result;
  }

  std::vector<SimDuration> values;
  values.reserve(n);
  for (const Episode& e : group) {
    values.push_back(e.canonical);
  }
  const auto [dominant_count, dominant] = DominantValue(std::move(values), options.variance);
  result.dominant_timeout = dominant;
  const double same_frac = static_cast<double>(dominant_count) / static_cast<double>(n);
  if (same_frac < options.dominance) {
    result.pattern = UsagePattern::kOther;  // irregular / adaptive values
    return result;
  }

  // Behaviour statistics over the dominant-value episodes.
  size_t expired = 0;
  size_t canceled = 0;
  size_t reset = 0;
  size_t expired_with_next = 0;
  size_t immediate_reset_after_expiry = 0;
  for (size_t i = 0; i < n; ++i) {
    const Episode& e = group[i];
    if (!Near(e.canonical, dominant, options.variance)) {
      continue;
    }
    switch (e.end) {
      case EpisodeEnd::kExpired:
        ++expired;
        if (i + 1 < n) {
          ++expired_with_next;
          if (group[i + 1].set_time - e.end_time <= options.variance) {
            ++immediate_reset_after_expiry;
          }
        }
        break;
      case EpisodeEnd::kCanceled:
        ++canceled;
        break;
      case EpisodeEnd::kReset:
        ++reset;
        break;
      case EpisodeEnd::kOpen:
        break;
    }
  }
  const double total = static_cast<double>(expired + canceled + reset);
  if (total == 0) {
    result.pattern = UsagePattern::kOther;
    return result;
  }
  const double expire_frac = static_cast<double>(expired) / total;
  const double cancel_frac = static_cast<double>(canceled) / total;
  const double reset_frac = static_cast<double>(reset) / total;

  if (reset_frac >= 0.5) {
    // Endless deferral is a watchdog; deferral that periodically gives way
    // to an expiry is the Vista "deferred operation" pattern.
    result.pattern = expire_frac >= 0.1 ? UsagePattern::kDeferred : UsagePattern::kWatchdog;
    return result;
  }
  if (expire_frac >= options.dominance) {
    const double immediate_frac =
        expired_with_next > 0
            ? static_cast<double>(immediate_reset_after_expiry) /
                  static_cast<double>(expired_with_next)
            : 0.0;
    result.pattern =
        immediate_frac >= 0.5 ? UsagePattern::kPeriodic : UsagePattern::kDelay;
    return result;
  }
  if (cancel_frac >= options.dominance) {
    result.pattern = UsagePattern::kTimeout;
    return result;
  }
  if (reset_frac >= 0.3 && expire_frac >= 0.1) {
    result.pattern = UsagePattern::kDeferred;
    return result;
  }
  result.pattern = UsagePattern::kOther;
  return result;
}

void ClassifyPass::Accumulate(std::span<const TraceRecord> records) {
  episodes_.Accumulate(records);
}

void ClassifyPass::Merge(AnalysisPass&& other) {
  episodes_.Merge(std::move(dynamic_cast<ClassifyPass&>(other).episodes_));
}

std::vector<TimerClass> ClassifyPass::Result() const {
  std::vector<TimerClass> out;
  EpisodeBuilder copy = episodes_;  // Finish consumes; keep the pass reusable
  for (const auto& group : GroupEpisodes(std::move(copy).Finish())) {
    out.push_back(ClassifyGroup(group, options_));
  }
  return out;
}

std::unique_ptr<AnalysisPass> ClassifyPass::Fork() const {
  return std::make_unique<ClassifyPass>(options_, column_);
}

void ClassifyPass::Render(RenderSink& sink) {
  sink.Section("patterns",
               "usage patterns:\n" +
                   RenderPatternHistogram({{column_, PatternHistogram(Result())}}) +
                   "\n");
}

std::vector<TimerClass> ClassifyTrace(const std::vector<TraceRecord>& records,
                                      const ClassifyOptions& options) {
  ClassifyPass pass(options);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

std::map<UsagePattern, double> PatternHistogram(const std::vector<TimerClass>& classes) {
  std::map<UsagePattern, double> histogram;
  size_t considered = 0;
  for (const TimerClass& c : classes) {
    if (c.pattern == UsagePattern::kSingleUse) {
      continue;
    }
    ++considered;
    histogram[c.pattern] += 1.0;
  }
  if (considered > 0) {
    for (auto& [pattern, value] : histogram) {
      value = 100.0 * value / static_cast<double>(considered);
    }
  }
  return histogram;
}

}  // namespace tempo
