// Usage-pattern classifier (Section 4.1.1).
//
// A repeatedly used timer shows one of a handful of behaviours:
//   * periodic  — always expires and is immediately re-set to the same
//                 relative value (page-out timer, workqueue tickers);
//   * watchdog  — never expires: re-set to the same relative value before
//                 its expiry (console blank timeout);
//   * delay     — usually expires and is set again to the same value after
//                 a non-trivial gap (fixed-interval sleeps);
//   * timeout   — almost never expires: canceled shortly after being set,
//                 and set again later to the same value (RPC calls, IDE
//                 commands);
//   * deferred  — (Vista) deferred repeatedly like a watchdog, but expires
//                 after a few iterations and is later restarted (lazy
//                 registry-handle close);
//   * countdown — select-style: successive sets count the previous value
//                 down by the elapsed time until it reaches zero (the
//                 X/icewm idiom of Figure 4);
//   * other     — no regularity (select loops multiplexing many sources,
//                 adaptive timers).
//
// The classifier allows 2 ms of variance when comparing timeout values and
// when testing "immediately re-set", matching the jitter bound the paper
// determined experimentally (Sections 3.1, 4.1.1).

#ifndef TEMPO_SRC_ANALYSIS_CLASSIFY_H_
#define TEMPO_SRC_ANALYSIS_CLASSIFY_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/lifetimes.h"
#include "src/analysis/pass.h"

namespace tempo {

// The usage patterns of Section 4.1.1 (+ countdown, which the paper
// identifies separately in Section 4.2 and filters for Figure 5).
enum class UsagePattern : uint8_t {
  kPeriodic = 0,
  kWatchdog = 1,
  kDelay = 2,
  kTimeout = 3,
  kDeferred = 4,
  kCountdown = 5,
  kOther = 6,
  kSingleUse = 7,  // armed fewer than 3 times: no pattern to speak of
};

const char* UsagePatternName(UsagePattern pattern);

// Classifier tuning.
struct ClassifyOptions {
  // Variance allowed when comparing timeout values / re-set gaps.
  SimDuration variance;
  // Minimum episodes before a pattern is assigned.
  size_t min_episodes;
  // Fraction of episodes that must agree for the dominant behaviours.
  double dominance;

  ClassifyOptions() : variance(2 * kMillisecond), min_episodes(3), dominance(0.7) {}
};

// Classification result for one timer (cluster).
struct TimerClass {
  ClusterKey key;
  CallsiteId callsite = kUnknownCallsite;
  Pid pid = kKernelPid;
  UsagePattern pattern = UsagePattern::kOther;
  size_t episodes = 0;
  SimDuration dominant_timeout = 0;  // most common value (0 if none)
  bool user = false;
};

// Classifies one group of episodes (same cluster, time-ordered).
TimerClass ClassifyGroup(const std::vector<Episode>& group, const ClassifyOptions& options);

// Streaming usage-pattern classification (Figure 2) as an AnalysisPass.
// Classification itself needs every episode of a timer, so the pass
// streams records into a mergeable EpisodeBuilder and classifies once,
// at Result/Render time.
class ClassifyPass : public AnalysisPass {
 public:
  explicit ClassifyPass(ClassifyOptions options = ClassifyOptions(),
                        std::string column = "trace")
      : options_(options), column_(std::move(column)) {}

  const char* name() const override { return "patterns"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // Per-timer classifications; call after all merges.
  std::vector<TimerClass> Result() const;

 private:
  ClassifyOptions options_;
  std::string column_;  // column label in the rendered histogram
  EpisodeBuilder episodes_;
};

// Classifies a whole trace.
// Legacy whole-vector entry point, kept as a thin wrapper over
// ClassifyPass — prefer the pass for anything that may grow large.
std::vector<TimerClass> ClassifyTrace(const std::vector<TraceRecord>& records,
                                      const ClassifyOptions& options);

// Histogram for Figure 2: fraction of timers per pattern (single-use timers
// are excluded, as the paper's percentages cover regularly used timers).
std::map<UsagePattern, double> PatternHistogram(const std::vector<TimerClass>& classes);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_CLASSIFY_H_
