#include "src/analysis/histogram.h"

#include <algorithm>
#include <utility>

#include "src/analysis/render.h"
#include "src/oslinux/jiffies.h"

namespace tempo {

HistogramPass::BucketKey HistogramPass::KeyFor(const TraceRecord& r) const {
  BucketKey key{};
  if (options_.jiffy_quantise_kernel && !r.is_user() &&
      (r.flags & kFlagJiffyWheel) != 0) {
    // Kernel wheel timers: read the exact jiffy delta off the absolute
    // expiry, as the paper's instrumentation does — this undoes the
    // sub-2 ms conversion jitter of the observed relative value.
    key.jiffy = true;
    key.quantised = static_cast<int64_t>(TimeToJiffies(r.expiry)) -
                    static_cast<int64_t>(TimeToJiffies(r.timestamp));
  } else {
    key.jiffy = false;
    // 0.1 ms buckets for exactly supplied values.
    const SimDuration grain = kMillisecond / 10;
    key.quantised = (r.timeout + grain / 2) / grain;
  }
  return key;
}

void HistogramPass::Accumulate(std::span<const TraceRecord> records) {
  if (options_.exclude_countdowns) {
    episodes_.Accumulate(records);
  }
  for (const TraceRecord& r : records) {
    if (r.op != TimerOp::kSet && r.op != TimerOp::kBlock) {
      continue;
    }
    if (options_.user_only && !r.is_user()) {
      continue;
    }
    if (options_.exclude_pids.count(r.pid) != 0) {
      continue;
    }
    const BucketKey key = KeyFor(r);
    ++total_;
    ++counts_[key];
    if (options_.exclude_countdowns) {
      ++per_timer_[r.timer][key];
    }
  }
}

void HistogramPass::Merge(AnalysisPass&& other) {
  auto& later = dynamic_cast<HistogramPass&>(other);
  total_ += later.total_;
  for (const auto& [key, count] : later.counts_) {
    counts_[key] += count;
  }
  for (auto& [timer, keys] : later.per_timer_) {
    auto& mine = per_timer_[timer];
    for (const auto& [key, count] : keys) {
      mine[key] += count;
    }
  }
  episodes_.Merge(std::move(later.episodes_));
}

ValueHistogram HistogramPass::Result() const {
  std::map<BucketKey, uint64_t> counts = counts_;
  uint64_t total = total_;
  if (options_.exclude_countdowns) {
    // Identify countdown timers now that every episode is known, then
    // back their contributions out — identical counts to the serial
    // filter that skipped their records up front.
    EpisodeBuilder copy = episodes_;
    for (const auto& group : GroupEpisodes(std::move(copy).Finish())) {
      const TimerClass c = ClassifyGroup(group, options_.classify);
      if (c.pattern != UsagePattern::kCountdown || c.key.b != 0) {
        continue;
      }
      const auto it = per_timer_.find(c.key.a);
      if (it == per_timer_.end()) {
        continue;
      }
      for (const auto& [key, count] : it->second) {
        auto bucket = counts.find(key);
        bucket->second -= count;
        if (bucket->second == 0) {
          counts.erase(bucket);
        }
        total -= count;
      }
    }
  }

  ValueHistogram histogram;
  histogram.total_sets = total;
  if (total == 0) {
    return histogram;
  }
  uint64_t covered = 0;
  for (const auto& [key, count] : counts) {
    const double percent = 100.0 * static_cast<double>(count) / static_cast<double>(total);
    if (percent < options_.min_percent) {
      continue;
    }
    ValueBucket bucket;
    bucket.count = count;
    bucket.percent = percent;
    if (key.jiffy) {
      bucket.jiffies = key.quantised;
      bucket.value = key.quantised * kJiffy;
    } else {
      bucket.jiffies = -1;
      bucket.value = key.quantised * (kMillisecond / 10);
    }
    covered += count;
    histogram.buckets.push_back(bucket);
  }
  std::sort(histogram.buckets.begin(), histogram.buckets.end(),
            [](const ValueBucket& a, const ValueBucket& b) { return a.value < b.value; });
  histogram.coverage_percent =
      100.0 * static_cast<double>(covered) / static_cast<double>(total);
  return histogram;
}

std::unique_ptr<AnalysisPass> HistogramPass::Fork() const {
  return std::make_unique<HistogramPass>(options_, show_jiffies_);
}

void HistogramPass::Render(RenderSink& sink) {
  sink.Section("values",
               "common values:\n" + RenderValueHistogram(Result(), show_jiffies_) + "\n");
}

ValueHistogram ComputeValueHistogram(const std::vector<TraceRecord>& records,
                                     const HistogramOptions& options) {
  HistogramPass pass(options);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

}  // namespace tempo
