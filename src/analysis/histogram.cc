#include "src/analysis/histogram.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/oslinux/jiffies.h"

namespace tempo {

ValueHistogram ComputeValueHistogram(const std::vector<TraceRecord>& records,
                                     const HistogramOptions& options) {
  // Optionally identify countdown timers to filter out.
  std::unordered_set<TimerId> countdown_timers;
  if (options.exclude_countdowns) {
    for (const TimerClass& c : ClassifyTrace(records, options.classify)) {
      if (c.pattern == UsagePattern::kCountdown && c.key.b == 0) {
        countdown_timers.insert(c.key.a);
      }
    }
  }

  struct BucketKey {
    int64_t quantised;
    bool jiffy;
    bool operator<(const BucketKey& o) const {
      if (jiffy != o.jiffy) {
        return jiffy < o.jiffy;
      }
      return quantised < o.quantised;
    }
  };
  std::map<BucketKey, uint64_t> counts;
  uint64_t total = 0;

  for (const TraceRecord& r : records) {
    if (r.op != TimerOp::kSet && r.op != TimerOp::kBlock) {
      continue;
    }
    if (options.user_only && !r.is_user()) {
      continue;
    }
    if (options.exclude_pids.count(r.pid) != 0) {
      continue;
    }
    if (options.exclude_countdowns && countdown_timers.count(r.timer) != 0) {
      continue;
    }
    ++total;
    BucketKey key{};
    if (options.jiffy_quantise_kernel && !r.is_user() &&
        (r.flags & kFlagJiffyWheel) != 0) {
      // Kernel wheel timers: read the exact jiffy delta off the absolute
      // expiry, as the paper's instrumentation does — this undoes the
      // sub-2 ms conversion jitter of the observed relative value.
      key.jiffy = true;
      key.quantised = static_cast<int64_t>(TimeToJiffies(r.expiry)) -
                      static_cast<int64_t>(TimeToJiffies(r.timestamp));
    } else {
      key.jiffy = false;
      // 0.1 ms buckets for exactly supplied values.
      const SimDuration grain = kMillisecond / 10;
      key.quantised = (r.timeout + grain / 2) / grain;
    }
    ++counts[key];
  }

  ValueHistogram histogram;
  histogram.total_sets = total;
  if (total == 0) {
    return histogram;
  }
  uint64_t covered = 0;
  for (const auto& [key, count] : counts) {
    const double percent = 100.0 * static_cast<double>(count) / static_cast<double>(total);
    if (percent < options.min_percent) {
      continue;
    }
    ValueBucket bucket;
    bucket.count = count;
    bucket.percent = percent;
    if (key.jiffy) {
      bucket.jiffies = key.quantised;
      bucket.value = key.quantised * kJiffy;
    } else {
      bucket.jiffies = -1;
      bucket.value = key.quantised * (kMillisecond / 10);
    }
    covered += count;
    histogram.buckets.push_back(bucket);
  }
  std::sort(histogram.buckets.begin(), histogram.buckets.end(),
            [](const ValueBucket& a, const ValueBucket& b) { return a.value < b.value; });
  histogram.coverage_percent =
      100.0 * static_cast<double>(covered) / static_cast<double>(total);
  return histogram;
}

}  // namespace tempo
