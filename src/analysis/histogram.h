// Timeout-value histograms — Figures 3, 5, 6 and 7.
//
// The paper's headline observation: the distribution of timeout values is
// dominated by a small set of round, programmer-chosen constants. The
// histogram buckets observed set values, quantising kernel-side Linux
// values to whole jiffies (to undo conversion jitter) and user/Vista values
// to 0.1 ms. Buckets below a percentage threshold (2 % in the paper) are
// dropped. Optional filters reproduce the paper's variants: syscall-only
// values (Figure 6) and traces with the X/icewm select-countdown timers
// removed (Figure 5).

#ifndef TEMPO_SRC_ANALYSIS_HISTOGRAM_H_
#define TEMPO_SRC_ANALYSIS_HISTOGRAM_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/pass.h"
#include "src/trace/record.h"

namespace tempo {

// One histogram bucket.
struct ValueBucket {
  SimDuration value = 0;   // canonical bucket value
  uint64_t count = 0;      // number of set operations
  double percent = 0.0;    // of all counted sets
  int64_t jiffies = -1;    // jiffy count for kernel-side Linux values
};

// Histogram configuration.
struct HistogramOptions {
  // Drop buckets below this percentage of all sets (paper: 2 %).
  double min_percent = 2.0;
  // Quantise kernel (non-user) values to jiffies; set false for Vista.
  bool jiffy_quantise_kernel = true;
  // Count only records flagged kFlagUser (Figure 6).
  bool user_only = false;
  // Exclude records from these pids (the X/icewm filter of Figure 5).
  std::set<Pid> exclude_pids;
  // Exclude timers classified as select countdowns (alternative filter).
  bool exclude_countdowns = false;
  ClassifyOptions classify;  // used when exclude_countdowns is set
};

// Result: buckets above threshold plus the coverage they represent.
struct ValueHistogram {
  std::vector<ValueBucket> buckets;  // sorted by value
  uint64_t total_sets = 0;           // sets considered (after filters)
  double coverage_percent = 0.0;     // % of sets the shown buckets cover
};

// Streaming value histogram (Figures 3/5/6/7) as an AnalysisPass. Bucket
// counts merge by addition; when exclude_countdowns is set the pass also
// tracks per-timer contributions and an EpisodeBuilder, so the countdown
// timers identified at Result time can be subtracted exactly — the same
// counts the serial filter produces.
class HistogramPass : public AnalysisPass {
 public:
  explicit HistogramPass(HistogramOptions options = {}, bool show_jiffies = true)
      : options_(std::move(options)), show_jiffies_(show_jiffies) {}

  const char* name() const override { return "values"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished histogram; call after all merges.
  ValueHistogram Result() const;

 private:
  struct BucketKey {
    int64_t quantised = 0;
    bool jiffy = false;
    bool operator<(const BucketKey& o) const {
      if (jiffy != o.jiffy) {
        return jiffy < o.jiffy;
      }
      return quantised < o.quantised;
    }
  };

  BucketKey KeyFor(const TraceRecord& r) const;

  HistogramOptions options_;
  bool show_jiffies_;  // render knob (tracestat --no-jiffies)
  std::map<BucketKey, uint64_t> counts_;
  uint64_t total_ = 0;
  // exclude_countdowns bookkeeping: what each stable timer contributed
  // (to subtract if it classifies as a countdown), and the episodes the
  // classification runs on.
  std::map<TimerId, std::map<BucketKey, uint64_t>> per_timer_;
  EpisodeBuilder episodes_;
};

// Computes the histogram of set values in a trace.
// Legacy whole-vector entry point, kept as a thin wrapper over
// HistogramPass — prefer the pass for anything that may grow large.
ValueHistogram ComputeValueHistogram(const std::vector<TraceRecord>& records,
                                     const HistogramOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_HISTOGRAM_H_
