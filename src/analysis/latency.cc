#include "src/analysis/latency.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/analysis/render.h"
#include "src/sim/time.h"

namespace tempo {

namespace {

size_t BucketIndex(uint64_t sample) {
  const size_t width = static_cast<size_t>(std::bit_width(sample));
  return width < SlackHist::kBucketCount ? width : SlackHist::kBucketCount - 1;
}

uint64_t BucketLowerBound(size_t i) {
  return i == 0 ? 0 : (i == 1 ? 1 : uint64_t{1} << (i - 1));
}

uint64_t BucketUpperBound(size_t i) {
  return i == 0 ? 1 : (i >= 63 ? UINT64_MAX : uint64_t{1} << i);
}

}  // namespace

void SlackHist::Record(uint64_t sample) {
  ++buckets[BucketIndex(sample)];
  ++count;
  sum += sample;
  if (sample < min || count == 1) {
    min = sample;
  }
  if (sample > max) {
    max = sample;
  }
}

void SlackHist::Merge(const SlackHist& other) {
  if (other.count == 0) {
    return;
  }
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets[i] += other.buckets[i];
  }
  if (count == 0 || other.min < min) {
    min = other.min;
  }
  if (other.max > max) {
    max = other.max;
  }
  count += other.count;
  sum += other.sum;
}

double SlackHist::Quantile(double q) const {
  // Same interpolation as obs::Histogram::Quantile so live gauges and
  // offline reports agree digit for digit.
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const uint64_t in_bucket = buckets[i];
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double v = lo + (hi - lo) * frac;
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

SlackClass SlackClassFor(uint16_t flags) {
  if ((flags & kFlagDeferrable) != 0) {
    return SlackClass::kDeferrable;
  }
  if ((flags & kFlagRounded) != 0) {
    return SlackClass::kRounded;
  }
  if ((flags & kFlagHighRes) != 0) {
    return SlackClass::kHighRes;
  }
  return SlackClass::kPlain;
}

const char* SlackClassName(SlackClass c) {
  switch (c) {
    case SlackClass::kDeferrable:
      return "deferrable";
    case SlackClass::kRounded:
      return "rounded";
    case SlackClass::kHighRes:
      return "highres";
    case SlackClass::kPlain:
      return "plain";
  }
  return "?";
}

void SlackState::CloseFired(const OpenArm& arm, SimTime fire) {
  // What the caller asked for, what the kernel scheduled after rounding.
  const SimTime requested =
      arm.timeout > 0 ? arm.set_time + arm.timeout
                      : (arm.expiry > 0 ? arm.expiry : arm.set_time);
  const SimTime deadline = arm.expiry > 0 ? arm.expiry : requested;

  uint64_t slack = 0;
  if (fire >= requested) {
    slack = static_cast<uint64_t>(fire - requested);
  } else {
    // Fired before the request — an expiry clamped by a monotonic
    // Advance, or an absolute set already in the past.
    ++early_fires_;
  }
  const uint64_t firing = fire > deadline ? static_cast<uint64_t>(fire - deadline) : 0;
  const uint64_t skew = deadline > requested ? static_cast<uint64_t>(deadline - requested) : 0;

  total_.Record(slack);
  firing_.Record(firing);
  skew_.Record(skew);
  classes_[static_cast<size_t>(SlackClassFor(arm.flags))].Record(slack);
  by_pid_[arm.pid].Add(slack);
  by_callsite_[arm.callsite].Add(slack);
}

void SlackState::Accumulate(std::span<const TraceRecord> records) {
  for (const TraceRecord& r : records) {
    if (r.op != TimerOp::kInit) {
      first_op_.emplace(r.timer, FirstOp{r.op, r.timestamp, r.flags});
    }
    switch (r.op) {
      case TimerOp::kInit:
        break;
      case TimerOp::kSet:
      case TimerOp::kBlock: {
        auto [it, inserted] = open_.try_emplace(r.timer);
        if (!inserted) {
          // Arming a pending timer abandons the previous span.
          ++rearmed_spans_;
        }
        it->second = OpenArm{r.timestamp, r.timeout, r.expiry, r.callsite, r.pid, r.flags};
        break;
      }
      case TimerOp::kCancel: {
        auto it = open_.find(r.timer);
        if (it == open_.end()) {
          ++unmatched_closes_;
        } else {
          ++canceled_spans_;
          open_.erase(it);
        }
        break;
      }
      case TimerOp::kExpire: {
        auto it = open_.find(r.timer);
        if (it == open_.end()) {
          ++unmatched_closes_;
        } else {
          CloseFired(it->second, r.timestamp);
          open_.erase(it);
        }
        break;
      }
      case TimerOp::kUnblock: {
        auto it = open_.find(r.timer);
        if (it == open_.end()) {
          ++unmatched_closes_;
        } else {
          if ((r.flags & kFlagWaitSatisfied) != 0) {
            ++canceled_spans_;
          } else {
            CloseFired(it->second, r.timestamp);
          }
          open_.erase(it);
        }
        break;
      }
    }
  }
}

void SlackState::Merge(SlackState&& later) {
  // Close our still-open arms with the later range's first operation on
  // the same timer — exactly what the serial scan would do next. The
  // later range counted that closing op as unmatched (it had no arm for
  // it), so re-attribute it here.
  for (auto it = open_.begin(); it != open_.end();) {
    const auto fo = later.first_op_.find(it->first);
    if (fo == later.first_op_.end()) {
      ++it;
      continue;
    }
    switch (fo->second.op) {
      case TimerOp::kSet:
      case TimerOp::kBlock:
        // The later range opened a fresh span on this timer; ours was
        // abandoned, which its fold could not have counted.
        ++rearmed_spans_;
        break;
      case TimerOp::kCancel:
        ++canceled_spans_;
        --later.unmatched_closes_;
        break;
      case TimerOp::kExpire:
        CloseFired(it->second, fo->second.timestamp);
        --later.unmatched_closes_;
        break;
      case TimerOp::kUnblock:
        if ((fo->second.flags & kFlagWaitSatisfied) != 0) {
          ++canceled_spans_;
        } else {
          CloseFired(it->second, fo->second.timestamp);
        }
        --later.unmatched_closes_;
        break;
      case TimerOp::kInit:
        break;  // never recorded as a first op
    }
    it = open_.erase(it);
  }

  total_.Merge(later.total_);
  firing_.Merge(later.firing_);
  skew_.Merge(later.skew_);
  for (size_t i = 0; i < kSlackClassCount; ++i) {
    classes_[i].Merge(later.classes_[i]);
  }
  canceled_spans_ += later.canceled_spans_;
  rearmed_spans_ += later.rearmed_spans_;
  early_fires_ += later.early_fires_;
  unmatched_closes_ += later.unmatched_closes_;
  for (const auto& [pid, blame] : later.by_pid_) {
    by_pid_[pid].Merge(blame);
  }
  for (const auto& [callsite, blame] : later.by_callsite_) {
    by_callsite_[callsite].Merge(blame);
  }
  // Timers we still hold open were untouched by the later range, so the
  // two open sets are disjoint.
  for (auto& [timer, arm] : later.open_) {
    open_.emplace(timer, arm);
  }
  // Keep the earliest first op per timer (ours wins).
  first_op_.merge(later.first_op_);
}

std::unique_ptr<AnalysisPass> LatencyPass::Fork() const {
  return std::make_unique<LatencyPass>(callsites_, options_);
}

void LatencyPass::Accumulate(std::span<const TraceRecord> records) {
  state_.Accumulate(records);
}

void LatencyPass::Merge(AnalysisPass&& other) {
  state_.Merge(std::move(static_cast<LatencyPass&&>(other).state_));
}

void LatencyPass::Render(RenderSink& sink) {
  sink.Section("latency", RenderLatencyReport(state_, callsites_, {}, options_.top_k));
}

namespace {

std::string HistRow(const char* label, const SlackHist& h) {
  char line[192];
  if (h.empty()) {
    std::snprintf(line, sizeof(line), "  %-12s %10" PRIu64 " spans\n", label, h.count);
    return line;
  }
  std::snprintf(line, sizeof(line),
                "  %-12s %10" PRIu64 " spans  p50 %10s  p99 %10s  max %10s\n", label,
                h.count, FormatDuration(static_cast<SimDuration>(h.Quantile(0.50))).c_str(),
                FormatDuration(static_cast<SimDuration>(h.Quantile(0.99))).c_str(),
                FormatDuration(static_cast<SimDuration>(h.max)).c_str());
  return line;
}

// Top-K rows of a blame map, sorted by slack_sum descending (key ascending
// on ties, so the table is deterministic for any merge order).
template <typename Key>
std::vector<std::pair<Key, SlackBlame>> TopK(const std::map<Key, SlackBlame>& blame,
                                             size_t top_k) {
  std::vector<std::pair<Key, SlackBlame>> rows(blame.begin(), blame.end());
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    if (x.second.slack_sum != y.second.slack_sum) {
      return x.second.slack_sum > y.second.slack_sum;
    }
    return x.first < y.first;
  });
  if (rows.size() > top_k) {
    rows.resize(top_k);
  }
  return rows;
}

std::vector<std::string> BlameRow(const std::string& who, const SlackBlame& b) {
  char spans[32];
  std::snprintf(spans, sizeof(spans), "%" PRIu64, b.spans);
  const SimDuration mean =
      b.spans == 0 ? 0
                   : static_cast<SimDuration>(b.slack_sum / b.spans);
  return {who, spans, FormatDuration(static_cast<SimDuration>(b.slack_sum)),
          FormatDuration(mean), FormatDuration(static_cast<SimDuration>(b.slack_max))};
}

}  // namespace

std::string RenderLatencyReport(const SlackState& state, const CallsiteRegistry* callsites,
                                const std::map<Pid, std::string>& process_names,
                                size_t top_k) {
  std::string out = "firing slack:\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  %" PRIu64 " fired  %" PRIu64 " canceled  %" PRIu64 " re-armed  %" PRIu64
                " open  %" PRIu64 " early  %" PRIu64 " unmatched\n",
                state.fired_spans(), state.canceled_spans(), state.rearmed_spans(),
                state.open_spans(), state.early_fires(), state.unmatched_closes());
  out += line;
  out += HistRow("total", state.total());
  out += HistRow("  machinery", state.firing());
  out += HistRow("  rounding", state.skew());
  out += "slack by class:\n";
  for (size_t i = 0; i < kSlackClassCount; ++i) {
    const SlackClass c = static_cast<SlackClass>(i);
    if (state.cls(c).empty()) {
      continue;
    }
    out += HistRow(SlackClassName(c), state.cls(c));
  }

  const auto pid_rows = TopK(state.by_pid(), top_k);
  if (!pid_rows.empty()) {
    out += "slack by process:\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [pid, blame] : pid_rows) {
      std::string who;
      const auto name = process_names.find(pid);
      if (name != process_names.end()) {
        who = name->second;
      } else if (pid == kKernelPid) {
        who = "kernel";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "pid %d", pid);
        who = buf;
      }
      rows.push_back(BlameRow(who, blame));
    }
    out += RenderTable({"process", "spans", "slack", "mean", "max"}, rows);
  }

  const auto callsite_rows = TopK(state.by_callsite(), top_k);
  if (!callsite_rows.empty()) {
    out += "slack by call-site:\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [callsite, blame] : callsite_rows) {
      std::string who;
      if (callsites != nullptr) {
        who = callsites->Name(callsite);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "callsite %u", callsite);
        who = buf;
      }
      rows.push_back(BlameRow(who, blame));
    }
    out += RenderTable({"call-site", "spans", "slack", "mean", "max"}, rows);
  }
  return out;
}

}  // namespace tempo
