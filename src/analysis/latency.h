// Timer firing-slack attribution — the latency observatory's offline core.
//
// The paper's central mechanic is firing *inaccuracy*: jiffy quantisation,
// cascade delay, round_jiffies and deferrable timers all move the moment a
// timer actually fires away from the moment the caller asked for. Rates and
// counts (rates.h) say how often timers fire; this pass says how *late*.
//
// Every kSet/kBlock record carries both the requested relative timeout and
// the post-rounding absolute expiry, and every kExpire record carries the
// delivery timestamp, so three quantities are derivable per span with zero
// wire-format changes:
//
//   requested = set_time + timeout        what the caller asked for
//   deadline  = expiry (post-rounding)    what the kernel scheduled
//   slack     = fire - requested          total user-visible lateness
//     ~ skew   (deadline - requested)     rounding / quantisation, deliberate
//     + firing (fire - deadline)          tick + cascade machinery delay
//
// (each component clamped at zero, so the sum over-counts only when
// rounding moved the deadline *earlier* than the request)
//
// SlackState is the mergeable single-stream fold shared by the offline
// LatencyPass and the live SlackTracker (src/live/slack_tracker.h), which
// is what makes "live == offline over the same records" a structural fact
// rather than a test hope. The join is per TimerId; Vista-style
// kFlagDynamicAlloc ids (fresh id per use, Section 3.3) still join exactly
// because each use gets a unique id, and the blame table clusters them
// back together by call-site.

#ifndef TEMPO_SRC_ANALYSIS_LATENCY_H_
#define TEMPO_SRC_ANALYSIS_LATENCY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/pass.h"
#include "src/sim/process.h"
#include "src/trace/callsite.h"
#include "src/trace/codec.h"
#include "src/trace/record.h"

namespace tempo {

// Standalone mergeable log2 histogram with the same bucket geometry and
// quantile math as obs::Histogram (bucket i holds samples of bit-width i).
// obs::Histogram instances are owned by the registry and can't travel, so
// analysis state and fleet digests carry this value type instead.
struct SlackHist {
  static constexpr size_t kBucketCount = 64;

  std::array<uint64_t, kBucketCount> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // meaningful only when count > 0
  uint64_t max = 0;

  void Record(uint64_t sample);
  void Merge(const SlackHist& other);
  // Value at quantile q in [0, 1], interpolated within the winning bucket
  // and clamped to the observed extremes; 0 when empty.
  double Quantile(double q) const;
  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  bool operator==(const SlackHist&) const = default;
};

// Slack attribution classes, split by the arming record's flags. A timer
// belongs to exactly one class; precedence is deferrable > rounded >
// high-res > plain so e.g. a rounded deferrable timer is blamed on
// deferral (the stronger slack mechanism).
enum class SlackClass : uint8_t {
  kDeferrable = 0,
  kRounded = 1,
  kHighRes = 2,
  kPlain = 3,
};
inline constexpr size_t kSlackClassCount = 4;

// The class an arming record's flags put it in.
SlackClass SlackClassFor(uint16_t flags);

// Short class label ("deferrable", ...).
const char* SlackClassName(SlackClass c);

// Per-key blame aggregate for the top-K tables.
struct SlackBlame {
  uint64_t spans = 0;      // fired spans attributed to this key
  uint64_t slack_sum = 0;  // total slack ns across those spans
  uint64_t slack_max = 0;

  void Add(uint64_t slack) {
    ++spans;
    slack_sum += slack;
    if (slack > slack_max) {
      slack_max = slack;
    }
  }
  void Merge(const SlackBlame& o) {
    spans += o.spans;
    slack_sum += o.slack_sum;
    if (o.slack_max > slack_max) {
      slack_max = o.slack_max;
    }
  }
  bool operator==(const SlackBlame&) const = default;
};

// The mergeable set->fire join. Feed time-ordered batches with Accumulate;
// to combine two states that covered adjacent ranges of the same trace,
// call left.Merge(std::move(right)) where `right` saw strictly later
// records. The merge is exact (the EpisodeBuilder discipline): a span left
// open at the end of the left range is closed by the right range's first
// operation on that timer, and a closing op the right range counted as
// unmatched is re-attributed once the left range supplies its arm.
class SlackState {
 public:
  void Accumulate(std::span<const TraceRecord> records);
  void Merge(SlackState&& later);

  // Aggregates. `total` is the headline fire-vs-requested slack; `firing`
  // and `skew` are its machinery / rounding components; `classes[c]` splits
  // `total` by SlackClass.
  const SlackHist& total() const { return total_; }
  const SlackHist& firing() const { return firing_; }
  const SlackHist& skew() const { return skew_; }
  const SlackHist& cls(SlackClass c) const { return classes_[static_cast<size_t>(c)]; }

  uint64_t fired_spans() const { return total_.count; }
  uint64_t canceled_spans() const { return canceled_spans_; }
  uint64_t rearmed_spans() const { return rearmed_spans_; }
  // Fires that beat their post-rounding deadline (e.g. an expiry clamped
  // by a monotonic Advance); they record slack 0.
  uint64_t early_fires() const { return early_fires_; }
  // Closing ops with no matching arm in the observed range.
  uint64_t unmatched_closes() const { return unmatched_closes_; }
  uint64_t open_spans() const { return open_.size(); }

  const std::map<Pid, SlackBlame>& by_pid() const { return by_pid_; }
  const std::map<CallsiteId, SlackBlame>& by_callsite() const { return by_callsite_; }

  bool operator==(const SlackState&) const = default;

 private:
  // One armed, not-yet-closed timer.
  struct OpenArm {
    SimTime set_time = 0;
    SimDuration timeout = 0;
    SimTime expiry = 0;
    CallsiteId callsite = kUnknownCallsite;
    Pid pid = kKernelPid;
    uint16_t flags = 0;
    bool operator==(const OpenArm&) const = default;
  };
  // First non-init operation per timer in this state's range; what a
  // preceding range's open arm on that timer gets closed by.
  struct FirstOp {
    TimerOp op;
    SimTime timestamp;
    uint16_t flags;
    bool operator==(const FirstOp&) const = default;
  };

  void CloseFired(const OpenArm& arm, SimTime fire);

  SlackHist total_;
  SlackHist firing_;
  SlackHist skew_;
  std::array<SlackHist, kSlackClassCount> classes_;
  uint64_t canceled_spans_ = 0;
  uint64_t rearmed_spans_ = 0;
  uint64_t early_fires_ = 0;
  uint64_t unmatched_closes_ = 0;
  std::map<Pid, SlackBlame> by_pid_;
  std::map<CallsiteId, SlackBlame> by_callsite_;
  std::map<TimerId, OpenArm> open_;
  std::map<TimerId, FirstOp> first_op_;
};

struct LatencyOptions {
  size_t top_k = 10;  // rows in each blame table
};

// Firing-slack attribution as an AnalysisPass. The callsite registry may
// be null (blame rows then show raw ids); when set it must outlive the
// pass. Honors the ordered-merge contract, so --jobs N output is
// byte-identical; declares fields() so v3 reads skip the stack and tid
// stripes.
class LatencyPass : public AnalysisPass {
 public:
  explicit LatencyPass(const CallsiteRegistry* callsites = nullptr,
                       LatencyOptions options = {})
      : callsites_(callsites), options_(options) {}

  const char* name() const override { return "latency"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;
  uint16_t fields() const override {
    return kAllTraceFields & ~(kFieldStack | kFieldTid);
  }

  // The finished join; call after all merges.
  const SlackState& state() const { return state_; }

 private:
  const CallsiteRegistry* callsites_;
  LatencyOptions options_;
  SlackState state_;
};

// The report body LatencyPass renders, exposed so the live path
// (tempotop's latency pane) prints the identical section from a
// SlackTracker's state. `process_names` maps pids to names for the blame
// table and may be empty.
std::string RenderLatencyReport(const SlackState& state, const CallsiteRegistry* callsites,
                                const std::map<Pid, std::string>& process_names,
                                size_t top_k);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_LATENCY_H_
