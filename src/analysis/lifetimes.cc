#include "src/analysis/lifetimes.h"

#include <algorithm>
#include <map>
#include <utility>

namespace tempo {

SimDuration CanonicalTimeout(const TraceRecord& r) {
  // Kernel-side wheel timers: the tracepoint reads the absolute jiffy
  // expiry, so the canonical relative value is the exact jiffy delta.
  if (r.op == TimerOp::kSet && !r.is_user() && (r.flags & kFlagJiffyWheel) != 0 &&
      r.expiry > 0) {
    const Jiffies delta = TimeToJiffies(r.expiry) - TimeToJiffies(r.timestamp);
    return JiffiesToTime(delta);
  }
  return r.timeout;
}

ClusterKey ClusterKeyFor(const Episode& episode) {
  if ((episode.flags & kFlagDynamicAlloc) != 0) {
    // No stable identity: cluster by call-site and thread (Section 3.3).
    return ClusterKey{(uint64_t{1} << 63) | episode.callsite,
                      (static_cast<uint64_t>(static_cast<uint32_t>(episode.pid)) << 32) |
                          static_cast<uint32_t>(episode.tid)};
  }
  return ClusterKey{episode.timer, 0};
}

std::vector<Episode> BuildEpisodes(const std::vector<TraceRecord>& records) {
  std::vector<Episode> episodes;
  episodes.reserve(records.size() / 2);
  // Open episode per timer id (sets) and per (timer,tid) for waits.
  std::map<TimerId, size_t> open;  // timer id -> index into episodes

  auto close = [&](TimerId timer, SimTime at, EpisodeEnd end) {
    auto it = open.find(timer);
    if (it == open.end()) {
      return;
    }
    Episode& e = episodes[it->second];
    e.end_time = at;
    e.end = end;
    open.erase(it);
  };

  for (const TraceRecord& r : records) {
    switch (r.op) {
      case TimerOp::kInit:
        break;
      case TimerOp::kSet:
      case TimerOp::kBlock: {
        // Arming a pending timer ends the previous episode as a reset.
        close(r.timer, r.timestamp, EpisodeEnd::kReset);
        Episode e;
        e.timer = r.timer;
        e.callsite = r.callsite;
        e.pid = r.pid;
        e.tid = r.tid;
        e.set_time = r.timestamp;
        e.timeout = r.timeout;
        e.canonical = CanonicalTimeout(r);
        e.flags = r.flags;
        open.emplace(r.timer, episodes.size());
        episodes.push_back(e);
        break;
      }
      case TimerOp::kCancel:
        close(r.timer, r.timestamp, EpisodeEnd::kCanceled);
        break;
      case TimerOp::kExpire:
        close(r.timer, r.timestamp, EpisodeEnd::kExpired);
        break;
      case TimerOp::kUnblock:
        close(r.timer, r.timestamp,
              (r.flags & kFlagWaitSatisfied) != 0 ? EpisodeEnd::kCanceled
                                                  : EpisodeEnd::kExpired);
        break;
    }
  }
  // Episodes still open at trace end keep kOpen with end_time unset; give
  // them the last timestamp so held() is meaningful.
  if (!records.empty()) {
    const SimTime last = records.back().timestamp;
    for (auto& [timer, idx] : open) {
      episodes[idx].end_time = last;
    }
  }
  return episodes;
}

std::vector<std::vector<Episode>> GroupEpisodes(std::vector<Episode> episodes) {
  std::map<ClusterKey, std::vector<Episode>> groups;
  for (Episode& e : episodes) {
    groups[ClusterKeyFor(e)].push_back(std::move(e));
  }
  std::vector<std::vector<Episode>> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const Episode& x, const Episode& y) { return x.set_time < y.set_time; });
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace tempo
