#include "src/analysis/lifetimes.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace tempo {

SimDuration CanonicalTimeout(const TraceRecord& r) {
  // Kernel-side wheel timers: the tracepoint reads the absolute jiffy
  // expiry, so the canonical relative value is the exact jiffy delta.
  if (r.op == TimerOp::kSet && !r.is_user() && (r.flags & kFlagJiffyWheel) != 0 &&
      r.expiry > 0) {
    const Jiffies delta = TimeToJiffies(r.expiry) - TimeToJiffies(r.timestamp);
    return JiffiesToTime(delta);
  }
  return r.timeout;
}

ClusterKey ClusterKeyFor(const Episode& episode) {
  if ((episode.flags & kFlagDynamicAlloc) != 0) {
    // No stable identity: cluster by call-site and thread (Section 3.3).
    return ClusterKey{(uint64_t{1} << 63) | episode.callsite,
                      (static_cast<uint64_t>(static_cast<uint32_t>(episode.pid)) << 32) |
                          static_cast<uint32_t>(episode.tid)};
  }
  return ClusterKey{episode.timer, 0};
}

void EpisodeBuilder::Close(TimerId timer, SimTime at, EpisodeEnd end) {
  auto it = open_.find(timer);
  if (it == open_.end()) {
    return;
  }
  Episode& e = episodes_[it->second];
  e.end_time = at;
  e.end = end;
  open_.erase(it);
}

void EpisodeBuilder::Accumulate(std::span<const TraceRecord> records) {
  for (const TraceRecord& r : records) {
    if (r.op != TimerOp::kInit) {
      first_op_.emplace(r.timer, FirstOp{r.op, r.timestamp, r.flags});
    }
    switch (r.op) {
      case TimerOp::kInit:
        break;
      case TimerOp::kSet:
      case TimerOp::kBlock: {
        // Arming a pending timer ends the previous episode as a reset.
        Close(r.timer, r.timestamp, EpisodeEnd::kReset);
        Episode e;
        e.timer = r.timer;
        e.callsite = r.callsite;
        e.pid = r.pid;
        e.tid = r.tid;
        e.set_time = r.timestamp;
        e.timeout = r.timeout;
        e.canonical = CanonicalTimeout(r);
        e.flags = r.flags;
        open_.emplace(r.timer, episodes_.size());
        episodes_.push_back(e);
        break;
      }
      case TimerOp::kCancel:
        Close(r.timer, r.timestamp, EpisodeEnd::kCanceled);
        break;
      case TimerOp::kExpire:
        Close(r.timer, r.timestamp, EpisodeEnd::kExpired);
        break;
      case TimerOp::kUnblock:
        Close(r.timer, r.timestamp,
              (r.flags & kFlagWaitSatisfied) != 0 ? EpisodeEnd::kCanceled
                                                  : EpisodeEnd::kExpired);
        break;
    }
  }
  if (!records.empty()) {
    last_ts_ = records.back().timestamp;
    any_records_ = true;
  }
}

void EpisodeBuilder::Merge(EpisodeBuilder&& later) {
  // Close our still-open episodes with the later range's first operation
  // on the same timer — exactly what the serial scan would do next.
  for (auto it = open_.begin(); it != open_.end();) {
    const auto fo = later.first_op_.find(it->first);
    if (fo == later.first_op_.end()) {
      ++it;
      continue;
    }
    Episode& e = episodes_[it->second];
    e.end_time = fo->second.timestamp;
    switch (fo->second.op) {
      case TimerOp::kSet:
      case TimerOp::kBlock:
        e.end = EpisodeEnd::kReset;
        break;
      case TimerOp::kCancel:
        e.end = EpisodeEnd::kCanceled;
        break;
      case TimerOp::kExpire:
        e.end = EpisodeEnd::kExpired;
        break;
      case TimerOp::kUnblock:
        e.end = (fo->second.flags & kFlagWaitSatisfied) != 0 ? EpisodeEnd::kCanceled
                                                             : EpisodeEnd::kExpired;
        break;
      case TimerOp::kInit:
        break;  // never recorded as a first op
    }
    it = open_.erase(it);
  }

  // Concatenating preserves creation (record) order: all of the later
  // range's episodes started after all of ours.
  const size_t offset = episodes_.size();
  episodes_.insert(episodes_.end(), std::make_move_iterator(later.episodes_.begin()),
                   std::make_move_iterator(later.episodes_.end()));
  // Timers we still hold open were untouched by the later range, so the
  // two open sets are disjoint.
  for (const auto& [timer, index] : later.open_) {
    open_.emplace(timer, index + offset);
  }
  // Keep the earliest first op per timer (ours wins).
  first_op_.merge(later.first_op_);
  if (later.any_records_) {
    last_ts_ = later.last_ts_;
    any_records_ = true;
  }
}

std::vector<Episode> EpisodeBuilder::Finish() && {
  // Episodes still open at trace end keep kOpen with end_time unset; give
  // them the last timestamp so held() is meaningful.
  if (any_records_) {
    for (const auto& [timer, index] : open_) {
      episodes_[index].end_time = last_ts_;
    }
  }
  return std::move(episodes_);
}

std::vector<Episode> BuildEpisodes(const std::vector<TraceRecord>& records) {
  EpisodeBuilder builder;
  builder.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return std::move(builder).Finish();
}

std::vector<std::vector<Episode>> GroupEpisodes(std::vector<Episode> episodes) {
  std::map<ClusterKey, std::vector<Episode>> groups;
  for (Episode& e : episodes) {
    groups[ClusterKeyFor(e)].push_back(std::move(e));
  }
  std::vector<std::vector<Episode>> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const Episode& x, const Episode& y) { return x.set_time < y.set_time; });
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace tempo
