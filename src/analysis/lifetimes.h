// Timer lifetime reconstruction.
//
// Raw traces are flat streams of set/cancel/expire (and block/unblock)
// records. The first analysis step rebuilds per-timer "episodes": one arm
// operation and how it ended — expiry, cancellation, or being re-armed
// in place (mod_timer / KeSetTimer on a pending timer). Episodes are the
// input to the usage-pattern classifier (Figure 2) and the expiry/cancel
// scatter plots (Figures 8-11).
//
// Identity: Linux timers have stable struct identity, so the timer id is
// enough. Vista KTIMERs are mostly allocated per call (kFlagDynamicAlloc),
// so episodes are additionally clustered by call-site + thread, exactly the
// post-processing the paper describes in Section 3.3.

#ifndef TEMPO_SRC_ANALYSIS_LIFETIMES_H_
#define TEMPO_SRC_ANALYSIS_LIFETIMES_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/oslinux/jiffies.h"
#include "src/trace/record.h"

namespace tempo {

// How an episode ended.
enum class EpisodeEnd : uint8_t {
  kExpired = 0,   // ran to expiry and the notification fired
  kCanceled = 1,  // deleted before expiry
  kReset = 2,     // re-armed in place before expiry (no cancel record)
  kOpen = 3,      // still pending at the end of the trace
};

// One armed-timer episode.
struct Episode {
  TimerId timer = kInvalidTimerId;
  CallsiteId callsite = kUnknownCallsite;
  Pid pid = kKernelPid;
  Tid tid = 0;
  SimTime set_time = 0;
  SimDuration timeout = 0;  // observed relative timeout (with jitter)
  // Canonical timeout for value bucketing: kernel wheel timers are read
  // back as exact jiffy deltas (expires - jiffies, as the paper's Linux
  // instrumentation reports them); everything else keeps the exact
  // observed value.
  SimDuration canonical = 0;
  SimTime end_time = 0;
  EpisodeEnd end = EpisodeEnd::kOpen;
  uint16_t flags = 0;  // flags of the arming record

  bool user() const { return (flags & kFlagUser) != 0; }
  // Duration the timer actually ran before ending.
  SimDuration held() const { return end_time - set_time; }
  // Fraction of the requested timeout that elapsed before the episode
  // ended; > 1 for late deliveries. Returns 0 for non-positive timeouts.
  double fraction() const {
    if (timeout <= 0) {
      return 0.0;
    }
    return static_cast<double>(held()) / static_cast<double>(timeout);
  }
};

// Key used to group episodes of "the same logical timer". For stable
// (Linux-style) timers this is the timer id; dynamic-identity records
// cluster by (callsite, pid, tid).
struct ClusterKey {
  uint64_t a = 0;
  uint64_t b = 0;
  bool operator==(const ClusterKey&) const = default;
  bool operator<(const ClusterKey& o) const { return a != o.a ? a < o.a : b < o.b; }
};

// Computes the grouping key for an episode.
ClusterKey ClusterKeyFor(const Episode& episode);

// The canonical (bucketable) timeout of an arming record: exact jiffy
// delta for Linux wheel timers, the observed value otherwise.
SimDuration CanonicalTimeout(const TraceRecord& record);

// Streaming, mergeable episode construction — the shared engine under
// every episode-consuming AnalysisPass (classify, scatter, origins,
// blame). Feed time-ordered record batches with Accumulate; to combine
// two builders that covered adjacent ranges of the same trace, call
// left.Merge(std::move(right)) where `right` saw strictly later records.
//
// The merge is exact: an episode left open at the end of the left range
// is closed by the right range's first operation on that timer (a re-arm
// closes it as kReset, a cancel as kCanceled, ...), which is precisely
// what the serial scan would have done, so Finish() returns the same
// episode vector — in the same order — as a single-pass build.
class EpisodeBuilder {
 public:
  // Folds one batch of time-ordered records into the state.
  void Accumulate(std::span<const TraceRecord> records);

  // Absorbs a builder that accumulated the records immediately after
  // this one's.
  void Merge(EpisodeBuilder&& later);

  // Finalizes: episodes still open get the last timestamp as end_time
  // (end stays kOpen). The builder is consumed.
  std::vector<Episode> Finish() &&;

 private:
  // First non-init operation per timer in this builder's range; what a
  // preceding range's open episode of that timer gets closed by.
  struct FirstOp {
    TimerOp op;
    SimTime timestamp;
    uint16_t flags;
  };

  void Close(TimerId timer, SimTime at, EpisodeEnd end);

  std::vector<Episode> episodes_;
  std::map<TimerId, size_t> open_;  // timer id -> index into episodes_
  std::map<TimerId, FirstOp> first_op_;
  SimTime last_ts_ = 0;
  bool any_records_ = false;
};

// Rebuilds episodes from a trace. Records must be time-ordered (trace
// buffers guarantee this). Block/unblock pairs become episodes whose end is
// kExpired when the wait timed out and kCanceled when it was satisfied.
// Thin wrapper over EpisodeBuilder; stream consumers should use the
// builder (or an AnalysisPass) directly.
std::vector<Episode> BuildEpisodes(const std::vector<TraceRecord>& records);

// Groups episodes by cluster key; each group is sorted by set time.
// The outer vector is ordered by key for determinism.
std::vector<std::vector<Episode>> GroupEpisodes(std::vector<Episode> episodes);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_LIFETIMES_H_
