#include "src/analysis/origins.h"

#include <algorithm>
#include <map>

#include "src/oslinux/jiffies.h"

namespace tempo {

namespace {

// Canonicalises a timeout for grouping: kernel values to whole jiffies,
// user values to 0.1 ms.
SimDuration Canonical(SimDuration value, bool user) {
  if (value <= 0) {
    return 0;
  }
  if (!user) {
    return ((value + kJiffy / 2) / kJiffy) * kJiffy;
  }
  const SimDuration grain = kMillisecond / 10;
  return ((value + grain / 2) / grain) * grain;
}

}  // namespace

std::vector<OriginRow> ComputeOrigins(const std::vector<TraceRecord>& records,
                                      const CallsiteRegistry& callsites,
                                      const OriginOptions& options) {
  const std::vector<TimerClass> classes = ClassifyTrace(records, options.classify);

  struct Agg {
    uint64_t sets = 0;
    std::map<UsagePattern, uint64_t> patterns;
    bool user = false;
  };
  std::map<std::pair<SimDuration, CallsiteId>, Agg> rows;
  uint64_t total_sets = 0;

  for (const TimerClass& c : classes) {
    if (c.dominant_timeout <= 0) {
      continue;
    }
    const SimDuration value = Canonical(c.dominant_timeout, c.user);
    Agg& agg = rows[{value, c.callsite}];
    agg.sets += c.episodes;
    agg.patterns[c.pattern] += c.episodes;
    agg.user = c.user;
    total_sets += c.episodes;
  }
  if (total_sets == 0) {
    return {};
  }

  std::vector<OriginRow> out;
  for (const auto& [key, agg] : rows) {
    const double percent =
        100.0 * static_cast<double>(agg.sets) / static_cast<double>(total_sets);
    if (percent < options.min_percent && key.first < options.always_include_above) {
      continue;
    }
    OriginRow row;
    row.value = key.first;
    row.origin = callsites.Name(key.second);
    row.sets = agg.sets;
    row.user = agg.user;
    // Modal pattern, ignoring single-use if something better exists.
    uint64_t best = 0;
    for (const auto& [pattern, count] : agg.patterns) {
      const bool better = count > best ||
                          (count == best && pattern != UsagePattern::kSingleUse &&
                           row.pattern == UsagePattern::kSingleUse);
      if (better) {
        best = count;
        row.pattern = pattern;
      }
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const OriginRow& a, const OriginRow& b) {
    if (a.value != b.value) {
      return a.value < b.value;
    }
    return a.origin < b.origin;
  });
  return out;
}

}  // namespace tempo
