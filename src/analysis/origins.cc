#include "src/analysis/origins.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/analysis/render.h"
#include "src/oslinux/jiffies.h"

namespace tempo {

namespace {

// Canonicalises a timeout for grouping: kernel values to whole jiffies,
// user values to 0.1 ms.
SimDuration Canonical(SimDuration value, bool user) {
  if (value <= 0) {
    return 0;
  }
  if (!user) {
    return ((value + kJiffy / 2) / kJiffy) * kJiffy;
  }
  const SimDuration grain = kMillisecond / 10;
  return ((value + grain / 2) / grain) * grain;
}

}  // namespace

std::vector<OriginRow> ComputeOriginsFromClasses(const std::vector<TimerClass>& classes,
                                                 const CallsiteRegistry& callsites,
                                                 const OriginOptions& options) {
  struct Agg {
    uint64_t sets = 0;
    std::map<UsagePattern, uint64_t> patterns;
    bool user = false;
  };
  std::map<std::pair<SimDuration, CallsiteId>, Agg> rows;
  uint64_t total_sets = 0;

  for (const TimerClass& c : classes) {
    if (c.dominant_timeout <= 0) {
      continue;
    }
    const SimDuration value = Canonical(c.dominant_timeout, c.user);
    Agg& agg = rows[{value, c.callsite}];
    agg.sets += c.episodes;
    agg.patterns[c.pattern] += c.episodes;
    agg.user = c.user;
    total_sets += c.episodes;
  }
  if (total_sets == 0) {
    return {};
  }

  std::vector<OriginRow> out;
  for (const auto& [key, agg] : rows) {
    const double percent =
        100.0 * static_cast<double>(agg.sets) / static_cast<double>(total_sets);
    if (percent < options.min_percent && key.first < options.always_include_above) {
      continue;
    }
    OriginRow row;
    row.value = key.first;
    row.origin = callsites.Name(key.second);
    row.sets = agg.sets;
    row.user = agg.user;
    // Modal pattern, ignoring single-use if something better exists.
    uint64_t best = 0;
    for (const auto& [pattern, count] : agg.patterns) {
      const bool better = count > best ||
                          (count == best && pattern != UsagePattern::kSingleUse &&
                           row.pattern == UsagePattern::kSingleUse);
      if (better) {
        best = count;
        row.pattern = pattern;
      }
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const OriginRow& a, const OriginRow& b) {
    if (a.value != b.value) {
      return a.value < b.value;
    }
    return a.origin < b.origin;
  });
  return out;
}

void OriginsPass::Accumulate(std::span<const TraceRecord> records) {
  episodes_.Accumulate(records);
}

void OriginsPass::Merge(AnalysisPass&& other) {
  episodes_.Merge(std::move(dynamic_cast<OriginsPass&>(other).episodes_));
}

std::vector<OriginRow> OriginsPass::Result() const {
  EpisodeBuilder copy = episodes_;  // Finish consumes; keep the pass reusable
  std::vector<TimerClass> classes;
  for (const auto& group : GroupEpisodes(std::move(copy).Finish())) {
    classes.push_back(ClassifyGroup(group, options_.classify));
  }
  return ComputeOriginsFromClasses(classes, *callsites_, options_);
}

std::unique_ptr<AnalysisPass> OriginsPass::Fork() const {
  return std::make_unique<OriginsPass>(callsites_, options_);
}

void OriginsPass::Render(RenderSink& sink) {
  sink.Section("origins", "origins:\n" + RenderOrigins(Result()) + "\n");
}

std::vector<OriginRow> ComputeOrigins(const std::vector<TraceRecord>& records,
                                      const CallsiteRegistry& callsites,
                                      const OriginOptions& options) {
  OriginsPass pass(&callsites, options);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

}  // namespace tempo
