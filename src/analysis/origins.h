// Origins and classification of frequent timeout values — Table 3.
//
// The paper exploits the high correlation between Linux timeout values and
// static timer-structure addresses to attribute each frequent value to the
// kernel subsystem or application that sets it, and to classify its usage
// pattern. tempo has call-site labels on every record, so the attribution
// is exact; the interesting output is the same as the paper's: which value
// belongs to whom, and what pattern it follows.

#ifndef TEMPO_SRC_ANALYSIS_ORIGINS_H_
#define TEMPO_SRC_ANALYSIS_ORIGINS_H_

#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/trace/callsite.h"

namespace tempo {

// One row: a timeout value, one origin of it, and that origin's pattern.
struct OriginRow {
  SimDuration value = 0;
  std::string origin;
  UsagePattern pattern = UsagePattern::kOther;
  uint64_t sets = 0;  // arming operations with this value from this origin
  bool user = false;
};

struct OriginOptions {
  // Include values whose total share is at least this percentage...
  double min_percent = 0.5;
  // ...and always include values at least this large (the paper keeps
  // infrequent-but-interesting constants like the 7200 s keepalive).
  SimDuration always_include_above = 6 * kSecond;
  ClassifyOptions classify;
};

// Aggregates already-computed classifications into the table. Rows are
// sorted by value, then origin.
std::vector<OriginRow> ComputeOriginsFromClasses(const std::vector<TimerClass>& classes,
                                                 const CallsiteRegistry& callsites,
                                                 const OriginOptions& options);

// Streaming origins table (Table 3) as an AnalysisPass. The registry must
// outlive the pass (tools keep the loaded trace's registry alive).
class OriginsPass : public AnalysisPass {
 public:
  OriginsPass(const CallsiteRegistry* callsites, OriginOptions options = {})
      : callsites_(callsites), options_(std::move(options)) {}

  const char* name() const override { return "origins"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished table; call after all merges.
  std::vector<OriginRow> Result() const;

 private:
  const CallsiteRegistry* callsites_;
  OriginOptions options_;
  EpisodeBuilder episodes_;
};

// Builds the table from a trace. Rows are sorted by value, then origin.
// Legacy whole-vector entry point, kept as a thin wrapper over
// OriginsPass — prefer the pass for anything that may grow large.
std::vector<OriginRow> ComputeOrigins(const std::vector<TraceRecord>& records,
                                      const CallsiteRegistry& callsites,
                                      const OriginOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_ORIGINS_H_
