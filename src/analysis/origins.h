// Origins and classification of frequent timeout values — Table 3.
//
// The paper exploits the high correlation between Linux timeout values and
// static timer-structure addresses to attribute each frequent value to the
// kernel subsystem or application that sets it, and to classify its usage
// pattern. tempo has call-site labels on every record, so the attribution
// is exact; the interesting output is the same as the paper's: which value
// belongs to whom, and what pattern it follows.

#ifndef TEMPO_SRC_ANALYSIS_ORIGINS_H_
#define TEMPO_SRC_ANALYSIS_ORIGINS_H_

#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/trace/callsite.h"

namespace tempo {

// One row: a timeout value, one origin of it, and that origin's pattern.
struct OriginRow {
  SimDuration value = 0;
  std::string origin;
  UsagePattern pattern = UsagePattern::kOther;
  uint64_t sets = 0;  // arming operations with this value from this origin
  bool user = false;
};

struct OriginOptions {
  // Include values whose total share is at least this percentage...
  double min_percent = 0.5;
  // ...and always include values at least this large (the paper keeps
  // infrequent-but-interesting constants like the 7200 s keepalive).
  SimDuration always_include_above = 6 * kSecond;
  ClassifyOptions classify;
};

// Builds the table from a trace. Rows are sorted by value, then origin.
std::vector<OriginRow> ComputeOrigins(const std::vector<TraceRecord>& records,
                                      const CallsiteRegistry& callsites,
                                      const OriginOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_ORIGINS_H_
