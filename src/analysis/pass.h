// The AnalysisPass API: streaming, mergeable trace analyses.
//
// The original analysis entry points (Summarize, ClassifyTrace, ...) each
// consumed a fully materialized std::vector<TraceRecord> in one call —
// fine for the paper's 30-minute traces, memory-bound and single-threaded
// at production scale. An AnalysisPass instead consumes the trace as a
// stream of record batches and carries explicit partial state:
//
//   Fork()        an empty pass with the same configuration, for a worker
//   Accumulate()  folds one batch of time-ordered records into the state
//   Merge()       absorbs another pass's state; the argument must have
//                 accumulated records STRICTLY LATER than this pass's
//                 (pipeline.h feeds workers contiguous chunk ranges and
//                 merges them in trace order, so this always holds)
//   Render()      emits the finished report into a RenderSink
//
// The ordered-merge contract is what makes parallel analysis exact: every
// pass here reproduces, byte for byte, what the serial whole-vector code
// produces, for any chunking and any worker count. The legacy entry
// points are now thin wrappers over these passes.

#ifndef TEMPO_SRC_ANALYSIS_PASS_H_
#define TEMPO_SRC_ANALYSIS_PASS_H_

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/codec.h"
#include "src/trace/predicate.h"
#include "src/trace/record.h"

namespace tempo {

// Receives rendered report sections. Keys are stable machine-readable
// names ("summary", "patterns", ...); text is the exact human-readable
// section body the legacy tools printed.
class RenderSink {
 public:
  virtual ~RenderSink() = default;
  virtual void Section(const std::string& key, const std::string& text) = 0;
};

// Writes section bodies verbatim to a stdio stream — the classic tool
// output.
class TextRenderSink : public RenderSink {
 public:
  explicit TextRenderSink(std::FILE* out) : out_(out) {}
  void Section(const std::string& key, const std::string& text) override {
    (void)key;
    std::fputs(text.c_str(), out_);
  }

 private:
  std::FILE* out_;
};

// Collects sections into one JSON object {"key": "text", ...}; call
// Finish() after the last pass rendered.
class JsonRenderSink : public RenderSink {
 public:
  explicit JsonRenderSink(std::FILE* out) : out_(out) {}
  void Section(const std::string& key, const std::string& text) override {
    sections_.emplace_back(key, text);
  }
  void Finish() {
    std::fputs("{", out_);
    for (size_t i = 0; i < sections_.size(); ++i) {
      if (i > 0) {
        std::fputs(",", out_);
      }
      std::fputs("\n  ", out_);
      PutString(sections_[i].first);
      std::fputs(": ", out_);
      PutString(sections_[i].second);
    }
    std::fputs("\n}\n", out_);
  }

 private:
  void PutString(const std::string& s) {
    std::fputc('"', out_);
    for (const char c : s) {
      switch (c) {
        case '"':
          std::fputs("\\\"", out_);
          break;
        case '\\':
          std::fputs("\\\\", out_);
          break;
        case '\n':
          std::fputs("\\n", out_);
          break;
        case '\t':
          std::fputs("\\t", out_);
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::fprintf(out_, "\\u%04x", c);
          } else {
            std::fputc(c, out_);
          }
      }
    }
    std::fputc('"', out_);
  }

  std::FILE* out_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

// One streaming analysis. See the file comment for the contract; concrete
// passes live with their legacy modules (SummaryPass in summary.h, ...).
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  // Stable pass name, used for metrics labels and section ordering.
  virtual const char* name() const = 0;

  // A fresh pass with the same configuration and empty state.
  virtual std::unique_ptr<AnalysisPass> Fork() const = 0;

  // Folds one batch of time-ordered records into the partial state.
  // Batches arrive in trace order within one pass instance.
  virtual void Accumulate(std::span<const TraceRecord> records) = 0;

  // Absorbs `other`, which must be the same concrete type and must have
  // accumulated the records immediately following this pass's.
  virtual void Merge(AnalysisPass&& other) = 0;

  // Renders the final report section(s). Call once, after all merges.
  virtual void Render(RenderSink& sink) = 0;

  // The records this pass actually needs, or nullptr for all of them
  // (the default — a null predicate pins every chunk). A pass returning a
  // predicate promises its result ignores non-matching records, which
  // lets the pipeline skip whole chunks whose zone map cannot match
  // (predicate pushdown on v3 traces). The pointer must stay valid for
  // the pass's lifetime and describe Fork()ed copies too.
  virtual const Predicate* predicate() const { return nullptr; }

  // The record fields this pass reads (kField* bits from codec.h), or
  // kAllTraceFields (the default) for all of them. A pass returning a
  // narrower mask promises its result ignores the other fields, which
  // lets the columnar reader decode only the declared stripes (projection
  // pushdown on v3 traces) and hand the pass records whose remaining
  // fields are default-initialised. Like predicate(), the mask must also
  // describe Fork()ed copies.
  virtual uint16_t fields() const { return kAllTraceFields; }
};

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_PASS_H_
