#include "src/analysis/pipeline.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/trace/codec.h"

namespace tempo {

namespace {

// One worker's private world: forks of every pass plus plain tallies.
// Workers never touch the obs registry or the probe clock — both are
// main-thread-only — so this struct is all they write to.
struct WorkerState {
  std::vector<std::unique_ptr<AnalysisPass>> passes;
  uint64_t chunks = 0;
  uint64_t records = 0;
  uint64_t chunks_skipped = 0;
  uint64_t encoded_bytes = 0;
  bool failed = false;
  TraceReadError error = TraceReadError::kIo;
};

// Predicates of every pass, or empty when any pass needs the full trace
// (a null predicate) — in which case no chunk may ever be skipped.
std::vector<const Predicate*> PushdownPredicates(
    const std::vector<std::unique_ptr<AnalysisPass>>& passes) {
  std::vector<const Predicate*> predicates;
  predicates.reserve(passes.size());
  for (const auto& pass : passes) {
    const Predicate* predicate = pass->predicate();
    if (predicate == nullptr) {
      return {};
    }
    predicates.push_back(predicate);
  }
  return predicates;
}

// True when the zone map proves no predicate-carrying pass can match any
// record of the chunk. Callers only consult this when every pass
// declared a predicate.
bool SkipChunk(const std::vector<const Predicate*>& predicates, const ChunkZone& zone) {
  if (predicates.empty() || !zone.valid) {
    return false;
  }
  for (const Predicate* predicate : predicates) {
    if (predicate->MayMatch(zone)) {
      return false;
    }
  }
  return true;
}

// Union of every pass's declared field mask: a chunk is decoded once for
// all passes, so the cursor must materialize any field any of them reads.
uint16_t UnionFields(const std::vector<std::unique_ptr<AnalysisPass>>& passes) {
  uint16_t mask = 0;
  for (const auto& pass : passes) {
    mask |= pass->fields();
  }
  return passes.empty() ? kAllTraceFields : mask;
}

// Contiguous [begin, end) chunk ranges, one per worker, in trace order.
// The remainder of an uneven split lands on the earliest workers so
// ranges never differ by more than one chunk.
std::vector<std::pair<size_t, size_t>> PartitionChunks(size_t chunk_count, size_t jobs) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(jobs);
  const size_t base = chunk_count / jobs;
  const size_t extra = chunk_count % jobs;
  size_t begin = 0;
  for (size_t w = 0; w < jobs; ++w) {
    const size_t take = base + (w < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + take);
    begin += take;
  }
  return ranges;
}

size_t EffectiveJobs(size_t requested, size_t chunk_count) {
  size_t jobs = requested;
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
  }
  jobs = std::max<size_t>(jobs, 1);
  return std::min(jobs, std::max<size_t>(chunk_count, 1));
}

std::vector<std::unique_ptr<AnalysisPass>> ForkAll(
    const std::vector<std::unique_ptr<AnalysisPass>>& passes) {
  std::vector<std::unique_ptr<AnalysisPass>> forks;
  forks.reserve(passes.size());
  for (const auto& pass : passes) {
    forks.push_back(pass->Fork());
  }
  return forks;
}

// Folds worker states into the caller's passes (in worker order — each
// worker holds a contiguous, strictly later slice of the trace than the
// one before it, which is exactly the ordering Merge requires; the
// caller's passes start empty, a valid "nothing yet" left-hand side),
// then publishes run counters to the global registry. Main thread only.
PipelineStats MergeAndPublish(std::vector<WorkerState>& workers,
                              const std::vector<std::unique_ptr<AnalysisPass>>& passes,
                              uint64_t started, const std::string& label,
                              bool columnar) {
  std::vector<uint64_t> merge_cycles(passes.size(), 0);
  for (WorkerState& w : workers) {
    for (size_t p = 0; p < passes.size(); ++p) {
      const uint64_t t0 = obs::ProbeClockNow();
      passes[p]->Merge(std::move(*w.passes[p]));
      merge_cycles[p] += obs::ProbeClockNow() - t0;
    }
  }

  PipelineStats stats;
  stats.jobs = workers.size();
  for (const WorkerState& w : workers) {
    stats.chunks += w.chunks;
    stats.records += w.records;
    stats.chunks_skipped += w.chunks_skipped;
    stats.encoded_bytes += w.encoded_bytes;
  }
  stats.bytes = stats.records * kEncodedRecordSize;
  stats.cycles = obs::ProbeClockNow() - started;

  obs::Registry& registry = obs::Registry::Global();
  const obs::Labels labels = {{"trace", label}};
  registry
      .GetCounter("trace_pipeline_runs_total", labels,
                  "pipeline executions over this trace label")
      ->Inc();
  registry
      .GetCounter("trace_pipeline_records_total", labels,
                  "records streamed through the analysis pipeline")
      ->Inc(stats.records);
  registry
      .GetCounter("trace_pipeline_bytes_total", labels,
                  "encoded trace bytes streamed through the analysis pipeline")
      ->Inc(stats.bytes);
  registry
      .GetCounter("trace_pipeline_chunks_total", labels,
                  "trace chunks streamed through the analysis pipeline")
      ->Inc(stats.chunks);
  registry
      .GetCounter("trace_pipeline_cycles_total", labels,
                  "probe-clock cycles spent in pipeline runs")
      ->Inc(stats.cycles);
  registry.GetGauge("trace_pipeline_jobs", labels, "worker threads used by the last run")
      ->Set(static_cast<int64_t>(stats.jobs));
  if (columnar) {
    registry
        .GetCounter("trace_v3_chunks_decoded_total", labels,
                    "columnar chunks decoded by pipeline runs")
        ->Inc(stats.chunks);
    registry
        .GetCounter("trace_v3_chunks_skipped_total", labels,
                    "columnar chunks skipped via zone-map predicate pushdown")
        ->Inc(stats.chunks_skipped);
    registry
        .GetCounter("trace_v3_bytes_decoded_total", labels,
                    "on-disk bytes of the columnar chunks pipeline runs decoded")
        ->Inc(stats.encoded_bytes);
  }
  for (size_t p = 0; p < passes.size(); ++p) {
    obs::Labels pass_labels = labels;
    pass_labels.emplace_back("pass", passes[p]->name());
    registry
        .GetCounter("trace_pipeline_pass_merge_cycles_total", pass_labels,
                    "probe-clock cycles spent merging partial pass states")
        ->Inc(merge_cycles[p]);
  }
  return stats;
}

}  // namespace

bool PipelineRunner::Run(const TraceChunkReader& reader,
                         const std::vector<std::unique_ptr<AnalysisPass>>& passes,
                         TraceReadError* error) {
  const size_t chunk_count = reader.chunk_count();
  const size_t jobs = EffectiveJobs(options_.jobs, chunk_count);
  const auto ranges = PartitionChunks(chunk_count, jobs);

  std::vector<WorkerState> workers(jobs);
  for (WorkerState& w : workers) {
    w.passes = ForkAll(passes);
  }

  const uint64_t started = obs::ProbeClockNow();

  // Empty when any pass needs the full trace; otherwise one predicate per
  // pass, consulted against each chunk's zone map before decoding.
  const std::vector<const Predicate*> predicates =
      passes.empty() ? std::vector<const Predicate*>{} : PushdownPredicates(passes);
  // Projection pushdown: on v3 traces the cursor decodes only the stripes
  // some pass declared it reads (v1/v2 cursors ignore the mask).
  const uint16_t field_mask = UnionFields(passes);

  auto drain = [&reader, &predicates, field_mask](const std::pair<size_t, size_t>& range,
                                                  WorkerState* state) {
    TraceChunkReader::Cursor cursor = reader.MakeCursor();
    if (!cursor.ok()) {
      state->failed = true;
      state->error = cursor.error();
      return;
    }
    for (size_t i = range.first; i < range.second; ++i) {
      const TraceChunkReader::ChunkRef& ref = reader.chunk(i);
      if (SkipChunk(predicates, ref.zone)) {
        ++state->chunks_skipped;
        continue;
      }
      const std::span<const TraceRecord> chunk = cursor.Read(i, field_mask);
      if (!cursor.ok()) {
        state->failed = true;
        state->error = cursor.error();
        return;
      }
      ++state->chunks;
      state->records += chunk.size();
      state->encoded_bytes += ref.stored_bytes;
      for (auto& pass : state->passes) {
        pass->Accumulate(chunk);
      }
    }
  };

  if (jobs == 1) {
    drain(ranges[0], &workers[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (size_t w = 0; w < jobs; ++w) {
      threads.emplace_back(drain, ranges[w], &workers[w]);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  for (const WorkerState& w : workers) {
    if (w.failed) {
      if (error != nullptr) {
        *error = w.error;
      }
      return false;
    }
  }

  stats_ = MergeAndPublish(workers, passes, started, options_.stats_label,
                           reader.version() == kTraceFileVersionColumnar);
  return true;
}

void PipelineRunner::Run(std::span<const TraceRecord> records,
                         const std::vector<std::unique_ptr<AnalysisPass>>& passes,
                         uint32_t chunk_records) {
  if (chunk_records == 0) {
    chunk_records = kDefaultChunkRecords;
  }
  const size_t chunk_count = (records.size() + chunk_records - 1) / chunk_records;
  const size_t jobs = EffectiveJobs(options_.jobs, chunk_count);
  const auto ranges = PartitionChunks(chunk_count, jobs);

  std::vector<WorkerState> workers(jobs);
  for (WorkerState& w : workers) {
    w.passes = ForkAll(passes);
  }

  const uint64_t started = obs::ProbeClockNow();

  auto drain = [records, chunk_records](const std::pair<size_t, size_t>& range,
                                        WorkerState* state) {
    for (size_t i = range.first; i < range.second; ++i) {
      const size_t first = i * static_cast<size_t>(chunk_records);
      const size_t count = std::min<size_t>(chunk_records, records.size() - first);
      const std::span<const TraceRecord> chunk = records.subspan(first, count);
      ++state->chunks;
      state->records += chunk.size();
      state->encoded_bytes += chunk.size() * kEncodedRecordSize;
      for (auto& pass : state->passes) {
        pass->Accumulate(chunk);
      }
    }
  };

  if (jobs == 1) {
    drain(ranges[0], &workers[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (size_t w = 0; w < jobs; ++w) {
      threads.emplace_back(drain, ranges[w], &workers[w]);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  stats_ = MergeAndPublish(workers, passes, started, options_.stats_label,
                           /*columnar=*/false);
}

}  // namespace tempo
