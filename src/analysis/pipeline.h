// PipelineRunner: parallel, streaming execution of AnalysisPasses.
//
// The runner partitions a trace's chunks into contiguous ranges, one per
// worker thread; each worker streams its range through private forks of
// every pass, and the partial states are merged back in trace order. The
// ordered-merge contract of pass.h then guarantees results — including
// rendered text — byte-identical to a serial run, for any worker count.
//
// Two inputs are supported: a TraceChunkReader (the streaming file path;
// each worker gets its own cursor and the trace is never materialized)
// and an in-memory record span (for traces already in memory, e.g. fresh
// workload runs), which is partitioned into synthetic chunks.
//
// Predicate pushdown: when EVERY pass declares a Predicate (pass.h) and
// the trace is v3, a chunk whose zone map no pass may match is skipped
// without being decoded — the passes never see its records, which is
// sound because a declared predicate promises the result ignores them.
// One pass with a null predicate pins every chunk, and v1/v2 chunks have
// no zones, so pushdown silently degrades to full streaming.
//
// Observability: the runner publishes per-run counters to the global
// obs registry (records/bytes/chunks fanned through the pipeline, worker
// count, total cycles, and per-pass merge cycles). The probe clock is
// only ever read from the calling thread — worker threads keep plain
// integer tallies — so the runner stays data-race-free (and deterministic
// under tempostat's virtual probe clock) no matter what clock is
// installed.

#ifndef TEMPO_SRC_ANALYSIS_PIPELINE_H_
#define TEMPO_SRC_ANALYSIS_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/pass.h"
#include "src/trace/chunked.h"

namespace tempo {

struct PipelineOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency(). The
  // effective count never exceeds the number of chunks.
  size_t jobs = 0;
  // Label for the obs counters this run contributes to.
  std::string stats_label = "trace";
};

// What one Run actually did.
struct PipelineStats {
  size_t jobs = 0;        // workers used
  uint64_t chunks = 0;    // chunks decoded and streamed
  uint64_t records = 0;   // records streamed
  uint64_t bytes = 0;     // fixed-width bytes those records represent
  uint64_t cycles = 0;    // probe-clock cycles for the whole run
  // Predicate pushdown (v3 traces only; zero elsewhere): chunks whose
  // zone map proved no pass needed them, and the on-disk bytes of the
  // chunks that were decoded.
  uint64_t chunks_skipped = 0;
  uint64_t encoded_bytes = 0;
};

class PipelineRunner {
 public:
  explicit PipelineRunner(PipelineOptions options = {}) : options_(std::move(options)) {}

  // Streams the file behind `reader` through `passes`. On a read failure
  // returns false with the reason in `*error` when given; pass state is
  // unspecified after a failure.
  bool Run(const TraceChunkReader& reader,
           const std::vector<std::unique_ptr<AnalysisPass>>& passes,
           TraceReadError* error = nullptr);

  // In-memory variant: partitions `records` into synthetic chunks of
  // `chunk_records` and runs the same fan-out/merge machinery.
  void Run(std::span<const TraceRecord> records,
           const std::vector<std::unique_ptr<AnalysisPass>>& passes,
           uint32_t chunk_records = kDefaultChunkRecords);

  const PipelineStats& stats() const { return stats_; }

 private:
  PipelineOptions options_;
  PipelineStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_PIPELINE_H_
