#include "src/analysis/provenance.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <utility>

namespace tempo {

namespace {

void SortTree(ProvenanceNode* node) {
  std::sort(node->children.begin(), node->children.end(),
            [](const ProvenanceNode& a, const ProvenanceNode& b) {
              if (a.subtree_ops != b.subtree_ops) {
                return a.subtree_ops > b.subtree_ops;
              }
              return a.name < b.name;
            });
  for (ProvenanceNode& child : node->children) {
    SortTree(&child);
  }
}

// Assembles the forest from per-call-site (ops, sets) tallies.
std::vector<ProvenanceNode> ForestFromDirect(
    const std::map<CallsiteId, std::pair<uint64_t, uint64_t>>& direct,
    const CallsiteRegistry& callsites) {
  // Children lists over the whole registry (call-sites without records can
  // still be interior provenance nodes).
  std::map<CallsiteId, std::vector<CallsiteId>> children;
  std::vector<CallsiteId> roots;
  for (CallsiteId id = 1; id < callsites.size(); ++id) {
    const CallsiteId parent = callsites.Parent(id);
    if (parent == kUnknownCallsite) {
      roots.push_back(id);
    } else {
      children[parent].push_back(id);
    }
  }

  std::function<ProvenanceNode(CallsiteId)> build = [&](CallsiteId id) {
    ProvenanceNode node;
    node.callsite = id;
    node.name = callsites.Name(id);
    const auto it = direct.find(id);
    if (it != direct.end()) {
      node.direct_ops = it->second.first;
      node.direct_sets = it->second.second;
    }
    node.subtree_ops = node.direct_ops;
    node.subtree_sets = node.direct_sets;
    const auto kids = children.find(id);
    if (kids != children.end()) {
      for (CallsiteId child : kids->second) {
        node.children.push_back(build(child));
        node.subtree_ops += node.children.back().subtree_ops;
        node.subtree_sets += node.children.back().subtree_sets;
      }
    }
    return node;
  };

  std::vector<ProvenanceNode> forest;
  for (CallsiteId root : roots) {
    ProvenanceNode node = build(root);
    if (node.subtree_ops > 0) {
      SortTree(&node);
      forest.push_back(std::move(node));
    }
  }
  std::sort(forest.begin(), forest.end(),
            [](const ProvenanceNode& a, const ProvenanceNode& b) {
              if (a.subtree_ops != b.subtree_ops) {
                return a.subtree_ops > b.subtree_ops;
              }
              return a.name < b.name;
            });
  return forest;
}

}  // namespace

void ProvenancePass::Accumulate(std::span<const TraceRecord> records) {
  for (const TraceRecord& r : records) {
    auto& [ops, sets] = direct_[r.callsite];
    ++ops;
    if (r.op == TimerOp::kSet || r.op == TimerOp::kBlock) {
      ++sets;
    }
  }
}

void ProvenancePass::Merge(AnalysisPass&& other) {
  auto& later = dynamic_cast<ProvenancePass&>(other);
  for (const auto& [id, tally] : later.direct_) {
    auto& [ops, sets] = direct_[id];
    ops += tally.first;
    sets += tally.second;
  }
}

std::vector<ProvenanceNode> ProvenancePass::Result() const {
  return ForestFromDirect(direct_, *callsites_);
}

std::unique_ptr<AnalysisPass> ProvenancePass::Fork() const {
  return std::make_unique<ProvenancePass>(callsites_);
}

void ProvenancePass::Render(RenderSink& sink) {
  sink.Section("provenance", "provenance:\n" + RenderProvenance(Result()) + "\n");
}

std::vector<ProvenanceNode> BuildProvenanceForest(const std::vector<TraceRecord>& records,
                                                  const CallsiteRegistry& callsites) {
  ProvenancePass pass(&callsites);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

std::vector<BlameEntry> BlameFromEpisodes(const std::vector<Episode>& episodes,
                                          const CallsiteRegistry& callsites, SimTime start,
                                          SimTime end) {
  std::map<CallsiteId, BlameEntry> by_site;
  for (const Episode& e : episodes) {
    const SimTime episode_end = e.end == EpisodeEnd::kOpen ? end : e.end_time;
    const SimTime overlap_start = std::max(e.set_time, start);
    const SimTime overlap_end = std::min(episode_end, end);
    if (overlap_end <= overlap_start) {
      continue;
    }
    BlameEntry& entry = by_site[e.callsite];
    entry.callsite = e.callsite;
    ++entry.episodes;
    const SimDuration held = overlap_end - overlap_start;
    entry.held += held;
    entry.longest = std::max(entry.longest, held);
  }
  std::vector<BlameEntry> out;
  out.reserve(by_site.size());
  for (auto& [id, entry] : by_site) {
    entry.name = callsites.Name(id);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(), [](const BlameEntry& a, const BlameEntry& b) {
    if (a.held != b.held) {
      return a.held > b.held;
    }
    return a.name < b.name;
  });
  return out;
}

void BlamePass::Accumulate(std::span<const TraceRecord> records) {
  episodes_.Accumulate(records);
}

void BlamePass::Merge(AnalysisPass&& other) {
  episodes_.Merge(std::move(dynamic_cast<BlamePass&>(other).episodes_));
}

std::vector<BlameEntry> BlamePass::Result() const {
  EpisodeBuilder copy = episodes_;  // Finish consumes; keep the pass reusable
  return BlameFromEpisodes(std::move(copy).Finish(), *callsites_, start_, end_);
}

std::unique_ptr<AnalysisPass> BlamePass::Fork() const {
  return std::make_unique<BlamePass>(callsites_, start_, end_);
}

void BlamePass::Render(RenderSink& sink) {
  sink.Section("blame", RenderBlame(Result(), start_, end_));
}

std::vector<BlameEntry> BlameWindow(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites, SimTime start,
                                    SimTime end) {
  BlamePass pass(&callsites, start, end);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

std::string RenderProvenance(const std::vector<ProvenanceNode>& forest) {
  std::ostringstream out;
  std::function<void(const ProvenanceNode&, int)> emit = [&](const ProvenanceNode& node,
                                                             int depth) {
    char line[256];
    std::snprintf(line, sizeof(line), "%*s%-*s %10llu ops %10llu sets", 2 * depth, "",
                  40 - 2 * depth, node.name.c_str(),
                  static_cast<unsigned long long>(node.subtree_ops),
                  static_cast<unsigned long long>(node.subtree_sets));
    out << line << "\n";
    for (const ProvenanceNode& child : node.children) {
      emit(child, depth + 1);
    }
  };
  for (const ProvenanceNode& root : forest) {
    emit(root, 0);
  }
  return out.str();
}

std::string RenderBlame(const std::vector<BlameEntry>& entries, SimTime start, SimTime end) {
  std::ostringstream out;
  out << "pending timers in [" << ToSeconds(start) << "s, " << ToSeconds(end) << "s):\n";
  for (const BlameEntry& entry : entries) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-36s %8llu eps  held %10s  longest %10s",
                  entry.name.c_str(), static_cast<unsigned long long>(entry.episodes),
                  FormatDuration(entry.held).c_str(),
                  FormatDuration(entry.longest).c_str());
    out << line << "\n";
  }
  return out.str();
}

}  // namespace tempo
