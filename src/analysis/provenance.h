// Timeout provenance analysis (Section 5.2).
//
// "There are clear benefits to be gained from preserving and propagating
//  information about how timers have been set, and by whom, throughout the
//  system ... being able to trace execution through the system is a
//  critical requirement for understanding anomalous behavior."
//
// Call-sites in tempo declare a provenance parent (the facility they
// multiplex onto), so each record carries an implicit chain from the leaf
// tracepoint up to the subsystem that caused it. This module aggregates a
// trace along those chains and produces the two reports the paper wants:
//   * an attribution tree: which subsystem is responsible for how much
//     timer activity (directly and through everything below it);
//   * a blame report for a time interval: who kept the CPU waiting, with
//     held-time totals — the "why did this take a minute" question of the
//     file-browser pathology.

#ifndef TEMPO_SRC_ANALYSIS_PROVENANCE_H_
#define TEMPO_SRC_ANALYSIS_PROVENANCE_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/lifetimes.h"
#include "src/trace/callsite.h"

namespace tempo {

// One node of the attribution tree.
struct ProvenanceNode {
  CallsiteId callsite = kUnknownCallsite;
  std::string name;
  // Operations recorded at exactly this call-site.
  uint64_t direct_ops = 0;
  uint64_t direct_sets = 0;
  // Operations at this call-site plus everything that multiplexes onto it.
  uint64_t subtree_ops = 0;
  uint64_t subtree_sets = 0;
  std::vector<ProvenanceNode> children;  // sorted by subtree_ops, descending
};

// Builds the attribution forest (one tree per provenance root) for a trace.
// Roots are sorted by subtree_ops, descending.
std::vector<ProvenanceNode> BuildProvenanceForest(const std::vector<TraceRecord>& records,
                                                  const CallsiteRegistry& callsites);

// One blame entry: a call-site's contribution to waiting inside a window.
struct BlameEntry {
  CallsiteId callsite = kUnknownCallsite;
  std::string name;
  uint64_t episodes = 0;       // episodes overlapping the window
  SimDuration held = 0;        // pending time accumulated inside the window
  SimDuration longest = 0;     // longest single episode within the window
};

// For [start, end): which call-sites had timers pending, for how long.
// Sorted by held time, descending. Answers "what was the system waiting
// on" for a stall the user experienced.
std::vector<BlameEntry> BlameWindow(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites, SimTime start,
                                    SimTime end);

// Renders the forest with indentation and counts.
std::string RenderProvenance(const std::vector<ProvenanceNode>& forest);

// Renders a blame report.
std::string RenderBlame(const std::vector<BlameEntry>& entries, SimTime start, SimTime end);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_PROVENANCE_H_
