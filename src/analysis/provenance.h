// Timeout provenance analysis (Section 5.2).
//
// "There are clear benefits to be gained from preserving and propagating
//  information about how timers have been set, and by whom, throughout the
//  system ... being able to trace execution through the system is a
//  critical requirement for understanding anomalous behavior."
//
// Call-sites in tempo declare a provenance parent (the facility they
// multiplex onto), so each record carries an implicit chain from the leaf
// tracepoint up to the subsystem that caused it. This module aggregates a
// trace along those chains and produces the two reports the paper wants:
//   * an attribution tree: which subsystem is responsible for how much
//     timer activity (directly and through everything below it);
//   * a blame report for a time interval: who kept the CPU waiting, with
//     held-time totals — the "why did this take a minute" question of the
//     file-browser pathology.

#ifndef TEMPO_SRC_ANALYSIS_PROVENANCE_H_
#define TEMPO_SRC_ANALYSIS_PROVENANCE_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/lifetimes.h"
#include "src/analysis/pass.h"
#include "src/trace/callsite.h"

namespace tempo {

// One node of the attribution tree.
struct ProvenanceNode {
  CallsiteId callsite = kUnknownCallsite;
  std::string name;
  // Operations recorded at exactly this call-site.
  uint64_t direct_ops = 0;
  uint64_t direct_sets = 0;
  // Operations at this call-site plus everything that multiplexes onto it.
  uint64_t subtree_ops = 0;
  uint64_t subtree_sets = 0;
  std::vector<ProvenanceNode> children;  // sorted by subtree_ops, descending
};

// Streaming attribution forest as an AnalysisPass: per-call-site tallies
// merge by addition; the forest is assembled at Result. The registry must
// outlive the pass.
class ProvenancePass : public AnalysisPass {
 public:
  explicit ProvenancePass(const CallsiteRegistry* callsites) : callsites_(callsites) {}

  const char* name() const override { return "provenance"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished forest; call after all merges.
  std::vector<ProvenanceNode> Result() const;

 private:
  const CallsiteRegistry* callsites_;
  std::map<CallsiteId, std::pair<uint64_t, uint64_t>> direct_;  // ops, sets
};

// Builds the attribution forest (one tree per provenance root) for a trace.
// Roots are sorted by subtree_ops, descending.
// Legacy whole-vector entry point, kept as a thin wrapper over
// ProvenancePass — prefer the pass for anything that may grow large.
std::vector<ProvenanceNode> BuildProvenanceForest(const std::vector<TraceRecord>& records,
                                                  const CallsiteRegistry& callsites);

// One blame entry: a call-site's contribution to waiting inside a window.
struct BlameEntry {
  CallsiteId callsite = kUnknownCallsite;
  std::string name;
  uint64_t episodes = 0;       // episodes overlapping the window
  SimDuration held = 0;        // pending time accumulated inside the window
  SimDuration longest = 0;     // longest single episode within the window
};

// Aggregates a blame report from already-built episodes.
std::vector<BlameEntry> BlameFromEpisodes(const std::vector<Episode>& episodes,
                                          const CallsiteRegistry& callsites, SimTime start,
                                          SimTime end);

// Streaming blame report as an AnalysisPass (records stream into an
// EpisodeBuilder; the window aggregation runs at Result). The registry
// must outlive the pass.
class BlamePass : public AnalysisPass {
 public:
  BlamePass(const CallsiteRegistry* callsites, SimTime start, SimTime end)
      : callsites_(callsites), start_(start), end_(end) {}

  const char* name() const override { return "blame"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished report; call after all merges.
  std::vector<BlameEntry> Result() const;

 private:
  const CallsiteRegistry* callsites_;
  SimTime start_;
  SimTime end_;
  EpisodeBuilder episodes_;
};

// For [start, end): which call-sites had timers pending, for how long.
// Sorted by held time, descending. Answers "what was the system waiting
// on" for a stall the user experienced.
// Legacy whole-vector entry point, kept as a thin wrapper over BlamePass
// — prefer the pass for anything that may grow large.
std::vector<BlameEntry> BlameWindow(const std::vector<TraceRecord>& records,
                                    const CallsiteRegistry& callsites, SimTime start,
                                    SimTime end);

// Renders the forest with indentation and counts.
std::string RenderProvenance(const std::vector<ProvenanceNode>& forest);

// Renders a blame report.
std::string RenderBlame(const std::vector<BlameEntry>& entries, SimTime start, SimTime end);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_PROVENANCE_H_
