#include "src/analysis/query.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace tempo {

namespace {

// Rows sorted for rendering: count descending, key ascending on ties —
// a total order, so parallel and serial runs render identically.
std::vector<std::pair<uint64_t, QueryGroup>> SortedRows(
    const std::map<uint64_t, QueryGroup>& groups, size_t top_k) {
  std::vector<std::pair<uint64_t, QueryGroup>> rows(groups.begin(), groups.end());
  std::sort(rows.begin(), rows.end(),
            [](const std::pair<uint64_t, QueryGroup>& a,
               const std::pair<uint64_t, QueryGroup>& b) {
              if (a.second.records != b.second.records) {
                return a.second.records > b.second.records;
              }
              return a.first < b.first;
            });
  if (top_k > 0 && rows.size() > top_k) {
    rows.resize(top_k);
  }
  return rows;
}

}  // namespace

uint64_t QueryPass::KeyFor(const TraceRecord& r) const {
  switch (options_.group_by) {
    case QueryGroupBy::kNone:
      return 0;
    case QueryGroupBy::kCallsite:
      return r.callsite;
    case QueryGroupBy::kPid:
      return static_cast<uint64_t>(static_cast<uint32_t>(r.pid));
    case QueryGroupBy::kOp:
      return static_cast<uint64_t>(r.op);
  }
  return 0;
}

std::string QueryPass::KeyName(uint64_t key) const {
  char buf[32];
  switch (options_.group_by) {
    case QueryGroupBy::kNone:
      return "total";
    case QueryGroupBy::kCallsite:
      if (callsites_ != nullptr) {
        return callsites_->Name(static_cast<CallsiteId>(key));
      }
      std::snprintf(buf, sizeof(buf), "callsite:%" PRIu64, key);
      return buf;
    case QueryGroupBy::kPid:
      std::snprintf(buf, sizeof(buf), "pid:%" PRIu64, key);
      return buf;
    case QueryGroupBy::kOp:
      return TimerOpName(static_cast<TimerOp>(key));
  }
  return "?";
}

std::unique_ptr<AnalysisPass> QueryPass::Fork() const {
  return std::make_unique<QueryPass>(options_, callsites_);
}

void QueryPass::Accumulate(std::span<const TraceRecord> records) {
  scanned_ += records.size();
  for (const TraceRecord& r : records) {
    if (!options_.predicate.Matches(r)) {
      continue;
    }
    ++matched_;
    QueryGroup& group = groups_[KeyFor(r)];
    if (group.records == 0) {
      group.first = r.timestamp;
      group.last = r.timestamp;
    } else {
      group.first = std::min(group.first, r.timestamp);
      group.last = std::max(group.last, r.timestamp);
    }
    ++group.records;
    if (r.op == TimerOp::kSet) {
      ++group.sets;
      group.timeout_sum += static_cast<uint64_t>(r.timeout);
    }
  }
}

void QueryPass::Merge(AnalysisPass&& other) {
  QueryPass& rhs = dynamic_cast<QueryPass&>(other);
  scanned_ += rhs.scanned_;
  matched_ += rhs.matched_;
  for (const auto& [key, theirs] : rhs.groups_) {
    QueryGroup& group = groups_[key];
    if (group.records == 0) {
      group = theirs;
      continue;
    }
    group.records += theirs.records;
    group.sets += theirs.sets;
    group.timeout_sum += theirs.timeout_sum;
    group.first = std::min(group.first, theirs.first);
    group.last = std::max(group.last, theirs.last);
  }
}

void QueryPass::Render(RenderSink& sink) {
  std::string text = "query:\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  matched %" PRIu64 " of %" PRIu64 " scanned records\n", matched_,
                scanned_);
  text += line;
  for (const auto& [key, group] : SortedRows(groups_, options_.top_k)) {
    std::snprintf(line, sizeof(line),
                  "  %-28s %10" PRIu64 " records %10" PRIu64 " sets  [%s, %s]\n",
                  KeyName(key).c_str(), group.records, group.sets,
                  FormatDuration(group.first).c_str(),
                  FormatDuration(group.last).c_str());
    text += line;
  }
  sink.Section("query", text);
}

std::string QueryPass::RenderJson() const {
  std::string out = "{\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"matched\": %" PRIu64 ",\n  \"scanned\": %" PRIu64
                ",\n  \"rows\": [",
                matched_, scanned_);
  out += line;
  bool first_row = true;
  for (const auto& [key, group] : SortedRows(groups_, options_.top_k)) {
    out += first_row ? "\n" : ",\n";
    first_row = false;
    std::string name = KeyName(key);
    // Call-site names are interned identifiers; escape the JSON specials
    // anyway so arbitrary registries cannot produce invalid output.
    std::string escaped;
    for (const char c : name) {
      if (c == '"' || c == '\\') {
        escaped += '\\';
      }
      escaped += c;
    }
    std::snprintf(line, sizeof(line),
                  "    {\"key\": \"%s\", \"records\": %" PRIu64 ", \"sets\": %" PRIu64
                  ", \"timeout_sum_ns\": %" PRIu64 ", \"first_ns\": %lld"
                  ", \"last_ns\": %lld}",
                  escaped.c_str(), group.records, group.sets, group.timeout_sum,
                  static_cast<long long>(group.first),
                  static_cast<long long>(group.last));
    out += line;
  }
  out += first_row ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace tempo
