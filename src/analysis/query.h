// QueryPass: filtered, grouped record counting with predicate pushdown.
//
// The study answered questions like "which call sites set timers during
// the boot window?" by grepping the converted text trace. QueryPass is
// the pipeline-native version: it declares its filter as a Predicate
// (pass.h), so on v3 traces the runner skips whole chunks whose zone map
// cannot match — the selective-query half of the columnar format — and
// then counts the matching records, optionally grouped by call site, pid
// or op.
//
// Like every AnalysisPass, results are exact and deterministic for any
// chunking and worker count: group counts merge by addition and rendering
// sorts by count (ties toward the smaller key), so parallel and serial
// runs emit byte-identical reports.

#ifndef TEMPO_SRC_ANALYSIS_QUERY_H_
#define TEMPO_SRC_ANALYSIS_QUERY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/analysis/pass.h"
#include "src/trace/callsite.h"
#include "src/trace/predicate.h"
#include "src/trace/record.h"

namespace tempo {

enum class QueryGroupBy : uint8_t {
  kNone = 0,      // one total row
  kCallsite = 1,
  kPid = 2,
  kOp = 3,
};

struct QueryOptions {
  Predicate predicate;
  QueryGroupBy group_by = QueryGroupBy::kNone;
  // Rows rendered (by descending count); 0 means all.
  size_t top_k = 0;
};

// Aggregates of one group (or of the whole selection for kNone).
struct QueryGroup {
  uint64_t records = 0;        // matching records
  uint64_t sets = 0;           // of which kSet
  uint64_t timeout_sum = 0;    // summed timeout of the kSet records (ns)
  SimTime first = 0;           // earliest matching timestamp
  SimTime last = 0;            // latest matching timestamp
};

class QueryPass : public AnalysisPass {
 public:
  // `callsites` is only needed to render kCallsite group names; it must
  // outlive the pass and may be nullptr for other groupings.
  explicit QueryPass(QueryOptions options, const CallsiteRegistry* callsites = nullptr)
      : options_(std::move(options)), callsites_(callsites) {}

  const char* name() const override { return "query"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;
  const Predicate* predicate() const override { return &options_.predicate; }

  // The pass filters on timestamp/pid/op, sums timeouts, and tracks
  // first/last timestamps; call-site ids are only read when grouping by
  // call site. Declaring exactly that set lets the v3 cursor skip the
  // remaining stripes (projection pushdown).
  uint16_t fields() const override {
    uint16_t mask = kFieldTimestamp | kFieldTimeout | kFieldPid | kFieldOp;
    if (options_.group_by == QueryGroupBy::kCallsite) {
      mask |= kFieldCallsite;
    }
    return mask;
  }

  // Renders the same rows as Render, as one JSON object. Call after all
  // merges.
  std::string RenderJson() const;

  // The grouped aggregates; call after all merges. Keys are callsite ids,
  // pids, or op values depending on group_by (0 for kNone).
  const std::map<uint64_t, QueryGroup>& groups() const { return groups_; }
  uint64_t matched() const { return matched_; }
  uint64_t scanned() const { return scanned_; }

 private:
  uint64_t KeyFor(const TraceRecord& r) const;
  std::string KeyName(uint64_t key) const;

  QueryOptions options_;
  const CallsiteRegistry* callsites_;
  std::map<uint64_t, QueryGroup> groups_;
  uint64_t matched_ = 0;
  uint64_t scanned_ = 0;  // records the pass actually saw (post-pushdown)
};

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_QUERY_H_
