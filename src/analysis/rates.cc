#include "src/analysis/rates.h"

#include <algorithm>
#include <utility>

#include "src/analysis/render.h"

namespace tempo {

namespace {

// The series a record counts under; empty string means dropped.
std::string LabelFor(const TraceRecord& r, const RateGrouping& grouping) {
  if (r.pid == kKernelPid) {
    return grouping.kernel_label;
  }
  const auto it = grouping.pid_labels.find(r.pid);
  if (it != grouping.pid_labels.end()) {
    return it->second;
  }
  return grouping.default_label;
}

}  // namespace

void RatesPass::Accumulate(std::span<const TraceRecord> records) {
  if (options_.window <= 0) {
    return;  // Result is empty regardless
  }
  for (const TraceRecord& r : records) {
    // Track the trace end over ALL records (the serial code uses the last
    // record's timestamp, whether or not that record counts). Traces are
    // time-ordered, so the last timestamp is the maximum.
    if (options_.end == 0) {
      if (!any_records_ || r.timestamp > max_ts_) {
        max_ts_ = r.timestamp;
        any_records_ = true;
        at_max_.clear();
      }
    }
    if (r.timestamp < options_.start) {
      continue;
    }
    if (options_.end > 0 && r.timestamp >= options_.end) {
      continue;
    }
    if (options_.sets_only && r.op != TimerOp::kSet && r.op != TimerOp::kBlock) {
      continue;
    }
    const std::string label = LabelFor(r, grouping_);
    if (label.empty()) {
      continue;
    }
    const uint64_t idx =
        static_cast<uint64_t>((r.timestamp - options_.start) / options_.window);
    ++windows_[label][idx];
    if (options_.end == 0) {
      ++at_max_[label];  // r.timestamp == max_ts_ here; may yet be superseded
    }
  }
}

void RatesPass::Merge(AnalysisPass&& other) {
  auto& later = dynamic_cast<RatesPass&>(other);
  for (auto& [label, sparse] : later.windows_) {
    auto& mine = windows_[label];
    for (const auto& [idx, count] : sparse) {
      mine[idx] += count;
    }
  }
  if (later.any_records_) {
    if (!any_records_ || later.max_ts_ > max_ts_) {
      max_ts_ = later.max_ts_;
      at_max_ = std::move(later.at_max_);
      any_records_ = true;
    } else if (later.max_ts_ == max_ts_) {
      for (const auto& [label, count] : later.at_max_) {
        at_max_[label] += count;
      }
    }
  }
}

std::vector<RateSeries> RatesPass::Result() const {
  const SimTime end = options_.end > 0 ? options_.end : (any_records_ ? max_ts_ : 0);
  if (end <= options_.start || options_.window <= 0) {
    return {};
  }
  const size_t window_count = static_cast<size_t>(
      (end - options_.start + options_.window - 1) / options_.window);

  std::vector<RateSeries> out;
  for (const auto& [label, sparse_orig] : windows_) {
    auto sparse = sparse_orig;
    if (options_.end == 0) {
      // Records at the trace-end timestamp fall outside [start, end).
      const auto excess = at_max_.find(label);
      if (excess != at_max_.end() && excess->second > 0) {
        const uint64_t idx =
            static_cast<uint64_t>((max_ts_ - options_.start) / options_.window);
        auto it = sparse.find(idx);
        it->second -= excess->second;
        if (it->second == 0) {
          sparse.erase(it);
        }
      }
    }
    uint64_t total = 0;
    for (const auto& [idx, count] : sparse) {
      total += count;
    }
    if (total == 0) {
      continue;  // the serial scan would never have created this series
    }
    RateSeries series;
    series.label = label;
    series.per_window.assign(window_count, 0);
    for (const auto& [idx, count] : sparse) {
      if (idx < window_count) {
        series.per_window[idx] = count;
      }
    }
    out.push_back(std::move(series));
  }
  return out;
}

std::unique_ptr<AnalysisPass> RatesPass::Fork() const {
  return std::make_unique<RatesPass>(grouping_, options_);
}

void RatesPass::Render(RenderSink& sink) {
  sink.Section("rates", "rates:\n" + RenderRates(Result(), options_.window) + "\n");
}

std::vector<RateSeries> ComputeRates(const std::vector<TraceRecord>& records,
                                     const RateGrouping& grouping, const RateOptions& options) {
  RatesPass pass(grouping, options);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

}  // namespace tempo
