#include "src/analysis/rates.h"

#include <algorithm>

namespace tempo {

std::vector<RateSeries> ComputeRates(const std::vector<TraceRecord>& records,
                                     const RateGrouping& grouping, const RateOptions& options) {
  std::map<std::string, std::vector<uint64_t>> series;
  const SimTime end =
      options.end > 0 ? options.end : (records.empty() ? 0 : records.back().timestamp);
  if (end <= options.start || options.window <= 0) {
    return {};
  }
  const size_t windows =
      static_cast<size_t>((end - options.start + options.window - 1) / options.window);

  for (const TraceRecord& r : records) {
    if (r.timestamp < options.start || r.timestamp >= end) {
      continue;
    }
    if (options.sets_only && r.op != TimerOp::kSet && r.op != TimerOp::kBlock) {
      continue;
    }
    std::string label;
    if (r.pid == kKernelPid) {
      label = grouping.kernel_label;
    } else {
      auto it = grouping.pid_labels.find(r.pid);
      if (it != grouping.pid_labels.end()) {
        label = it->second;
      } else {
        label = grouping.default_label;
      }
    }
    if (label.empty()) {
      continue;
    }
    auto& buckets = series[label];
    if (buckets.empty()) {
      buckets.resize(windows, 0);
    }
    const size_t idx = static_cast<size_t>((r.timestamp - options.start) / options.window);
    if (idx < buckets.size()) {
      ++buckets[idx];
    }
  }

  std::vector<RateSeries> out;
  out.reserve(series.size());
  for (auto& [label, buckets] : series) {
    if (buckets.empty()) {
      buckets.resize(windows, 0);
    }
    out.push_back(RateSeries{label, std::move(buckets)});
  }
  return out;
}

}  // namespace tempo
