// Per-process timer-set rate timelines — Figure 1.
//
// "The graph shows the number of timers used per second by Outlook,
//  Internet Explorer, system processes and the kernel over a 90 second
//  excerpt from a trace."

#ifndef TEMPO_SRC_ANALYSIS_RATES_H_
#define TEMPO_SRC_ANALYSIS_RATES_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/pass.h"
#include "src/trace/record.h"

namespace tempo {

// One labelled series of events-per-window counts.
struct RateSeries {
  std::string label;
  std::vector<uint64_t> per_window;
};

struct RateOptions {
  SimDuration window = kSecond;
  SimTime start = 0;
  SimTime end = 0;  // 0: run to the last record
  // Count only arming operations (set/block); false counts all accesses.
  bool sets_only = true;
};

// Groups pids under labels ("Outlook", "System", ...); pids not mentioned
// fall under `default_label` (empty: dropped).
struct RateGrouping {
  std::map<Pid, std::string> pid_labels;
  std::string default_label = "System";
  std::string kernel_label = "Kernel";
};

// Streaming rate timelines (Figure 1) as an AnalysisPass. Window counts
// are kept sparse and merge by addition. The one subtlety is the
// end-of-range rule when options.end == 0: the serial code runs to the
// last record's timestamp, exclusive, so records at that exact timestamp
// never count. The pass counts them provisionally and tracks how many
// landed on the running maximum timestamp; Result subtracts them once the
// true trace end is known.
class RatesPass : public AnalysisPass {
 public:
  RatesPass(RateGrouping grouping, RateOptions options)
      : grouping_(std::move(grouping)), options_(options) {}

  const char* name() const override { return "rates"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished series, ordered by label; call after all merges.
  std::vector<RateSeries> Result() const;

 private:
  RateGrouping grouping_;
  RateOptions options_;
  // label -> window index -> count (sparse).
  std::map<std::string, std::map<uint64_t, uint64_t>> windows_;
  // Counted records sitting exactly on max_ts_ (derived-end mode only).
  std::map<std::string, uint64_t> at_max_;
  SimTime max_ts_ = 0;
  bool any_records_ = false;
};

// Computes one series per label. Series are ordered by label.
// Legacy whole-vector entry point, kept as a thin wrapper over RatesPass
// — prefer the pass for anything that may grow large.
std::vector<RateSeries> ComputeRates(const std::vector<TraceRecord>& records,
                                     const RateGrouping& grouping, const RateOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_RATES_H_
