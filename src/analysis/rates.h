// Per-process timer-set rate timelines — Figure 1.
//
// "The graph shows the number of timers used per second by Outlook,
//  Internet Explorer, system processes and the kernel over a 90 second
//  excerpt from a trace."

#ifndef TEMPO_SRC_ANALYSIS_RATES_H_
#define TEMPO_SRC_ANALYSIS_RATES_H_

#include <map>
#include <string>
#include <vector>

#include "src/trace/record.h"

namespace tempo {

// One labelled series of events-per-window counts.
struct RateSeries {
  std::string label;
  std::vector<uint64_t> per_window;
};

struct RateOptions {
  SimDuration window = kSecond;
  SimTime start = 0;
  SimTime end = 0;  // 0: run to the last record
  // Count only arming operations (set/block); false counts all accesses.
  bool sets_only = true;
};

// Groups pids under labels ("Outlook", "System", ...); pids not mentioned
// fall under `default_label` (empty: dropped).
struct RateGrouping {
  std::map<Pid, std::string> pid_labels;
  std::string default_label = "System";
  std::string kernel_label = "Kernel";
};

// Computes one series per label. Series are ordered by label.
std::vector<RateSeries> ComputeRates(const std::vector<TraceRecord>& records,
                                     const RateGrouping& grouping, const RateOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_RATES_H_
