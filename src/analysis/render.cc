#include "src/analysis/render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tempo {

namespace {

std::string Format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string FormatCount(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Timeout value in the paper's style: seconds with up to 4 significant
// decimals ("0.004", "0.4999", "7200").
std::string FormatValueSeconds(SimDuration d) {
  const double s = ToSeconds(d);
  char buf[64];
  if (s >= 1.0 && std::fabs(s - std::round(s)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.0f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
    // Trim trailing zeros but keep at least one decimal.
    std::string out = buf;
    while (out.size() > 1 && out.back() == '0' && out[out.size() - 2] != '.') {
      out.pop_back();
    }
    return out;
  }
  return buf;
}

}  // namespace

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "" : "  ");
      if (c == 0) {
        out << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        out << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    out << "\n";
  };
  emit(header);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows) {
    emit(row);
  }
  return out.str();
}

std::string RenderSummaryTable(const std::vector<TraceSummary>& summaries) {
  std::vector<std::string> header{""};
  for (const auto& s : summaries) {
    header.push_back(s.label);
  }
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> r{name};
    for (const auto& s : summaries) {
      r.push_back(FormatCount(getter(s)));
    }
    return r;
  };
  std::vector<std::vector<std::string>> rows;
  rows.push_back(row("Timers", [](const TraceSummary& s) { return s.timers; }));
  rows.push_back(row("Concurrency", [](const TraceSummary& s) { return s.concurrency; }));
  rows.push_back(row("Accesses", [](const TraceSummary& s) { return s.accesses; }));
  rows.push_back(row("User-space", [](const TraceSummary& s) { return s.user_space; }));
  rows.push_back(row("Kernel", [](const TraceSummary& s) { return s.kernel; }));
  rows.push_back(row("Set", [](const TraceSummary& s) { return s.set; }));
  rows.push_back(row("Expired", [](const TraceSummary& s) { return s.expired; }));
  rows.push_back(row("Canceled", [](const TraceSummary& s) { return s.canceled; }));
  return RenderTable(header, rows);
}

std::string RenderPatternHistogram(
    const std::vector<std::pair<std::string, std::map<UsagePattern, double>>>& workloads) {
  static constexpr UsagePattern kOrder[] = {
      UsagePattern::kDelay,    UsagePattern::kPeriodic, UsagePattern::kTimeout,
      UsagePattern::kWatchdog, UsagePattern::kDeferred, UsagePattern::kCountdown,
      UsagePattern::kOther,
  };
  std::vector<std::string> header{"pattern"};
  for (const auto& [label, histogram] : workloads) {
    header.push_back(label);
  }
  std::vector<std::vector<std::string>> rows;
  for (UsagePattern pattern : kOrder) {
    std::vector<std::string> row{UsagePatternName(pattern)};
    bool any = false;
    for (const auto& [label, histogram] : workloads) {
      auto it = histogram.find(pattern);
      const double v = it != histogram.end() ? it->second : 0.0;
      any = any || v > 0;
      row.push_back(Format("%5.1f%%", v));
    }
    if (any) {
      rows.push_back(std::move(row));
    }
  }
  return RenderTable(header, rows);
}

std::string RenderValueHistogram(const ValueHistogram& histogram, bool show_jiffies) {
  std::ostringstream out;
  std::vector<std::string> header{"timeout [s]"};
  if (show_jiffies) {
    header.push_back("(jiffies)");
  }
  header.push_back("% of values");
  header.push_back("count");
  header.push_back("");
  std::vector<std::vector<std::string>> rows;
  for (const ValueBucket& b : histogram.buckets) {
    std::vector<std::string> row;
    row.push_back(FormatValueSeconds(b.value));
    if (show_jiffies) {
      row.push_back(b.jiffies >= 0 ? "(" + FormatCount(static_cast<uint64_t>(b.jiffies)) + ")"
                                   : "");
    }
    row.push_back(Format("%5.1f", b.percent));
    row.push_back(FormatCount(b.count));
    row.push_back(std::string(static_cast<size_t>(std::lround(b.percent)), '#'));
    rows.push_back(std::move(row));
  }
  out << RenderTable(header, rows);
  out << Format("shown buckets cover %.1f%% of ", histogram.coverage_percent)
      << histogram.total_sets << " sets\n";
  return out.str();
}

std::string RenderScatter(const std::vector<ScatterPoint>& points) {
  // Coarse character plot: x = log10(timeout) from 1e-4 to 1e4, y = 0..250%.
  constexpr int kCols = 64;
  constexpr int kRows = 25;
  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  uint64_t max_count = 1;
  for (const ScatterPoint& p : points) {
    max_count = std::max(max_count, p.count);
  }
  for (const ScatterPoint& p : points) {
    const double lx = std::log10(p.timeout_seconds);
    int col = static_cast<int>((lx + 4.0) / 8.0 * kCols);
    int row = kRows - 1 - static_cast<int>(p.percent / 250.0 * kRows);
    col = std::clamp(col, 0, kCols - 1);
    row = std::clamp(row, 0, kRows - 1);
    const double weight =
        std::log10(static_cast<double>(p.count)) / std::log10(static_cast<double>(max_count) + 1.0);
    const char mark = weight > 0.66 ? 'O' : (weight > 0.33 ? 'o' : '.');
    char& cell = grid[row][col];
    if (cell == ' ' || mark == 'O' || (mark == 'o' && cell == '.')) {
      cell = mark;
    }
  }
  std::ostringstream out;
  out << "expired/canceled [% of set timeout] vs timeout [s] "
         "(. few, o some, O many)\n";
  for (int r = 0; r < kRows; ++r) {
    const int pct = static_cast<int>((kRows - r) * 250 / kRows);
    char label[16];
    std::snprintf(label, sizeof(label), "%4d%% |", pct);
    out << label << grid[r] << "\n";
  }
  out << "       +" << std::string(kCols, '-') << "\n";
  out << "        1e-4      1e-2      1e0       1e2       1e4\n";
  return out.str();
}

std::string RenderRates(const std::vector<RateSeries>& series, SimDuration window) {
  std::ostringstream out;
  const double seconds = ToSeconds(window);
  for (const RateSeries& s : series) {
    uint64_t peak = 0;
    uint64_t total = 0;
    for (uint64_t v : s.per_window) {
      peak = std::max(peak, v);
      total += v;
    }
    const double mean = s.per_window.empty()
                            ? 0
                            : static_cast<double>(total) /
                                  (static_cast<double>(s.per_window.size()) * seconds);
    out << s.label << ": mean " << Format("%.1f", mean) << "/s, peak "
        << Format("%.0f", static_cast<double>(peak) / seconds) << "/s over "
        << s.per_window.size() << " windows\n";
  }
  return out.str();
}

std::string RenderOrigins(const std::vector<OriginRow>& rows) {
  std::vector<std::string> header{"Timeout [s]", "Origin", "Class", "Sets"};
  std::vector<std::vector<std::string>> table;
  for (const OriginRow& row : rows) {
    table.push_back({FormatValueSeconds(row.value), row.origin,
                     UsagePatternName(row.pattern), FormatCount(row.sets)});
  }
  return RenderTable(header, table);
}

std::string ScatterColumns(const std::vector<ScatterPoint>& points) {
  std::ostringstream out;
  out << "# timeout_s percent count expired\n";
  for (const ScatterPoint& p : points) {
    out << p.timeout_seconds << " " << p.percent << " " << p.count << " "
        << (p.expired ? 1 : 0) << "\n";
  }
  return out.str();
}

std::string RateColumns(const std::vector<RateSeries>& series, SimDuration window) {
  std::ostringstream out;
  for (const RateSeries& s : series) {
    out << "# " << s.label << "\n";
    for (size_t i = 0; i < s.per_window.size(); ++i) {
      out << ToSeconds(static_cast<SimDuration>(i) * window) << " " << s.per_window[i] << "\n";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tempo
