// ASCII renderers for analysis output.
//
// Benches print tables and figures in the same layout as the paper's so the
// two can be compared side by side; gnuplot-ready column output is also
// available for every figure.

#ifndef TEMPO_SRC_ANALYSIS_RENDER_H_
#define TEMPO_SRC_ANALYSIS_RENDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/classify.h"
#include "src/analysis/histogram.h"
#include "src/analysis/origins.h"
#include "src/analysis/rates.h"
#include "src/analysis/scatter.h"
#include "src/analysis/summary.h"

namespace tempo {

// Generic aligned table: header row plus data rows.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// Tables 1/2: one column per workload summary.
std::string RenderSummaryTable(const std::vector<TraceSummary>& summaries);

// Figure 2-style pattern histogram: one column per workload.
std::string RenderPatternHistogram(
    const std::vector<std::pair<std::string, std::map<UsagePattern, double>>>& workloads);

// Figure 3/5/6/7-style value histogram with bars.
std::string RenderValueHistogram(const ValueHistogram& histogram, bool show_jiffies);

// Figures 8-11: coarse ASCII scatter plus per-point listing.
std::string RenderScatter(const std::vector<ScatterPoint>& points);

// Figure 1: rates over time (log-scale ASCII) plus peak statistics.
std::string RenderRates(const std::vector<RateSeries>& series, SimDuration window);

// Table 3.
std::string RenderOrigins(const std::vector<OriginRow>& rows);

// gnuplot-ready columns (x y [size] per line, series separated by blank
// lines with a "# label" comment).
std::string ScatterColumns(const std::vector<ScatterPoint>& points);
std::string RateColumns(const std::vector<RateSeries>& series, SimDuration window);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_RENDER_H_
