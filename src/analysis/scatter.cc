#include "src/analysis/scatter.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "src/analysis/render.h"

namespace tempo {

std::vector<ScatterPoint> ComputeScatter(const std::vector<Episode>& episodes,
                                         const ScatterOptions& options) {
  struct Key {
    int timeout_bucket;
    int percent_bucket;
    bool expired;
    bool operator<(const Key& o) const {
      if (timeout_bucket != o.timeout_bucket) {
        return timeout_bucket < o.timeout_bucket;
      }
      if (percent_bucket != o.percent_bucket) {
        return percent_bucket < o.percent_bucket;
      }
      return expired < o.expired;
    }
  };
  std::map<Key, uint64_t> buckets;

  for (const Episode& e : episodes) {
    if (e.timeout <= 0) {
      continue;  // immediate / past expiry: not plotted
    }
    if (options.exclude_pids.count(e.pid) != 0) {
      continue;
    }
    bool expired = false;
    switch (e.end) {
      case EpisodeEnd::kExpired:
        expired = true;
        break;
      case EpisodeEnd::kCanceled:
        expired = false;
        break;
      case EpisodeEnd::kReset:
        if (!options.include_resets) {
          continue;
        }
        expired = false;
        break;
      case EpisodeEnd::kOpen:
        continue;
    }
    const double pct = 100.0 * e.fraction();
    if (pct > options.max_percent) {
      continue;  // figure cut-off
    }
    Key key{};
    key.timeout_bucket = static_cast<int>(std::floor(
        std::log10(ToSeconds(e.timeout)) * options.buckets_per_decade));
    key.percent_bucket = static_cast<int>(std::floor(pct / options.percent_bucket));
    key.expired = expired;
    ++buckets[key];
  }

  std::vector<ScatterPoint> points;
  points.reserve(buckets.size());
  for (const auto& [key, count] : buckets) {
    ScatterPoint p;
    p.timeout_seconds = std::pow(
        10.0, (static_cast<double>(key.timeout_bucket) + 0.5) /
                  static_cast<double>(options.buckets_per_decade));
    p.percent = (static_cast<double>(key.percent_bucket) + 0.5) * options.percent_bucket;
    p.count = count;
    p.expired = key.expired;
    points.push_back(p);
  }
  return points;
}

void ScatterPass::Accumulate(std::span<const TraceRecord> records) {
  episodes_.Accumulate(records);
}

void ScatterPass::Merge(AnalysisPass&& other) {
  episodes_.Merge(std::move(dynamic_cast<ScatterPass&>(other).episodes_));
}

std::vector<ScatterPoint> ScatterPass::Result() const {
  EpisodeBuilder copy = episodes_;  // Finish consumes; keep the pass reusable
  return ComputeScatter(std::move(copy).Finish(), options_);
}

std::unique_ptr<AnalysisPass> ScatterPass::Fork() const {
  return std::make_unique<ScatterPass>(options_);
}

void ScatterPass::Render(RenderSink& sink) {
  sink.Section("scatter", "scatter:\n" + RenderScatter(Result()) + "\n");
}

std::vector<ScatterPoint> ComputeScatter(const std::vector<TraceRecord>& records,
                                         const ScatterOptions& options) {
  ScatterPass pass(options);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

}  // namespace tempo
