// Expiry/cancellation scatter data — Figures 8-11.
//
// For every episode, the paper plots the value the timer was set to against
// the percentage of that value after which the timer was canceled or
// expired, aggregating equal points into sized circles. Points above 250 %
// are cut off; timers set to expire immediately or in the past are not
// plotted. The hyperbolic curve at short timeouts comes from the
// near-constant delivery latency of tick-driven expiry.

#ifndef TEMPO_SRC_ANALYSIS_SCATTER_H_
#define TEMPO_SRC_ANALYSIS_SCATTER_H_

#include <set>
#include <vector>

#include "src/analysis/lifetimes.h"
#include "src/analysis/pass.h"

namespace tempo {

// One aggregated scatter point.
struct ScatterPoint {
  double timeout_seconds = 0.0;  // bucket centre (log-scale bucketing)
  double percent = 0.0;          // bucket centre of elapsed/timeout * 100
  uint64_t count = 0;            // episodes aggregated into this point
  bool expired = false;          // vs canceled
};

struct ScatterOptions {
  double max_percent = 250.0;   // cut-off, as in the figures
  int buckets_per_decade = 12;  // timeout-axis resolution
  double percent_bucket = 5.0;  // percent-axis resolution
  bool include_resets = false;  // count re-arms as cancellations
  // Exclude these pids (X/icewm filter, as in the figures).
  std::set<Pid> exclude_pids;
};

// Streaming scatter data (Figures 8-11) as an AnalysisPass: records
// stream into a mergeable EpisodeBuilder; bucketing happens at Result.
class ScatterPass : public AnalysisPass {
 public:
  explicit ScatterPass(ScatterOptions options = {}) : options_(std::move(options)) {}

  const char* name() const override { return "scatter"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The aggregated points; call after all merges.
  std::vector<ScatterPoint> Result() const;

 private:
  ScatterOptions options_;
  EpisodeBuilder episodes_;
};

// Builds scatter points from a trace's episodes.
std::vector<ScatterPoint> ComputeScatter(const std::vector<Episode>& episodes,
                                         const ScatterOptions& options);

// Convenience: episodes from records, then scatter.
// Legacy whole-vector entry point, kept as a thin wrapper over
// ScatterPass — prefer the pass for anything that may grow large.
std::vector<ScatterPoint> ComputeScatter(const std::vector<TraceRecord>& records,
                                         const ScatterOptions& options);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_SCATTER_H_
