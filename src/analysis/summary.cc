#include "src/analysis/summary.h"

#include <algorithm>
#include <utility>

#include "src/analysis/render.h"

namespace tempo {

void SummaryPass::Touch(TimerId timer) {
  if (touched_index_.emplace(timer, touched_order_.size()).second) {
    touched_order_.push_back(timer);
    segment_max_.push_back(0);
  }
}

void SummaryPass::Accumulate(std::span<const TraceRecord> records) {
  for (const TraceRecord& r : records) {
    ++partial_.accesses;
    if (r.is_user()) {
      ++partial_.user_space;
    } else {
      ++partial_.kernel;
    }
    if (r.timer != kInvalidTimerId) {
      timers_.insert(r.timer);
    }
    switch (r.op) {
      case TimerOp::kInit:
        break;
      case TimerOp::kSet:
      case TimerOp::kBlock:
        ++partial_.set;
        Touch(r.timer);
        open_.insert(r.timer);
        segment_max_.back() = std::max<uint64_t>(segment_max_.back(), open_.size());
        break;
      case TimerOp::kExpire:
        ++partial_.expired;
        Touch(r.timer);
        open_.erase(r.timer);
        break;
      case TimerOp::kCancel:
        ++partial_.canceled;
        Touch(r.timer);
        open_.erase(r.timer);
        break;
      case TimerOp::kUnblock:
        if ((r.flags & kFlagWaitSatisfied) != 0) {
          ++partial_.canceled;
        } else {
          ++partial_.expired;
        }
        Touch(r.timer);
        open_.erase(r.timer);
        break;
    }
  }
}

void SummaryPass::Merge(AnalysisPass&& other) {
  auto& later = dynamic_cast<SummaryPass&>(other);

  partial_.accesses += later.partial_.accesses;
  partial_.user_space += later.partial_.user_space;
  partial_.kernel += later.partial_.kernel;
  partial_.set += later.partial_.set;
  partial_.expired += later.partial_.expired;
  partial_.canceled += later.partial_.canceled;
  timers_.insert(later.timers_.begin(), later.timers_.end());

  // Fold the later range's segment maxima into ours. A timer of our open
  // set stays outstanding through the later range until that range first
  // touches it, so the later range's local |open| undercounts the true
  // concurrency by `carried`: our open timers it has not yet seen.
  size_t current = segment_max_.size() - 1;
  uint64_t carried = open_.size();
  for (size_t k = 0; k <= later.touched_order_.size(); ++k) {
    const uint64_t sampled = later.segment_max_[k];
    if (sampled > 0) {
      segment_max_[current] = std::max(segment_max_[current], sampled + carried);
    }
    if (k < later.touched_order_.size()) {
      const TimerId timer = later.touched_order_[k];
      if (open_.count(timer) != 0) {
        --carried;  // now governed by the later range's own tracking
      }
      if (touched_index_.emplace(timer, touched_order_.size()).second) {
        touched_order_.push_back(timer);
        segment_max_.push_back(0);
        current = segment_max_.size() - 1;
      }
    }
  }

  // Merged open set: our opens the later range never touched, plus its own.
  for (auto it = open_.begin(); it != open_.end();) {
    if (later.touched_index_.count(*it) != 0) {
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  open_.insert(later.open_.begin(), later.open_.end());
}

TraceSummary SummaryPass::Result() const {
  TraceSummary s = partial_;
  s.label = label_;
  s.timers = timers_.size();
  s.concurrency = *std::max_element(segment_max_.begin(), segment_max_.end());
  return s;
}

std::unique_ptr<AnalysisPass> SummaryPass::Fork() const {
  return std::make_unique<SummaryPass>(label_);
}

void SummaryPass::Render(RenderSink& sink) {
  sink.Section("summary", RenderSummaryTable({Result()}) + "\n");
}

TraceSummary Summarize(const std::vector<TraceRecord>& records, const std::string& label) {
  SummaryPass pass(label);
  pass.Accumulate(std::span<const TraceRecord>(records.data(), records.size()));
  return pass.Result();
}

}  // namespace tempo
