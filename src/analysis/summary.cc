#include "src/analysis/summary.h"

#include <algorithm>
#include <unordered_set>

namespace tempo {

TraceSummary Summarize(const std::vector<TraceRecord>& records, const std::string& label) {
  TraceSummary s;
  s.label = label;
  std::unordered_set<TimerId> timers;
  std::unordered_set<TimerId> outstanding;
  for (const TraceRecord& r : records) {
    ++s.accesses;
    if (r.is_user()) {
      ++s.user_space;
    } else {
      ++s.kernel;
    }
    if (r.timer != kInvalidTimerId) {
      timers.insert(r.timer);
    }
    switch (r.op) {
      case TimerOp::kInit:
        break;
      case TimerOp::kSet:
      case TimerOp::kBlock:
        ++s.set;
        outstanding.insert(r.timer);
        s.concurrency = std::max<uint64_t>(s.concurrency, outstanding.size());
        break;
      case TimerOp::kExpire:
        ++s.expired;
        outstanding.erase(r.timer);
        break;
      case TimerOp::kCancel:
        ++s.canceled;
        outstanding.erase(r.timer);
        break;
      case TimerOp::kUnblock:
        if ((r.flags & kFlagWaitSatisfied) != 0) {
          ++s.canceled;
        } else {
          ++s.expired;
        }
        outstanding.erase(r.timer);
        break;
    }
  }
  s.timers = timers.size();
  return s;
}

}  // namespace tempo
