// Trace summaries — the rows of Tables 1 and 2.

#ifndef TEMPO_SRC_ANALYSIS_SUMMARY_H_
#define TEMPO_SRC_ANALYSIS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/pass.h"
#include "src/trace/record.h"

namespace tempo {

// Aggregate statistics of one trace, matching the fields the paper reports:
// "timers shows the total number of allocated timer data structures in each
//  trace, concurrency the maximum number of outstanding timers at any time,
//  accesses is the total number of accesses to the timer subsystem, and
//  user-space / kernel show the number of explicit and implicit accesses
//  from user-space and the kernel. Set, expired, and canceled show the
//  total number of operations of each type."
struct TraceSummary {
  std::string label;
  uint64_t timers = 0;       // distinct timer identities observed
  uint64_t concurrency = 0;  // max simultaneously outstanding
  uint64_t accesses = 0;     // total records
  uint64_t user_space = 0;   // records flagged kFlagUser
  uint64_t kernel = 0;       // the rest
  uint64_t set = 0;          // kSet + kBlock (arming operations)
  uint64_t expired = 0;      // kExpire + timed-out unblocks
  uint64_t canceled = 0;     // kCancel + satisfied unblocks
};

// Streaming summary (Tables 1/2) as an AnalysisPass.
//
// Counters and the distinct-timer set merge trivially; the subtle field
// is `concurrency`, the all-time maximum of the outstanding-timer set,
// which depends on timers carried over a chunk boundary. Each pass
// therefore records, per "segment" between first touches of distinct
// timers, the maximum size its local outstanding set reached; at merge
// time the later pass's segment maxima are raised by however many of the
// earlier pass's open timers it had not yet touched. That reproduces the
// serial maximum exactly for any chunking (see pipeline tests).
class SummaryPass : public AnalysisPass {
 public:
  explicit SummaryPass(std::string label) : label_(std::move(label)) {}

  const char* name() const override { return "summary"; }
  std::unique_ptr<AnalysisPass> Fork() const override;
  void Accumulate(std::span<const TraceRecord> records) override;
  void Merge(AnalysisPass&& other) override;
  void Render(RenderSink& sink) override;

  // The finished summary; call after all merges.
  TraceSummary Result() const;

 private:
  void Touch(TimerId timer);

  std::string label_;
  TraceSummary partial_;  // counter fields only; timers/concurrency at Result
  std::unordered_set<TimerId> timers_;
  std::unordered_set<TimerId> open_;  // outstanding at the end of our range
  // Timers in order of first non-init operation, and the max |open_|
  // sampled after each of those first touches (index k: after the k-th
  // touch; 0 = no arming sample in that span).
  std::unordered_map<TimerId, size_t> touched_index_;
  std::vector<TimerId> touched_order_;
  std::vector<uint64_t> segment_max_ = {0};
};

// Computes the summary of a time-ordered trace.
// Legacy whole-vector entry point, kept as a thin wrapper over
// SummaryPass — prefer the pass (with analysis/pipeline.h) for anything
// that may grow large.
TraceSummary Summarize(const std::vector<TraceRecord>& records, const std::string& label);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_SUMMARY_H_
