// Trace summaries — the rows of Tables 1 and 2.

#ifndef TEMPO_SRC_ANALYSIS_SUMMARY_H_
#define TEMPO_SRC_ANALYSIS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/record.h"

namespace tempo {

// Aggregate statistics of one trace, matching the fields the paper reports:
// "timers shows the total number of allocated timer data structures in each
//  trace, concurrency the maximum number of outstanding timers at any time,
//  accesses is the total number of accesses to the timer subsystem, and
//  user-space / kernel show the number of explicit and implicit accesses
//  from user-space and the kernel. Set, expired, and canceled show the
//  total number of operations of each type."
struct TraceSummary {
  std::string label;
  uint64_t timers = 0;       // distinct timer identities observed
  uint64_t concurrency = 0;  // max simultaneously outstanding
  uint64_t accesses = 0;     // total records
  uint64_t user_space = 0;   // records flagged kFlagUser
  uint64_t kernel = 0;       // the rest
  uint64_t set = 0;          // kSet + kBlock (arming operations)
  uint64_t expired = 0;      // kExpire + timed-out unblocks
  uint64_t canceled = 0;     // kCancel + satisfied unblocks
};

// Computes the summary of a time-ordered trace.
TraceSummary Summarize(const std::vector<TraceRecord>& records, const std::string& label);

}  // namespace tempo

#endif  // TEMPO_SRC_ANALYSIS_SUMMARY_H_
