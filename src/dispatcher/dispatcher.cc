#include "src/dispatcher/dispatcher.h"

#include <algorithm>
#include <cassert>

namespace tempo {

// --- DispatchTask ---

RequirementId DispatchTask::RunWithin(SimDuration earliest, SimDuration latest,
                                      std::function<void()> fn) {
  const SimTime now = dispatcher_->sim_->Now();
  if (latest < earliest) {
    latest = earliest;
  }
  return dispatcher_->Declare(this, TemporalDispatcher::Kind::kOneShot, now + earliest,
                              now + latest, std::move(fn));
}

RequirementId DispatchTask::RunAfter(SimDuration delay, std::function<void()> fn) {
  return RunWithin(delay, delay, std::move(fn));
}

RequirementId DispatchTask::RunEvery(SimDuration period, SimDuration slack,
                                     std::function<void()> fn) {
  const SimTime now = dispatcher_->sim_->Now();
  const RequirementId id =
      dispatcher_->Declare(this, TemporalDispatcher::Kind::kPeriodic,
                           now + std::max<SimDuration>(period - slack / 2, 0),
                           now + period + slack / 2, std::move(fn));
  TemporalDispatcher::Requirement* req = dispatcher_->requirements_.at(id).get();
  req->period = period;
  req->slack = slack;
  req->epoch = now;
  req->iteration = 1;
  return id;
}

RequirementId DispatchTask::Guard(SimDuration timeout, std::function<void()> on_expire) {
  const SimTime now = dispatcher_->sim_->Now();
  const RequirementId id = dispatcher_->Declare(
      this, TemporalDispatcher::Kind::kGuard, now + timeout, now + timeout,
      std::move(on_expire));
  TemporalDispatcher::Requirement* req = dispatcher_->requirements_.at(id).get();
  req->period = timeout;  // remember the timeout for kicks
  req->guard_deadline = now + timeout;
  return id;
}

void DispatchTask::Kick(RequirementId id) {
  auto it = dispatcher_->requirements_.find(id);
  if (it == dispatcher_->requirements_.end() || !it->second->alive) {
    return;
  }
  // A kick is bookkeeping only: no timer is re-armed. The stale wakeup (if
  // any) notices the extended deadline and goes back to sleep.
  TemporalDispatcher::Requirement* req = it->second.get();
  req->guard_deadline = dispatcher_->sim_->Now() + req->period;
  req->earliest = req->guard_deadline;
  req->latest = req->guard_deadline;
}

void DispatchTask::Complete(RequirementId id) {
  auto it = dispatcher_->requirements_.find(id);
  if (it == dispatcher_->requirements_.end()) {
    return;
  }
  it->second->completed = true;
  it->second->alive = false;
  dispatcher_->requirements_.erase(it);
}

bool DispatchTask::Cancel(RequirementId id) {
  auto it = dispatcher_->requirements_.find(id);
  if (it == dispatcher_->requirements_.end()) {
    return false;
  }
  ++dispatcher_->canceled_;
  dispatcher_->metrics_.canceled->Inc();
  dispatcher_->requirements_.erase(it);
  return true;
}

void DispatchTask::ChargeWork(SimDuration cpu_time) {
  vruntime_ += cpu_time / static_cast<SimDuration>(weight_);
}

// --- TemporalDispatcher ---

TemporalDispatcher::TemporalDispatcher(Simulator* sim)
    : TemporalDispatcher(sim, Options{}) {}

TemporalDispatcher::TemporalDispatcher(Simulator* sim, Options options)
    : sim_(sim), options_(options) {
  obs::Registry& reg = obs::Registry::Global();
  metrics_.declared =
      reg.GetCounter("dispatcher_declared", {}, "Temporal requirements declared");
  metrics_.dispatched =
      reg.GetCounter("dispatcher_dispatched", {}, "Requirements dispatched");
  metrics_.canceled =
      reg.GetCounter("dispatcher_canceled", {}, "Requirements canceled");
  metrics_.piggybacked = reg.GetCounter(
      "dispatcher_piggybacked", {},
      "Dispatches batched onto an existing wakeup (no extra hardware timer)");
  metrics_.hw_programs =
      reg.GetCounter("dispatcher_hw_programs", {}, "Hardware timer programmings");
  metrics_.reprograms_saved = reg.GetCounter(
      "dispatcher_reprograms_saved", {},
      "Reprogram requests absorbed because the timer was already aimed right");
  metrics_.wakeups = reg.GetCounter("dispatcher_wakeups", {}, "Hardware wakeups taken");
  metrics_.batch_size = reg.GetHistogram("dispatcher_batch_size", {},
                                         "Requirements dispatched per wakeup");
  metrics_.lateness_ns = reg.GetHistogram(
      "dispatcher_lateness_ns", {}, "Dispatch lateness past the declared window (ns)");
}

TemporalDispatcher::~TemporalDispatcher() = default;

DispatchTask* TemporalDispatcher::CreateTask(const std::string& name, uint64_t weight) {
  tasks_.push_back(std::unique_ptr<DispatchTask>(new DispatchTask()));
  DispatchTask* task = tasks_.back().get();
  task->dispatcher_ = this;
  task->name_ = name;
  task->weight_ = std::max<uint64_t>(weight, 1);
  task->lateness_hist_ = obs::Registry::Global().GetHistogram(
      "dispatcher_task_lateness_ns", {{"task", name}},
      "Dispatch lateness past the declared window, per task (ns)");
  return task;
}

RequirementId TemporalDispatcher::Declare(DispatchTask* task, Kind kind, SimTime earliest,
                                          SimTime latest, std::function<void()> fn) {
  auto req = std::make_unique<Requirement>();
  const RequirementId id = next_id_++;
  req->id = id;
  req->task = task;
  req->kind = kind;
  req->earliest = earliest;
  req->latest = latest;
  req->fn = std::move(fn);
  requirements_.emplace(id, std::move(req));
  ++declared_;
  metrics_.declared->Inc();
  if (!in_dispatch_) {
    Reprogram();
  }
  return id;
}

void TemporalDispatcher::Reprogram() {
  // One hardware timer for the whole system: the earliest must-run-by
  // deadline across every declared requirement.
  SimTime needed = kNeverTime;
  for (const auto& [id, req] : requirements_) {
    needed = std::min(needed, req->latest);
  }
  if (needed == wakeup_at_) {
    if (needed != kNeverTime) {
      metrics_.reprograms_saved->Inc();
    }
    return;
  }
  if (wakeup_event_ != kInvalidEventId) {
    sim_->Cancel(wakeup_event_);
    wakeup_event_ = kInvalidEventId;
    wakeup_at_ = kNeverTime;
  }
  if (needed == kNeverTime) {
    return;
  }
  needed = std::max(needed, sim_->Now());
  ++hardware_programs_;
  metrics_.hw_programs->Inc();
  wakeup_at_ = needed;
  wakeup_event_ = sim_->ScheduleAt(needed, [this] { OnWakeup(); });
}

size_t TemporalDispatcher::DispatchDue(bool piggyback_pass) {
  const SimTime now = sim_->Now();
  // Collect candidate ids (snapshotted: dispatched callbacks may cancel or
  // declare requirements, invalidating pointers): mandatory (latest <= now)
  // or, in the piggyback pass, any open window (earliest <= now).
  struct Candidate {
    RequirementId id;
    SimTime latest;
    SimDuration vruntime;
  };
  std::vector<Candidate> due;
  for (auto& [id, req] : requirements_) {
    if (!req->alive) {
      continue;
    }
    const bool mandatory = req->latest <= now;
    const bool open = req->earliest <= now;
    if (mandatory || (piggyback_pass && open && options_.piggyback)) {
      due.push_back(Candidate{id, req->latest, req->task->vruntime_});
    }
  }
  // Deadline order first; ties broken by the owning task's virtual runtime
  // (the weighted-fair policy deciding who gets the CPU first).
  std::sort(due.begin(), due.end(), [](const Candidate& a, const Candidate& b) {
    if (a.latest != b.latest) {
      return a.latest < b.latest;
    }
    if (a.vruntime != b.vruntime) {
      return a.vruntime < b.vruntime;
    }
    return a.id < b.id;
  });

  size_t count = 0;
  for (const Candidate& candidate : due) {
    auto it = requirements_.find(candidate.id);
    if (it == requirements_.end() || !it->second->alive) {
      continue;  // canceled by an earlier dispatch this round
    }
    Requirement* req = it->second.get();
    const bool was_mandatory = req->latest <= now;
    // Lateness bookkeeping against the declared window.
    const SimDuration lateness = std::max<SimDuration>(0, now - req->latest);
    DispatchTask* task = req->task;
    task->total_lateness_ += lateness;
    task->worst_lateness_ = std::max(task->worst_lateness_, lateness);
    task->lateness_hist_->Record(static_cast<uint64_t>(lateness));
    ++task->dispatches_;
    ++dispatched_;
    if (!was_mandatory) {
      ++piggybacked_;
    }

    std::function<void()> fn;
    switch (req->kind) {
      case Kind::kGuard:
        if (req->guard_deadline > now) {
          // Kicked since the wakeup was programmed: nothing to do yet.
          --task->dispatches_;
          --dispatched_;
          piggybacked_ -= was_mandatory ? 0 : 1;
          continue;
        }
        fn = std::move(req->fn);
        requirements_.erase(req->id);
        break;
      case Kind::kOneShot:
        fn = std::move(req->fn);
        requirements_.erase(req->id);
        break;
      case Kind::kPeriodic: {
        fn = req->fn;  // keep for the next iteration
        ++req->iteration;
        const SimTime nominal =
            req->epoch + static_cast<SimDuration>(req->iteration) * req->period;
        req->earliest = std::max(now, nominal - req->slack / 2);
        req->latest = std::max(req->earliest, nominal + req->slack / 2);
        break;
      }
    }
    metrics_.dispatched->Inc();
    if (!was_mandatory) {
      metrics_.piggybacked->Inc();
    }
    metrics_.lateness_ns->Record(static_cast<uint64_t>(lateness));
    if (fn) {
      fn();
    }
    ++count;
  }
  return count;
}

void TemporalDispatcher::OnWakeup() {
  wakeup_event_ = kInvalidEventId;
  wakeup_at_ = kNeverTime;
  in_dispatch_ = true;
  metrics_.wakeups->Inc();
  // Mandatory work first, then everything whose window is already open
  // (the batching that a per-timer design cannot do).
  size_t batch = DispatchDue(/*piggyback_pass=*/false);
  batch += DispatchDue(/*piggyback_pass=*/true);
  metrics_.batch_size->Record(batch);
  in_dispatch_ = false;
  Reprogram();
}

}  // namespace tempo
