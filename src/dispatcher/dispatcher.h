// A temporal CPU dispatcher — the clean-slate design of Section 5.5.
//
// "Setting a timer implicitly requests that a piece of code run at a
//  particular time in the future. ... an application-level interface to
//  the CPU scheduler, rather than an explicit multiplexer of hardware
//  timers, is what applications would find most useful."
//
// The dispatcher unifies the paper's timer use cases with CPU scheduling:
// tasks do not arm timers; they declare WHAT CODE should run WHEN —
// one-shot windows, periodic cadences with slack, watchdogs, and guarded
// operations — and the dispatcher runs the right piece of code at the
// right time, directly on the task (a scheduler-activations-style upcall),
// subject to a system-wide weighted-fair CPU allocation policy.
//
// Because the dispatcher owns every temporal requirement, it can do what no
// layered timer stack can:
//   * program ONE underlying hardware timer for the earliest hard deadline
//     (everything else piggybacks on natural dispatch points);
//   * batch slack-tolerant work into existing wakeups;
//   * skip watchdog re-arms entirely (a deadline is data, not a timer);
//   * account dispatch latency against the declared windows.

#ifndef TEMPO_SRC_DISPATCHER_DISPATCHER_H_
#define TEMPO_SRC_DISPATCHER_DISPATCHER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace tempo {

class TemporalDispatcher;

// Identifies a declared requirement; 0 invalid.
using RequirementId = uint64_t;
inline constexpr RequirementId kInvalidRequirement = 0;

// A schedulable entity. Owned by the dispatcher.
class DispatchTask {
 public:
  const std::string& name() const { return name_; }

  // --- Declaring temporal requirements (Section 5.4's vocabulary) ---

  // "Any time within [earliest, latest] from now, run fn."
  RequirementId RunWithin(SimDuration earliest, SimDuration latest,
                          std::function<void()> fn);

  // "After exactly delay, run fn" (zero-slack one-shot).
  RequirementId RunAfter(SimDuration delay, std::function<void()> fn);

  // "Every period (with per-dispatch slack), run fn." Drift-free cadence.
  RequirementId RunEvery(SimDuration period, SimDuration slack, std::function<void()> fn);

  // "If Complete(id) has not been called within timeout, run on_expire."
  // The watchdog is pure bookkeeping: re-arming it (Kick) costs no timer
  // operation, only a timestamp update.
  RequirementId Guard(SimDuration timeout, std::function<void()> on_expire);

  // Postpones a Guard's deadline by its full timeout (watchdog kick).
  void Kick(RequirementId id);

  // Completes a Guard: the failure continuation will not run.
  void Complete(RequirementId id);

  // Cancels any requirement.
  bool Cancel(RequirementId id);

  // CPU work accounting: a dispatched callback that performs work calls
  // this to charge virtual CPU time against the task's fair share.
  void ChargeWork(SimDuration cpu_time);

  // --- Introspection ---
  uint64_t dispatches() const { return dispatches_; }
  SimDuration total_lateness() const { return total_lateness_; }
  SimDuration worst_lateness() const { return worst_lateness_; }
  SimDuration virtual_runtime() const { return vruntime_; }

 private:
  friend class TemporalDispatcher;
  DispatchTask() = default;

  TemporalDispatcher* dispatcher_ = nullptr;
  std::string name_;
  uint64_t weight_ = 1;
  SimDuration vruntime_ = 0;
  uint64_t dispatches_ = 0;
  SimDuration total_lateness_ = 0;
  SimDuration worst_lateness_ = 0;
  // Per-task lateness distribution, labeled {task=<name>}; the scalars
  // above are its sum and max, which is what the cross-check test pins.
  obs::Histogram* lateness_hist_ = nullptr;
};

// The dispatcher.
class TemporalDispatcher {
 public:
  struct Options {
    // Minimum spacing between forced hardware wakeups (the dispatcher's
    // only real timer); batching happens inside this resolution.
    SimDuration min_timer_spacing;
    // How far ahead of a window's `latest` the dispatcher aims to run
    // slack-tolerant work when piggybacking on another wakeup.
    bool piggyback;

    Options() : min_timer_spacing(100 * kMicrosecond), piggyback(true) {}
  };

  explicit TemporalDispatcher(Simulator* sim);
  TemporalDispatcher(Simulator* sim, Options options);
  TemporalDispatcher(const TemporalDispatcher&) = delete;
  TemporalDispatcher& operator=(const TemporalDispatcher&) = delete;
  ~TemporalDispatcher();

  // Creates a task with a fair-share weight.
  DispatchTask* CreateTask(const std::string& name, uint64_t weight = 1);

  // --- The power-and-correctness metrics of the design ---

  // Hardware timer programmings performed (the wakeup/power proxy: a raw
  // timer subsystem performs one per armed timer).
  uint64_t hardware_programs() const { return hardware_programs_; }

  // Requirements dispatched on a piggybacked wakeup (no extra hardware
  // timer was needed for them).
  uint64_t piggybacked_dispatches() const { return piggybacked_; }

  // Total requirements declared / dispatched / canceled.
  uint64_t declared() const { return declared_; }
  uint64_t dispatched() const { return dispatched_; }
  uint64_t canceled() const { return canceled_; }

 private:
  friend class DispatchTask;

  enum class Kind : uint8_t { kOneShot, kPeriodic, kGuard };

  struct Requirement {
    RequirementId id = kInvalidRequirement;
    DispatchTask* task = nullptr;
    Kind kind = Kind::kOneShot;
    // Dispatch window [earliest, latest]; for guards, latest is the
    // deadline and earliest == latest.
    SimTime earliest = 0;
    SimTime latest = 0;
    // Periodic state.
    SimDuration period = 0;
    SimDuration slack = 0;
    SimTime epoch = 0;
    uint64_t iteration = 0;
    // Guard state.
    SimTime guard_deadline = 0;
    bool completed = false;
    std::function<void()> fn;
    bool alive = true;
  };

  RequirementId Declare(DispatchTask* task, Kind kind, SimTime earliest, SimTime latest,
                        std::function<void()> fn);
  void Reprogram();
  void OnWakeup();
  // Runs every requirement whose window permits execution now, in
  // deadline-then-fairness order. Returns the count dispatched.
  size_t DispatchDue(bool piggyback_pass);

  Simulator* sim_;
  Options options_;
  std::deque<std::unique_ptr<DispatchTask>> tasks_;
  std::map<RequirementId, std::unique_ptr<Requirement>> requirements_;
  RequirementId next_id_ = 1;

  EventId wakeup_event_ = kInvalidEventId;
  SimTime wakeup_at_ = kNeverTime;
  bool in_dispatch_ = false;

  uint64_t hardware_programs_ = 0;
  uint64_t piggybacked_ = 0;
  uint64_t declared_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t canceled_ = 0;

  // Self-metrics (obs registry instruments, resolved in the constructor).
  struct Metrics {
    obs::Counter* declared;
    obs::Counter* dispatched;
    obs::Counter* canceled;
    obs::Counter* piggybacked;
    obs::Counter* hw_programs;
    // Reprogram() calls that found the hardware timer already aimed at the
    // right deadline — the reprogramming a per-timer design would have done
    // and this design avoids.
    obs::Counter* reprograms_saved;
    obs::Counter* wakeups;
    obs::Histogram* batch_size;  // requirements dispatched per wakeup
    obs::Histogram* lateness_ns; // dispatch lateness past the window's latest
  };
  Metrics metrics_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_DISPATCHER_DISPATCHER_H_
