#include "src/fleet/aggregator.h"

#include <algorithm>

namespace tempo {
namespace fleet {

namespace {

void MergeSeries(const std::vector<SeriesSummary>& in,
                 std::map<std::string, FleetSeries>* out) {
  for (const SeriesSummary& series : in) {
    FleetSeries& merged = (*out)[series.label];
    merged.label = series.label;
    ++merged.hosts;
    merged.sets += series.sets;
    merged.expires += series.expires;
    merged.cancels += series.cancels;
    merged.rate_sum += series.last_rate;
    merged.peak_rate = std::max(merged.peak_rate, series.peak_rate);
    if (series.burst_active) {
      ++merged.hosts_bursting;
    }
    merged.bursts += series.bursts;
    merged.burst_peak_rate = std::max(merged.burst_peak_rate, series.burst_peak_rate);
  }
}

std::vector<FleetSeries> TopK(std::map<std::string, FleetSeries>&& merged,
                              size_t top_k) {
  std::vector<FleetSeries> out;
  out.reserve(merged.size());
  for (auto& [label, series] : merged) {
    out.push_back(std::move(series));
  }
  // Busiest first; label order (already sorted by the map) breaks ties, so
  // the view is deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const FleetSeries& a, const FleetSeries& b) {
                     return a.sets > b.sets;
                   });
  if (top_k > 0 && out.size() > top_k) {
    out.resize(top_k);
  }
  return out;
}

}  // namespace

FleetAggregator::FleetAggregator(FleetOptions options) : options_(std::move(options)) {
  if (!options_.stats_label.empty()) {
    obs::Registry& registry = obs::Registry::Global();
    const obs::Labels labels = {{"aggregator", options_.stats_label}};
    gauge_hosts_ = registry.GetGauge("fleet_hosts", labels,
                                     "Hosts the aggregator has ever seen");
    gauge_hosts_live_ = registry.GetGauge("fleet_hosts_live", labels,
                                          "Hosts with a fresh summary");
    metric_frames_ = registry.GetCounter("fleet_frames_total", labels,
                                         "Summary frames ingested");
    metric_decode_errors_ = registry.GetCounter(
        "fleet_decode_errors_total", labels, "Frames lost to wire damage");
    metric_sequence_gaps_ = registry.GetCounter(
        "fleet_sequence_gaps_total", labels, "Summary frames that never arrived");
  }
}

void FleetAggregator::Ingest(const HostSummary& summary, const std::string& source) {
  ++frames_;
  if (!source.empty()) {
    ++sources_[source].frames;
  }
  HostState& state = hosts_[summary.host];
  ++state.frames;
  state.source = source;
  const uint64_t prev = state.last.sequence;
  if (summary.sequence <= prev) {
    // A replay or an out-of-order frame; keep the newer state we have.
    ++state.duplicates;
    return;
  }
  // Sequences start at 1; anything skipped is a frame that never arrived.
  state.sequence_gaps += summary.sequence - prev - 1;
  state.last = summary;
  fleet_now_ = std::max(fleet_now_, summary.now);
}

void FleetAggregator::NoteDecodeError(const std::string& source, FleetReadError error) {
  ++decode_errors_;
  SourceState& state = sources_[source];
  ++state.decode_errors;
  state.last_error = error;
  state.saw_error = true;
  for (auto& [host, host_state] : hosts_) {
    if (host_state.source == source) {
      host_state.source_poisoned = true;
    }
  }
}

void FleetAggregator::NoteClose(const std::string& source, bool clean) {
  SourceState& state = sources_[source];
  state.closed = true;
  state.clean_close = state.clean_close && clean;
  for (auto& [host, host_state] : hosts_) {
    if (host_state.source == source) {
      host_state.closed = true;
      host_state.clean_close = host_state.clean_close && clean;
    }
  }
}

FleetView FleetAggregator::TakeView(size_t top_k) const {
  FleetView view;
  view.fleet_now = fleet_now_;
  view.frames_total = frames_;
  view.decode_errors_total = decode_errors_;
  view.hosts_total = hosts_.size();

  std::map<std::string, FleetSeries> processes;
  std::map<std::string, FleetSeries> origins;
  std::map<std::string, uint64_t> patterns;
  view.hosts.reserve(hosts_.size());
  for (const auto& [name, state] : hosts_) {
    const HostSummary& last = state.last;
    FleetHostStatus status;
    status.host = name;
    status.source = state.source;
    status.frames = state.frames;
    status.sequence = last.sequence;
    status.sequence_gaps = state.sequence_gaps;
    status.duplicates = state.duplicates;
    status.now = last.now;
    status.age = fleet_now_ - last.now;
    status.records = last.records;
    status.relay_dropped = last.relay_dropped();
    for (const SeriesSummary& series : last.processes) {
      status.burst_active = status.burst_active || series.burst_active;
    }
    status.stale = status.age > options_.stale_after;
    status.closed = state.closed;
    status.clean = !state.source_poisoned && state.clean_close &&
                   state.sequence_gaps == 0 && state.duplicates == 0;

    view.records_total += last.records;
    view.relay_dropped_total += status.relay_dropped;
    view.sequence_gaps_total += state.sequence_gaps;
    view.duplicates_total += state.duplicates;
    if (status.stale) {
      ++view.hosts_stale;
    } else {
      ++view.hosts_live;
    }
    if (status.closed) {
      ++view.hosts_closed;
    }
    if (!last.slack.slack.empty() || last.slack.canceled > 0 ||
        last.slack.open > 0) {
      view.slack.Merge(last.slack);
      ++view.hosts_reporting_slack;
    }
    MergeSeries(last.processes, &processes);
    MergeSeries(last.origins, &origins);
    for (const auto& [pattern, timers] : last.patterns) {
      patterns[pattern] += timers;
    }
    view.hosts.push_back(std::move(status));
  }
  view.processes = TopK(std::move(processes), top_k);
  view.origins = TopK(std::move(origins), top_k);
  view.patterns.assign(patterns.begin(), patterns.end());

  for (const auto& [name, state] : sources_) {
    if (state.closed && !state.clean_close) {
      ++view.dirty_closes_total;
    }
    if (!state.saw_error && (!state.closed || state.clean_close)) {
      continue;  // healthy sources need no row of their own
    }
    FleetSourceStatus status;
    status.source = name;
    status.frames = state.frames;
    status.decode_errors = state.decode_errors;
    if (state.saw_error) {
      status.last_error = FleetReadErrorName(state.last_error);
    }
    status.closed = state.closed;
    status.clean = !state.saw_error && state.clean_close;
    view.sources.push_back(std::move(status));
  }
  return view;
}

uint64_t FleetAggregator::HostsWithBurst(const std::string& label,
                                         double min_rate) const {
  uint64_t count = 0;
  for (const auto& [name, state] : hosts_) {
    for (const SeriesSummary& series : state.last.processes) {
      if (series.label == label && series.bursts > 0 &&
          series.burst_peak_rate >= min_rate) {
        ++count;
        break;
      }
    }
  }
  return count;
}

void FleetAggregator::SyncObs() {
  if (gauge_hosts_ == nullptr) {
    return;
  }
  uint64_t live = 0;
  uint64_t gaps = 0;
  for (const auto& [name, state] : hosts_) {
    if (fleet_now_ - state.last.now <= options_.stale_after) {
      ++live;
    }
    gaps += state.sequence_gaps;
  }
  gauge_hosts_->Set(static_cast<int64_t>(hosts_.size()));
  gauge_hosts_live_->Set(static_cast<int64_t>(live));
  metric_frames_->AdvanceTo(frames_);
  metric_decode_errors_->AdvanceTo(decode_errors_);
  metric_sequence_gaps_->AdvanceTo(gaps);
}

FleetCollector::FleetCollector(FleetAggregator* aggregator)
    : aggregator_(aggregator) {}

void FleetCollector::OnBytes(const std::string& source, const uint8_t* data,
                             size_t size) {
  PerSource& state = sources_[source];
  state.decoder.Feed(data, size);
  Drain(source, &state);
}

void FleetCollector::OnClose(const std::string& source, bool clean) {
  PerSource& state = sources_[source];
  state.decoder.Close();
  Drain(source, &state);  // buffered partial bytes surface as kTruncated
  aggregator_->NoteClose(source, clean && !state.decoder.poisoned());
}

void FleetCollector::Drain(const std::string& source, PerSource* state) {
  HostSummary summary;
  FleetReadError error = FleetReadError::kTruncated;
  for (;;) {
    switch (state->decoder.Next(&summary, &error)) {
      case FrameDecoder::Status::kFrame:
        aggregator_->Ingest(summary, source);
        break;
      case FrameDecoder::Status::kNeedMore:
        return;
      case FrameDecoder::Status::kError:
        if (!state->error_reported) {
          state->error_reported = true;
          aggregator_->NoteDecodeError(source, error);
        }
        return;
    }
  }
}

ByteStreamHandler FleetCollector::Handler() {
  ByteStreamHandler handler;
  handler.on_bytes = [this](const std::string& source, const uint8_t* data,
                            size_t size) { OnBytes(source, data, size); };
  handler.on_close = [this](const std::string& source, bool clean) {
    OnClose(source, clean);
  };
  return handler;
}

}  // namespace fleet
}  // namespace tempo
