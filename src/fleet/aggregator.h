// Merging host summaries into one fleet-wide view.
//
// A FleetAggregator consumes decoded HostSummary frames (from any number of
// transports) and maintains, per host, the latest summary plus the loss
// accounting the wire cannot hide: sequence gaps (frames that never
// arrived), duplicates, decode errors charged to the host's source, and
// whether the stream closed cleanly. TakeView() folds the per-host state
// into fleet totals — per-label series merged across hosts, the fleet
// pattern mix, and a status row per host with its staleness relative to the
// fleet clock (the newest host timestamp seen). The invariant is that a
// host, once seen, never silently disappears: it ages into "stale", it
// closes, its source poisons — each is a visible state, never an absence.
//
// Single-threaded, like the live analyzer it mirrors: callers serialise
// (FleetTcpServer wraps one aggregator and its collector in a mutex).

#ifndef TEMPO_SRC_FLEET_AGGREGATOR_H_
#define TEMPO_SRC_FLEET_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/fleet/summary.h"
#include "src/fleet/wire.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"
#include "src/trace/transport.h"

namespace tempo {
namespace fleet {

struct FleetOptions {
  // A host whose last summary is older than this (against the fleet clock)
  // is reported stale.
  SimDuration stale_after = 3 * kSecond;
  // Label on the aggregator's obs instruments; empty disables them.
  std::string stats_label = "fleet";
};

// One label's series merged across every host reporting it.
struct FleetSeries {
  std::string label;
  uint64_t hosts = 0;  // hosts reporting this label
  uint64_t sets = 0;
  uint64_t expires = 0;
  uint64_t cancels = 0;
  double rate_sum = 0.0;         // sum of last-window rates (fleet sets/s)
  double peak_rate = 0.0;        // largest single-host window rate
  uint64_t hosts_bursting = 0;   // hosts with the burst flag up right now
  uint64_t bursts = 0;           // burst episodes, fleet-total
  double burst_peak_rate = 0.0;  // hottest burst any host saw
};

// One host's status row inside a FleetView.
struct FleetHostStatus {
  std::string host;
  std::string source;  // transport connection that carried it
  uint64_t frames = 0;
  uint64_t sequence = 0;
  uint64_t sequence_gaps = 0;
  uint64_t duplicates = 0;
  SimTime now = 0;
  SimDuration age = 0;  // fleet_now - now
  uint64_t records = 0;
  uint64_t relay_dropped = 0;
  bool burst_active = false;  // any series bursting in the last summary
  bool stale = false;
  bool closed = false;
  // False once anything unexplained happened on this host's path: a decode
  // error on its source, a dirty close, a sequence gap or a duplicate.
  bool clean = true;
};

// A transport source's accounting — kept even when the source never
// delivered a single valid host, so damage has a row of its own.
struct FleetSourceStatus {
  std::string source;
  uint64_t frames = 0;
  uint64_t decode_errors = 0;
  std::string last_error;  // FleetReadErrorName, empty if none
  bool closed = false;
  bool clean = true;
};

struct FleetView {
  SimTime fleet_now = 0;  // newest host timestamp seen
  uint64_t hosts_total = 0;
  uint64_t hosts_live = 0;  // fresh (age <= stale_after), closed or not
  uint64_t hosts_stale = 0;
  uint64_t hosts_closed = 0;
  uint64_t frames_total = 0;
  uint64_t records_total = 0;
  uint64_t relay_dropped_total = 0;
  uint64_t sequence_gaps_total = 0;
  uint64_t duplicates_total = 0;
  uint64_t decode_errors_total = 0;
  uint64_t dirty_closes_total = 0;

  // Firing-accuracy digests merged across every host (exact: the log2
  // buckets are fixed fleet-wide), plus how many hosts reported spans.
  SlackDigest slack;
  uint64_t hosts_reporting_slack = 0;

  std::vector<FleetSeries> processes;  // top-K by fleet sets
  std::vector<FleetSeries> origins;    // top-K by fleet sets
  // Pattern name -> timers fleet-wide.
  std::vector<std::pair<std::string, uint64_t>> patterns;
  std::vector<FleetHostStatus> hosts;      // sorted by host name
  std::vector<FleetSourceStatus> sources;  // only sources with trouble

  // Nothing lost anywhere: every frame decoded, no gaps, no duplicates,
  // every close clean, no relay drops on any host.
  bool clean() const {
    return decode_errors_total == 0 && sequence_gaps_total == 0 &&
           duplicates_total == 0 && dirty_closes_total == 0 &&
           relay_dropped_total == 0;
  }
};

class FleetAggregator {
 public:
  explicit FleetAggregator(FleetOptions options = {});
  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  // Consumes one decoded summary. `source` names the transport connection
  // it arrived on ("" for direct ingestion in tests and benches).
  void Ingest(const HostSummary& summary, const std::string& source = "");

  // Charges a decode error to a source; hosts carried by that source stop
  // being clean.
  void NoteDecodeError(const std::string& source, FleetReadError error);

  // Marks a source's stream finished; its hosts are marked closed.
  void NoteClose(const std::string& source, bool clean);

  // Folds the current state into a view. `top_k` bounds the merged series
  // lists (0: all). Host and source rows are always complete.
  FleetView TakeView(size_t top_k = 0) const;

  // Hosts whose `label` process series saw a burst peaking at or above
  // `min_rate` sets/s.
  uint64_t HostsWithBurst(const std::string& label, double min_rate) const;

  // Publishes fleet aggregates into obs gauges; call before a snapshot.
  void SyncObs();

  uint64_t hosts_seen() const { return hosts_.size(); }
  uint64_t frames_ingested() const { return frames_; }
  uint64_t decode_errors() const { return decode_errors_; }

 private:
  struct HostState {
    HostSummary last;
    std::string source;
    uint64_t frames = 0;
    uint64_t sequence_gaps = 0;
    uint64_t duplicates = 0;
    bool closed = false;
    bool clean_close = true;
    bool source_poisoned = false;
  };

  struct SourceState {
    uint64_t frames = 0;
    uint64_t decode_errors = 0;
    FleetReadError last_error = FleetReadError::kTruncated;
    bool saw_error = false;
    bool closed = false;
    bool clean_close = true;
  };

  FleetOptions options_;
  // std::map keeps view ordering deterministic.
  std::map<std::string, HostState> hosts_;
  std::map<std::string, SourceState> sources_;
  SimTime fleet_now_ = 0;
  uint64_t frames_ = 0;
  uint64_t decode_errors_ = 0;
  obs::Gauge* gauge_hosts_ = nullptr;
  obs::Gauge* gauge_hosts_live_ = nullptr;
  obs::Counter* metric_frames_ = nullptr;
  obs::Counter* metric_decode_errors_ = nullptr;
  obs::Counter* metric_sequence_gaps_ = nullptr;
};

// Binds per-source FrameDecoders to an aggregator: feed transport bytes in,
// decoded summaries (and typed losses) come out the other side. A poisoned
// source reports its error once and discards further bytes.
class FleetCollector {
 public:
  explicit FleetCollector(FleetAggregator* aggregator);

  // Transport callbacks; wire these into a ByteStreamHandler.
  void OnBytes(const std::string& source, const uint8_t* data, size_t size);
  void OnClose(const std::string& source, bool clean);

  // Convenience handler calling the two methods above. The collector must
  // outlive the transport using it.
  ByteStreamHandler Handler();

 private:
  struct PerSource {
    FrameDecoder decoder;
    bool error_reported = false;
  };

  void Drain(const std::string& source, PerSource* state);

  FleetAggregator* aggregator_;
  std::unordered_map<std::string, PerSource> sources_;
};

}  // namespace fleet
}  // namespace tempo

#endif  // TEMPO_SRC_FLEET_AGGREGATOR_H_
