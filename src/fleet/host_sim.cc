#include "src/fleet/host_sim.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "src/fleet/wire.h"

namespace tempo {
namespace fleet {

namespace {

constexpr Pid kOutlookPid = 2;

// Deterministic per-host randomness (phases, burst jitter); the fleet must
// replay exactly from its seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

SimDuration PeriodFromRate(double rate) {
  return rate > 0.0 ? static_cast<SimDuration>(static_cast<double>(kSecond) / rate)
                    : kNeverTime;
}

}  // namespace

SimulatedHost::SimulatedHost(HostSimOptions options)
    : options_(std::move(options)),
      kernel_period_(PeriodFromRate(options_.shape.kernel_rate)),
      watchdog_period_(PeriodFromRate(options_.shape.watchdog_rate)),
      burst_period_(PeriodFromRate(options_.shape.burst_rate)),
      kernel_callsite_(callsites_.Intern("kernel/timer")),
      watchdog_callsite_(callsites_.Intern("outlook/watchdog")) {
  // Start phases offset per host so the fleet's ticks are not in unison.
  const uint64_t r = SplitMix64(options_.seed);
  kernel_next_ = static_cast<SimTime>(r % static_cast<uint64_t>(kernel_period_));
  watchdog_next_ =
      static_cast<SimTime>(SplitMix64(r) % static_cast<uint64_t>(watchdog_period_));

  // Small geometry: a fleet of a thousand hosts must fit in memory, and the
  // producer drains its own channels, so deep buffering buys nothing.
  const RelayChannelConfig config{256, 4};
  kernel_channel_ = channels_.Register(options_.name + "/kernel", config);
  outlook_channel_ = channels_.Register(options_.name + "/outlook", config);

  live::LiveOptions live;
  live.window = options_.window;
  live.ring_windows = 64;
  live.grouping.pid_labels = {{kOutlookPid, "outlook.exe"}};
  live.callsites = &callsites_;
  // Empty labels: a fleet host must not touch the process-global obs
  // registry — a thousand analyzers sharing {series=outlook.exe}
  // instruments would break the single-writer rule.
  live.stats_label.clear();
  live.classifier.stats_label.clear();
  live.classifier.capacity = 256;
  analyzer_ = std::make_unique<live::LiveAnalyzer>(live);
  drainer_ = std::make_unique<RelayDrainer>(&channels_, [this](const TraceRecord& record) {
    analyzer_->Ingest(record);
    slack_.Ingest(record);
  });
}

void SimulatedHost::Log(RelayChannel* channel, const TraceRecord& record) {
  if (!channel->TryLog(record)) {
    // Ring full: drain (we are the consumer too) and retry once. A second
    // failure is a genuine drop and stays in the channel's accounting.
    drainer_->Poll();
    channel->TryLog(record);
  }
  if (++logs_since_poll_ >= 512) {
    logs_since_poll_ = 0;
    drainer_->Poll();
  }
}

void SimulatedHost::AdvanceTo(SimTime now) {
  const HostWorkloadShape& shape = options_.shape;
  const SimTime burst_end = shape.burst_at + shape.burst_duration;
  while (true) {
    const SimTime t = std::min(kernel_next_, watchdog_next_);
    if (t >= now) {
      break;
    }
    if (kernel_next_ <= watchdog_next_) {
      TraceRecord record;
      record.timestamp = t;
      record.timer = 1 + static_cast<TimerId>(kernel_timer_);
      record.timeout = kernel_period_ * static_cast<SimDuration>(shape.kernel_timers);
      record.expiry = t + record.timeout;
      record.callsite = kernel_callsite_;
      record.pid = kKernelPid;
      if (kernel_expire_pending_) {
        // The previous pass armed this timer one full rotation ago; its
        // expiry lands on this tick, keeping set and expire rates equal.
        TraceRecord expire = record;
        expire.op = TimerOp::kExpire;
        Log(kernel_channel_, expire);
      }
      record.op = TimerOp::kSet;
      Log(kernel_channel_, record);
      kernel_timer_ = (kernel_timer_ + 1) % shape.kernel_timers;
      kernel_expire_pending_ = kernel_expire_pending_ || kernel_timer_ == 0;
      kernel_next_ = t + kernel_period_;
    } else {
      TraceRecord record;
      record.timestamp = t;
      record.timer = 1000 + static_cast<TimerId>(watchdog_timer_);
      record.timeout = shape.watchdog_timeout;
      record.expiry = t + record.timeout;
      record.callsite = watchdog_callsite_;
      record.pid = kOutlookPid;
      record.tid = 1;
      record.op = TimerOp::kSet;
      record.flags = kFlagUser;
      Log(outlook_channel_, record);
      watchdog_timer_ = (watchdog_timer_ + 1) % shape.watchdog_timers;
      const bool bursting = t >= shape.burst_at && t < burst_end;
      watchdog_next_ = t + (bursting ? burst_period_ : watchdog_period_);
    }
  }
  drainer_->Poll();
}

void SimulatedHost::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  channels_.CloseAll();
  drainer_->Finish();
}

HostSummary SimulatedHost::BuildSummary() {
  if (!finished_) {
    kernel_channel_->FlushOpen();
    outlook_channel_->FlushOpen();
    drainer_->Poll();
  }
  HostSummary summary = BuildHostSummary(options_.name, ++sequence_,
                                         analyzer_->TakeSnapshot(), &channels_, &slack_);
  summary.metrics.push_back(
      {"relay_accepted",
       static_cast<int64_t>(kernel_channel_->accepted() + outlook_channel_->accepted())});
  summary.metrics.push_back({"drainer_emitted", static_cast<int64_t>(drainer_->emitted())});
  return summary;
}

bool SimulatedHost::Publish(ByteSink* sink) {
  const std::vector<uint8_t> frame = EncodeSummaryFrame(BuildSummary());
  return sink->Write(frame.data(), frame.size());
}

FleetRunResult RunFleet(const FleetRunOptions& options) {
  struct Slot {
    std::unique_ptr<SimulatedHost> host;
    std::unique_ptr<ByteSink> sink;
    bool alive = true;
  };
  std::vector<Slot> slots(options.hosts);
  // Jitter each host's burst start across what the run length allows,
  // leaving two windows of post-burst quiet so the last burst window
  // closes well before the run ends.
  const SimDuration jitter_room =
      std::max<SimDuration>(0, options.duration - 2 * kSecond -
                                   options.shape.burst_duration -
                                   options.shape.burst_at);
  for (size_t i = 0; i < slots.size(); ++i) {
    HostSimOptions host;
    host.name = options.host_prefix + std::to_string(i);
    host.seed = SplitMix64(options.seed + 0x517cc1b727220a95ull * (i + 1));
    host.shape = options.shape;
    if (jitter_room > 0) {
      host.shape.burst_at += static_cast<SimDuration>(
          SplitMix64(host.seed) % static_cast<uint64_t>(jitter_room));
    }
    slots[i].host = std::make_unique<SimulatedHost>(std::move(host));
    slots[i].sink = options.connect(slots[i].host->name());
    // A failed connect is a host that is dead from round one: it still
    // simulates (the fleet's workload shape must not depend on transport
    // health) but never publishes, and the aggregator reports it missing.
    slots[i].alive = slots[i].sink != nullptr;
  }

  size_t threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 2 : std::min<size_t>(hw, 8);
  }
  threads = std::max<size_t>(1, std::min(threads, slots.size()));

  // Lockstep rounds: every host advances to `t` and publishes; joining the
  // round's workers orders each host's state for whichever worker drives
  // it next round.
  const auto round = [&](SimTime t, bool last) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (slots.size() + threads - 1) / threads;
    for (size_t w = 0; w < threads; ++w) {
      const size_t begin = w * chunk;
      const size_t end = std::min(slots.size(), begin + chunk);
      if (begin >= end) {
        break;
      }
      workers.emplace_back([&, begin, end, t, last] {
        for (size_t i = begin; i < end; ++i) {
          Slot& slot = slots[i];
          slot.host->AdvanceTo(t);
          if (last) {
            slot.host->Finish();
          }
          if (slot.alive) {
            slot.alive = slot.host->Publish(slot.sink.get());
          }
          if (last && slot.sink != nullptr) {
            slot.sink->Close();
          }
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  };

  SimTime t = 0;
  while (t < options.duration) {
    t = std::min<SimTime>(t + options.publish_period, options.duration);
    round(t, t == options.duration);
    if (options.after_round) {
      options.after_round(t);
    }
  }

  FleetRunResult result;
  result.hosts = slots.size();
  for (Slot& slot : slots) {
    result.records += slot.host->analyzer().records_ingested();
    result.frames += slot.host->frames_published();
  }
  return result;
}

}  // namespace fleet
}  // namespace tempo
