// Simulated fleet hosts: the Figure 1 desktop, multiplied.
//
// A SimulatedHost is one desktop's worth of the paper's workload — a
// kernel tick source around 1000 sets/s and an outlook.exe whose 5-second
// UI watchdog idles near 70 sets/s and storms to ~7000 sets/s for about a
// second — generated deterministically from a seed, logged through the
// host's own lock-free relay channels, drained into the host's own
// (uninstrumented) LiveAnalyzer, and published as wire-framed summaries.
// Every host is an independent replica of the single-host tempotop
// pipeline; nothing is shared between hosts except the transport they
// publish into.
//
// RunFleet drives K hosts in lockstep publish rounds across a small worker
// pool: each round every host advances its virtual clock by one publish
// period and emits a summary, so a collector on the other side of the
// transport sees a fleet of hosts that agree on time to within a round.

#ifndef TEMPO_SRC_FLEET_HOST_SIM_H_
#define TEMPO_SRC_FLEET_HOST_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/fleet/summary.h"
#include "src/live/live_analyzer.h"
#include "src/live/slack_tracker.h"
#include "src/sim/time.h"
#include "src/trace/callsite.h"
#include "src/trace/relay.h"
#include "src/trace/transport.h"

namespace tempo {
namespace fleet {

// Rates and burst timing of one host's workload.
struct HostWorkloadShape {
  double kernel_rate = 1000.0;   // kernel sets/s (each set pairs with an expire)
  size_t kernel_timers = 64;     // distinct kernel timer ids, round-robin
  double watchdog_rate = 70.0;   // outlook.exe steady sets/s
  size_t watchdog_timers = 8;    // distinct watchdog timer ids
  SimDuration watchdog_timeout = 5 * kSecond;  // the 5 s UI watchdog value
  double burst_rate = 7000.0;    // outlook.exe sets/s during the storm
  SimTime burst_at = 3 * kSecond;
  SimDuration burst_duration = 1500 * kMillisecond;
};

struct HostSimOptions {
  std::string name = "desktop-0";
  uint64_t seed = 1;
  HostWorkloadShape shape;
  SimDuration window = kSecond;  // live analyzer rate window
};

// One host: workload generator -> relay channels -> drainer -> analyzer.
// Single-threaded; RunFleet guarantees one thread touches a host at a time.
class SimulatedHost {
 public:
  explicit SimulatedHost(HostSimOptions options);
  SimulatedHost(const SimulatedHost&) = delete;
  SimulatedHost& operator=(const SimulatedHost&) = delete;

  // Generates, logs and drains all records with timestamps below `now`.
  void AdvanceTo(SimTime now);

  // Closes the channels and drains every remaining record; call once,
  // before the final Publish.
  void Finish();

  // Builds the next cumulative summary (sequence starts at 1), frames it
  // and writes it to `sink`. False once the sink rejects a write.
  bool Publish(ByteSink* sink);

  // The summary the next Publish would frame — for direct ingestion in
  // tests and benches, bypassing the wire.
  HostSummary BuildSummary();

  const std::string& name() const { return options_.name; }
  const live::LiveAnalyzer& analyzer() const { return *analyzer_; }
  const live::SlackTracker& slack() const { return slack_; }
  RelayChannelSet* channels() { return &channels_; }
  uint64_t frames_published() const { return sequence_; }

 private:
  void Log(RelayChannel* channel, const TraceRecord& record);

  HostSimOptions options_;
  SimDuration kernel_period_;
  SimDuration watchdog_period_;
  SimDuration burst_period_;
  SimTime kernel_next_;
  SimTime watchdog_next_;
  size_t kernel_timer_ = 0;
  size_t watchdog_timer_ = 0;
  bool kernel_expire_pending_ = false;  // first tick has nothing to expire

  CallsiteRegistry callsites_;
  CallsiteId kernel_callsite_;
  CallsiteId watchdog_callsite_;
  RelayChannelSet channels_;
  RelayChannel* kernel_channel_;
  RelayChannel* outlook_channel_;
  std::unique_ptr<live::LiveAnalyzer> analyzer_;
  // Empty label, like the analyzer: fleet replicas stay off the obs
  // registry.
  live::SlackTracker slack_{""};
  std::unique_ptr<RelayDrainer> drainer_;
  size_t logs_since_poll_ = 0;
  uint64_t sequence_ = 0;
  bool finished_ = false;
};

struct FleetRunOptions {
  size_t hosts = 4;
  SimDuration duration = 8 * kSecond;
  SimDuration publish_period = 500 * kMillisecond;
  uint64_t seed = 1;
  // Worker threads driving hosts each round; 0 picks a small default.
  size_t threads = 0;
  std::string host_prefix = "desktop-";
  HostWorkloadShape shape;
  // Opens the transport one host publishes into. Required. Called once per
  // host, from the caller's thread, before the first round.
  std::function<std::unique_ptr<ByteSink>(const std::string& host)> connect;
  // Runs on the caller's thread after every lockstep round (hosts idle).
  std::function<void(SimTime now)> after_round;
};

struct FleetRunResult {
  size_t hosts = 0;
  uint64_t records = 0;  // records ingested across all host analyzers
  uint64_t frames = 0;   // summaries published across all hosts
};

// Drives a fleet of simulated hosts to `duration`, publishing each round,
// closing every transport at the end. Burst start times are jittered per
// host (within the run) so the storm is not perfectly synchronised.
FleetRunResult RunFleet(const FleetRunOptions& options);

}  // namespace fleet
}  // namespace tempo

#endif  // TEMPO_SRC_FLEET_HOST_SIM_H_
