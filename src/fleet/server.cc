#include "src/fleet/server.h"

#include <utility>

namespace tempo {
namespace fleet {

namespace {

// Serialises the collector callbacks against owner-side reads: the
// transport's service thread and View()/HostsWithBurst() callers all take
// the same mutex.
ByteStreamHandler LockedHandler(std::mutex* mu, FleetCollector* collector) {
  ByteStreamHandler handler;
  handler.on_bytes = [mu, collector](const std::string& source,
                                     const uint8_t* data, size_t size) {
    std::lock_guard<std::mutex> lock(*mu);
    collector->OnBytes(source, data, size);
  };
  handler.on_close = [mu, collector](const std::string& source, bool clean) {
    std::lock_guard<std::mutex> lock(*mu);
    collector->OnClose(source, clean);
  };
  return handler;
}

}  // namespace

FleetTcpServer::FleetTcpServer() : FleetTcpServer(FleetOptions()) {}

FleetTcpServer::FleetTcpServer(FleetOptions options)
    : FleetTcpServer(std::move(options), TcpStreamServer::Options()) {}

FleetTcpServer::FleetTcpServer(FleetOptions options,
                               TcpStreamServer::Options transport)
    : aggregator_(std::move(options)),
      collector_(&aggregator_),
      transport_(LockedHandler(&mu_, &collector_), std::move(transport)) {}

bool FleetTcpServer::Start(std::string* error) { return transport_.Start(error); }

void FleetTcpServer::Stop() { transport_.Stop(); }

FleetView FleetTcpServer::View(size_t top_k) {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregator_.TakeView(top_k);
}

uint64_t FleetTcpServer::HostsWithBurst(const std::string& label, double min_rate) {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregator_.HostsWithBurst(label, min_rate);
}

uint64_t FleetTcpServer::hosts_seen() {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregator_.hosts_seen();
}

void FleetTcpServer::SyncObs() {
  std::lock_guard<std::mutex> lock(mu_);
  aggregator_.SyncObs();
}

}  // namespace fleet
}  // namespace tempo
