// A ready-to-run fleet collection endpoint: TCP listener, per-connection
// frame decoding, and one aggregator, with the locking the transport's
// service thread requires. Hosts connect with ConnectTcpStream (or any
// ByteSink writing EncodeSummaryFrame output) and publish summaries; the
// owner reads merged views from any thread.

#ifndef TEMPO_SRC_FLEET_SERVER_H_
#define TEMPO_SRC_FLEET_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/fleet/aggregator.h"
#include "src/trace/transport.h"

namespace tempo {
namespace fleet {

class FleetTcpServer {
 public:
  FleetTcpServer();
  explicit FleetTcpServer(FleetOptions options);
  FleetTcpServer(FleetOptions options, TcpStreamServer::Options transport);

  // Binds and starts the service thread; false with *error on failure.
  bool Start(std::string* error);

  // Stops accepting, drains connected sockets, joins the thread.
  void Stop();

  uint16_t port() const { return transport_.port(); }

  // Thread-safe reads of the merged state.
  FleetView View(size_t top_k = 0);
  uint64_t HostsWithBurst(const std::string& label, double min_rate);
  uint64_t hosts_seen();

  // Runs the aggregator's SyncObs under the lock. The obs registry's
  // single-writer rule still applies: only call from the thread that owns
  // the fleet instruments, with the transport stopped or quiescent.
  void SyncObs();

 private:
  std::mutex mu_;
  FleetAggregator aggregator_;
  FleetCollector collector_;
  TcpStreamServer transport_;
};

}  // namespace fleet
}  // namespace tempo

#endif  // TEMPO_SRC_FLEET_SERVER_H_
