#include "src/fleet/summary.h"

namespace tempo {
namespace fleet {

namespace {

SeriesSummary FromStats(const live::LiveSeriesStats& stats) {
  SeriesSummary series;
  series.label = stats.label;
  series.sets = stats.sets;
  series.expires = stats.expires;
  series.cancels = stats.cancels;
  series.mean_rate = stats.mean_rate;
  series.last_rate = stats.last_rate;
  series.peak_rate = stats.peak_rate;
  series.burst_active = stats.burst_active;
  series.bursts = stats.bursts;
  series.burst_peak_rate = stats.burst_peak_rate;
  return series;
}

}  // namespace

SlackDigest DigestFrom(const SlackState& state) {
  SlackDigest digest;
  digest.slack = state.total();
  digest.canceled = state.canceled_spans();
  digest.rearmed = state.rearmed_spans();
  digest.early = state.early_fires();
  digest.open = state.open_spans();
  return digest;
}

uint64_t HostSummary::relay_dropped() const {
  uint64_t dropped = 0;
  for (const ChannelSummary& channel : channels) {
    dropped += channel.dropped;
  }
  return dropped;
}

HostSummary BuildHostSummary(const std::string& host, uint64_t sequence,
                             const live::LiveSnapshot& snapshot,
                             RelayChannelSet* channels,
                             const live::SlackTracker* slack) {
  HostSummary summary;
  summary.host = host;
  summary.sequence = sequence;
  summary.now = snapshot.now;
  summary.window = snapshot.window;
  summary.records = snapshot.records;
  summary.processes.reserve(snapshot.processes.size());
  for (const live::LiveSeriesStats& stats : snapshot.processes) {
    summary.processes.push_back(FromStats(stats));
  }
  summary.origins.reserve(snapshot.origins.size());
  for (const live::LiveSeriesStats& stats : snapshot.origins) {
    summary.origins.push_back(FromStats(stats));
  }
  summary.patterns = snapshot.patterns;
  summary.classifier_tracked = snapshot.classifier_tracked;
  summary.classifier_evictions = snapshot.classifier_evictions;
  summary.windows_evicted = snapshot.windows_evicted;
  if (channels != nullptr) {
    for (size_t i = 0; i < channels->size(); ++i) {
      const RelayChannel* channel = channels->channel(i);
      summary.channels.push_back(
          {channel->name(), channel->accepted(), channel->dropped()});
    }
  }
  if (slack != nullptr) {
    summary.slack = DigestFrom(slack->state());
  }
  return summary;
}

}  // namespace fleet
}  // namespace tempo
