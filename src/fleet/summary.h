// What one host tells the fleet about itself.
//
// A HostSummary is the unit of fleet observation: a compact, cumulative
// digest of one host's live analysis state (src/live) — per-process and
// per-origin set/expire/cancel totals and rates, burst detector state, the
// streaming usage-pattern mix, relay-channel drop counters, and a small
// metrics snapshot — stamped with the host's name, clock and a publish
// sequence number. Hosts publish summaries periodically; the wire format
// (wire.h) frames them; the aggregator (aggregator.h) merges them across
// the fleet. Summaries are cumulative (totals since host start, not
// deltas), so a lost frame degrades freshness but never corrupts totals —
// the aggregator detects the loss from the sequence gap instead.

#ifndef TEMPO_SRC_FLEET_SUMMARY_H_
#define TEMPO_SRC_FLEET_SUMMARY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/latency.h"
#include "src/live/live_analyzer.h"
#include "src/live/slack_tracker.h"
#include "src/sim/time.h"
#include "src/trace/relay.h"

namespace tempo {
namespace fleet {

// One rate series (a process label or an origin) as published by a host.
// Mirrors live::LiveSeriesStats field for field.
struct SeriesSummary {
  std::string label;
  uint64_t sets = 0;
  uint64_t expires = 0;
  uint64_t cancels = 0;
  double mean_rate = 0.0;
  double last_rate = 0.0;
  double peak_rate = 0.0;
  bool burst_active = false;
  uint64_t bursts = 0;
  double burst_peak_rate = 0.0;

  bool operator==(const SeriesSummary&) const = default;
};

// One relay channel's accept/drop accounting.
struct ChannelSummary {
  std::string name;
  uint64_t accepted = 0;
  uint64_t dropped = 0;

  bool operator==(const ChannelSummary&) const = default;
};

// One named scalar from the host's metrics snapshot (counters/gauges the
// host chooses to export fleet-wide).
struct MetricSummary {
  std::string name;
  int64_t value = 0;

  bool operator==(const MetricSummary&) const = default;
};

// The host's firing-accuracy digest: the full log2 slack histogram (64
// fixed buckets, so it merges exactly across hosts — no quantile sketch
// approximation) plus the span counters around it. Cumulative like the
// rest of the summary.
struct SlackDigest {
  SlackHist slack;  // total (fire - requested) per fired span
  uint64_t canceled = 0;
  uint64_t rearmed = 0;
  uint64_t early = 0;
  uint64_t open = 0;

  void Merge(const SlackDigest& o) {
    slack.Merge(o.slack);
    canceled += o.canceled;
    rearmed += o.rearmed;
    early += o.early;
    open += o.open;
  }
  bool operator==(const SlackDigest&) const = default;
};

// Builds the digest from a tracker's fold.
SlackDigest DigestFrom(const SlackState& state);

struct HostSummary {
  std::string host;        // fleet-unique host name
  uint64_t sequence = 0;   // publish counter, starts at 1; gaps = lost frames
  SimTime now = 0;         // host clock at publish
  SimDuration window = 0;  // rate window of the series below
  uint64_t records = 0;    // records ingested by the host's analyzer

  std::vector<SeriesSummary> processes;
  std::vector<SeriesSummary> origins;
  // Pattern name -> timers assigned to it by the online classifier.
  std::vector<std::pair<std::string, uint64_t>> patterns;
  uint64_t classifier_tracked = 0;
  uint64_t classifier_evictions = 0;
  uint64_t windows_evicted = 0;

  std::vector<ChannelSummary> channels;
  std::vector<MetricSummary> metrics;
  SlackDigest slack;

  bool operator==(const HostSummary&) const = default;

  // Total relay drops across the host's channels.
  uint64_t relay_dropped() const;
};

// Builds a host's summary from its live analyzer snapshot and relay
// channel set (either may be what tempotop already displays locally).
// `channels` and `slack` may be nullptr. The caller stamps
// host/sequence/metrics.
HostSummary BuildHostSummary(const std::string& host, uint64_t sequence,
                             const live::LiveSnapshot& snapshot,
                             RelayChannelSet* channels,
                             const live::SlackTracker* slack = nullptr);

}  // namespace fleet
}  // namespace tempo

#endif  // TEMPO_SRC_FLEET_SUMMARY_H_
