#include "src/fleet/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/trace/wire.h"

namespace tempo {
namespace fleet {

namespace {

using wire::Put16;
using wire::Put32;
using wire::Put64;
using wire::Reader;

void PutF64(double v, std::vector<uint8_t>* out) {
  Put64(std::bit_cast<uint64_t>(v), out);
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  // Names are human-scale; clamp to the u16 length prefix so the encoder
  // can never emit a prefix that contradicts the bytes that follow.
  const size_t n = std::min<size_t>(s.size(), 0xffff);
  Put16(static_cast<uint16_t>(n), out);
  out->insert(out->end(), s.begin(), s.begin() + static_cast<ptrdiff_t>(n));
}

void PutSeries(const SeriesSummary& series, std::vector<uint8_t>* out) {
  PutString(series.label, out);
  Put64(series.sets, out);
  Put64(series.expires, out);
  Put64(series.cancels, out);
  PutF64(series.mean_rate, out);
  PutF64(series.last_rate, out);
  PutF64(series.peak_rate, out);
  out->push_back(series.burst_active ? 1 : 0);
  Put64(series.bursts, out);
  PutF64(series.burst_peak_rate, out);
}

// Smallest possible encodings, used to validate counts against the bytes
// actually present before reserving memory for them.
constexpr size_t kMinSeriesBytes = 2 + 8 * 3 + 8 * 3 + 1 + 8 + 8;
constexpr size_t kMinPatternBytes = 2 + 8;
constexpr size_t kMinChannelBytes = 2 + 8 + 8;
constexpr size_t kMinMetricBytes = 2 + 8;

bool ReadF64(Reader* reader, double* v) {
  uint64_t bits = 0;
  if (!reader->Read64(&bits)) {
    return false;
  }
  *v = std::bit_cast<double>(bits);
  return true;
}

bool ReadString(Reader* reader, std::string* out) {
  uint16_t length = 0;
  return reader->Read16(&length) && reader->ReadString(length, out);
}

bool ReadSeries(Reader* reader, SeriesSummary* series) {
  uint8_t active = 0;
  if (!ReadString(reader, &series->label) || !reader->Read64(&series->sets) ||
      !reader->Read64(&series->expires) || !reader->Read64(&series->cancels) ||
      !ReadF64(reader, &series->mean_rate) || !ReadF64(reader, &series->last_rate) ||
      !ReadF64(reader, &series->peak_rate)) {
    return false;
  }
  const uint8_t* raw = reader->Raw(1);
  if (raw == nullptr) {
    return false;
  }
  active = *raw;
  series->burst_active = active != 0;
  return reader->Read64(&series->bursts) && ReadF64(reader, &series->burst_peak_rate);
}

// The digest's bucket list is sparse: a u32 count of non-empty buckets,
// each a (u8 index, u64 count) pair.
constexpr size_t kMinBucketBytes = 1 + 8;

void PutSlackDigest(const SlackDigest& digest, std::vector<uint8_t>* out) {
  Put64(digest.canceled, out);
  Put64(digest.rearmed, out);
  Put64(digest.early, out);
  Put64(digest.open, out);
  Put64(digest.slack.count, out);
  Put64(digest.slack.sum, out);
  Put64(digest.slack.min, out);
  Put64(digest.slack.max, out);
  uint32_t non_empty = 0;
  for (uint64_t bucket : digest.slack.buckets) {
    non_empty += bucket != 0 ? 1 : 0;
  }
  Put32(non_empty, out);
  for (size_t i = 0; i < digest.slack.buckets.size(); ++i) {
    if (digest.slack.buckets[i] != 0) {
      out->push_back(static_cast<uint8_t>(i));
      Put64(digest.slack.buckets[i], out);
    }
  }
}

// Reads a u32 element count and rejects counts that could not possibly fit
// in the bytes remaining — an attacker-controlled (or corrupted) count must
// not drive a giant allocation before the overrun is noticed.
bool ReadCount(Reader* reader, size_t min_element_bytes, uint32_t* count) {
  if (!reader->Read32(count)) {
    return false;
  }
  return static_cast<size_t>(*count) * min_element_bytes <= reader->remaining();
}

// Strict digest decode: bucket indexes must be strictly ascending and in
// range, and the buckets must sum to the advertised count — a digest that
// contradicts itself is framing damage, not data.
bool ReadSlackDigest(Reader* reader, SlackDigest* digest) {
  if (!reader->Read64(&digest->canceled) || !reader->Read64(&digest->rearmed) ||
      !reader->Read64(&digest->early) || !reader->Read64(&digest->open) ||
      !reader->Read64(&digest->slack.count) || !reader->Read64(&digest->slack.sum) ||
      !reader->Read64(&digest->slack.min) || !reader->Read64(&digest->slack.max)) {
    return false;
  }
  uint32_t non_empty = 0;
  if (!ReadCount(reader, kMinBucketBytes, &non_empty)) {
    return false;
  }
  uint64_t total = 0;
  int last_index = -1;
  for (uint32_t i = 0; i < non_empty; ++i) {
    const uint8_t* index = reader->Raw(1);
    if (index == nullptr) {
      return false;
    }
    if (*index <= last_index || *index >= SlackHist::kBucketCount) {
      return false;
    }
    last_index = *index;
    uint64_t bucket = 0;
    if (!reader->Read64(&bucket) || bucket == 0) {
      return false;
    }
    digest->slack.buckets[*index] = bucket;
    total += bucket;
  }
  return total == digest->slack.count;
}

// Payload decode; true on success with every byte consumed.
bool DecodePayload(const uint8_t* data, size_t size, HostSummary* out) {
  Reader reader(data, size);
  uint64_t now = 0;
  uint64_t window = 0;
  if (!ReadString(&reader, &out->host) || !reader.Read64(&out->sequence) ||
      !reader.Read64(&now) || !reader.Read64(&window) ||
      !reader.Read64(&out->records) || !reader.Read64(&out->classifier_tracked) ||
      !reader.Read64(&out->classifier_evictions) ||
      !reader.Read64(&out->windows_evicted)) {
    return false;
  }
  out->now = static_cast<SimTime>(now);
  out->window = static_cast<SimDuration>(window);

  uint32_t count = 0;
  if (!ReadCount(&reader, kMinSeriesBytes, &count)) {
    return false;
  }
  out->processes.resize(count);
  for (SeriesSummary& series : out->processes) {
    if (!ReadSeries(&reader, &series)) {
      return false;
    }
  }
  if (!ReadCount(&reader, kMinSeriesBytes, &count)) {
    return false;
  }
  out->origins.resize(count);
  for (SeriesSummary& series : out->origins) {
    if (!ReadSeries(&reader, &series)) {
      return false;
    }
  }
  if (!ReadCount(&reader, kMinPatternBytes, &count)) {
    return false;
  }
  out->patterns.resize(count);
  for (auto& [name, value] : out->patterns) {
    if (!ReadString(&reader, &name) || !reader.Read64(&value)) {
      return false;
    }
  }
  if (!ReadCount(&reader, kMinChannelBytes, &count)) {
    return false;
  }
  out->channels.resize(count);
  for (ChannelSummary& channel : out->channels) {
    if (!ReadString(&reader, &channel.name) || !reader.Read64(&channel.accepted) ||
        !reader.Read64(&channel.dropped)) {
      return false;
    }
  }
  if (!ReadCount(&reader, kMinMetricBytes, &count)) {
    return false;
  }
  out->metrics.resize(count);
  for (MetricSummary& metric : out->metrics) {
    uint64_t value = 0;
    if (!ReadString(&reader, &metric.name) || !reader.Read64(&value)) {
      return false;
    }
    metric.value = static_cast<int64_t>(value);
  }
  if (!ReadSlackDigest(&reader, &out->slack)) {
    return false;
  }
  return reader.remaining() == 0;
}

std::vector<uint8_t> EncodePayload(const HostSummary& summary) {
  std::vector<uint8_t> payload;
  payload.reserve(256 + 80 * (summary.processes.size() + summary.origins.size()));
  PutString(summary.host, &payload);
  Put64(summary.sequence, &payload);
  Put64(static_cast<uint64_t>(summary.now), &payload);
  Put64(static_cast<uint64_t>(summary.window), &payload);
  Put64(summary.records, &payload);
  Put64(summary.classifier_tracked, &payload);
  Put64(summary.classifier_evictions, &payload);
  Put64(summary.windows_evicted, &payload);
  Put32(static_cast<uint32_t>(summary.processes.size()), &payload);
  for (const SeriesSummary& series : summary.processes) {
    PutSeries(series, &payload);
  }
  Put32(static_cast<uint32_t>(summary.origins.size()), &payload);
  for (const SeriesSummary& series : summary.origins) {
    PutSeries(series, &payload);
  }
  Put32(static_cast<uint32_t>(summary.patterns.size()), &payload);
  for (const auto& [name, value] : summary.patterns) {
    PutString(name, &payload);
    Put64(value, &payload);
  }
  Put32(static_cast<uint32_t>(summary.channels.size()), &payload);
  for (const ChannelSummary& channel : summary.channels) {
    PutString(channel.name, &payload);
    Put64(channel.accepted, &payload);
    Put64(channel.dropped, &payload);
  }
  Put32(static_cast<uint32_t>(summary.metrics.size()), &payload);
  for (const MetricSummary& metric : summary.metrics) {
    PutString(metric.name, &payload);
    Put64(static_cast<uint64_t>(metric.value), &payload);
  }
  PutSlackDigest(summary.slack, &payload);
  return payload;
}

}  // namespace

const char* FleetReadErrorName(FleetReadError error) {
  switch (error) {
    case FleetReadError::kTruncated:
      return "truncated frame";
    case FleetReadError::kMagic:
      return "bad magic";
    case FleetReadError::kVersion:
      return "unknown version";
    case FleetReadError::kOversized:
      return "oversized length prefix";
    case FleetReadError::kChecksum:
      return "checksum mismatch";
    case FleetReadError::kCorrupt:
      return "corrupt payload";
  }
  return "unknown error";
}

uint64_t FleetChecksum(const uint8_t* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<uint8_t> EncodeSummaryFrame(const HostSummary& summary) {
  std::vector<uint8_t> payload = EncodePayload(summary);
  if (payload.size() > kMaxSummaryFrameBytes) {
    // A host must never emit a frame its own decoder rejects as oversized.
    // Halve every list until the frame fits (the fixed header always does):
    // the aggregator still sees the host and its counters, just with the
    // tail of a pathological series population dropped.
    HostSummary trimmed = summary;
    const auto halve = [](auto* v) { v->resize(v->size() / 2); };
    do {
      halve(&trimmed.processes);
      halve(&trimmed.origins);
      halve(&trimmed.patterns);
      halve(&trimmed.channels);
      halve(&trimmed.metrics);
      payload = EncodePayload(trimmed);
    } while (payload.size() > kMaxSummaryFrameBytes);
  }

  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  frame.insert(frame.end(), kFleetMagic, kFleetMagic + sizeof(kFleetMagic));
  Put32(kFleetWireVersion, &frame);
  Put32(static_cast<uint32_t>(payload.size()), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  Put64(FleetChecksum(payload.data(), payload.size()), &frame);
  return frame;
}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  if (poisoned_) {
    return;  // the stream is already accounted as lost
  }
  // Compact the consumed prefix before growing; steady-state the buffer
  // holds at most one partial frame.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::Close() { closed_ = true; }

FrameDecoder::Status FrameDecoder::Next(HostSummary* out, FleetReadError* error) {
  const auto fail = [&](FleetReadError e) {
    poisoned_ = true;
    error_ = e;
    if (error != nullptr) {
      *error = e;
    }
    return Status::kError;
  };
  if (poisoned_) {
    if (error != nullptr) {
      *error = error_;
    }
    return Status::kError;
  }
  const uint8_t* data = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available == 0) {
    return Status::kNeedMore;
  }
  if (available < kFrameHeaderBytes) {
    // Even a partial header can prove the stream is not ours.
    if (std::memcmp(data, kFleetMagic, std::min(available, sizeof(kFleetMagic))) != 0) {
      return fail(FleetReadError::kMagic);
    }
    return closed_ && available > 0 ? fail(FleetReadError::kTruncated)
                                    : Status::kNeedMore;
  }
  if (std::memcmp(data, kFleetMagic, sizeof(kFleetMagic)) != 0) {
    return fail(FleetReadError::kMagic);
  }
  const uint32_t version = wire::Get32(data + 8);
  if (version != kFleetWireVersion) {
    return fail(FleetReadError::kVersion);
  }
  const uint32_t payload_bytes = wire::Get32(data + 12);
  if (payload_bytes == 0 || payload_bytes > kMaxSummaryFrameBytes) {
    return fail(FleetReadError::kOversized);
  }
  const size_t frame_bytes = kFrameHeaderBytes + payload_bytes + kFrameTrailerBytes;
  if (available < frame_bytes) {
    return closed_ ? fail(FleetReadError::kTruncated) : Status::kNeedMore;
  }
  const uint8_t* payload = data + kFrameHeaderBytes;
  const uint64_t stored = wire::Get64(payload + payload_bytes);
  if (stored != FleetChecksum(payload, payload_bytes)) {
    return fail(FleetReadError::kChecksum);
  }
  *out = HostSummary{};
  if (!DecodePayload(payload, payload_bytes, out)) {
    return fail(FleetReadError::kCorrupt);
  }
  consumed_ += frame_bytes;
  ++frames_;
  return Status::kFrame;
}

FrameDecoder::Status DecodeSummaryFrame(const uint8_t* data, size_t size,
                                        HostSummary* out, FleetReadError* error) {
  FrameDecoder decoder;
  decoder.Feed(data, size);
  decoder.Close();
  return decoder.Next(out, error);
}

}  // namespace fleet
}  // namespace tempo
