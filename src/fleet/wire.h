// Wire format for fleet summaries: length-prefixed, versioned, checksummed.
//
// One frame per HostSummary, built from the same little-endian primitives
// as the trace-file formats (src/trace/wire.h) and guarded the same way
// chunked v2 traces are — an explicit version, bounds-checked lengths and
// a typed error taxonomy — plus an FNV-1a checksum over the payload, since
// frames cross machines rather than filesystems:
//
//   "TEMPOFLT" magic (8 bytes)
//   u32 version            (kFleetWireVersion)
//   u32 payload length     (1 .. kMaxSummaryFrameBytes)
//   payload                (encoded HostSummary, see wire.cc)
//   u64 FNV-1a(payload)
//
// Decoding is incremental: a FrameDecoder eats arbitrary byte fragments
// (TCP reads, pipe chunks) and yields complete summaries. Any damage —
// truncation, foreign bytes, an unknown version, a length prefix beyond
// the frame bound, a checksum mismatch, or a payload that contradicts
// itself — surfaces as a typed FleetReadError, never a silent skip: a
// poisoned stream stays poisoned (framing cannot be trusted after damage)
// and the collector accounts the loss against the connection.

#ifndef TEMPO_SRC_FLEET_WIRE_H_
#define TEMPO_SRC_FLEET_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/fleet/summary.h"

namespace tempo {
namespace fleet {

inline constexpr uint8_t kFleetMagic[8] = {'T', 'E', 'M', 'P', 'O', 'F', 'L', 'T'};
// Version history: 1 carried series/pattern/channel/metric lists; 2 appends
// the host's SlackDigest (firing-accuracy histogram + span counters).
inline constexpr uint32_t kFleetWireVersion = 2;

// Frames carry one summary; even a pathological host (thousands of series)
// stays far below this, so a bigger length prefix means framing damage.
inline constexpr uint32_t kMaxSummaryFrameBytes = 4u << 20;

// Bytes before the payload (magic + version + length) and after (checksum).
inline constexpr size_t kFrameHeaderBytes = 8 + 4 + 4;
inline constexpr size_t kFrameTrailerBytes = 8;

// Why a summary frame failed to decode. truncated: the stream ended
// mid-frame; magic: not a fleet frame; version: a fleet frame from an
// unknown revision; oversized: the length prefix exceeds the frame bound;
// checksum: payload bytes damaged in flight; corrupt: checksum-valid
// payload whose content is self-inconsistent (counts that overrun it,
// trailing bytes).
enum class FleetReadError : uint8_t {
  kTruncated = 0,
  kMagic = 1,
  kVersion = 2,
  kOversized = 3,
  kChecksum = 4,
  kCorrupt = 5,
};

// Short mnemonic ("truncated frame", ...) for error messages.
const char* FleetReadErrorName(FleetReadError error);

// FNV-1a 64 over `size` bytes; the frame checksum.
uint64_t FleetChecksum(const uint8_t* data, size_t size);

// Encodes one summary as a complete frame (header + payload + checksum).
std::vector<uint8_t> EncodeSummaryFrame(const HostSummary& summary);

// Incremental decoder over one connection's byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *out holds the next summary
    kNeedMore,  // nothing complete buffered (or stream cleanly finished)
    kError,     // stream poisoned; *error holds the reason
  };

  // Appends received bytes. Cheap; decoding happens in Next().
  void Feed(const uint8_t* data, size_t size);

  // Marks end-of-stream: buffered bytes that do not form a complete frame
  // become a kTruncated error on the next Next() call.
  void Close();

  // Pops the next complete frame. After the first kError every further
  // call returns the same error — bytes after damage are untrustworthy.
  Status Next(HostSummary* out, FleetReadError* error);

  uint64_t frames_decoded() const { return frames_; }
  bool poisoned() const { return poisoned_; }
  // Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already decoded
  uint64_t frames_ = 0;
  bool closed_ = false;
  bool poisoned_ = false;
  FleetReadError error_ = FleetReadError::kTruncated;
};

// One-shot decode of a complete frame held in memory (tests, tools).
// Returns kFrame/kError; a partial frame is kTruncated.
FrameDecoder::Status DecodeSummaryFrame(const uint8_t* data, size_t size,
                                        HostSummary* out, FleetReadError* error);

}  // namespace fleet
}  // namespace tempo

#endif  // TEMPO_SRC_FLEET_WIRE_H_
