#include "src/live/burst.h"

namespace tempo {
namespace live {

BurstDetector::BurstDetector(const BurstThresholds& thresholds, const std::string& label)
    : threshold_(thresholds.threshold),
      clear_(thresholds.clear > thresholds.threshold ? thresholds.threshold
                                                     : thresholds.clear) {
  if (!label.empty()) {
    obs::Registry& registry = obs::Registry::Global();
    gauge_active_ = registry.GetGauge("live_burst_active", {{"series", label}},
                                      "1 while the series is inside a rate burst");
    gauge_rate_ = registry.GetGauge("live_burst_rate", {{"series", label}},
                                    "Peak events/s of the burst in progress");
    counter_bursts_ = registry.GetCounter("live_bursts_total", {{"series", label}},
                                          "Rate bursts detected (threshold + hysteresis)");
  }
}

void BurstDetector::OnWindowClosed(uint64_t window, double rate) {
  if (!active_) {
    if (rate < threshold_) {
      return;
    }
    active_ = true;
    ++bursts_;
    start_window_ = window;
    current_peak_ = rate;
    if (counter_bursts_ != nullptr) {
      counter_bursts_->Inc();
    }
  } else if (rate < clear_) {
    active_ = false;
    current_peak_ = 0.0;
  } else if (rate > current_peak_) {
    current_peak_ = rate;
  }
  if (active_ && current_peak_ > peak_rate_) {
    peak_rate_ = current_peak_;
  }
  if (gauge_active_ != nullptr) {
    gauge_active_->Set(active_ ? 1 : 0);
  }
  if (gauge_rate_ != nullptr) {
    gauge_rate_->Set(static_cast<int64_t>(active_ ? current_peak_ : 0.0));
  }
}

}  // namespace live
}  // namespace tempo
