// Streaming burst detector for per-process timer-set rates.
//
// Figure 1's headline phenomenon is a burst: Outlook's 5-second UI-watchdog
// idiom sits near 70 sets/s and then spikes to ~7000 sets/s for a second at
// a time. A BurstDetector watches one series' closed windows and flags the
// spike with threshold + hysteresis semantics: a burst begins when a
// window's rate reaches `threshold` sets/s and ends only once the rate
// falls below `clear` (clear < threshold), so a storm that wobbles around
// the threshold is one burst, not many. Active bursts are surfaced through
// obs gauges (live_burst_active / live_burst_rate) and completed ones
// counted (live_bursts_total), so an operator's dashboard shows the spike
// while it is happening.

#ifndef TEMPO_SRC_LIVE_BURST_H_
#define TEMPO_SRC_LIVE_BURST_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace tempo {
namespace live {

struct BurstThresholds {
  // Rate (events/s over one closed window) that starts a burst.
  double threshold = 5000.0;
  // Rate below which an active burst ends; clamped to <= threshold.
  double clear = 2500.0;
};

class BurstDetector {
 public:
  // Instruments are labelled {series=<label>} under `stats_label`-prefixed
  // metric names; pass an empty label for an uninstrumented detector.
  BurstDetector(const BurstThresholds& thresholds, const std::string& label);

  // Feeds the rate of one closed window. Windows must arrive in order.
  void OnWindowClosed(uint64_t window, double rate);

  bool active() const { return active_; }
  // Completed + active bursts so far.
  uint64_t bursts() const { return bursts_; }
  // Largest single-window rate inside any burst (0 before the first).
  double peak_rate() const { return peak_rate_; }
  // Largest single-window rate inside the current burst.
  double current_peak_rate() const { return active_ ? current_peak_ : 0.0; }
  uint64_t start_window() const { return start_window_; }

 private:
  double threshold_;
  double clear_;
  bool active_ = false;
  uint64_t bursts_ = 0;
  uint64_t start_window_ = 0;
  double current_peak_ = 0.0;
  double peak_rate_ = 0.0;
  obs::Gauge* gauge_active_ = nullptr;
  obs::Gauge* gauge_rate_ = nullptr;
  obs::Counter* counter_bursts_ = nullptr;
};

}  // namespace live
}  // namespace tempo

#endif  // TEMPO_SRC_LIVE_BURST_H_
