#include "src/live/classifier.h"

#include <cstdlib>

namespace tempo {
namespace live {

namespace {

bool Near(SimDuration a, SimDuration b, SimDuration variance) {
  const SimDuration d = a > b ? a - b : b - a;
  return d <= variance;
}

}  // namespace

OnlineClassifier::OnlineClassifier(Options options) : options_(std::move(options)) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  if (!options_.stats_label.empty()) {
    obs::Registry& registry = obs::Registry::Global();
    metric_evictions_ = registry.GetCounter(
        "live_classifier_evictions", {{"analyzer", options_.stats_label}},
        "Cold timers evicted from the online classifier's LRU");
    gauge_tracked_ = registry.GetGauge(
        "live_classifier_tracked", {{"analyzer", options_.stats_label}},
        "Timers currently tracked by the online classifier");
  }
}

void OnlineClassifier::Observe(const TraceRecord& record) {
  const TimerOp op = record.op;
  if (op != TimerOp::kSet && op != TimerOp::kBlock && op != TimerOp::kCancel &&
      op != TimerOp::kExpire) {
    return;
  }
  ++observed_;

  auto it = timers_.find(record.timer);
  if (it == timers_.end()) {
    // Cancel/expire of an untracked (likely evicted) timer carries no
    // inter-set information; only an arming operation opens a timer.
    if (op == TimerOp::kCancel || op == TimerOp::kExpire) {
      return;
    }
    if (timers_.size() >= options_.capacity) {
      const TimerId coldest = lru_.back();
      lru_.pop_back();
      timers_.erase(coldest);  // its pattern stays frozen in mix_
      ++evictions_;
      if (metric_evictions_ != nullptr) {
        metric_evictions_->Inc();
      }
    }
    it = timers_.emplace(record.timer, TimerState{}).first;
    lru_.push_front(record.timer);
    it->second.lru = lru_.begin();
    ++mix_[static_cast<size_t>(UsagePattern::kSingleUse)];
  }
  TimerState& state = it->second;
  Touch(state, record.timer);

  switch (op) {
    case TimerOp::kSet:
    case TimerOp::kBlock:
      OnArm(state, record);
      break;
    case TimerOp::kCancel:
      state.pending = false;
      state.canceled_since_set = true;
      break;
    case TimerOp::kExpire:
      state.pending = false;
      state.expired_since_set = true;
      state.last_expire = record.timestamp;
      ++state.expiries;
      break;
    default:
      break;
  }
  if (gauge_tracked_ != nullptr) {
    gauge_tracked_->Set(static_cast<int64_t>(timers_.size()));
  }
}

void OnlineClassifier::Touch(TimerState& state, TimerId id) {
  if (state.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, state.lru);
    state.lru = lru_.begin();
  }
  (void)id;
}

void OnlineClassifier::OnArm(TimerState& state, const TraceRecord& record) {
  const SimDuration variance = options_.variance;
  if (state.sets > 0) {
    // One streaming transition: how the previous arming ended, and how the
    // new value relates to the previous one.
    const SimDuration elapsed = record.timestamp - state.last_set;
    if (Near(record.timeout, state.last_timeout, variance)) {
      ++state.same_value;
    } else if (state.last_timeout > elapsed &&
               Near(record.timeout, state.last_timeout - elapsed, variance)) {
      ++state.countdown;
    }
    if (state.expired_since_set) {
      // Re-set after expiry: immediately (periodic) or after a gap (delay).
      if (record.timestamp - state.last_expire <= variance) {
        ++state.periodic;
      } else {
        ++state.delay;
      }
    } else if (state.canceled_since_set) {
      ++state.timeout;
    } else {
      ++state.watchdog;  // re-armed while still pending
    }
  }
  ++state.sets;
  state.last_set = record.timestamp;
  state.last_timeout = record.timeout;
  state.pending = true;
  state.expired_since_set = false;
  state.canceled_since_set = false;
  Reassign(state);
}

UsagePattern OnlineClassifier::Classify(const TimerState& state) const {
  if (state.sets < options_.min_episodes) {
    return UsagePattern::kSingleUse;
  }
  const double transitions = static_cast<double>(state.sets - 1);
  const double dominance = options_.dominance;
  // The countdown idiom never repeats a value, so test it before demanding
  // value stability.
  if (static_cast<double>(state.countdown) >= dominance * transitions) {
    return UsagePattern::kCountdown;
  }
  if (static_cast<double>(state.same_value) < dominance * transitions) {
    return UsagePattern::kOther;
  }
  if (static_cast<double>(state.periodic) >= dominance * transitions) {
    return UsagePattern::kPeriodic;
  }
  if (static_cast<double>(state.watchdog) >= dominance * transitions) {
    // A pure watchdog never expires; the deferred pattern looks like a
    // watchdog that gives up and fires every few iterations.
    return state.expiries == 0 ? UsagePattern::kWatchdog : UsagePattern::kDeferred;
  }
  if (static_cast<double>(state.delay) >= dominance * transitions) {
    return UsagePattern::kDelay;
  }
  if (static_cast<double>(state.timeout) >= dominance * transitions) {
    return UsagePattern::kTimeout;
  }
  return UsagePattern::kOther;
}

void OnlineClassifier::Reassign(TimerState& state) {
  const UsagePattern next = Classify(state);
  if (next != state.pattern) {
    --mix_[static_cast<size_t>(state.pattern)];
    ++mix_[static_cast<size_t>(next)];
    state.pattern = next;
  }
}

bool OnlineClassifier::Lookup(TimerId timer, UsagePattern* pattern) const {
  const auto it = timers_.find(timer);
  if (it == timers_.end()) {
    return false;
  }
  *pattern = it->second.pattern;
  return true;
}

}  // namespace live
}  // namespace tempo
