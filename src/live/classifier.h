// Online usage-pattern classifier over a streaming trace.
//
// The offline classifier (src/analysis/classify.h) needs every episode of a
// timer before it decides; a live consumer cannot wait for the run to end
// or hold every timer forever. OnlineClassifier applies the same rules —
// the paper's 2 ms variance when comparing timeout values and re-set gaps,
// a minimum episode count, a dominance fraction (Section 4.1.1) — to the
// *streaming* inter-set deltas of each timer, updating the timer's pattern
// after every arming operation:
//
//   * periodic  — expired and re-set to the same value within the variance;
//   * delay     — expired and re-set to the same value after a real gap;
//   * watchdog  — re-set to the same value while still pending;
//   * deferred  — watchdog-dominant but with expiries mixed in (the Vista
//                 lazy-close shape);
//   * timeout   — canceled, then re-set to the same value later;
//   * countdown — successive sets count the previous value down by the
//                 elapsed time (the select idiom of Figure 4);
//   * other     — no dominant behaviour; single-use below min_episodes.
//
// Memory is bounded by an LRU over timer ids: when `capacity` timers are
// tracked, the coldest (least recently touched) is evicted, its pattern
// frozen into the aggregate mix, and the eviction counted in the obs
// registry (live_classifier_evictions) — cold timers cost nothing, hot
// timers keep exact streaming state.

#ifndef TEMPO_SRC_LIVE_CLASSIFIER_H_
#define TEMPO_SRC_LIVE_CLASSIFIER_H_

#include <array>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/classify.h"
#include "src/obs/metrics.h"
#include "src/trace/record.h"

namespace tempo {
namespace live {

class OnlineClassifier {
 public:
  struct Options {
    // Maximum timers tracked at once; the coldest is evicted beyond this.
    size_t capacity = 4096;
    // The paper's 2 ms comparison variance (Sections 3.1, 4.1.1).
    SimDuration variance = 2 * kMillisecond;
    // Arming operations before a pattern is assigned.
    size_t min_episodes = 3;
    // Fraction of transitions that must agree for a dominant behaviour.
    double dominance = 0.7;
    // Label on the obs instruments; empty disables instrumentation.
    std::string stats_label = "live";
  };

  explicit OnlineClassifier(Options options);

  // Feeds one record; only kSet/kBlock/kCancel/kExpire advance state.
  void Observe(const TraceRecord& record);

  // Timers currently assigned each pattern, evicted timers included (their
  // last pattern is frozen into the mix). Indexed by UsagePattern.
  const std::array<uint64_t, 8>& mix() const { return mix_; }

  size_t tracked() const { return timers_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t observed() const { return observed_; }

  // Pattern currently assigned to a tracked timer (kSingleUse when below
  // min_episodes); kOther + false return for untracked ids.
  bool Lookup(TimerId timer, UsagePattern* pattern) const;

 private:
  struct TimerState {
    SimTime last_set = 0;
    SimDuration last_timeout = 0;
    SimTime last_expire = 0;
    bool pending = false;
    bool expired_since_set = false;
    bool canceled_since_set = false;
    // Transition tallies between consecutive arming operations.
    uint32_t sets = 0;
    uint32_t periodic = 0;
    uint32_t watchdog = 0;
    uint32_t delay = 0;
    uint32_t timeout = 0;
    uint32_t same_value = 0;
    uint32_t countdown = 0;
    uint32_t expiries = 0;
    UsagePattern pattern = UsagePattern::kSingleUse;
    std::list<TimerId>::iterator lru;
  };

  void Touch(TimerState& state, TimerId id);
  void OnArm(TimerState& state, const TraceRecord& record);
  UsagePattern Classify(const TimerState& state) const;
  void Reassign(TimerState& state);

  Options options_;
  std::unordered_map<TimerId, TimerState> timers_;
  std::list<TimerId> lru_;  // front = hottest, back = eviction candidate
  std::array<uint64_t, 8> mix_{};
  uint64_t evictions_ = 0;
  uint64_t observed_ = 0;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Gauge* gauge_tracked_ = nullptr;
};

}  // namespace live
}  // namespace tempo

#endif  // TEMPO_SRC_LIVE_CLASSIFIER_H_
