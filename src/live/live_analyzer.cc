#include "src/live/live_analyzer.h"

#include <algorithm>
#include <utility>

namespace tempo {
namespace live {

namespace {

// The series a record counts under; empty means dropped. Mirrors the
// offline RatesPass labelling so the identity contract can hold.
const std::string* LabelFor(Pid pid, const RateGrouping& grouping,
                            std::string* scratch) {
  if (pid == kKernelPid) {
    return &grouping.kernel_label;
  }
  const auto it = grouping.pid_labels.find(pid);
  if (it != grouping.pid_labels.end()) {
    return &it->second;
  }
  *scratch = grouping.default_label;
  return scratch;
}

}  // namespace

LiveAnalyzer::LiveAnalyzer(LiveOptions options)
    : options_(std::move(options)),
      window_seconds_(ToSeconds(options_.window > 0 ? options_.window : 1)),
      classifier_(options_.classifier) {
  // An empty stats_label disables instrumentation entirely. Fleet host
  // replicas need this: many analyzers sharing the process-global registry
  // would alias the same instruments and break the single-writer rule.
  if (!options_.stats_label.empty()) {
    obs::Registry& registry = obs::Registry::Global();
    const obs::Labels labels = {{"analyzer", options_.stats_label}};
    metric_records_ = registry.GetCounter("live_records", labels,
                                          "Records ingested by the live analyzer");
    gauge_window_evictions_ =
        registry.GetGauge("live_window_evictions", labels,
                          "Rate-ring windows evicted across all live series");
    gauge_series_ = registry.GetGauge("live_series", labels,
                                      "Process + origin series the analyzer tracks");
  }
}

void LiveAnalyzer::Ingest(const TraceRecord& record) {
  ++records_;
  if (metric_records_ != nullptr) {
    metric_records_->Inc();
  }

  // Trace-end tracking over ALL records — the offline pass derives its
  // analysis end from the last record's timestamp whether or not that
  // record counts. The drainer's merge is time-ordered, so ties accumulate
  // and the at_max epochs (stamped with max_ts_) invalidate lazily.
  if (!any_records_ || record.timestamp > max_ts_) {
    max_ts_ = record.timestamp;
    any_records_ = true;
  }

  classifier_.Observe(record);

  if (record.timestamp < options_.start || options_.window <= 0) {
    return;
  }
  const uint64_t window =
      static_cast<uint64_t>((record.timestamp - options_.start) / options_.window);
  if (window > current_window_) {
    AdvanceWindows(window);
  }

  const bool is_set = record.op == TimerOp::kSet || record.op == TimerOp::kBlock;
  const bool is_cancel = record.op == TimerOp::kCancel;
  const bool is_expire = record.op == TimerOp::kExpire;
  if (!is_set && !is_cancel && !is_expire) {
    return;
  }

  Entry* process = nullptr;
  const auto cached = pid_cache_.find(record.pid);
  if (cached != pid_cache_.end()) {
    process = cached->second;
  } else {
    std::string scratch;
    const std::string* label = LabelFor(record.pid, options_.grouping, &scratch);
    process = label->empty() ? nullptr : &ProcessEntry(record.pid, *label);
    pid_cache_.emplace(record.pid, process);
  }
  Entry* origin = OriginEntry(record.callsite);

  if (is_set) {
    if (process != nullptr) {
      process->sets.Add(window);
      if (process->at_max_stamp != max_ts_) {
        process->at_max_stamp = max_ts_;
        process->at_max = 0;
      }
      ++process->at_max;  // record.timestamp == max_ts_ on the ordered stream
    }
    if (origin != nullptr) {
      origin->sets.Add(window);
    }
  } else if (is_cancel) {
    if (process != nullptr) {
      process->cancels.Add(window);
    }
    if (origin != nullptr) {
      origin->cancels.Add(window);
    }
  } else {
    if (process != nullptr) {
      process->expires.Add(window);
    }
    if (origin != nullptr) {
      origin->expires.Add(window);
    }
  }
}

LiveAnalyzer::Entry& LiveAnalyzer::ProcessEntry(Pid pid, const std::string& label) {
  auto it = processes_.find(label);
  if (it == processes_.end()) {
    // An uninstrumented analyzer keeps its burst detectors uninstrumented
    // too — their {series=label} instruments would alias across replicas.
    const std::string& burst_label =
        options_.stats_label.empty() ? options_.stats_label : label;
    it = processes_
             .try_emplace(label, options_.ring_windows, options_.burst, burst_label)
             .first;
    it->second.next_eval = current_window_;
  }
  (void)pid;
  return it->second;
}

LiveAnalyzer::Entry* LiveAnalyzer::OriginEntry(CallsiteId callsite) {
  if (options_.callsites == nullptr) {
    return nullptr;
  }
  const auto cached = origin_cache_.find(callsite);
  if (cached != origin_cache_.end()) {
    return cached->second;
  }
  const std::string& name = options_.callsites->Name(callsite);
  std::string origin = name.substr(0, name.find('/'));
  if (origin.empty() || origin == "?") {
    origin = "unknown";
  }
  auto it = origins_.find(origin);
  if (it == origins_.end()) {
    // Origin series carry no burst detector: empty label disables the
    // instruments and AdvanceWindows never evaluates them.
    it = origins_
             .try_emplace(origin, options_.ring_windows, options_.burst,
                          std::string())
             .first;
    it->second.next_eval = current_window_;
  }
  origin_cache_.emplace(callsite, &it->second);
  return &it->second;
}

void LiveAnalyzer::AdvanceWindows(uint64_t window) {
  for (auto& [label, entry] : processes_) {
    for (uint64_t w = entry.next_eval; w < window; ++w) {
      entry.burst.OnWindowClosed(
          w, static_cast<double>(entry.sets.Count(w)) / window_seconds_);
    }
    entry.next_eval = window;
  }
  current_window_ = window;
}

LiveSeriesStats LiveAnalyzer::Stats(const std::string& label, const Entry& entry,
                                    bool with_burst) const {
  LiveSeriesStats stats;
  stats.label = label;
  stats.sets = entry.sets.total();
  stats.expires = entry.expires.total();
  stats.cancels = entry.cancels.total();
  const double elapsed = ToSeconds(max_ts_ - options_.start);
  if (elapsed > 0) {
    stats.mean_rate = static_cast<double>(stats.sets) / elapsed;
  }
  if (current_window_ > 0) {
    stats.last_rate =
        static_cast<double>(entry.sets.Count(current_window_ - 1)) / window_seconds_;
  }
  stats.peak_rate = static_cast<double>(entry.sets.peak_count()) / window_seconds_;
  stats.peak_at_s = ToSeconds(options_.start +
                              static_cast<SimTime>(entry.sets.peak_window()) *
                                  options_.window);
  if (with_burst) {
    stats.burst_active = entry.burst.active();
    stats.bursts = entry.burst.bursts();
    stats.burst_peak_rate = entry.burst.peak_rate();
  }
  return stats;
}

LiveSnapshot LiveAnalyzer::TakeSnapshot(size_t top_k) const {
  LiveSnapshot snapshot;
  snapshot.now = max_ts_;
  snapshot.window = options_.window;
  snapshot.records = records_;

  auto collect = [&](const std::map<std::string, Entry>& series, bool with_burst) {
    std::vector<LiveSeriesStats> out;
    out.reserve(series.size());
    for (const auto& [label, entry] : series) {
      out.push_back(Stats(label, entry, with_burst));
    }
    std::sort(out.begin(), out.end(),
              [](const LiveSeriesStats& a, const LiveSeriesStats& b) {
                if (a.sets != b.sets) {
                  return a.sets > b.sets;
                }
                return a.label < b.label;
              });
    if (top_k > 0 && out.size() > top_k) {
      out.resize(top_k);
    }
    return out;
  };
  snapshot.processes = collect(processes_, /*with_burst=*/true);
  snapshot.origins = collect(origins_, /*with_burst=*/false);

  const auto& mix = classifier_.mix();
  for (size_t i = 0; i < mix.size(); ++i) {
    if (mix[i] > 0) {
      snapshot.patterns.emplace_back(
          UsagePatternName(static_cast<UsagePattern>(i)), mix[i]);
    }
  }
  snapshot.classifier_tracked = classifier_.tracked();
  snapshot.classifier_evictions = classifier_.evictions();
  snapshot.windows_evicted = windows_evicted();
  return snapshot;
}

std::vector<RateSeries> LiveAnalyzer::SetRateResult() const {
  const SimTime end = any_records_ ? max_ts_ : 0;
  if (end <= options_.start || options_.window <= 0) {
    return {};
  }
  const size_t window_count = static_cast<size_t>(
      (end - options_.start + options_.window - 1) / options_.window);
  const uint64_t end_window =
      static_cast<uint64_t>((end - options_.start) / options_.window);

  std::vector<RateSeries> out;
  for (const auto& [label, entry] : processes_) {
    // Records at the derived trace-end timestamp fall outside [start, end),
    // exactly as in RatesPass::Result.
    const uint64_t at_end = entry.at_max_stamp == max_ts_ ? entry.at_max : 0;
    if (entry.sets.total() <= at_end) {
      continue;  // the offline scan would never have created this series
    }
    RateSeries series;
    series.label = label;
    series.per_window.assign(window_count, 0);
    if (entry.sets.any()) {
      const uint64_t hi = std::min<uint64_t>(entry.sets.hi(), window_count - 1);
      for (uint64_t w = entry.sets.lo(); w <= hi; ++w) {
        series.per_window[w] = entry.sets.Count(w);
      }
    }
    if (at_end > 0 && end_window < window_count) {
      series.per_window[end_window] -= at_end;
    }
    out.push_back(std::move(series));
  }
  return out;
}

uint64_t LiveAnalyzer::windows_evicted() const {
  uint64_t evicted = 0;
  for (const auto* series : {&processes_, &origins_}) {
    for (const auto& [label, entry] : *series) {
      evicted += entry.sets.evicted_windows() + entry.expires.evicted_windows() +
                 entry.cancels.evicted_windows();
    }
  }
  return evicted;
}

void LiveAnalyzer::SyncObs() {
  if (gauge_window_evictions_ == nullptr) {
    return;
  }
  gauge_window_evictions_->Set(static_cast<int64_t>(windows_evicted()));
  gauge_series_->Set(static_cast<int64_t>(processes_.size() + origins_.size()));
}

}  // namespace live
}  // namespace tempo
