// Live analysis over the relay drain path — Figure 1 computed online.
//
// A LiveAnalyzer taps the globally timestamp-ordered record stream a
// RelayDrainer emits (hook `Ingest` into the drainer's EmitFn, before or
// after the TraceStreamWriter) and maintains, in bounded memory, the three
// things an operator of a timer service wants to watch while it runs:
//
//   1. Sliding-window rate series — per-window set/expire/cancel counts per
//      process label and per origin (the callsite's facility prefix), kept
//      in fixed-size RateRings. The per-label set series obeys the
//      load-bearing identity contract: for a finished run with no ring
//      eviction, SetRateResult() is element-for-element equal to what the
//      offline RatesPass computes from the recorded trace of the same run
//      (including the derived-end rule that records at the final timestamp
//      fall outside the analysis range).
//   2. A streaming burst detector per process label (threshold +
//      hysteresis, burst.h) that flags the Outlook 7000 sets/s watchdog
//      idiom while it happens and surfaces it through obs gauges.
//   3. An online usage-pattern classifier (classifier.h) applying the
//      paper's 2 ms variance rule to streaming inter-set deltas, with LRU
//      eviction of cold timers counted in the obs registry.
//
// Single-threaded consumer, like the drainer that feeds it: all calls must
// come from one thread (or be externally serialised). The obs instruments
// it updates follow the registry's single-writer rule — snapshot from a
// quiescent thread.

#ifndef TEMPO_SRC_LIVE_LIVE_ANALYZER_H_
#define TEMPO_SRC_LIVE_LIVE_ANALYZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/rates.h"
#include "src/live/burst.h"
#include "src/live/classifier.h"
#include "src/live/window_ring.h"
#include "src/obs/metrics.h"
#include "src/trace/callsite.h"
#include "src/trace/record.h"

namespace tempo {
namespace live {

struct LiveOptions {
  // Rate window; matches RateOptions::window for the identity contract.
  SimDuration window = kSecond;
  // Analysis range start; records before it are ignored (but still advance
  // the trace-end clock, exactly as in RatesPass).
  SimTime start = 0;
  // Windows retained per series ring (rounded up to a power of two). The
  // live ≡ offline identity holds while nothing has been evicted.
  size_t ring_windows = 1024;
  // Process labelling, shared with the offline pass (Figure 1 grouping).
  RateGrouping grouping;
  // Resolves callsites to origin labels (facility prefix before the first
  // '/'); nullptr disables the per-origin series. Must outlive the analyzer.
  const CallsiteRegistry* callsites = nullptr;
  // Burst detection over per-process set rates.
  BurstThresholds burst;
  // Online classifier tuning (LRU capacity, 2 ms variance, dominance).
  OnlineClassifier::Options classifier;
  // Label on this analyzer's obs instruments. Empty disables them (and the
  // per-series burst instruments): required when many analyzers coexist in
  // one process, e.g. simulated fleet hosts, where shared instruments
  // would break the registry's single-writer rule.
  std::string stats_label = "live";
};

// One series' worth of display statistics inside a LiveSnapshot.
struct LiveSeriesStats {
  std::string label;
  uint64_t sets = 0;
  uint64_t expires = 0;
  uint64_t cancels = 0;
  double mean_rate = 0.0;   // sets/s over [start, now)
  double last_rate = 0.0;   // sets/s in the last closed window
  double peak_rate = 0.0;   // largest single-window sets/s
  double peak_at_s = 0.0;   // window start of the peak, seconds
  bool burst_active = false;
  uint64_t bursts = 0;
  double burst_peak_rate = 0.0;
};

// Point-in-time view for tempotop and tests.
struct LiveSnapshot {
  SimTime now = 0;
  SimDuration window = 0;
  uint64_t records = 0;
  std::vector<LiveSeriesStats> processes;  // top-K by total sets
  std::vector<LiveSeriesStats> origins;    // top-K by total sets
  // Pattern name -> timers currently assigned to it (single-use included).
  std::vector<std::pair<std::string, uint64_t>> patterns;
  uint64_t classifier_tracked = 0;
  uint64_t classifier_evictions = 0;
  uint64_t windows_evicted = 0;  // ring evictions across all series
};

class LiveAnalyzer {
 public:
  explicit LiveAnalyzer(LiveOptions options);
  LiveAnalyzer(const LiveAnalyzer&) = delete;
  LiveAnalyzer& operator=(const LiveAnalyzer&) = delete;

  // Consumes one record of the drainer's ordered merge. Hot path.
  void Ingest(const TraceRecord& record);

  // Snapshot of the top `top_k` process/origin series (0: all).
  LiveSnapshot TakeSnapshot(size_t top_k = 0) const;

  // The per-label set-rate series of the finished run, with RatesPass
  // semantics (derived end, end-timestamp exclusion, label ordering).
  // Identical to the offline pass while windows_evicted() == 0.
  std::vector<RateSeries> SetRateResult() const;

  // Publishes slow-moving aggregates (windows evicted, tracked timers)
  // into obs gauges; call before a registry snapshot.
  void SyncObs();

  uint64_t records_ingested() const { return records_; }
  SimTime now() const { return max_ts_; }
  uint64_t windows_evicted() const;
  const OnlineClassifier& classifier() const { return classifier_; }

 private:
  struct Entry {
    RateRing sets;
    RateRing expires;
    RateRing cancels;
    BurstDetector burst;
    // Next window this entry's burst detector will see (windows below it
    // are closed and already evaluated).
    uint64_t next_eval = 0;
    // Sets counted at the running trace-end timestamp; valid while
    // at_max_stamp equals the analyzer's max_ts_ (cheap epoch clearing).
    uint64_t at_max = 0;
    SimTime at_max_stamp = 0;

    Entry(size_t ring_windows, const BurstThresholds& thresholds,
          const std::string& burst_label)
        : sets(ring_windows), expires(ring_windows), cancels(ring_windows),
          burst(thresholds, burst_label) {}
  };

  Entry& ProcessEntry(Pid pid, const std::string& label);
  Entry* OriginEntry(CallsiteId callsite);
  void AdvanceWindows(uint64_t window);
  LiveSeriesStats Stats(const std::string& label, const Entry& entry,
                        bool with_burst) const;

  LiveOptions options_;
  double window_seconds_;
  // Label-keyed series; std::map keeps result ordering identical to the
  // offline RatesPass. Node stability lets the pid/callsite caches hold
  // plain pointers.
  std::map<std::string, Entry> processes_;
  std::map<std::string, Entry> origins_;
  std::unordered_map<Pid, Entry*> pid_cache_;        // nullptr: dropped label
  std::unordered_map<CallsiteId, Entry*> origin_cache_;
  OnlineClassifier classifier_;
  uint64_t records_ = 0;
  SimTime max_ts_ = 0;
  bool any_records_ = false;
  uint64_t current_window_ = 0;
  obs::Counter* metric_records_ = nullptr;
  obs::Gauge* gauge_window_evictions_ = nullptr;
  obs::Gauge* gauge_series_ = nullptr;
};

}  // namespace live
}  // namespace tempo

#endif  // TEMPO_SRC_LIVE_LIVE_ANALYZER_H_
