#include "src/live/slack_tracker.h"

#include <span>

namespace tempo {
namespace live {

SlackTracker::SlackTracker(std::string stats_label) {
  if (!stats_label.empty()) {
    obs::Registry& registry = obs::Registry::Global();
    const obs::Labels labels = {{"analyzer", stats_label}};
    slack_hist_ = registry.GetHistogram(
        "live_slack_ns", labels, "firing slack (fire - requested) per expired span");
    gauge_p50_ = registry.GetGauge("live_slack_p50_ns", labels,
                                   "p50 firing slack over the run so far");
    gauge_p99_ = registry.GetGauge("live_slack_p99_ns", labels,
                                   "p99 firing slack over the run so far");
    gauge_max_ = registry.GetGauge("live_slack_max_ns", labels,
                                   "largest firing slack seen");
    gauge_open_ = registry.GetGauge("live_slack_open_timers", labels,
                                    "timers currently armed and unclosed");
    counter_early_ = registry.GetCounter("live_slack_early_fires", labels,
                                         "fires that beat their requested time");
  }
}

void SlackTracker::Ingest(const TraceRecord& record) {
  // One record closes at most one span, so the histogram sample is the
  // fold's sum delta — no second slack computation to drift from the
  // offline pass.
  const uint64_t count_before = state_.total().count;
  const uint64_t sum_before = state_.total().sum;
  state_.Accumulate(std::span<const TraceRecord>(&record, 1));
  if (slack_hist_ != nullptr && state_.total().count != count_before) {
    slack_hist_->Record(state_.total().sum - sum_before);
  }
}

void SlackTracker::SyncObs() {
  if (gauge_p50_ == nullptr) {
    return;
  }
  const SlackHist& total = state_.total();
  gauge_p50_->Set(static_cast<int64_t>(total.Quantile(0.50)));
  gauge_p99_->Set(static_cast<int64_t>(total.Quantile(0.99)));
  gauge_max_->Set(static_cast<int64_t>(total.max));
  gauge_open_->Set(static_cast<int64_t>(state_.open_spans()));
  counter_early_->AdvanceTo(state_.early_fires());
}

}  // namespace live
}  // namespace tempo
