// Live firing-slack tracking over the relay drain path.
//
// A SlackTracker taps the same ordered record stream a LiveAnalyzer does
// (hook Ingest into the drainer's EmitFn) and folds it through the exact
// SlackState the offline LatencyPass uses — the live latency pane and the
// offline report are the same computation over the same records, so "live
// == offline" is structural, not statistical. On top of the fold it feeds
// the obs registry: a live_slack_ns log2 histogram recorded per fired
// span, and SyncObs publishes p50/p99/max gauges plus the open-timer
// depth, which the Prometheus scrape endpoint then serves.
//
// Single-threaded consumer like the drainer that feeds it; the instruments
// follow the registry's single-writer rule. An empty stats_label disables
// instrumentation entirely (fleet host replicas).

#ifndef TEMPO_SRC_LIVE_SLACK_TRACKER_H_
#define TEMPO_SRC_LIVE_SLACK_TRACKER_H_

#include <string>

#include "src/analysis/latency.h"
#include "src/obs/metrics.h"
#include "src/trace/record.h"

namespace tempo {
namespace live {

class SlackTracker {
 public:
  explicit SlackTracker(std::string stats_label = "live");
  SlackTracker(const SlackTracker&) = delete;
  SlackTracker& operator=(const SlackTracker&) = delete;

  // Consumes one record of the drainer's ordered merge. Hot path.
  void Ingest(const TraceRecord& record);

  // Publishes slack quantile gauges and the live-timer depth into obs;
  // call before a registry snapshot.
  void SyncObs();

  // The fold so far; equal to LatencyPass::state() over the same records.
  const SlackState& state() const { return state_; }

 private:
  SlackState state_;
  obs::Histogram* slack_hist_ = nullptr;
  obs::Gauge* gauge_p50_ = nullptr;
  obs::Gauge* gauge_p99_ = nullptr;
  obs::Gauge* gauge_max_ = nullptr;
  obs::Gauge* gauge_open_ = nullptr;
  obs::Counter* counter_early_ = nullptr;
};

}  // namespace live
}  // namespace tempo

#endif  // TEMPO_SRC_LIVE_SLACK_TRACKER_H_
