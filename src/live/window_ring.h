// Bounded sliding-window count ring for the live analysis layer.
//
// One RateRing holds per-window event counts for one series (one process
// label, one origin, one op kind) over the most recent `capacity` windows.
// The ingest path only ever moves forward in time — the RelayDrainer emits
// a globally timestamp-ordered merge — so the ring is a plain circular
// array indexed by window number: Add() is an increment plus at most a few
// slot recycles, with no allocation after construction. Windows that fall
// off the back are *counted* (evicted_windows / evicted_count), never
// silently lost, so totals and mean rates stay exact even after eviction
// and the live ≡ offline identity contract can state precisely when it
// holds (no evicted windows).

#ifndef TEMPO_SRC_LIVE_WINDOW_RING_H_
#define TEMPO_SRC_LIVE_WINDOW_RING_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace tempo {
namespace live {

class RateRing {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit RateRing(size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity), 0),
        mask_(slots_.size() - 1) {}

  // Adds `n` events to window `window`. Windows must be presented in
  // nondecreasing order (the drainer's ordering contract); a window older
  // than the retained range is dropped into the evicted tallies.
  void Add(uint64_t window, uint64_t n = 1) {
    if (!any_) {
      any_ = true;
      lo_ = hi_ = window;
    } else if (window > hi_) {
      AdvanceTo(window);
    } else if (window < lo_) {
      // Out-of-retention straggler: account for it, don't resurrect it.
      ++evicted_windows_;
      evicted_count_ += n;
      total_ += n;
      return;
    }
    const uint64_t c = (slots_[window & mask_] += n);
    total_ += n;
    if (c > peak_count_) {
      peak_count_ = c;
      peak_window_ = window;
    }
  }

  // Count recorded in `window`; 0 outside the retained range.
  uint64_t Count(uint64_t window) const {
    if (!any_ || window < lo_ || window > hi_) {
      return 0;
    }
    return slots_[window & mask_];
  }

  bool any() const { return any_; }
  // Retained range [lo, hi] of window indices (valid when any()).
  uint64_t lo() const { return lo_; }
  uint64_t hi() const { return hi_; }
  size_t capacity() const { return slots_.size(); }
  // Sum of every count ever added, including evicted windows.
  uint64_t total() const { return total_; }
  // Largest single-window count ever seen and the window it occurred in.
  uint64_t peak_count() const { return peak_count_; }
  uint64_t peak_window() const { return peak_window_; }
  // Windows (and their summed counts) that fell off the back of the ring.
  uint64_t evicted_windows() const { return evicted_windows_; }
  uint64_t evicted_count() const { return evicted_count_; }

 private:
  void AdvanceTo(uint64_t window) {
    // Recycle the slots that leave the retained range [window - cap + 1,
    // window]. A jump farther than the capacity evicts everything retained.
    const uint64_t cap = slots_.size();
    const uint64_t new_lo = window + 1 >= cap ? window + 1 - cap : 0;
    if (new_lo > lo_) {
      const uint64_t evict_to = new_lo > hi_ + 1 ? hi_ + 1 : new_lo;
      for (uint64_t w = lo_; w < evict_to; ++w) {
        uint64_t& slot = slots_[w & mask_];
        if (slot != 0) {
          ++evicted_windows_;
          evicted_count_ += slot;
          slot = 0;
        }
      }
      lo_ = new_lo;
    }
    hi_ = window;
  }

  std::vector<uint64_t> slots_;
  uint64_t mask_;
  bool any_ = false;
  uint64_t lo_ = 0;
  uint64_t hi_ = 0;
  uint64_t total_ = 0;
  uint64_t peak_count_ = 0;
  uint64_t peak_window_ = 0;
  uint64_t evicted_windows_ = 0;
  uint64_t evicted_count_ = 0;
};

}  // namespace live
}  // namespace tempo

#endif  // TEMPO_SRC_LIVE_WINDOW_RING_H_
