#include "src/net/dhcp.h"

namespace tempo {

const char* DhcpStateName(DhcpState state) {
  switch (state) {
    case DhcpState::kInit:
      return "INIT";
    case DhcpState::kBound:
      return "BOUND";
    case DhcpState::kRenewing:
      return "RENEWING";
    case DhcpState::kRebinding:
      return "REBINDING";
  }
  return "?";
}

DhcpClient::DhcpClient(LinuxKernel* kernel, SimNetwork* net, NodeId node,
                       DhcpServer* server, Pid pid)
    : kernel_(kernel), net_(net), node_(node), server_(server), pid_(pid) {
  t1_ = kernel_->InitTimer("dhcp/t1_renew", [this] { OnT1(); }, pid_);
  t2_ = kernel_->InitTimer("dhcp/t2_rebind", [this] { OnT2(); }, pid_);
  expiry_ = kernel_->InitTimer("dhcp/lease_expiry", [this] { OnExpiry(); }, pid_);
}

void DhcpClient::Start() { AcquireLease(); }

void DhcpClient::AcquireLease() {
  // DISCOVER -> OFFER -> REQUEST -> ACK collapsed to one round trip.
  const uint64_t generation = lease_generation_;
  net_->Send(node_, server_->node(), 300, [this, generation] {
    if (server_->down() || generation != lease_generation_) {
      return;
    }
    net_->Send(server_->node(), node_, 300, [this, generation] {
      if (generation != lease_generation_) {
        return;
      }
      OnLeaseAcquired();
    });
  });
}

void DhcpClient::OnLeaseAcquired() {
  state_ = DhcpState::kBound;
  const SimDuration lease = server_->lease_time();
  // RFC 2131 4.4.5: T1 defaults to 0.5 * lease, T2 to 0.875 * lease. All
  // three are armed together — the overlapping max-wins set the paper uses
  // as its example: only the expiry means real failure.
  kernel_->ModTimerUser(t1_, lease / 2);
  kernel_->ModTimerUser(t2_, lease * 7 / 8);
  kernel_->ModTimerUser(expiry_, lease);
}

void DhcpClient::SendRenewRequest(bool broadcast) {
  const uint64_t generation = lease_generation_;
  const size_t bytes = broadcast ? 590 : 300;  // broadcast REQUEST is padded
  net_->Send(node_, server_->node(), bytes, [this, generation] {
    if (server_->down() || generation != lease_generation_) {
      return;  // no ACK will come; T2/expiry keep counting
    }
    net_->Send(server_->node(), node_, 300, [this, generation] {
      if (generation != lease_generation_) {
        return;
      }
      // ACK: lease extended. Cancel the whole overlapping set and re-arm
      // from scratch (dhclient's idiom: del_timer on all three).
      ++(state_ == DhcpState::kRenewing ? renewals_ : rebinds_);
      CancelAll();
      OnLeaseAcquired();
    });
  });
}

void DhcpClient::OnT1() {
  if (state_ == DhcpState::kBound) {
    state_ = DhcpState::kRenewing;
  }
  if (state_ != DhcpState::kRenewing) {
    return;
  }
  // Unicast renewal attempt; keep retrying on a fraction of the remaining
  // time, per the RFC's guidance, until T2 takes over.
  SendRenewRequest(/*broadcast=*/false);
  const SimDuration retry = server_->lease_time() * 3 / 32;
  kernel_->ModTimerUser(t1_, retry);  // reuse T1 as the retransmit timer
}

void DhcpClient::OnT2() {
  if (state_ == DhcpState::kRenewing || state_ == DhcpState::kBound) {
    state_ = DhcpState::kRebinding;
    kernel_->DelTimer(t1_);  // renewing is over
  }
  if (state_ != DhcpState::kRebinding) {
    return;
  }
  // Broadcast rebind attempts, retransmitted until the lease expires.
  SendRenewRequest(/*broadcast=*/true);
  kernel_->ModTimerUser(t2_, server_->lease_time() / 32);
}

void DhcpClient::OnExpiry() {
  // The only timer whose expiry is a real failure (max-wins).
  state_ = DhcpState::kInit;
  ++lease_losses_;
  ++lease_generation_;
  kernel_->DelTimer(t1_);
  kernel_->DelTimer(t2_);
  if (on_lease_lost) {
    on_lease_lost();
  }
}

void DhcpClient::CancelAll() {
  ++lease_generation_;
  kernel_->DelTimer(t1_);
  kernel_->DelTimer(t2_);
  kernel_->DelTimer(expiry_);
}

}  // namespace tempo
