// DHCP client lease timers (RFC 2131) — the paper's own example of
// overlapping timers (Section 5.2 cites RFC 2131 Section 4.4.5 for the
// "max-wins" overlap relationship).
//
// A bound DHCP client keeps three timers against the same event (losing the
// lease): T1 (renewing, default 0.5 * lease), T2 (rebinding, default
// 0.875 * lease) and the lease expiry itself. T1 < T2 < expiry always, all
// armed together when the lease is (re)acquired, all canceled together on
// renewal — exactly relationship 1(a): only the *latest* matters for
// failure, the earlier ones exist to start recovery early.
//
// The model runs over the instrumented Linux kernel (dhclient arms its
// timeouts through the syscall path on a real system; we arm kernel timers
// with a dhcp call-site so the trace shows the idiom).

#ifndef TEMPO_SRC_NET_DHCP_H_
#define TEMPO_SRC_NET_DHCP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/network.h"
#include "src/oslinux/kernel.h"

namespace tempo {

// The DHCP client states of RFC 2131 that matter for timers.
enum class DhcpState : uint8_t {
  kInit = 0,
  kBound = 1,      // lease held; T1 pending
  kRenewing = 2,   // unicast renewals; T2 pending
  kRebinding = 3,  // broadcast renewals; expiry pending
};

const char* DhcpStateName(DhcpState state);

// A DHCP server granting leases; may be taken down to exercise the
// renew -> rebind -> expire path.
class DhcpServer {
 public:
  DhcpServer(Simulator* sim, SimNetwork* net, NodeId node, SimDuration lease_time)
      : sim_(sim), net_(net), node_(node), lease_time_(lease_time) {}

  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }
  SimDuration lease_time() const { return lease_time_; }
  NodeId node() const { return node_; }

 private:
  friend class DhcpClient;
  Simulator* sim_;
  SimNetwork* net_;
  NodeId node_;
  SimDuration lease_time_;
  bool down_ = false;
};

// The client.
class DhcpClient {
 public:
  DhcpClient(LinuxKernel* kernel, SimNetwork* net, NodeId node, DhcpServer* server,
             Pid pid);

  // Acquires the initial lease (DISCOVER/OFFER collapsed into one round
  // trip) and starts the T1/T2/expiry machinery.
  void Start();

  DhcpState state() const { return state_; }
  bool has_lease() const { return state_ != DhcpState::kInit; }
  uint64_t renewals() const { return renewals_; }
  uint64_t rebinds() const { return rebinds_; }
  uint64_t lease_losses() const { return lease_losses_; }

  // Fired when the lease is lost (expiry with no server response).
  std::function<void()> on_lease_lost;

 private:
  void AcquireLease();
  void OnLeaseAcquired();
  void SendRenewRequest(bool broadcast);
  void OnT1();
  void OnT2();
  void OnExpiry();
  void CancelAll();

  LinuxKernel* kernel_;
  SimNetwork* net_;
  NodeId node_;
  DhcpServer* server_;
  Pid pid_;
  DhcpState state_ = DhcpState::kInit;
  uint64_t lease_generation_ = 0;

  // The three overlapping timers of RFC 2131 4.4.5 (all against "lease
  // lost"; the earlier ones begin progressively more desperate recovery).
  LinuxTimer* t1_ = nullptr;      // renewing at 0.5 * lease
  LinuxTimer* t2_ = nullptr;      // rebinding at 0.875 * lease
  LinuxTimer* expiry_ = nullptr;  // the lease itself

  uint64_t renewals_ = 0;
  uint64_t rebinds_ = 0;
  uint64_t lease_losses_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_DHCP_H_
