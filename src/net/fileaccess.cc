#include "src/net/fileaccess.h"

#include <memory>
#include <utility>

namespace tempo {

std::vector<FileProtocolSpec> DefaultFileProtocols() {
  std::vector<FileProtocolSpec> protocols;
  FileProtocolSpec smb;
  smb.name = "smb";
  smb.connect_timeout = 3 * kSecond;  // TCP SYN schedule per attempt
  smb.retries = 2;
  protocols.push_back(smb);

  FileProtocolSpec nfs;
  nfs.name = "nfs";
  nfs.rpc_backoff = true;  // SunRPC: 500 ms doubling, 7 retries
  protocols.push_back(nfs);

  FileProtocolSpec webdav;
  webdav.name = "webdav";
  webdav.connect_timeout = 30 * kSecond;  // HTTP connect timeout
  webdav.retries = 0;
  protocols.push_back(webdav);
  return protocols;
}

FileBrowser::FileBrowser(Simulator* sim, SimNetwork* net, ParallelResolver* resolver,
                         RpcClient* rpc, NodeId self)
    : sim_(sim), net_(net), resolver_(resolver), rpc_(rpc), self_(self) {}

void FileBrowser::Open(const std::string& server_name, RpcServer* file_server,
                       std::function<void(Result)> cb) {
  const SimTime started = sim_->Now();
  resolver_->Resolve(server_name, [this, file_server, started, cb](bool found, NodeId,
                                                                   SimDuration) {
    if (!found || file_server == nullptr) {
      Result result;
      result.success = false;
      result.resolved = false;
      result.elapsed = sim_->Now() - started;
      cb(result);
      return;
    }
    TryProtocols(file_server, started, cb);
  });
}

void FileBrowser::TryProtocols(RpcServer* server, SimTime started,
                               std::function<void(Result)> cb) {
  struct State {
    bool done = false;
    size_t outstanding = 0;
  };
  auto state = std::make_shared<State>();
  state->outstanding = protocols_.size();
  for (const FileProtocolSpec& spec : protocols_) {
    auto finish = [this, state, started, name = spec.name, cb](bool ok, SimDuration) {
      if (state->done) {
        return;
      }
      if (ok) {
        state->done = true;
        Result result;
        result.success = true;
        result.resolved = true;
        result.protocol = name;
        result.elapsed = sim_->Now() - started;
        cb(result);
        return;
      }
      if (--state->outstanding == 0) {
        // Only now — after the slowest, most conservative layer gave up —
        // does the user learn the open failed.
        state->done = true;
        Result result;
        result.success = false;
        result.resolved = true;
        result.elapsed = sim_->Now() - started;
        cb(result);
      }
    };
    if (spec.rpc_backoff) {
      rpc_->Connect(server, finish);
    } else {
      AttemptConnect(spec, server, 1, sim_->Now(), finish);
    }
  }
}

void FileBrowser::AttemptConnect(const FileProtocolSpec& spec, RpcServer* server, int attempt,
                                 SimTime started,
                                 std::function<void(bool, SimDuration)> done) {
  auto answered = std::make_shared<bool>(false);
  net_->Send(self_, server->node(), 64, [this, server, answered, started, done] {
    if (server->refuse_connections() || server->down()) {
      return;  // RST/ignored; the timeout path handles retries
    }
    net_->Send(server->node(), self_, 64, [this, answered, started, done] {
      if (!*answered) {
        *answered = true;
        done(true, sim_->Now() - started);
      }
    });
  });
  sim_->ScheduleAfter(spec.connect_timeout,
                      [this, spec, server, attempt, started, answered, done] {
    if (*answered) {
      return;
    }
    *answered = true;
    if (attempt > spec.retries) {
      done(false, sim_->Now() - started);
      return;
    }
    AttemptConnect(spec, server, attempt + 1, started, done);
  });
}

}  // namespace tempo
