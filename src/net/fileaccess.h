// The layered file-access scenario of Section 2.2.2.
//
// When the user types a server name into the file browser:
//   1. parallel name lookups are started (WINS, DNS, ...), each with its own
//      timeouts and retries;
//   2. on resolution, connections are attempted in parallel over SMB, NFS
//      and WebDAV, each with its own timeout discipline — NFS over SunRPC
//      retries refused connections 7 times with a doubling 500 ms backoff;
//   3. the first protocol to succeed wins; failure is reported only when
//      every alternative has given up.
//
// The healthy case completes shortly after the 130 ms round-trip; the
// failure case takes over a minute, dominated by the most conservative
// layer — the pathology bench/layering_failure quantifies (E16).

#ifndef TEMPO_SRC_NET_FILEACCESS_H_
#define TEMPO_SRC_NET_FILEACCESS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/net/resolver.h"
#include "src/net/rpc.h"

namespace tempo {

// One file-service protocol attempt (SMB / NFS / WebDAV) with its own
// connection discipline.
struct FileProtocolSpec {
  std::string name;
  // Per-attempt connect timeout and retry count (SMB/WebDAV style).
  SimDuration connect_timeout = 3 * kSecond;
  int retries = 2;
  // If true, use SunRPC refused-connection backoff instead (NFS style).
  bool rpc_backoff = false;
};

// The file browser.
class FileBrowser {
 public:
  struct Result {
    bool success = false;
    std::string protocol;     // winning protocol, if any
    SimDuration elapsed = 0;  // user-visible wait
    bool resolved = false;    // did name resolution succeed?
  };

  FileBrowser(Simulator* sim, SimNetwork* net, ParallelResolver* resolver,
              RpcClient* rpc, NodeId self);

  // Adds a protocol to try (order matters only for reporting).
  void AddProtocol(const FileProtocolSpec& spec) { protocols_.push_back(spec); }

  // Opens `\\server_name\share`. The server's willingness to talk is taken
  // from `file_server` (may be null if the name will not resolve).
  void Open(const std::string& server_name, RpcServer* file_server,
            std::function<void(Result)> cb);

 private:
  void TryProtocols(RpcServer* server, SimTime started, std::function<void(Result)> cb);
  void AttemptConnect(const FileProtocolSpec& spec, RpcServer* server, int attempt,
                      SimTime started, std::function<void(bool, SimDuration)> done);

  Simulator* sim_;
  SimNetwork* net_;
  ParallelResolver* resolver_;
  RpcClient* rpc_;
  NodeId self_;
  std::vector<FileProtocolSpec> protocols_;
};

// Returns the three protocols with their paper-era defaults.
std::vector<FileProtocolSpec> DefaultFileProtocols();

}  // namespace tempo

#endif  // TEMPO_SRC_NET_FILEACCESS_H_
