#include "src/net/http.h"

#include <cassert>
#include <utility>

namespace tempo {

// Per-worker state machine.
struct HttpServer::Worker {
  enum class Phase { kIdle, kAwaitRequest, kProcessing, kKeepalive };

  HttpServer* server = nullptr;
  Tid tid = 0;
  SelectChannel* channel = nullptr;
  Phase phase = Phase::kIdle;
  TcpConnection* conn = nullptr;
  bool request_arrived = false;
  bool peer_closed = false;

  void Assign(TcpConnection* connection) {
    conn = connection;
    phase = Phase::kAwaitRequest;
    request_arrived = false;
    peer_closed = false;
    conn->on_data = [this](size_t) { OnRequestData(); };
    conn->on_peer_close = [this] { OnPeerClose(); };
    // Block in poll() for the request, with Apache's socket-poll timeout.
    channel->Select(server->options_.worker_poll, [this](SimDuration, bool timed_out) {
      OnPollComplete(timed_out);
    });
  }

  void OnRequestData() {
    if (phase == Phase::kAwaitRequest) {
      request_arrived = true;
      channel->Wake();
    }
    // Data in other phases (pipelined requests) is ignored by this model.
  }

  void OnPeerClose() {
    peer_closed = true;
    conn = nullptr;  // endpoint is recycled by the stack after this upcall
    if (phase == Phase::kAwaitRequest || phase == Phase::kKeepalive) {
      channel->Wake();
    } else if (phase == Phase::kProcessing) {
      // The response path will notice peer_closed and abort.
    }
  }

  void OnPollComplete(bool timed_out) {
    if (phase == Phase::kAwaitRequest) {
      if (request_arrived && !peer_closed) {
        Process();
        return;
      }
      // Timed out waiting for the request, or the client went away.
      Finish(timed_out);
      return;
    }
    if (phase == Phase::kKeepalive) {
      // Either the keep-alive window expired (server closes) or the client
      // closed first — both end the connection.
      Finish(timed_out);
      return;
    }
  }

  void Process() {
    phase = Phase::kProcessing;
    Simulator& sim = server->kernel_->sim();
    const SimDuration service = static_cast<SimDuration>(
        sim.rng().Exponential(ToSeconds(server->options_.service_time_mean)) * kSecond);
    sim.ScheduleAfter(service, [this] {
      if (peer_closed || conn == nullptr) {
        Finish(false);
        return;
      }
      if (server->disk_ != nullptr && server->options_.disk_log) {
        server->disk_->SubmitBlockIo();  // append to the access log
      }
      ++server->requests_served_;
      conn->Send(server->options_.response_bytes, [this] { OnResponseAcked(); });
    });
  }

  void OnResponseAcked() {
    if (peer_closed || conn == nullptr) {
      Finish(false);
      return;
    }
    // Poll for a follow-up request on the kept-alive connection; httperf
    // uses one connection per request, so the client's FIN normally cancels
    // this watchdog almost immediately.
    phase = Phase::kKeepalive;
    channel->Select(server->options_.keepalive_timeout, [this](SimDuration, bool timed_out) {
      OnPollComplete(timed_out);
    });
  }

  void Finish(bool server_closes) {
    if (conn != nullptr && server_closes) {
      conn->Close();
    }
    conn = nullptr;
    phase = Phase::kIdle;
    server->WorkerIdle(this);
  }
};

HttpServer::HttpServer(LinuxKernel* kernel, LinuxSyscalls* syscalls, TcpStack* tcp, Pid pid,
                       Options options, KernelSubsystems* disk)
    : kernel_(kernel), syscalls_(syscalls), tcp_(tcp), pid_(pid), options_(options),
      disk_(disk) {}

HttpServer::~HttpServer() = default;

TcpListener* HttpServer::Start() {
  ProcessTable& processes = kernel_->sim().processes();
  const Tid event_tid = processes.AddThread(pid_);
  event_channel_ = syscalls_->Channel(pid_, event_tid, "apache2/event_loop");
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    worker->tid = processes.AddThread(pid_);
    worker->channel = syscalls_->Channel(pid_, worker->tid, "apache2/socket_poll");
    workers_.push_back(std::move(worker));
  }
  listener_ = tcp_->Listen();
  listener_->on_accept = [this](TcpConnection* conn) {
    // New connection: the event loop's select returns early.
    Dispatch(conn);
    if (event_channel_->blocked()) {
      event_channel_->Wake();
    }
  };
  EventLoopIteration(options_.event_loop_timeout);
  return listener_;
}

void HttpServer::EventLoopIteration(SimDuration timeout) {
  event_channel_->Select(timeout, [this](SimDuration, bool) {
    // Whether woken by activity or by timeout, Apache's event loop performs
    // housekeeping and re-enters select with the full timeout.
    EventLoopIteration(options_.event_loop_timeout);
  });
}

HttpServer::Worker* HttpServer::FreeWorker() {
  for (auto& worker : workers_) {
    if (worker->phase == Worker::Phase::kIdle) {
      return worker.get();
    }
  }
  return nullptr;
}

void HttpServer::Dispatch(TcpConnection* conn) {
  Worker* worker = FreeWorker();
  if (worker == nullptr) {
    // All workers busy: refuse (the load generator's per-state watchdog
    // will record the failure). With workers == client parallelism this
    // does not happen in the standard workload.
    conn->Close();
    return;
  }
  worker->Assign(conn);
}

void HttpServer::WorkerIdle(Worker* worker) { (void)worker; }

HttpLoadGenerator::HttpLoadGenerator(TcpStack* tcp, TcpListener* server, Options options)
    : tcp_(tcp), server_(server), options_(options) {}

void HttpLoadGenerator::Start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  if (options_.total_requests <= 0) {
    if (on_done_) {
      on_done_();
    }
    return;
  }
  for (int slot = 0; slot < options_.parallel; ++slot) {
    SlotIssue(slot);
  }
}

void HttpLoadGenerator::FinishOne(bool ok) {
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (completed_ + failed_ == static_cast<uint64_t>(options_.total_requests) && on_done_) {
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    done();
  }
}

void HttpLoadGenerator::SlotIssue(int slot) {
  if (issued_ >= options_.total_requests) {
    return;
  }
  ++issued_;
  Simulator& sim = tcp_->sim();

  // Shared per-request state for the 5 s per-state watchdogs (these run on
  // the untraced load-generator machine).
  struct Request {
    bool finished = false;
    TcpConnection* conn = nullptr;
    EventId watchdog = kInvalidEventId;
  };
  auto req = std::make_shared<Request>();

  auto finish = [this, slot, req, &sim_ref = sim](bool ok) {
    if (req->finished) {
      return;
    }
    req->finished = true;
    if (req->watchdog != kInvalidEventId) {
      sim_ref.Cancel(req->watchdog);
      req->watchdog = kInvalidEventId;
    }
    if (req->conn != nullptr) {
      req->conn->Close();
      req->conn = nullptr;
    }
    FinishOne(ok);
    const SimDuration think = static_cast<SimDuration>(
        sim_ref.rng().Exponential(ToSeconds(options_.think_time_mean)) * kSecond);
    sim_ref.ScheduleAfter(think, [this, slot] { SlotIssue(slot); });
  };

  auto arm_watchdog = [req, &sim_ref = sim, finish, this] {
    if (req->watchdog != kInvalidEventId) {
      sim_ref.Cancel(req->watchdog);
    }
    req->watchdog = sim_ref.ScheduleAfter(options_.state_timeout, [req, finish] {
      req->watchdog = kInvalidEventId;
      finish(false);  // state timeout: the connection is considered broken
    });
  };

  arm_watchdog();  // connect state
  tcp_->Connect(server_,
                [this, req, finish, arm_watchdog](TcpConnection* conn) {
                  if (req->finished) {
                    conn->Close();
                    return;
                  }
                  req->conn = conn;
                  conn->on_peer_close = [req, finish] {
                    req->conn = nullptr;
                    finish(false);
                  };
                  conn->on_data = [finish](size_t) { finish(true); };
                  arm_watchdog();  // response state
                  conn->Send(options_.request_bytes, nullptr);
                },
                [finish] { finish(false); });
}

}  // namespace tempo
