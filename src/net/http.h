// Apache-style HTTP server and httperf-style load generator.
//
// The web-server workload of Section 3.5: "the stock Apache 2.2.3" on the
// traced machine, driven by httperf from another machine on the LAN with an
// artificial workload of 30000 requests, 10 parallel, each request in its
// own connection with a 5-second per-state timeout.
//
// The server's timer footprint (visible in the Linux trace):
//   * the accept/event loop's select with a 1 s timeout (Table 3);
//   * per-worker socket polls at 15 s while waiting for the request
//     ("apache2 socket poll", Table 3);
//   * a 5 s keep-alive poll after each response, canceled when the client
//     closes — Apache's connection watchdogs (Figure 2's webserver bar);
//   * the kernel TCP timers of every connection (SYN-ACK 3 s, delayed ACK
//     40 ms, retransmit >= 204 ms, keepalive 7200 s).
// The load generator's own 5 s timeouts run on the *untraced* client.

#ifndef TEMPO_SRC_NET_HTTP_H_
#define TEMPO_SRC_NET_HTTP_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/tcp.h"
#include "src/oslinux/subsystems.h"
#include "src/oslinux/syscalls.h"

namespace tempo {

// The server.
class HttpServer {
 public:
  struct Options {
    int workers;
    SimDuration event_loop_timeout;  // select timeout in the accept loop
    SimDuration worker_poll;         // poll while awaiting the request
    SimDuration keepalive_timeout;   // poll for a follow-up request
    SimDuration service_time_mean;   // request processing time (exponential)
    size_t response_bytes;
    bool disk_log;                   // one block-I/O (access log) per request

    Options()
        : workers(10),
          event_loop_timeout(1 * kSecond),
          worker_poll(15 * kSecond),
          keepalive_timeout(5 * kSecond),
          service_time_mean(FromMilliseconds(1.2)),
          response_bytes(8 * 1024),
          disk_log(true) {}
  };

  // `disk` (optional) receives one SubmitBlockIo per logged request.
  HttpServer(LinuxKernel* kernel, LinuxSyscalls* syscalls, TcpStack* tcp, Pid pid,
             Options options, KernelSubsystems* disk);
  ~HttpServer();

  // Opens the listener and starts the event loop. Returns the listener the
  // load generator connects to.
  TcpListener* Start();

  uint64_t requests_served() const { return requests_served_; }

 private:
  struct Worker;
  void EventLoopIteration(SimDuration timeout);
  void Dispatch(TcpConnection* conn);
  void WorkerIdle(Worker* worker);
  Worker* FreeWorker();

  LinuxKernel* kernel_;
  LinuxSyscalls* syscalls_;
  TcpStack* tcp_;
  Pid pid_;
  Options options_;
  KernelSubsystems* disk_;

  TcpListener* listener_ = nullptr;
  SelectChannel* event_channel_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  uint64_t requests_served_ = 0;
};

// The load generator (10 parallel connection slots, paced so the request
// total spreads over the configured duration).
class HttpLoadGenerator {
 public:
  struct Options {
    int total_requests;
    int parallel;
    SimDuration state_timeout;  // per-state watchdog (connect, reply)
    size_t request_bytes;
    // Mean gap between a slot's requests; 600 ms spreads 30000 requests
    // over 10 slots across ~30 minutes, matching the trace length.
    SimDuration think_time_mean;

    Options()
        : total_requests(30000),
          parallel(10),
          state_timeout(5 * kSecond),
          request_bytes(256),
          think_time_mean(600 * kMillisecond) {}
  };

  // `tcp` should be a stack on the load-generator machine (null kernel:
  // its timers are not part of the trace).
  HttpLoadGenerator(TcpStack* tcp, TcpListener* server, Options options);

  // Starts all slots; `on_done` fires when every request completed or
  // failed.
  void Start(std::function<void()> on_done);

  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }

 private:
  void SlotIssue(int slot);
  void FinishOne(bool ok);

  TcpStack* tcp_;
  TcpListener* server_;
  Options options_;
  int issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  std::function<void()> on_done_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_HTTP_H_
