#include "src/net/network.h"

#include <cmath>
#include <utility>

namespace tempo {

NodeId SimNetwork::AddNode(const std::string& name) {
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  return id;
}

LinkParams& SimNetwork::Link(NodeId from, NodeId to) { return links_[{from, to}]; }

void SimNetwork::SetLink(NodeId from, NodeId to, const LinkParams& params) {
  links_[{from, to}] = params;
}

void SimNetwork::SetLinkBoth(NodeId a, NodeId b, const LinkParams& params) {
  SetLink(a, b, params);
  SetLink(b, a, params);
}

bool SimNetwork::Send(NodeId from, NodeId to, size_t bytes, std::function<void()> deliver) {
  ++packets_sent_;
  const LinkParams& link = Link(from, to);
  if (link.unreachable || sim_->rng().Bernoulli(link.loss)) {
    ++packets_dropped_;
    return false;
  }
  SimDuration latency = link.latency;
  if (link.jitter_sigma > 0) {
    latency = static_cast<SimDuration>(
        static_cast<double>(link.latency) *
        sim_->rng().LogNormal(0.0, link.jitter_sigma));
  }
  latency += static_cast<SimDuration>(bytes) * link.per_byte;
  SimTime deliver_at = sim_->Now() + latency;
  SimTime& last = last_delivery_[{from, to}];
  if (deliver_at < last) {
    deliver_at = last;  // FIFO per directed link
  }
  last = deliver_at;
  sim_->ScheduleAt(deliver_at, std::move(deliver));
  return true;
}

}  // namespace tempo
