// Simulated network.
//
// A minimal message-passing fabric: named nodes, per-link latency
// distributions and loss. Packets are opaque (a byte count plus a delivery
// callback); protocol state lives in the endpoints (tcp.h, http.h, ...).
// The default link models the paper's department LAN (sub-millisecond RTT);
// tests reconfigure links to model WAN shifts for the adaptive-timeout
// experiments (Section 5.1's "user who travels" scenario).

#ifndef TEMPO_SRC_NET_NETWORK_H_
#define TEMPO_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace tempo {

// Identifies a network node.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

// One-way link characteristics.
struct LinkParams {
  // Median one-way latency.
  SimDuration latency = 65 * kMicrosecond;  // ~130 us RTT LAN
  // Log-normal latency spread (sigma of the underlying normal); 0 = fixed.
  double jitter_sigma = 0.25;
  // Probability that a packet is silently dropped.
  double loss = 0.0;
  // Per-byte serialisation cost (1 Gb/s default).
  SimDuration per_byte = kSecond / (1000 * 1000 * 1000 / 8);
  // If true the destination is unreachable: packets vanish (connection
  // refused / typo'd server name scenarios).
  bool unreachable = false;
};

// The fabric. Owned by the experiment; nodes are dense small integers.
class SimNetwork {
 public:
  explicit SimNetwork(Simulator* sim) : sim_(sim) {}
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // Adds a node; returns its id.
  NodeId AddNode(const std::string& name);

  // Sets the parameters of the directed link a->b (and only that
  // direction). Unset links use the defaults.
  void SetLink(NodeId from, NodeId to, const LinkParams& params);

  // Sets both directions at once.
  void SetLinkBoth(NodeId a, NodeId b, const LinkParams& params);

  // Sends `bytes` from `from` to `to`; `deliver` runs at the destination
  // after the sampled latency, unless the packet is lost. Returns false if
  // the packet was dropped at send time (loss or unreachable) — callers do
  // NOT get to observe this; it exists for test assertions only.
  bool Send(NodeId from, NodeId to, size_t bytes, std::function<void()> deliver);

  const std::string& NodeName(NodeId id) const { return names_.at(static_cast<size_t>(id)); }
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  LinkParams& Link(NodeId from, NodeId to);

  Simulator* sim_;
  // Links are FIFO: a packet never overtakes an earlier one on the same
  // directed link (LAN semantics; TCP-level reordering is out of scope).
  std::map<std::pair<NodeId, NodeId>, SimTime> last_delivery_;
  std::vector<std::string> names_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_NETWORK_H_
