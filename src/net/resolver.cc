#include "src/net/resolver.h"

#include <memory>
#include <utility>

namespace tempo {

NameProvider::NameProvider(Simulator* sim, SimNetwork* net, NodeId self, NodeId server,
                           std::string label, Options options)
    : sim_(sim), net_(net), self_(self), server_(server), label_(std::move(label)),
      options_(options) {}

void NameProvider::Register(const std::string& name, NodeId node) { table_[name] = node; }

void NameProvider::Lookup(const std::string& name,
                          std::function<void(bool, NodeId, SimDuration)> cb) {
  Attempt(name, 1, sim_->Now(), std::move(cb));
}

void NameProvider::Attempt(const std::string& name, int attempt, SimTime started,
                           std::function<void(bool, NodeId, SimDuration)> cb) {
  // State shared between the response path and the timeout path. The reply
  // cancels the per-attempt timeout event: leaving it pending until it
  // fired as a no-op inflated the sim event queue (and its obs queue-depth
  // high-water mark) by one dead event per successful lookup.
  auto answered = std::make_shared<bool>(false);
  auto timeout_event = std::make_shared<EventId>(kInvalidEventId);
  auto it = table_.find(name);
  if (it != table_.end()) {
    const NodeId result = it->second;
    net_->Send(self_, server_, 64, [this, result, answered, timeout_event, started, cb] {
      // Server-side processing, then the reply.
      net_->Send(server_, self_, 128, [this, result, answered, timeout_event, started, cb] {
        if (*answered) {
          return;
        }
        *answered = true;
        if (*timeout_event != kInvalidEventId) {
          sim_->Cancel(*timeout_event);
          *timeout_event = kInvalidEventId;
        }
        cb(true, result, sim_->Now() - started);
      });
    });
  }
  // Unknown names get no reply at all; known names may still lose packets.
  *timeout_event =
      sim_->ScheduleAfter(options_.timeout, [this, name, attempt, started, answered, cb] {
        if (*answered) {
          return;
        }
        *answered = true;  // this attempt is dead either way
        if (attempt <= options_.retries) {
          Attempt(name, attempt + 1, started, cb);
        } else {
          cb(false, kInvalidNode, sim_->Now() - started);
        }
      });
}

void ParallelResolver::Resolve(const std::string& name,
                               std::function<void(bool, NodeId, SimDuration)> cb) {
  struct State {
    bool done = false;
    size_t outstanding = 0;
    SimTime started = 0;
  };
  auto state = std::make_shared<State>();
  state->outstanding = providers_.size();
  state->started = sim_->Now();
  if (providers_.empty()) {
    cb(false, kInvalidNode, 0);
    return;
  }
  for (NameProvider* provider : providers_) {
    provider->Lookup(name, [this, state, cb](bool found, NodeId node, SimDuration) {
      if (state->done) {
        return;
      }
      if (found) {
        state->done = true;
        cb(true, node, sim_->Now() - state->started);
        return;
      }
      if (--state->outstanding == 0) {
        state->done = true;
        cb(false, kInvalidNode, sim_->Now() - state->started);
      }
    });
  }
}

}  // namespace tempo
