// Name resolution with fixed, layered timeouts.
//
// Models the Windows file-browser behaviour of Section 2.2.2: typing a
// server name triggers *parallel* lookups via WINS, DNS and other name
// providers, each with its own fixed timeout and retry schedule. A wrong
// name means waiting for the slowest provider to give up.

#ifndef TEMPO_SRC_NET_RESOLVER_H_
#define TEMPO_SRC_NET_RESOLVER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/network.h"

namespace tempo {

// A name provider (DNS or WINS style): request/response over the network
// with fixed timeout and a fixed number of retries.
class NameProvider {
 public:
  struct Options {
    SimDuration timeout;
    int retries;  // total attempts = retries + 1

    Options() : timeout(5 * kSecond), retries(1) {}
  };

  // `server` is the node answering queries. Lookup results are configured
  // with Register().
  NameProvider(Simulator* sim, SimNetwork* net, NodeId self, NodeId server,
               std::string label, Options options);

  // Registers a name -> node binding on the server.
  void Register(const std::string& name, NodeId node);

  // Resolves `name`; cb(found, node, elapsed). Unknown names are never
  // answered (the server stays silent), so failure costs the full
  // (retries+1) * timeout.
  void Lookup(const std::string& name, std::function<void(bool, NodeId, SimDuration)> cb);

  const std::string& label() const { return label_; }

 private:
  void Attempt(const std::string& name, int attempt, SimTime started,
               std::function<void(bool, NodeId, SimDuration)> cb);

  Simulator* sim_;
  SimNetwork* net_;
  NodeId self_;
  NodeId server_;
  std::string label_;
  Options options_;
  std::map<std::string, NodeId> table_;
};

// The parallel multi-provider resolution used by the file browser: returns
// the first positive answer, or failure once every provider has given up.
class ParallelResolver {
 public:
  explicit ParallelResolver(Simulator* sim) : sim_(sim) {}

  void AddProvider(NameProvider* provider) { providers_.push_back(provider); }

  // cb(found, node, elapsed). `elapsed` on failure is the time until the
  // slowest provider gave up — the user-visible wait.
  void Resolve(const std::string& name, std::function<void(bool, NodeId, SimDuration)> cb);

 private:
  Simulator* sim_;
  std::vector<NameProvider*> providers_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_RESOLVER_H_
