#include "src/net/rpc.h"

#include <memory>
#include <utility>

namespace tempo {

RpcServer::RpcServer(Simulator* sim, SimNetwork* net, NodeId node)
    : sim_(sim), net_(net), node_(node) {}

RpcClient::RpcClient(Simulator* sim, SimNetwork* net, NodeId node)
    : RpcClient(sim, net, node, Options()) {}

RpcClient::RpcClient(Simulator* sim, SimNetwork* net, NodeId node, Options options)
    : sim_(sim), net_(net), node_(node), options_(options) {}

void RpcClient::Call(RpcServer* server, size_t bytes, std::function<void(Result)> cb) {
  CallAttempt(server, bytes, 1, sim_->Now(), options_.initial_timeout, std::move(cb));
}

void RpcClient::CallAttempt(RpcServer* server, size_t bytes, int attempt, SimTime started,
                            SimDuration timeout, std::function<void(Result)> cb) {
  auto answered = std::make_shared<bool>(false);
  if (!server->down()) {
    net_->Send(node_, server->node(), bytes, [this, server, answered, started, attempt, cb] {
      // Service time, then the reply travels back.
      sim_->ScheduleAfter(server->service_time(), [this, server, answered, started, attempt,
                                                   cb] {
        net_->Send(server->node(), node_, 256, [this, answered, started, attempt, cb] {
          if (*answered) {
            return;  // a retransmitted duplicate raced the timeout
          }
          *answered = true;
          cb(Result{true, sim_->Now() - started, attempt});
        });
      });
    });
  }
  sim_->ScheduleAfter(timeout, [this, server, bytes, answered, started, attempt, timeout, cb] {
    if (*answered) {
      return;
    }
    *answered = true;
    if (attempt > options_.max_retries) {
      cb(Result{false, sim_->Now() - started, attempt});
      return;
    }
    const SimDuration next =
        options_.exponential_backoff ? timeout * 2 : timeout;
    CallAttempt(server, bytes, attempt + 1, started, next, cb);
  });
}

void RpcClient::Connect(RpcServer* server, std::function<void(bool, SimDuration)> cb) {
  ConnectAttempt(server, 1, sim_->Now(), options_.initial_timeout, std::move(cb));
}

void RpcClient::ConnectAttempt(RpcServer* server, int attempt, SimTime started,
                               SimDuration delay, std::function<void(bool, SimDuration)> cb) {
  // Give up immediately once the schedule is exhausted: the paper's
  // 7-retry schedule waits 0.5+1+2+4+8+16+32 = 63.5 s in total.
  auto give_up_or_sleep = [this, server, attempt, started, delay, cb] {
    if (attempt > options_.max_retries) {
      cb(false, sim_->Now() - started);
      return;
    }
    sim_->ScheduleAfter(delay, [this, server, attempt, started, delay, cb] {
      const SimDuration next = options_.exponential_backoff ? delay * 2 : delay;
      ConnectAttempt(server, attempt + 1, started, next, cb);
    });
  };
  auto answered = std::make_shared<bool>(false);
  // One connection round-trip.
  net_->Send(node_, server->node(), 64,
             [this, server, answered, started, give_up_or_sleep, cb] {
    if (!server->refuse_connections() && !server->down()) {
      net_->Send(server->node(), node_, 64, [this, answered, started, cb] {
        if (!*answered) {
          *answered = true;
          cb(true, sim_->Now() - started);
        }
      });
      return;
    }
    // RST comes straight back; the client then sleeps the backoff delay
    // before trying again — the 500 ms * 2^k schedule.
    net_->Send(server->node(), node_, 64, [answered, give_up_or_sleep] {
      if (*answered) {
        return;
      }
      *answered = true;
      give_up_or_sleep();
    });
  });
  // Unreachable hosts (dropped SYNs) fall back to the same backoff delay.
  sim_->ScheduleAfter(delay + kSecond, [answered, give_up_or_sleep] {
    if (!*answered) {
      *answered = true;
      give_up_or_sleep();
    }
  });
}

}  // namespace tempo
