// SunRPC-style client with fixed exponential backoff, plus the per-call
// timeout structure of Section 2.2.2.
//
// "In the case of NFS (implemented over SunRPC) many implementations
//  respond to refused connections with an exponential backoff which retries
//  7 times, doubling the initial 500 ms timeout each iteration."
// That schedule — 0.5 + 1 + 2 + 4 + 8 + 16 + 32 + 64 s — is what makes
// recovering from a typo take over a minute, and is the fixed baseline the
// adaptive-timeout experiment (E17) compares against.

#ifndef TEMPO_SRC_NET_RPC_H_
#define TEMPO_SRC_NET_RPC_H_

#include <functional>
#include <memory>
#include <string>

#include "src/net/network.h"

namespace tempo {

// An RPC server endpoint: answers calls after a service time, unless down.
class RpcServer {
 public:
  RpcServer(Simulator* sim, SimNetwork* net, NodeId node);

  // A server that is "down" silently ignores requests (crashed process); an
  // "unreachable" one is modelled at the link level (see LinkParams).
  void set_down(bool down) { down_ = down; }
  // If true, connection attempts are actively refused (RST) rather than
  // ignored — the case SunRPC's backoff loop was written for.
  void set_refuse_connections(bool refuse) { refuse_ = refuse; }

  void set_service_time(SimDuration t) { service_time_ = t; }

  NodeId node() const { return node_; }
  bool down() const { return down_; }
  bool refuse_connections() const { return refuse_; }
  SimDuration service_time() const { return service_time_; }

 private:
  friend class RpcClient;
  Simulator* sim_;
  SimNetwork* net_;
  NodeId node_;
  bool down_ = false;
  bool refuse_ = false;
  SimDuration service_time_ = 500 * kMicrosecond;
};

// The classic fixed-timeout RPC client.
class RpcClient {
 public:
  struct Options {
    SimDuration initial_timeout;  // 500 ms
    int max_retries;              // 7 doublings
    bool exponential_backoff;

    Options() : initial_timeout(500 * kMillisecond), max_retries(7),
                exponential_backoff(true) {}
  };

  RpcClient(Simulator* sim, SimNetwork* net, NodeId node, Options options);
  RpcClient(Simulator* sim, SimNetwork* net, NodeId node);

  struct Result {
    bool ok = false;
    SimDuration elapsed = 0;  // time until success or final failure
    int attempts = 0;
  };

  // Issues one call against `server`; cb runs on reply or when the retry
  // schedule is exhausted.
  void Call(RpcServer* server, size_t bytes, std::function<void(Result)> cb);

  // "Connects" with the SunRPC refused-connection backoff: each refused
  // attempt fails after one RTT, then the client sleeps the backoff delay.
  // cb(ok, elapsed).
  void Connect(RpcServer* server, std::function<void(bool, SimDuration)> cb);

  const Options& options() const { return options_; }

 private:
  void CallAttempt(RpcServer* server, size_t bytes, int attempt, SimTime started,
                   SimDuration timeout, std::function<void(Result)> cb);
  void ConnectAttempt(RpcServer* server, int attempt, SimTime started, SimDuration delay,
                      std::function<void(bool, SimDuration)> cb);

  Simulator* sim_;
  SimNetwork* net_;
  NodeId node_;
  Options options_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_RPC_H_
