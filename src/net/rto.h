// Jacobson/Karels retransmission-timeout estimation.
//
// TCP is the paper's canonical adaptive timeout (Section 5.1): it maintains
// smoothed estimates of the round-trip mean (SRTT) and variance (RTTVAR)
// and sets RTO = SRTT + 4*RTTVAR, with exponential backoff on loss. The
// estimator is shared by the TCP model and by the adaptive-timeout library.

#ifndef TEMPO_SRC_NET_RTO_H_
#define TEMPO_SRC_NET_RTO_H_

#include <algorithm>
#include <cstdint>

#include "src/sim/time.h"

namespace tempo {

// Classic RFC 6298-style estimator with Linux-like clamps.
class JacobsonEstimator {
 public:
  struct Params {
    SimDuration initial_rto;  // before any sample (3 s classic)
    SimDuration min_rto;      // Linux: ~HZ/5 => 204 ms at HZ=250
    SimDuration max_rto;      // 120 s
    int max_backoff_shift;    // cap the exponential backoff

    Params()
        : initial_rto(3 * kSecond),
          min_rto(204 * kMillisecond),
          max_rto(120 * kSecond),
          max_backoff_shift(16) {}
  };

  JacobsonEstimator() : JacobsonEstimator(Params()) {}
  explicit JacobsonEstimator(Params params) : params_(params) {}

  // Feeds one RTT measurement (from an un-retransmitted exchange — Karn's
  // rule is the caller's responsibility). Resets any backoff.
  void Sample(SimDuration rtt) {
    rtt = std::max<SimDuration>(rtt, 1);
    if (!has_sample_) {
      has_sample_ = true;
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      // SRTT <- 7/8 SRTT + 1/8 RTT ; RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT-RTT|
      const SimDuration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    backoff_shift_ = 0;
  }

  // Current timeout including backoff, clamped to [min_rto, max_rto].
  // Saturates instead of shifting past max_rto: a large SRTT with a deep
  // backoff would overflow the signed shift (UB) before the clamp applied.
  SimDuration Rto() const {
    SimDuration base = has_sample_ ? srtt_ + 4 * rttvar_ : params_.initial_rto;
    base = std::max(base, params_.min_rto);
    if (base >= params_.max_rto) {
      return params_.max_rto;
    }
    // base << shift would exceed max_rto (or the type) iff max_rto >> shift
    // cannot hold base; both sides stay in range, so no UB on either path.
    if (backoff_shift_ >= 63 || (params_.max_rto >> backoff_shift_) < base) {
      return params_.max_rto;
    }
    return std::min(base << backoff_shift_, params_.max_rto);
  }

  // Doubles the timeout (retransmission fired), up to the cap.
  void Backoff() {
    if (backoff_shift_ < params_.max_backoff_shift) {
      ++backoff_shift_;
    }
  }

  void ResetBackoff() { backoff_shift_ = 0; }

  bool has_sample() const { return has_sample_; }
  SimDuration srtt() const { return srtt_; }
  SimDuration rttvar() const { return rttvar_; }
  int backoff_shift() const { return backoff_shift_; }

 private:
  Params params_;
  bool has_sample_ = false;
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  int backoff_shift_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_RTO_H_
