#include "src/net/server.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <type_traits>
#include <utility>

namespace tempo {

namespace {

// The per-timer context: which server, which connection, which timer kind.
// Kept to two machine words and trivially copyable so std::function stores
// it inline — a million armed timers must not mean a million heap blocks.
struct TimerClosure {
  C10MServer* server;
  uint32_t conn;
  uint8_t kind;
  void operator()(TimerHandle local) const {
    server->OnTimerFired(conn, kind, local);
  }
};

// libstdc++'s std::function small-object buffer holds trivially copyable
// callables of at most two pointers. If this ever fails, the C10M memory
// story is broken — fix the closure, don't delete the assert.
static_assert(std::is_trivially_copyable_v<TimerClosure>);
static_assert(sizeof(TimerClosure) <= 2 * sizeof(void*));
static_assert(alignof(TimerClosure) <= alignof(void*));

uint64_t Mix64(uint64_t x) {
  // SplitMix64 finaliser; good avalanche for fingerprint folding.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fold(uint64_t acc, uint64_t value) { return Mix64(acc ^ value); }

}  // namespace

C10MServer::C10MServer(C10MOptions options) : options_(std::move(options)) {
  if (options_.connections == 0) {
    options_.connections = 1;
  }
  if (options_.lanes == 0) {
    options_.lanes = 1;
  }
  options_.lanes = std::min(options_.lanes, options_.connections);
  if (options_.tick <= 0) {
    options_.tick = kMillisecond;
  }
  conns_per_lane_ = (options_.connections + options_.lanes - 1) / options_.lanes;

  TimerService::Options service_options;
  service_options.shards = options_.lanes;
  service_options.queue = options_.queue;
  service_options.granularity = options_.granularity;
  service_options.stats_label = "c10m_" + options_.queue;
  service_ = std::make_unique<TimerService>(service_options);

  conns_.resize(options_.connections);
  lanes_.resize(options_.lanes);
  for (size_t i = 0; i < options_.lanes; ++i) {
    Lane& lane = lanes_[i];
    lane.index = i;
    lane.lo = i * conns_per_lane_;
    lane.hi = std::min(lane.lo + conns_per_lane_, options_.connections);
    // Decorrelate lane streams; equal seeds must still differ per lane.
    lane.rng = Rng(Mix64(options_.seed ^ Mix64(i + 1)));
  }
}

void C10MServer::OnTimerFired(uint32_t conn, uint8_t kind, TimerHandle local) {
  // Runs under the owning shard's lock, on the thread driving that lane's
  // AdvanceShard. Do the absolute minimum: record the event. The lane loop
  // (same thread) handles it after the lock is released.
  lanes_[LaneOf(conn)].fired.push_back(FiredEvent{local, conn, kind});
}

TimerHandle C10MServer::Arm(Lane& lane, uint32_t conn, Kind kind, SimTime expiry) {
  const TimerHandle handle = service_->ScheduleOn(
      lane.index, expiry, TimerClosure{this, conn, static_cast<uint8_t>(kind)});
  ++lane.schedules;
  ++lane.live;
  return handle;
}

void C10MServer::Disarm(Lane& lane, Conn& conn, Kind kind) {
  if (conn.timers[kind] == kInvalidTimerHandle) {
    return;
  }
  // Cancel can report false when the timer fired earlier this tick and its
  // event is still queued; the stored handle counted as armed either way.
  if (service_->Cancel(conn.timers[kind])) {
    ++lane.cancels;
  }
  conn.timers[kind] = kInvalidTimerHandle;
  --lane.live;
}

void C10MServer::Rearm(Lane& lane, uint32_t conn_index, Kind kind, SimTime expiry) {
  Conn& conn = conns_[conn_index];
  TimerHandle& slot = conn.timers[kind];
  if (slot == kInvalidTimerHandle) {
    slot = Arm(lane, conn_index, kind, expiry);
    return;
  }
  const TimerHandle moved = service_->Reschedule(slot, expiry);
  if (moved != kInvalidTimerHandle) {
    ++lane.reschedules;
    return;
  }
  // The timer fired this very tick and is pending in the ring; mint a
  // fresh one — the stale fire will be recognised by handle mismatch.
  slot = service_->ScheduleOn(lane.index, expiry,
                              TimerClosure{this, conn_index, static_cast<uint8_t>(kind)});
  ++lane.schedules;
}

void C10MServer::SetupLane(Lane& lane) {
  // Arm the two standing timers of every owned connection, jittered so a
  // million keepalives do not thunder in on one tick.
  for (size_t c = lane.lo; c < lane.hi; ++c) {
    Conn& conn = conns_[c];
    const SimTime ka = options_.tick +
        static_cast<SimTime>(lane.rng.NextDouble() *
                             static_cast<double>(options_.keepalive_interval));
    const SimTime idle = options_.idle_timeout +
        static_cast<SimTime>(lane.rng.NextDouble() *
                             static_cast<double>(options_.idle_timeout));
    conn.timers[kKeepalive] = Arm(lane, static_cast<uint32_t>(c), kKeepalive, ka);
    conn.timers[kIdle] = Arm(lane, static_cast<uint32_t>(c), kIdle, idle);
  }
}

void C10MServer::DrainFired(Lane& lane, SimTime now) {
  // The ring is appended in fire order (deterministic per backend); new
  // fires cannot arrive while we drain — only AdvanceShard fires timers.
  for (const FiredEvent& ev : lane.fired) {
    Conn& conn = conns_[ev.conn];
    TimerHandle& slot = conn.timers[ev.kind];
    if ((slot & TimerService::kLocalMask) != ev.local) {
      // Superseded before we got here (e.g. an idle reset re-armed the
      // kind this same tick). The firing timer is already dead; ignore.
      ++lane.stale;
      continue;
    }
    slot = kInvalidTimerHandle;
    --lane.live;
    switch (static_cast<Kind>(ev.kind)) {
      case kRetransmit:
        // Insurance ran out: back off and, if data is still unacked, re-arm.
        conn.rto.Backoff();
        ++lane.retransmits;
        if (conn.inflight > 0) {
          conn.timers[kRetransmit] =
              Arm(lane, ev.conn, kRetransmit, now + conn.rto.Rto());
        }
        break;
      case kKeepalive:
        ++lane.keepalives;
        conn.timers[kKeepalive] =
            Arm(lane, ev.conn, kKeepalive, now + options_.keepalive_interval);
        break;
      case kIdle: {
        // Idle close; the slot is immediately reused by a fresh accept
        // (constant connection count keeps the scenario in steady state).
        ++lane.idles;
        Disarm(lane, conn, kRetransmit);
        Disarm(lane, conn, kDelayedAck);
        Disarm(lane, conn, kKeepalive);
        conn.rto = JacobsonEstimator();
        conn.inflight = 0;
        conn.timers[kKeepalive] =
            Arm(lane, ev.conn, kKeepalive, now + options_.keepalive_interval);
        conn.timers[kIdle] = Arm(lane, ev.conn, kIdle, now + options_.idle_timeout);
        break;
      }
      case kDelayedAck:
        // Coalescing window closed with only one segment seen: ack it now.
        ++lane.dacks_fired;
        break;
      default:
        break;
    }
  }
  lane.fired.clear();
}

void C10MServer::WorkloadTick(Lane& lane, SimTime now) {
  const size_t lane_conns = lane.hi - lane.lo;
  if (lane_conns == 0) {
    return;
  }
  const size_t events = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(lane_conns) * options_.event_rate));
  for (size_t e = 0; e < events; ++e) {
    const uint32_t conn_index = static_cast<uint32_t>(
        lane.lo + static_cast<size_t>(lane.rng.UniformInt(
                      0, static_cast<int64_t>(lane_conns) - 1)));
    Conn& conn = conns_[conn_index];
    const double p = lane.rng.NextDouble();
    if (p < 0.45) {
      // Outbound data segment: arm retransmit insurance (or push it out).
      ++lane.segments;
      if (conn.inflight < UINT16_MAX) {
        ++conn.inflight;
      }
      Rearm(lane, conn_index, kRetransmit, now + conn.rto.Rto());
    } else if (p < 0.80) {
      // ACK arrival: the common case where insurance is canceled unfired.
      ++lane.acks;
      if (conn.inflight > 0) {
        const SimDuration rtt = 1 + static_cast<SimDuration>(lane.rng.Exponential(
                                        static_cast<double>(options_.rtt_mean)));
        conn.rto.Sample(rtt);
        --conn.inflight;
        if (conn.inflight == 0) {
          Disarm(lane, conn, kRetransmit);
        } else {
          Rearm(lane, conn_index, kRetransmit, now + conn.rto.Rto());
        }
      }
    } else {
      // Inbound data segment: delayed-ACK coalescing (ack every second
      // segment immediately; otherwise wait out the 40 ms window).
      ++lane.received;
      if (conn.timers[kDelayedAck] == kInvalidTimerHandle) {
        conn.timers[kDelayedAck] =
            Arm(lane, conn_index, kDelayedAck, now + options_.delayed_ack);
      } else {
        Disarm(lane, conn, kDelayedAck);
        ++lane.dacks_coalesced;
      }
    }
    // Every touch re-arms the standing timers — the Reschedule fast path.
    Rearm(lane, conn_index, kKeepalive, now + options_.keepalive_interval);
    Rearm(lane, conn_index, kIdle, now + options_.idle_timeout);
  }
}

void C10MServer::RunLane(Lane& lane) {
  SetupLane(lane);
  lane.peak_live = lane.live;
  for (SimTime now = options_.tick; now <= options_.duration; now += options_.tick) {
    service_->AdvanceShard(lane.index, now);
    DrainFired(lane, now);
    WorkloadTick(lane, now);
    lane.peak_live = std::max(lane.peak_live, lane.live);
  }
}

C10MReport C10MServer::Finish() {
  C10MReport report;
  report.connections = options_.connections;
  report.lanes = options_.lanes;
  report.ticks = options_.tick > 0
                     ? static_cast<uint64_t>(options_.duration / options_.tick)
                     : 0;
  for (const Lane& lane : lanes_) {
    report.segments_sent += lane.segments;
    report.acks_received += lane.acks;
    report.segments_received += lane.received;
    report.retransmits_fired += lane.retransmits;
    report.keepalive_probes += lane.keepalives;
    report.idle_closures += lane.idles;
    report.delayed_acks_fired += lane.dacks_fired;
    report.delayed_acks_coalesced += lane.dacks_coalesced;
    report.stale_fires += lane.stale;
    report.timers_scheduled += lane.schedules;
    report.timers_canceled += lane.cancels;
    report.timers_rescheduled += lane.reschedules;
    report.peak_live_timers += lane.peak_live;
  }
  // Teardown: every nonzero handle is live (fires are fully drained at the
  // end of each tick), so one grouped batch cancel must drain the service
  // to zero — the no-leak proof.
  std::vector<TimerHandle> handles;
  handles.reserve(lanes_.empty() ? 0 : lanes_[0].live * lanes_.size());
  for (const Conn& conn : conns_) {
    for (const TimerHandle handle : conn.timers) {
      if (handle != kInvalidTimerHandle) {
        handles.push_back(handle);
      }
    }
  }
  report.teardown_collected = handles.size();
  report.teardown_canceled = service_->CancelBatch(handles);
  for (Conn& conn : conns_) {
    for (TimerHandle& handle : conn.timers) {
      handle = kInvalidTimerHandle;
    }
  }
  for (Lane& lane : lanes_) {
    lane.live = 0;
  }
  report.final_live_timers = service_->Size();

  uint64_t fp = Mix64(options_.seed);
  fp = Fold(fp, report.connections);
  fp = Fold(fp, report.lanes);
  fp = Fold(fp, report.ticks);
  fp = Fold(fp, report.segments_sent);
  fp = Fold(fp, report.acks_received);
  fp = Fold(fp, report.segments_received);
  fp = Fold(fp, report.retransmits_fired);
  fp = Fold(fp, report.keepalive_probes);
  fp = Fold(fp, report.idle_closures);
  fp = Fold(fp, report.delayed_acks_fired);
  fp = Fold(fp, report.delayed_acks_coalesced);
  fp = Fold(fp, report.stale_fires);
  fp = Fold(fp, report.timers_scheduled);
  fp = Fold(fp, report.timers_canceled);
  fp = Fold(fp, report.timers_rescheduled);
  fp = Fold(fp, report.peak_live_timers);
  fp = Fold(fp, report.teardown_collected);
  fp = Fold(fp, report.teardown_canceled);
  fp = Fold(fp, report.final_live_timers);
  report.fingerprint = fp;
  return report;
}

C10MReport C10MServer::Run() {
  // Lanes are fully independent, so running them to completion one after
  // another is indistinguishable from interleaving them tick by tick.
  for (Lane& lane : lanes_) {
    RunLane(lane);
  }
  return Finish();
}

C10MReport C10MServer::RunThreaded() {
  std::vector<std::thread> threads;
  threads.reserve(lanes_.size());
  for (Lane& lane : lanes_) {
    threads.emplace_back([this, &lane] { RunLane(lane); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return Finish();
}

}  // namespace tempo
