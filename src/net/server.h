// C10M: a million-connection server scenario.
//
// The paper's traces show where a busy OS's timers come from: every TCP
// connection holds a retransmit timer (armed as insurance and almost always
// canceled by the ACK), a delayed-ACK timer (the 0.04 s coalescing window),
// a keepalive timer (re-armed on every touch), and an idle/FIN timeout.
// This module scales that picture to the C10M regime: N simulated
// connections (a million and up) all holding those four timers against the
// sharded TimerService, driven by a stochastic but fully deterministic
// workload of segment sends, ACK arrivals, and quiet spells.
//
// Scaling rules the implementation lives by:
//
//   * Flat per-connection memory: one contiguous array of POD-ish Conn
//     records (compact Jacobson RTO state + four timer handles); no
//     per-connection allocation, ever.
//   * No per-timer heap allocation: the timer callback is a 16-byte
//     trivially copyable closure {server, conn index, timer kind} that fits
//     std::function's small-object buffer (static_asserted in server.cc).
//   * Lock discipline: TimerService runs callbacks under the owning
//     shard's lock, so callbacks never re-enter the service; they append a
//     fired event to the lane's ring and the lane loop processes the ring
//     after AdvanceShard returns.
//   * Lane partitioning: connections are split into `lanes` disjoint
//     ranges, lane i owning shard i of the TimerService, its own Rng and
//     its own counters. Lanes never touch each other's state, which makes
//     Run() (serial) and RunThreaded() (one thread per lane) produce
//     bit-identical reports — the determinism proof the tests lean on.
//
// Reschedule is the hot verb: every touch of a connection re-arms its
// keepalive and idle timers in place (handle-stable, no allocation), the
// pattern the TimerQueue v2 API exists for.

#ifndef TEMPO_SRC_NET_SERVER_H_
#define TEMPO_SRC_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/rto.h"
#include "src/sim/random.h"
#include "src/sim/time.h"
#include "src/timer/timer_service.h"

namespace tempo {

struct C10MOptions {
  // Live connections; each holds 2 standing timers (keepalive + idle) and
  // up to 2 churning ones (retransmit + delayed ACK).
  size_t connections = 1'000'000;
  // Lanes == TimerService shards; Run and RunThreaded agree for any value.
  size_t lanes = 4;
  // TimerQueue backend, by factory name (see TimerQueueNames()).
  std::string queue = "hierarchical_wheel";
  SimDuration granularity = kMillisecond;
  uint64_t seed = 1;
  // Simulated run; the lane loop advances in `tick` steps.
  SimDuration duration = kSecond;
  SimDuration tick = 10 * kMillisecond;
  // Timeout values, scaled-down stand-ins for the trace's 7200 s / 0.04 s /
  // 0.2 s constants so short runs still exercise every fire path.
  SimDuration keepalive_interval = kSecond;
  SimDuration idle_timeout = 5 * kSecond;
  SimDuration delayed_ack = 40 * kMillisecond;
  // Mean of the exponentially distributed RTT samples fed to Jacobson.
  SimDuration rtt_mean = 50 * kMillisecond;
  // Expected workload events per connection per tick.
  double event_rate = 0.02;
};

// Aggregated over all lanes in lane order; bit-identical for equal
// (options, seed) regardless of serial or threaded execution.
struct C10MReport {
  size_t connections = 0;
  size_t lanes = 0;
  uint64_t ticks = 0;
  uint64_t segments_sent = 0;
  uint64_t acks_received = 0;
  uint64_t segments_received = 0;
  uint64_t retransmits_fired = 0;
  uint64_t keepalive_probes = 0;
  uint64_t idle_closures = 0;
  uint64_t delayed_acks_fired = 0;
  uint64_t delayed_acks_coalesced = 0;
  // Fires whose timer had already been superseded by the time the lane
  // processed the event (same-tick reset races; benign, but counted).
  uint64_t stale_fires = 0;
  uint64_t timers_scheduled = 0;
  uint64_t timers_canceled = 0;     // workload cancels (ACK insurance etc.)
  uint64_t timers_rescheduled = 0;
  // Max, over ticks, of the summed per-lane armed-timer counts.
  uint64_t peak_live_timers = 0;
  // Teardown: handles collected from connections and batch-canceled.
  uint64_t teardown_collected = 0;
  uint64_t teardown_canceled = 0;
  // TimerService::Size() after teardown; 0 means no timer leaked.
  uint64_t final_live_timers = 0;
  // Order-independent digest of everything above; the determinism witness.
  uint64_t fingerprint = 0;

  bool operator==(const C10MReport&) const = default;
};

class C10MServer {
 public:
  explicit C10MServer(C10MOptions options);

  // Runs the scenario lane by lane on the calling thread.
  C10MReport Run();

  // Runs the scenario with one thread per lane. Identical report to Run().
  C10MReport RunThreaded();

  // The underlying service, for inspection between construction and Run.
  TimerService& service() { return *service_; }

  // Timer-callback entry point (public for the closure type; not an API).
  // `local` is the queue-local handle the fired timer was known by.
  void OnTimerFired(uint32_t conn, uint8_t kind, TimerHandle local);

 private:
  // Timer kinds, indexing Conn::timers.
  enum Kind : uint8_t { kRetransmit = 0, kKeepalive, kIdle, kDelayedAck, kKinds };

  struct Conn {
    JacobsonEstimator rto;
    TimerHandle timers[kKinds] = {0, 0, 0, 0};
    uint16_t inflight = 0;
  };

  struct FiredEvent {
    TimerHandle local = 0;
    uint32_t conn = 0;
    uint8_t kind = 0;
  };

  // Per-lane state; cache-line aligned so threaded lanes never share.
  struct alignas(64) Lane {
    size_t index = 0;
    size_t lo = 0, hi = 0;  // owned connection range [lo, hi)
    Rng rng{0};
    std::vector<FiredEvent> fired;
    // Armed-timer accounting: exactly the number of nonzero Conn handles.
    size_t live = 0;
    size_t peak_live = 0;
    // Counters, merged into the report in lane order.
    uint64_t segments = 0, acks = 0, received = 0;
    uint64_t retransmits = 0, keepalives = 0, idles = 0;
    uint64_t dacks_fired = 0, dacks_coalesced = 0, stale = 0;
    uint64_t schedules = 0, cancels = 0, reschedules = 0;
  };

  size_t LaneOf(size_t conn) const { return conn / conns_per_lane_; }

  TimerHandle Arm(Lane& lane, uint32_t conn, Kind kind, SimTime expiry);
  void Disarm(Lane& lane, Conn& conn, Kind kind);
  void Rearm(Lane& lane, uint32_t conn_index, Kind kind, SimTime expiry);
  void SetupLane(Lane& lane);
  void DrainFired(Lane& lane, SimTime now);
  void WorkloadTick(Lane& lane, SimTime now);
  void RunLane(Lane& lane);
  C10MReport Finish();

  C10MOptions options_;
  size_t conns_per_lane_ = 1;
  std::unique_ptr<TimerService> service_;
  std::vector<Conn> conns_;
  std::vector<Lane> lanes_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_SERVER_H_
