#include "src/net/tcp.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace tempo {

namespace {
constexpr size_t kSynBytes = 40;
constexpr size_t kAckBytes = 40;
}  // namespace

// Kernel-or-simulator timer wrapper. When a stack is bound to a LinuxKernel
// the wrapper owns an instrumented timer struct drawn from the stack's
// slab-like pool (reused identity across connections); otherwise it uses a
// bare simulator event (untraced machine).
struct TcpConnection::Timer {
  TcpStack* stack = nullptr;
  LinuxTimer* ktimer = nullptr;
  EventId event = kInvalidEventId;
  TimerHandle wheel_handle = kInvalidTimerHandle;
  std::function<void()> fn;
  std::string callsite;
  bool armed = false;

  // Shared expiry path for all three backing modes.
  void Fire() {
    armed = false;
    stack->metric_timeouts_fired_->Inc();
    if (fn) {
      fn();
    }
  }

  void Arm(SimDuration timeout) {
    if (armed) {
      Cancel();
    }
    armed = true;
    if (stack->private_wheel_ != nullptr) {
      // Vista mode: the stack's own wheel, invisible to the trace.
      wheel_handle = stack->private_wheel_->Schedule(
          stack->sim().Now() + timeout, [this](TimerHandle) { Fire(); });
    } else if (ktimer != nullptr) {
      stack->kernel_->ModTimerRelative(ktimer, timeout);
    } else {
      event = stack->sim().ScheduleAfter(timeout, [this] { Fire(); });
    }
  }

  void Cancel() {
    if (!armed) {
      return;
    }
    armed = false;
    stack->metric_timeouts_canceled_->Inc();
    if (stack->private_wheel_ != nullptr) {
      stack->private_wheel_->Cancel(wheel_handle);
      wheel_handle = kInvalidTimerHandle;
    } else if (ktimer != nullptr) {
      stack->kernel_->DelTimer(ktimer);
    } else {
      stack->sim().Cancel(event);
      event = kInvalidEventId;
    }
  }
};

TcpStack::TcpStack(Simulator* sim, SimNetwork* net, NodeId node, LinuxKernel* kernel, Pid pid)
    : TcpStack(sim, net, node, kernel, pid, TcpOptions()) {}

TcpStack::TcpStack(Simulator* sim, SimNetwork* net, NodeId node, LinuxKernel* kernel, Pid pid,
                   TcpOptions options)
    : sim_fallback_(sim), net_(net), node_(node), kernel_(kernel), pid_(pid),
      options_(options),
      metric_retransmits_(obs::Registry::Global().GetCounter(
          "net_retransmits", {}, "TCP segment and handshake retransmissions")),
      metric_timeouts_fired_(obs::Registry::Global().GetCounter(
          "net_timeouts", {{"fate", "fired"}}, "TCP timeouts by fate")),
      metric_timeouts_canceled_(obs::Registry::Global().GetCounter(
          "net_timeouts", {{"fate", "canceled"}}, "TCP timeouts by fate")) {}

TcpStack::~TcpStack() = default;

void TcpStack::UsePrivateWheel(SimDuration dpc_period) {
  if (private_wheel_ != nullptr) {
    return;
  }
  private_wheel_ = std::make_unique<HashedWheelTimerQueue>(kMillisecond, 512);
  wheel_dpc_period_ = std::max<SimDuration>(dpc_period, kMillisecond);
  ServiceWheel();  // the per-CPU DPC that walks the wheel
}

void TcpStack::ServiceWheel() {
  sim().ScheduleAfter(wheel_dpc_period_, [this] {
    ++wheel_services_;
    private_wheel_->Advance(sim().Now());
    ServiceWheel();
  });
}

Simulator& TcpStack::sim() {
  return kernel_ != nullptr ? kernel_->sim() : *sim_fallback_;
}

TcpListener* TcpStack::Listen() {
  listeners_.push_back(std::unique_ptr<TcpListener>(new TcpListener()));
  TcpListener* listener = listeners_.back().get();
  listener->stack_ = this;
  return listener;
}

TcpConnection* TcpStack::AllocConnection() {
  TcpConnection* conn = nullptr;
  if (!free_connections_.empty()) {
    conn = free_connections_.back();
    free_connections_.pop_back();
  } else {
    connections_.push_back(std::unique_ptr<TcpConnection>(new TcpConnection()));
    conn = connections_.back().get();
  }
  ++connections_opened_;
  ++conn->generation_;
  conn->stack_ = this;
  conn->peer_ = nullptr;
  conn->state_ = TcpConnection::State::kIdle;
  conn->rto_ = JacobsonEstimator(JacobsonEstimator::Params{});
  {
    JacobsonEstimator::Params params;
    params.initial_rto = options_.initial_rto;
    params.min_rto = options_.min_rto;
    params.max_rto = options_.max_rto;
    conn->rto_ = JacobsonEstimator(params);
  }
  conn->next_seq_ = 1;
  conn->acked_seq_ = 0;
  conn->retransmits_ = 0;
  conn->synack_attempts_ = 0;
  conn->accept_listener_ = nullptr;
  conn->peer_generation_ = 0;
  conn->handshake_sent_at_ = 0;
  conn->handshake_retransmitted_ = false;
  conn->inflight_ = false;
  conn->delack_pending_ = false;
  conn->send_queue_.clear();
  conn->syn_attempts_ = 0;
  conn->on_data = nullptr;
  conn->on_peer_close = nullptr;
  conn->rtx_timer_ = AllocTimer("tcp/retransmit");
  conn->delack_timer_ = AllocTimer("net/sockets_delack");
  conn->keepalive_timer_ = AllocTimer("tcp/keepalive");
  conn->handshake_timer_ = AllocTimer("net/sockets");
  return conn;
}

void TcpStack::RecycleConnection(TcpConnection* conn) {
  RecycleTimer(conn->rtx_timer_);
  RecycleTimer(conn->delack_timer_);
  RecycleTimer(conn->keepalive_timer_);
  RecycleTimer(conn->handshake_timer_);
  conn->rtx_timer_ = conn->delack_timer_ = conn->keepalive_timer_ = conn->handshake_timer_ =
      nullptr;
  conn->on_data = nullptr;
  conn->on_peer_close = nullptr;
  conn->inflight_acked_ = nullptr;
  conn->on_established_ = nullptr;
  conn->on_connect_fail_ = nullptr;
  ++conn->generation_;
  free_connections_.push_back(conn);
}

TcpConnection::Timer* TcpStack::AllocTimer(const char* callsite) {
  // Timer structs are pooled per call-site, modelling slab reuse of sock
  // structures: a high-turnover web-server workload sees only a handful of
  // distinct timer identities (Table 1).
  auto& free_list = free_timers_[callsite];
  if (!free_list.empty()) {
    TcpConnection::Timer* t = free_list.back();
    free_list.pop_back();
    t->fn = nullptr;
    return t;
  }
  timers_.push_back(std::make_unique<TcpConnection::Timer>());
  TcpConnection::Timer* t = timers_.back().get();
  t->stack = this;
  t->callsite = callsite;
  // In private-wheel (Vista) mode no instrumented kernel timer struct is
  // ever allocated: TCP is entirely invisible to the trace.
  if (kernel_ != nullptr && private_wheel_ == nullptr) {
    // TCP registers its timers through the IP subsystem's functions, so a
    // naive "who called __mod_timer" attribution would blame IP — the
    // paper's Section 3.1 example. The provenance parent records the
    // containment so analysis can aggregate either way.
    const CallsiteId ip = kernel_->callsites().Intern("net/ip");
    t->ktimer = kernel_->InitTimer(callsite, [t] { t->Fire(); }, pid_, 0, false, ip);
  }
  return t;
}

void TcpStack::RecycleTimer(TcpConnection::Timer* timer) {
  if (timer == nullptr) {
    return;
  }
  timer->Cancel();
  timer->fn = nullptr;
  free_timers_[timer->callsite].push_back(timer);
}

void TcpStack::SendPacket(NodeId to, size_t bytes, std::function<void()> deliver) {
  net_->Send(node_, to, bytes, std::move(deliver));
}

void TcpStack::Connect(TcpListener* remote, std::function<void(TcpConnection*)> on_established,
                       std::function<void()> on_fail) {
  TcpConnection* conn = AllocConnection();
  conn->state_ = TcpConnection::State::kSynSent;
  conn->connect_target_ = remote;
  conn->on_established_ = std::move(on_established);
  conn->on_connect_fail_ = std::move(on_fail);
  conn->SendSyn();
}

void TcpConnection::SendSyn() {
  ++syn_attempts_;
  if (syn_attempts_ == 1) {
    handshake_sent_at_ = stack_->sim().Now();
  } else {
    handshake_retransmitted_ = true;
    stack_->metric_retransmits_->Inc();
  }
  TcpListener* target = connect_target_;
  TcpConnection* self = this;
  const uint64_t gen = generation_;
  stack_->SendPacket(target->stack_->node_, kSynBytes, [target, self, gen] {
    if (self->generation_ == gen) {
      target->OnSyn(self);
    } else {
      target->OnSyn(nullptr);  // stale SYN for a dead connection: ignored
    }
  });
  // SYN retransmission with doubling timeout (3 s, 6 s, 12 s, ...).
  const SimDuration timeout = stack_->options().syn_timeout << (syn_attempts_ - 1);
  handshake_timer_->fn = [this] {
    if (state_ != State::kSynSent) {
      return;
    }
    if (syn_attempts_ > stack_->options().syn_retries) {
      auto fail = std::move(on_connect_fail_);
      state_ = State::kClosed;
      Teardown();
      if (fail) {
        fail();
      }
      return;
    }
    SendSyn();
  };
  handshake_timer_->Arm(timeout);
}

void TcpListener::OnSyn(TcpConnection* client) {
  if (client == nullptr) {
    return;
  }
  TcpConnection* server = stack_->AllocConnection();
  server->state_ = TcpConnection::State::kSynRcvd;
  server->peer_ = client;
  server->peer_generation_ = client->generation_;
  server->accept_listener_ = this;
  server->SendSynAck();
}

void TcpConnection::SendSynAck() {
  if (synack_attempts_ == 0) {
    handshake_sent_at_ = stack_->sim().Now();
  } else {
    handshake_retransmitted_ = true;
    stack_->metric_retransmits_->Inc();
  }
  TcpConnection* client = peer_;
  TcpConnection* self = this;
  const uint64_t self_gen = generation_;
  const uint64_t client_gen = peer_generation_;
  stack_->SendPacket(client->stack_->node_, kSynBytes, [self, self_gen, client, client_gen] {
    if (client->generation_ == client_gen) {
      client->OnSynAck(self, self_gen);
    }
  });
  // The 3 s handshake timer of Table 3's "Sockets" entry: re-sends the
  // SYN-ACK if the final ACK never arrives, eventually giving up.
  handshake_timer_->fn = [this] {
    if (state_ != State::kSynRcvd) {
      return;
    }
    ++synack_attempts_;
    if (synack_attempts_ > 5) {
      state_ = State::kClosed;
      Teardown();
      return;
    }
    SendSynAck();
  };
  handshake_timer_->Arm(stack_->options().synack_timeout);
}

void TcpConnection::OnSynAck(TcpConnection* server, uint64_t server_gen) {
  if (state_ == State::kEstablished && peer_ == server) {
    // Duplicate SYN-ACK: our final ACK was lost; re-send it so the server
    // can leave SYN_RCVD.
    TcpConnection* self = this;
    const uint64_t self_gen = generation_;
    stack_->SendPacket(server->stack_->node_, kAckBytes,
                       [server, server_gen, self, self_gen] {
                         if (server->generation_ == server_gen) {
                           server->OnAckOfSyn(self, self_gen);
                         }
                       });
    return;
  }
  if (state_ != State::kSynSent) {
    return;  // stale SYN-ACK
  }
  handshake_timer_->Cancel();
  peer_ = server;
  peer_generation_ = server_gen;
  state_ = State::kEstablished;
  if (!handshake_retransmitted_) {
    rto_.Sample(stack_->sim().Now() - handshake_sent_at_);  // SYN <-> SYN-ACK
  }
  ArmKeepalive();
  TcpConnection* self = this;
  const uint64_t self_gen = generation_;
  stack_->SendPacket(server->stack_->node_, kAckBytes, [server, server_gen, self, self_gen] {
    if (server->generation_ == server_gen) {
      server->OnAckOfSyn(self, self_gen);
    }
  });
  auto established = std::move(on_established_);
  on_established_ = nullptr;
  if (established) {
    established(this);
  }
}

void TcpConnection::OnAckOfSyn(TcpConnection* client, uint64_t client_gen) {
  (void)client;
  (void)client_gen;
  if (state_ != State::kSynRcvd) {
    return;
  }
  // Establish even if the client side has since moved on (e.g. it closed
  // right after connecting): real TCP cannot know; the in-flight FIN will
  // close us a round-trip later.
  handshake_timer_->Cancel();
  state_ = State::kEstablished;
  if (!handshake_retransmitted_) {
    rto_.Sample(stack_->sim().Now() - handshake_sent_at_);  // SYN-ACK <-> ACK
  }
  ArmKeepalive();
  if (accept_listener_ != nullptr && accept_listener_->on_accept) {
    accept_listener_->on_accept(this);
  }
}

void TcpConnection::ArmKeepalive() {
  if (!stack_->options().enable_keepalive) {
    return;
  }
  // Armed once per connection; Linux checks activity lazily at expiry
  // rather than re-arming per packet.
  keepalive_timer_->fn = [this] {
    if (state_ == State::kEstablished) {
      ArmKeepalive();  // peer considered alive; probe cycle restarts
    }
  };
  keepalive_timer_->Arm(stack_->options().keepalive);
}

void TcpConnection::Send(size_t bytes, std::function<void()> on_acked) {
  assert(state_ == State::kEstablished);
  if (inflight_) {
    // Stop-and-wait window is full: queue behind the in-flight segment.
    send_queue_.emplace_back(bytes, std::move(on_acked));
    return;
  }
  // Piggyback any pending delayed ACK on this data segment.
  if (delack_pending_) {
    delack_pending_ = false;
    delack_timer_->Cancel();
    SendAck(delack_seq_);
  }
  inflight_ = true;
  inflight_seq_ = next_seq_++;
  inflight_bytes_ = bytes;
  inflight_retransmitted_ = false;
  inflight_sent_at_ = stack_->sim().Now();
  inflight_acked_ = std::move(on_acked);
  SendSegmentInternal(bytes, inflight_seq_, false);
}

void TcpConnection::SendSegmentInternal(size_t bytes, uint64_t seq, bool retransmission) {
  if (retransmission) {
    inflight_retransmitted_ = true;
    ++retransmits_;
    stack_->metric_retransmits_->Inc();
  }
  TcpConnection* receiver = peer_;
  const uint64_t receiver_gen = peer_generation_;
  stack_->SendPacket(receiver->stack_->node_, bytes + 40, [receiver, receiver_gen, bytes, seq] {
    if (receiver->generation_ == receiver_gen) {
      receiver->OnSegment(bytes, seq);
    }
  });
  rtx_timer_->fn = [this] {
    if (state_ != State::kEstablished || !inflight_) {
      return;
    }
    rto_.Backoff();
    SendSegmentInternal(inflight_bytes_, inflight_seq_, true);
  };
  rtx_timer_->Arm(rto_.Rto());
}

void TcpConnection::OnSegment(size_t bytes, uint64_t seq) {
  if (state_ != State::kEstablished) {
    return;
  }
  if (seq <= acked_seq_) {
    SendAck(seq);  // duplicate data: re-ack immediately
    return;
  }
  acked_seq_ = seq;
  if (stack_->options().enable_delack) {
    if (delack_pending_) {
      // Second segment since the last ACK: ack immediately (Linux quickack).
      FlushDelayedAck();
    } else {
      delack_pending_ = true;
      delack_seq_ = seq;
      delack_timer_->fn = [this] { FlushDelayedAck(); };
      delack_timer_->Arm(stack_->options().delack);
    }
  } else {
    SendAck(seq);
  }
  if (on_data) {
    // Invoke a copy: the handler may close (and recycle) this endpoint,
    // which clears on_data — the living lambda must not be destroyed
    // beneath its own feet.
    auto handler = on_data;
    handler(bytes);
  }
}

void TcpConnection::FlushDelayedAck() {
  if (!delack_pending_) {
    return;
  }
  delack_pending_ = false;
  delack_timer_->Cancel();
  SendAck(acked_seq_);
}

void TcpConnection::SendAck(uint64_t seq) {
  TcpConnection* sender = peer_;
  const uint64_t sender_gen = peer_generation_;
  stack_->SendPacket(sender->stack_->node_, kAckBytes, [sender, sender_gen, seq] {
    if (sender->generation_ == sender_gen) {
      sender->OnAck(seq);
    }
  });
}

void TcpConnection::OnAck(uint64_t seq) {
  if (state_ != State::kEstablished || !inflight_ || seq != inflight_seq_) {
    return;
  }
  inflight_ = false;
  rtx_timer_->Cancel();
  if (!inflight_retransmitted_) {
    // Karn's rule: only un-retransmitted exchanges update the estimator.
    rto_.Sample(stack_->sim().Now() - inflight_sent_at_);
  }
  auto acked = std::move(inflight_acked_);
  inflight_acked_ = nullptr;
  if (acked) {
    acked();
  }
  if (!inflight_ && state_ == State::kEstablished && !send_queue_.empty()) {
    auto [bytes, cb] = std::move(send_queue_.front());
    send_queue_.pop_front();
    Send(bytes, std::move(cb));
  }
}

void TcpConnection::Close() {
  if (state_ == State::kClosed) {
    return;
  }
  // The FIN carries any outstanding ACK (flush the delayed-ACK timer).
  FlushDelayedAck();
  const bool notify = state_ == State::kEstablished && peer_ != nullptr;
  state_ = State::kClosed;
  if (notify) {
    TcpConnection* other = peer_;
    const uint64_t other_gen = peer_generation_;
    stack_->SendPacket(other->stack_->node_, kAckBytes, [other, other_gen] {
      if (other->generation_ == other_gen) {
        other->OnPeerClose();
      }
    });
  }
  Teardown();
}

void TcpConnection::OnPeerClose() {
  if (state_ == State::kClosed) {
    return;
  }
  state_ = State::kClosed;
  auto cb = std::move(on_peer_close);
  on_peer_close = nullptr;
  Teardown();
  if (cb) {
    cb();
  }
}

void TcpConnection::Teardown() {
  send_queue_.clear();
  rtx_timer_->Cancel();
  delack_timer_->Cancel();
  if (keepalive_timer_->armed) {
    // The established-connection keepalive is explicitly canceled on close —
    // the 7200 s set/cancel pairs of Figure 3.
    keepalive_timer_->Cancel();
  }
  handshake_timer_->Cancel();
  stack_->RecycleConnection(this);
}

}  // namespace tempo
