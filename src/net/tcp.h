// TCP model over the simulated network, with Linux-kernel timer binding.
//
// The TCP state machine is simplified to what drives the paper's timer
// observations on the Linux side:
//   * retransmission timer with Jacobson RTO (min 204 ms = 51 jiffies, the
//     "0.204 s TCP retransmission timeout" of Table 3/Figure 3) and
//     exponential backoff;
//   * delayed-ACK timer at 40 ms (the "0.04 s Sockets" entry);
//   * SYN-ACK handshake timer at 3 s (the "3 s Sockets" entry);
//   * keepalive timer at 7200 s armed while established;
//   * SYN retries (3 s doubling) on active open.
//
// A stack bound to a LinuxKernel arms real instrumented kernel timers
// (timer structs drawn from a small slab-like pool, so struct identity is
// reused across connections just as sock slabs reuse addresses — the reason
// a 30000-connection trace contains only ~100 distinct timers in Table 1).
// A stack with a null kernel (the load-generator machine, whose timers the
// study does not trace) uses bare simulator events.
//
// On Vista the TCP stack was re-architected to use private per-CPU timing
// wheels, so its timers never appear in the KTIMER trace (Section 1) — the
// Vista workloads therefore do not use this module for TCP.

#ifndef TEMPO_SRC_NET_TCP_H_
#define TEMPO_SRC_NET_TCP_H_

#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <string>

#include "src/net/network.h"
#include "src/net/rto.h"
#include "src/obs/metrics.h"
#include "src/oslinux/kernel.h"
#include "src/timer/hashed_wheel.h"

namespace tempo {

class TcpStack;
class TcpListener;
class TcpConnection;

// TCP tuning knobs (Linux 2.6 defaults scaled to the model).
struct TcpOptions {
  SimDuration min_rto;
  SimDuration initial_rto;
  SimDuration max_rto;
  SimDuration delack;
  SimDuration keepalive;
  SimDuration synack_timeout;
  SimDuration syn_timeout;
  int syn_retries;
  bool enable_keepalive;
  bool enable_delack;

  TcpOptions()
      : min_rto(204 * kMillisecond),
        initial_rto(3 * kSecond),
        max_rto(120 * kSecond),
        delack(40 * kMillisecond),
        keepalive(7200 * kSecond),
        synack_timeout(3 * kSecond),
        syn_timeout(3 * kSecond),
        syn_retries(5),
        enable_keepalive(true),
        enable_delack(true) {}
};

// One endpoint of a connection. Obtained from TcpStack::Connect (client) or
// the listener's accept callback (server). Owned by its stack; Close()
// recycles it, after which the pointer must not be used.
class TcpConnection {
 public:
  // Sends `bytes` as one segment; `on_acked` runs when the peer's ACK
  // arrives (possibly after retransmissions). The window is stop-and-wait:
  // sends issued while a segment is in flight queue behind it.
  void Send(size_t bytes, std::function<void()> on_acked);

  // Closes this side: the peer sees on_peer_close. Cancels timers and
  // recycles both this endpoint's timer structs.
  void Close();

  // Upcalls (set before traffic flows).
  std::function<void(size_t bytes)> on_data;
  std::function<void()> on_peer_close;

  SimDuration rto() const { return rto_.Rto(); }
  SimDuration srtt() const { return rto_.srtt(); }
  bool established() const { return state_ == State::kEstablished; }
  uint64_t retransmits() const { return retransmits_; }

 private:
  friend class TcpStack;
  friend class TcpListener;
  TcpConnection() = default;

  enum class State { kIdle, kSynSent, kSynRcvd, kEstablished, kClosed };

  struct Timer;  // kernel-or-sim timer wrapper

  void SendSyn();
  void SendSynAck();
  void OnSynAck(TcpConnection* server, uint64_t server_gen);
  void OnAckOfSyn(TcpConnection* client, uint64_t client_gen);
  void OnSegment(size_t bytes, uint64_t seq);
  void OnAck(uint64_t seq);
  void OnPeerClose();
  void SendSegmentInternal(size_t bytes, uint64_t seq, bool retransmission);
  void SendAck(uint64_t seq);
  void FlushDelayedAck();
  void ArmKeepalive();
  void Teardown();

  TcpStack* stack_ = nullptr;
  TcpConnection* peer_ = nullptr;  // other endpoint (possibly other stack)
  // Generation of peer_ at the time the association was made; peer_ may be
  // recycled while our packets are in flight, in which case deliveries
  // guarded by this value are dropped (no matching socket).
  uint64_t peer_generation_ = 0;
  State state_ = State::kIdle;
  // Incremented whenever the endpoint is recycled; packets in flight carry
  // the generation they were sent under so late deliveries to a reused
  // endpoint are dropped (no matching socket).
  uint64_t generation_ = 0;
  JacobsonEstimator rto_;
  uint64_t next_seq_ = 1;
  uint64_t acked_seq_ = 0;
  uint64_t retransmits_ = 0;
  int synack_attempts_ = 0;
  TcpListener* accept_listener_ = nullptr;
  // First transmission time of the handshake segment this side sent (SYN or
  // SYN-ACK); gives the estimator its first RTT sample, Karn-filtered.
  SimTime handshake_sent_at_ = 0;
  bool handshake_retransmitted_ = false;

  // In-flight segment (stop-and-wait window of 1: enough for the timer
  // patterns under study).
  bool inflight_ = false;
  uint64_t inflight_seq_ = 0;
  size_t inflight_bytes_ = 0;
  bool inflight_retransmitted_ = false;
  SimTime inflight_sent_at_ = 0;
  std::function<void()> inflight_acked_;

  bool delack_pending_ = false;
  uint64_t delack_seq_ = 0;
  std::deque<std::pair<size_t, std::function<void()>>> send_queue_;

  Timer* rtx_timer_ = nullptr;
  Timer* delack_timer_ = nullptr;
  Timer* keepalive_timer_ = nullptr;
  Timer* handshake_timer_ = nullptr;  // SYN or SYN-ACK retransmission

  // Active-open bookkeeping.
  int syn_attempts_ = 0;
  TcpListener* connect_target_ = nullptr;
  std::function<void(TcpConnection*)> on_established_;
  std::function<void()> on_connect_fail_;
};

// A passive listener. Owned by its stack.
class TcpListener {
 public:
  std::function<void(TcpConnection*)> on_accept;

 private:
  friend class TcpStack;
  friend class TcpConnection;
  TcpListener() = default;
  void OnSyn(TcpConnection* client);

  TcpStack* stack_ = nullptr;
};

// Per-host TCP instance.
class TcpStack {
 public:
  // `kernel` may be null: timers then run as bare simulator events and are
  // invisible to the trace (an untraced remote machine).
  TcpStack(Simulator* sim, SimNetwork* net, NodeId node, LinuxKernel* kernel, Pid pid);
  TcpStack(Simulator* sim, SimNetwork* net, NodeId node, LinuxKernel* kernel, Pid pid,
           TcpOptions options);

  // Switches this stack to a PRIVATE timing wheel for all TCP timers — the
  // Vista re-architecture ("per-CPU timing wheels for TCP-related
  // timeouts", Section 1). Timers then never cross the instrumented kernel
  // timer interface, which is why the paper's Vista web-server trace lacks
  // TCP timers entirely. `dpc_period` is the wheel-servicing cadence.
  void UsePrivateWheel(SimDuration dpc_period = 10 * kMillisecond);

  // Wheel-servicing passes performed (private-wheel mode only).
  uint64_t wheel_services() const { return wheel_services_; }
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;
  ~TcpStack();

  // Opens a listener.
  TcpListener* Listen();

  // Active open to a listener (rendezvous by pointer; addressing is not
  // modelled). `on_established` receives the connected endpoint;
  // `on_fail` runs when SYN retries are exhausted.
  void Connect(TcpListener* remote, std::function<void(TcpConnection*)> on_established,
               std::function<void()> on_fail);

  NodeId node() const { return node_; }
  Simulator& sim();
  const TcpOptions& options() const { return options_; }

  uint64_t connections_opened() const { return connections_opened_; }

 private:
  friend class TcpConnection;
  friend class TcpListener;

  void ServiceWheel();
  TcpConnection* AllocConnection();
  void RecycleConnection(TcpConnection* conn);
  TcpConnection::Timer* AllocTimer(const char* callsite);
  void RecycleTimer(TcpConnection::Timer* timer);
  void SendPacket(NodeId to, size_t bytes, std::function<void()> deliver);

  Simulator* sim_fallback_;
  SimNetwork* net_;
  NodeId node_;
  LinuxKernel* kernel_;  // nullable
  Pid pid_;
  TcpOptions options_;

  std::deque<std::unique_ptr<TcpListener>> listeners_;
  // Private per-stack timing wheel (Vista mode); null for kernel/sim modes.
  std::unique_ptr<HashedWheelTimerQueue> private_wheel_;
  SimDuration wheel_dpc_period_ = 0;
  uint64_t wheel_services_ = 0;

  std::deque<std::unique_ptr<TcpConnection>> connections_;
  std::deque<TcpConnection*> free_connections_;
  std::deque<std::unique_ptr<TcpConnection::Timer>> timers_;
  // Timer-struct slabs, one free list per call-site.
  std::map<std::string, std::deque<TcpConnection::Timer*>> free_timers_;
  uint64_t connections_opened_ = 0;

  // Self-metrics: segment/handshake retransmissions, and the fired-vs-
  // canceled fate of TCP timeouts (the paper's headline observation is
  // that most timeouts are canceled, not fired).
  obs::Counter* metric_retransmits_;
  obs::Counter* metric_timeouts_fired_;
  obs::Counter* metric_timeouts_canceled_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_NET_TCP_H_
