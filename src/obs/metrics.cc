#include "src/obs/metrics.h"

#include <algorithm>
#include <utility>

namespace tempo {
namespace obs {

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based: q=0 -> first, q=1 -> last.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t in_bucket = buckets_[i];
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate within [lo, hi) by the fraction of the bucket's
      // samples below the target rank. Clamp to the observed extremes so
      // a one-bucket histogram reports values the caller actually fed in.
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double v = lo + (hi - lo) * frac;
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_);
}

const SnapshotEntry* MetricsSnapshot::Find(const std::string& name) const {
  for (const SnapshotEntry& e : entries) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

const SnapshotEntry* MetricsSnapshot::Find(const std::string& name,
                                           const Labels& labels) const {
  for (const SnapshotEntry& e : entries) {
    if (e.name == name && e.labels == labels) {
      return &e;
    }
  }
  return nullptr;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Registry::Instrument* Registry::FindOrCreate(const std::string& name, Labels labels,
                                             const std::string& help,
                                             SnapshotEntry::Kind kind) {
  std::sort(labels.begin(), labels.end());
  auto [it, inserted] = instruments_.try_emplace(Key{name, std::move(labels)});
  Instrument& inst = it->second;
  if (inserted) {
    inst.name = it->first.first;
    inst.labels = it->first.second;
    inst.help = help;
    inst.kind = kind;
    switch (kind) {
      case SnapshotEntry::Kind::kCounter:
        inst.counter.reset(new Counter());
        break;
      case SnapshotEntry::Kind::kGauge:
        inst.gauge.reset(new Gauge());
        break;
      case SnapshotEntry::Kind::kHistogram:
        inst.histogram.reset(new Histogram());
        break;
    }
    return &inst;
  }
  if (inst.kind != kind) {
    return nullptr;  // name already bound to a different instrument kind
  }
  if (inst.help.empty() && !help.empty()) {
    inst.help = help;
  }
  return &inst;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels,
                              const std::string& help) {
  Instrument* inst =
      FindOrCreate(name, std::move(labels), help, SnapshotEntry::Kind::kCounter);
  return inst == nullptr ? nullptr : inst->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels,
                          const std::string& help) {
  Instrument* inst =
      FindOrCreate(name, std::move(labels), help, SnapshotEntry::Kind::kGauge);
  return inst == nullptr ? nullptr : inst->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels,
                                  const std::string& help) {
  Instrument* inst =
      FindOrCreate(name, std::move(labels), help, SnapshotEntry::Kind::kHistogram);
  return inst == nullptr ? nullptr : inst->histogram.get();
}

void Registry::Reset() {
  for (auto& [key, inst] : instruments_) {
    switch (inst.kind) {
      case SnapshotEntry::Kind::kCounter:
        inst.counter->Reset();
        break;
      case SnapshotEntry::Kind::kGauge:
        inst.gauge->Reset();
        break;
      case SnapshotEntry::Kind::kHistogram:
        inst.histogram->Reset();
        break;
    }
  }
}

MetricsSnapshot Registry::TakeSnapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    SnapshotEntry e;
    e.name = inst.name;
    e.labels = inst.labels;
    e.help = inst.help;
    e.kind = inst.kind;
    switch (inst.kind) {
      case SnapshotEntry::Kind::kCounter:
        e.value = static_cast<int64_t>(inst.counter->value());
        break;
      case SnapshotEntry::Kind::kGauge:
        e.value = inst.gauge->value();
        break;
      case SnapshotEntry::Kind::kHistogram: {
        const Histogram& h = *inst.histogram;
        e.count = h.count();
        e.sum = h.sum();
        e.min = h.min();
        e.max = h.max();
        e.p50 = h.Quantile(0.50);
        e.p90 = h.Quantile(0.90);
        e.p99 = h.Quantile(0.99);
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
          if (h.buckets()[i] == 0) {
            continue;
          }
          cumulative += h.buckets()[i];
          e.cumulative_buckets.emplace_back(Histogram::BucketUpperBound(i), cumulative);
        }
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace obs
}  // namespace tempo
