// Self-metrics for the tempo runtime.
//
// The paper's method stands on instrumentation whose own cost was measured
// before the traces were trusted (236 cycles/record, <0.1% CPU, Section
// 3.2). This module turns the same discipline on tempo itself: monotonic
// counters, gauges and log-scale latency histograms registered by name, so
// the timer queues, the dispatcher, the trace sinks, the simulator core and
// the protocol stacks can report what they are doing and how long it takes.
//
// Design constraints, in order:
//   1. Hot-path cost. The simulator executes millions of events per run;
//      an instrument is a pre-resolved pointer and an update is one or two
//      integer operations. Name lookup happens once, at construction.
//   2. Determinism. Metrics are pure observation: nothing here feeds back
//      into simulation behaviour, and the probe clock is pluggable so sim
//      runs can use virtual cycles instead of the TSC (see probe.h).
//   3. No atomics on the hot path. Instruments are not internally
//      synchronised: an instrument may only ever be updated from one
//      thread, or under one mutex (the sharded TimerService gives each
//      shard its own label set and updates it only under the shard lock).
//      Registry Get* calls and TakeSnapshot must run quiescently.

#ifndef TEMPO_SRC_OBS_METRICS_H_
#define TEMPO_SRC_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tempo {
namespace obs {

// Sorted (key, value) pairs identifying one instrument among several that
// share a metric name, e.g. {{"queue", "heap"}, {"op", "set"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing count of events.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  // Raises the counter to `total` if it is behind; never lowers it. For
  // publishers that track a running total elsewhere (e.g. a relay channel's
  // accepted/dropped tallies) and periodically mirror it into obs.
  void AdvanceTo(uint64_t total) {
    if (total > value_) {
      value_ = total;
    }
  }
  uint64_t value() const { return value_; }

 private:
  friend class Registry;
  Counter() = default;
  void Reset() { value_ = 0; }
  uint64_t value_ = 0;
};

// A value that can go up and down; Max() maintains high-water marks.
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  // High-water-mark update: keeps the largest value ever Set or Max'd.
  void Max(int64_t v) {
    if (v > value_) {
      value_ = v;
    }
  }
  int64_t value() const { return value_; }

 private:
  friend class Registry;
  Gauge() = default;
  void Reset() { value_ = 0; }
  int64_t value_ = 0;
};

// Fixed-bucket log2-scale histogram of non-negative integer samples
// (cycles, nanoseconds, batch sizes...). Bucket i counts samples whose
// bit width is i: bucket 0 holds the value 0, bucket i (i >= 1) holds
// [2^(i-1), 2^i), and the last bucket absorbs everything from 2^62 up.
// 64 buckets cover the whole uint64_t range with no configuration and no
// allocation; quantiles are recovered by linear interpolation inside the
// winning bucket, which is exact to a factor of 2 — ample for latency
// work spanning nanoseconds to minutes.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 64;

  void Record(uint64_t sample) {
    ++buckets_[BucketIndex(sample)];
    ++count_;
    sum_ += sample;
    if (sample < min_ || count_ == 1) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1], linearly interpolated within the bucket
  // that contains the q-th sample. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::array<uint64_t, kBucketCount>& buckets() const { return buckets_; }

  // Bucket i covers [BucketLowerBound(i), BucketUpperBound(i)).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : (i == 1 ? 1 : uint64_t{1} << (i - 1));
  }
  static uint64_t BucketUpperBound(size_t i) {
    return i == 0 ? 1 : (i >= 63 ? UINT64_MAX : uint64_t{1} << i);
  }
  static size_t BucketIndex(uint64_t sample) {
    const size_t width = static_cast<size_t>(std::bit_width(sample));
    return width < kBucketCount ? width : kBucketCount - 1;
  }

 private:
  friend class Registry;
  Histogram() = default;
  void Reset() {
    buckets_.fill(0);
    count_ = sum_ = min_ = max_ = 0;
  }

  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// One exported instrument, as captured by Registry::TakeSnapshot().
struct SnapshotEntry {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  std::string help;
  Kind kind = Kind::kCounter;

  // Counter/gauge value (counters are non-negative).
  int64_t value = 0;

  // Histogram statistics; valid when kind == kHistogram.
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  // Non-empty buckets only, as (upper_bound, cumulative_count) pairs in
  // ascending order — what the Prometheus renderer needs for `le` series.
  std::vector<std::pair<uint64_t, uint64_t>> cumulative_buckets;
};

// Deterministically ordered (by name, then labels) capture of every
// registered instrument. Rendering lives in snapshot.h.
struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;

  // First entry matching name (+ labels, if given); nullptr if absent.
  const SnapshotEntry* Find(const std::string& name) const;
  const SnapshotEntry* Find(const std::string& name, const Labels& labels) const;
};

// Owns every instrument. Instruments are created on first Get and live for
// the registry's lifetime; repeated Gets with the same name and labels
// return the same pointer, so hot paths resolve once and cache it.
//
// A metric name is bound to one instrument kind: asking for an existing
// name with a different kind returns nullptr (the caller has a bug; a
// nullptr instrument is safely ignorable by ScopedProbe, and tests pin the
// behaviour).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every tempo subsystem reports into.
  static Registry& Global();

  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          const std::string& help = "");

  // Zeroes every instrument's value but keeps the instruments themselves
  // (cached pointers stay valid). Used between runs and by tests.
  void Reset();

  // Number of registered instruments.
  size_t size() const { return instruments_.size(); }

  MetricsSnapshot TakeSnapshot() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    std::string help;
    SnapshotEntry::Kind kind;
    // Exactly one is set, matching `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  using Key = std::pair<std::string, Labels>;

  Instrument* FindOrCreate(const std::string& name, Labels labels,
                           const std::string& help, SnapshotEntry::Kind kind);

  // std::map keeps snapshot order deterministic with zero sorting work.
  std::map<Key, Instrument> instruments_;
};

}  // namespace obs
}  // namespace tempo

#endif  // TEMPO_SRC_OBS_METRICS_H_
