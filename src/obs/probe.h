// Scoped latency probes and the pluggable probe clock.
//
// A ScopedProbe brackets a region of code and records its duration — in
// probe-clock cycles — into a Histogram on destruction. The paper's own
// instrumentation budget (236 cycles/record, Section 3.2) is the bar: a
// probe is two clock reads and one histogram update when enabled, a single
// predictable branch when disabled at runtime, and literally nothing when
// compiled out with TEMPO_OBS_COMPILED_OUT (bench/micro_metrics_overhead
// measures all three paths and writes BENCH_metrics.json).
//
// The probe clock is a plain function pointer, defaulting to the TSC on
// x86-64 and a steady_clock read elsewhere. Simulation runs that need
// deterministic snapshots install a virtual source instead (the simulator
// offers InstallSimProbeClock; tests install a plain counter), so sim mode
// performs no wall-clock reads at all.

#ifndef TEMPO_SRC_OBS_PROBE_H_
#define TEMPO_SRC_OBS_PROBE_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define TEMPO_OBS_HAS_RDTSC 1
#endif

#include "src/obs/metrics.h"

namespace tempo {
namespace obs {

// Reads the hardware timestamp counter (or a steady_clock nanosecond count
// where no TSC is available). The default probe clock.
inline uint64_t WallCycleClock() {
#ifdef TEMPO_OBS_HAS_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

using ProbeClockFn = uint64_t (*)();

namespace internal {
// Mutable process-wide probe state. Single-threaded by design, like the
// simulator; not atomics, so probes stay at integer-op cost.
inline ProbeClockFn g_probe_clock = &WallCycleClock;
inline bool g_enabled = true;
}  // namespace internal

// Replaces the probe clock; returns the previous one so callers can
// restore it. Passing nullptr restores the default wall clock.
inline ProbeClockFn SetProbeClock(ProbeClockFn fn) {
  ProbeClockFn prev = internal::g_probe_clock;
  internal::g_probe_clock = fn != nullptr ? fn : &WallCycleClock;
  return prev;
}

// Current probe-clock reading.
inline uint64_t ProbeClockNow() { return internal::g_probe_clock(); }

// Runtime master switch for probes. Counters and gauges are single integer
// updates and always run; probes (two clock reads) honour this flag.
inline bool ProbesEnabled() { return internal::g_enabled; }
inline void SetProbesEnabled(bool enabled) { internal::g_enabled = enabled; }

#ifndef TEMPO_OBS_COMPILED_OUT

// Records the lifetime of the object, in probe-clock cycles, into
// `histogram`. A null histogram (or disabled probes) records nothing.
class ScopedProbe {
 public:
  explicit ScopedProbe(Histogram* histogram)
      : histogram_(internal::g_enabled ? histogram : nullptr),
        start_(histogram_ != nullptr ? internal::g_probe_clock() : 0) {}

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

  ~ScopedProbe() {
    if (histogram_ != nullptr) {
      histogram_->Record(internal::g_probe_clock() - start_);
    }
  }

 private:
  Histogram* histogram_;
  uint64_t start_;
};

#else  // TEMPO_OBS_COMPILED_OUT

// Compiled-out probes: constructor and destructor are empty and the
// histogram pointer is never even loaded. This is the "unmodified kernel"
// baseline of the overhead benchmark.
class ScopedProbe {
 public:
  explicit ScopedProbe(Histogram*) {}
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;
};

#endif  // TEMPO_OBS_COMPILED_OUT

}  // namespace obs
}  // namespace tempo

#endif  // TEMPO_SRC_OBS_PROBE_H_
