#include "src/obs/scrape_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace tempo {
namespace obs {

namespace {

constexpr int kPollIntervalMs = 20;
// A GET request line plus headers; anything bigger is not a scraper.
constexpr size_t kMaxRequestBytes = 16 * 1024;

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// `head_only` sends the headers (with the full body's Content-Length) and
// omits the body — HEAD semantics. `extra_headers` must be ""- or
// CRLF-terminated lines (e.g. "Allow: GET, HEAD\r\n").
std::string Response(int status, const char* reason, const std::string& content_type,
                     const std::string& body, bool head_only = false,
                     const std::string& extra_headers = std::string()) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  if (!head_only) {
    out += body;
  }
  return out;
}

// Reads until the blank line ending the request headers (the server never
// accepts bodies). False on EOF, error or an oversized request.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[4096];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() > kMaxRequestBytes) {
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

ScrapeServer::ScrapeServer(BodyFn body) : ScrapeServer(std::move(body), Options()) {}

ScrapeServer::ScrapeServer(BodyFn body, Options options)
    : body_(std::move(body)), options_(std::move(options)) {}

ScrapeServer::~ScrapeServer() { Stop(); }

bool ScrapeServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address " + options_.bind_address;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen: ") + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void ScrapeServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ScrapeServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1, kPollIntervalMs) <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // One connection is served at a time: bound its reads and writes so an
    // idle or trickling client cannot wedge the thread (recv fails with
    // EAGAIN after the timeout, which ReadRequestHead treats as an error).
    if (options_.io_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.io_timeout_ms / 1000;
      tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    Handle(fd);
    ::close(fd);
  }
}

void ScrapeServer::Handle(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Request line: METHOD SP target SP version.
  const size_t method_end = head.find(' ');
  const size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : head.find(' ', method_end + 1);
  if (target_end == std::string::npos) {
    SendAll(fd, Response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string method = head.substr(0, method_end);
  std::string target = head.substr(method_end + 1, target_end - method_end - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    target.resize(query);
  }
  if (method != "GET" && method != "HEAD") {
    // RFC 9110: a 405 names the methods the target does support.
    SendAll(fd, Response(405, "Method Not Allowed", "text/plain",
                         "only GET and HEAD are supported\n", false,
                         "Allow: GET, HEAD\r\n"));
    return;
  }
  const bool head_only = method == "HEAD";
  if (target != options_.path) {
    SendAll(fd, Response(404, "Not Found", "text/plain",
                         "try " + options_.path + "\n", head_only));
    return;
  }
  // HEAD still renders the body: its Content-Length must match what the
  // corresponding GET would return.
  SendAll(fd, Response(200, "OK", "text/plain; version=0.0.4",
                       body_ ? body_() : std::string(), head_only));
}

bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             int* status, std::string* body, std::string* error) {
  return HttpRequest("GET", host, port, path, status, nullptr, body, error);
}

bool HttpRequest(const std::string& method, const std::string& host, uint16_t port,
                 const std::string& path, int* status, std::string* headers,
                 std::string* body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + " failed";
    }
    ::close(fd);
    return false;
  }
  const std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    if (error != nullptr) {
      *error = "send failed";
    }
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos ||
      response.compare(0, 9, "HTTP/1.1 ") != 0) {
    if (error != nullptr) {
      *error = "malformed response";
    }
    return false;
  }
  if (status != nullptr) {
    *status = std::atoi(response.c_str() + 9);
  }
  if (headers != nullptr) {
    *headers = response.substr(0, head_end + 4);
  }
  if (body != nullptr) {
    *body = response.substr(head_end + 4);
  }
  return true;
}

}  // namespace obs
}  // namespace tempo
