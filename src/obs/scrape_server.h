// A real Prometheus scrape endpoint for tempo's metrics.
//
// ScrapeServer is the smallest HTTP/1.1 server that a stock Prometheus can
// scrape: it answers GET <path> (default /metrics) with the text exposition
// format and Content-Type `text/plain; version=0.0.4`, closes after every
// response, and rejects anything else with 404/405. The body comes from a
// caller-supplied callback, which keeps the obs registry's single-writer
// rule intact: a typical owner renders RenderPrometheus() on its own
// (quiescent) thread into a string guarded by a mutex, and the callback
// just copies it — the serving thread never walks the registry.
//
// HttpGet is the matching one-shot client, enough for tests and for a
// curl-equivalent smoke check without shelling out.

#ifndef TEMPO_SRC_OBS_SCRAPE_SERVER_H_
#define TEMPO_SRC_OBS_SCRAPE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace tempo {
namespace obs {

class ScrapeServer {
 public:
  // Returns the current exposition body. Called on the serving thread,
  // once per request; must be thread-safe against the owner's updates.
  using BodyFn = std::function<std::string()>;

  struct Options {
    uint16_t port = 0;  // 0: ephemeral, read back via port()
    std::string bind_address = "127.0.0.1";
    std::string path = "/metrics";
    // Per-socket send/receive timeout. The server handles one connection
    // at a time, so a client that connects and goes quiet would otherwise
    // wedge the serving thread (and Stop()) forever.
    int io_timeout_ms = 2000;
  };

  explicit ScrapeServer(BodyFn body);
  ScrapeServer(BodyFn body, Options options);
  ~ScrapeServer();
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  // Binds, listens and starts the serving thread; false with *error set on
  // failure.
  bool Start(std::string* error);

  // Stops serving and joins the thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void Serve();
  void Handle(int fd);

  BodyFn body_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
};

// Blocking one-shot HTTP GET against 127.0.0.1-style addresses. Fills
// *status and *body from the response; false with *error on transport
// failure. The curl equivalent for tests and smoke checks.
bool HttpGet(const std::string& host, uint16_t port, const std::string& path,
             int* status, std::string* body, std::string* error = nullptr);

// HttpGet with an explicit method. `headers` (optional) receives the raw
// response header block — the status line through the blank line — so
// tests can assert on Allow: or Content-Length: of a HEAD response.
bool HttpRequest(const std::string& method, const std::string& host, uint16_t port,
                 const std::string& path, int* status, std::string* headers,
                 std::string* body, std::string* error = nullptr);

}  // namespace obs
}  // namespace tempo

#endif  // TEMPO_SRC_OBS_SCRAPE_SERVER_H_
