#include "src/obs/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tempo {
namespace obs {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

// Prometheus label-value escaping: backslash, double quote and newline
// must be escaped inside the quoted value (exposition format rules);
// anything else passes through.
std::string LabelValueEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// name{k="v",k2="v2"} — empty label set renders as the bare name.
std::string LabeledName(const SnapshotEntry& e) {
  if (e.labels.empty()) {
    return e.name;
  }
  std::string out = e.name + "{";
  for (size_t i = 0; i < e.labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += e.labels[i].first + "=\"" + LabelValueEscape(e.labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// JSON string escaping. Unlike the Prometheus exposition format (three
// escapes), JSON forbids *every* control character below 0x20 inside a
// string, so the remaining ones get the \u00XX form.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Append(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Trims trailing zeros so quantiles render as "12", "12.5", "12.25".
std::string Compact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  char* dot = std::strchr(buf, '.');
  if (dot != nullptr) {
    char* end = buf + std::strlen(buf) - 1;
    while (end > dot && *end == '0') {
      *end-- = '\0';
    }
    if (end == dot) {
      *end = '\0';
    }
  }
  return buf;
}

}  // namespace

std::string RenderText(const MetricsSnapshot& snapshot) {
  // First pass: column width for the labeled names.
  size_t width = 0;
  for (const SnapshotEntry& e : snapshot.entries) {
    width = std::max(width, LabeledName(e).size());
  }
  std::string out;
  for (const SnapshotEntry& e : snapshot.entries) {
    const std::string name = LabeledName(e);
    Append(&out, "%-*s  ", static_cast<int>(width), name.c_str());
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        Append(&out, "%" PRId64 "\n", e.value);
        break;
      case SnapshotEntry::Kind::kGauge:
        Append(&out, "%" PRId64 "\n", e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        Append(&out, "count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
                     " mean=%s p50=%s p90=%s p99=%s\n",
               e.count, e.sum, e.min, e.max,
               Compact(e.count == 0 ? 0.0
                                    : static_cast<double>(e.sum) /
                                          static_cast<double>(e.count))
                   .c_str(),
               Compact(e.p50).c_str(), Compact(e.p90).c_str(), Compact(e.p99).c_str());
        break;
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const SnapshotEntry& e : snapshot.entries) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    if (!e.labels.empty()) {
      out += ",\"labels\":{";
      for (size_t i = 0; i < e.labels.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += "\"" + JsonEscape(e.labels[i].first) + "\":\"" +
               JsonEscape(e.labels[i].second) + "\"";
      }
      out += "}";
    }
    switch (e.kind) {
      case SnapshotEntry::Kind::kCounter:
        Append(&out, ",\"type\":\"counter\",\"value\":%" PRId64, e.value);
        break;
      case SnapshotEntry::Kind::kGauge:
        Append(&out, ",\"type\":\"gauge\",\"value\":%" PRId64, e.value);
        break;
      case SnapshotEntry::Kind::kHistogram:
        Append(&out,
               ",\"type\":\"histogram\",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
               ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
               ",\"p50\":%s,\"p90\":%s,\"p99\":%s",
               e.count, e.sum, e.min, e.max, Compact(e.p50).c_str(),
               Compact(e.p90).c_str(), Compact(e.p99).c_str());
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const SnapshotEntry& e : snapshot.entries) {
    // Counters keep Prometheus naming conventions without forcing every
    // call site to spell the suffix.
    std::string name = e.name;
    const char* type = "gauge";
    if (e.kind == SnapshotEntry::Kind::kCounter) {
      type = "counter";
      if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
        name += "_total";
      }
    } else if (e.kind == SnapshotEntry::Kind::kHistogram) {
      type = "histogram";
    }
    if (name != last_name) {
      if (!e.help.empty()) {
        out += "# HELP " + name + " " + e.help + "\n";
      }
      out += "# TYPE " + name + " " + std::string(type) + "\n";
      last_name = name;
    }

    std::string labels;
    for (const auto& [k, v] : e.labels) {
      if (!labels.empty()) {
        labels += ",";
      }
      labels += k + "=\"" + LabelValueEscape(v) + "\"";
    }

    if (e.kind != SnapshotEntry::Kind::kHistogram) {
      out += name;
      if (!labels.empty()) {
        out += "{" + labels + "}";
      }
      Append(&out, " %" PRId64 "\n", e.value);
      continue;
    }

    // Histogram: cumulative buckets, then +Inf, sum and count.
    for (const auto& [upper, cumulative] : e.cumulative_buckets) {
      out += name + "_bucket{" + labels + (labels.empty() ? "" : ",");
      Append(&out, "le=\"%" PRIu64 "\"} %" PRIu64 "\n", upper, cumulative);
    }
    out += name + "_bucket{" + labels + (labels.empty() ? "" : ",") + "le=\"+Inf\"} ";
    Append(&out, "%" PRIu64 "\n", e.count);
    out += name + "_sum";
    if (!labels.empty()) {
      out += "{" + labels + "}";
    }
    Append(&out, " %" PRIu64 "\n", e.sum);
    out += name + "_count";
    if (!labels.empty()) {
      out += "{" + labels + "}";
    }
    Append(&out, " %" PRIu64 "\n", e.count);
  }
  return out;
}

namespace {

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

bool Fail(std::string* error, size_t line_no, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + what;
  }
  return false;
}

bool ParseSampleLine(const std::string& line, size_t line_no, PromSample* sample,
                     std::string* error) {
  size_t i = 0;
  const size_t n = line.size();
  while (i < n && IsNameChar(line[i], i == 0)) {
    ++i;
  }
  if (i == 0) {
    return Fail(error, line_no, "expected metric name");
  }
  sample->name = line.substr(0, i);
  if (i < n && line[i] == '{') {
    ++i;
    while (i < n && line[i] != '}') {
      size_t key_start = i;
      while (i < n && IsNameChar(line[i], i == key_start)) {
        ++i;
      }
      if (i == key_start || i + 1 >= n || line[i] != '=' || line[i + 1] != '"') {
        return Fail(error, line_no, "expected label key=\"");
      }
      std::string key = line.substr(key_start, i - key_start);
      i += 2;
      std::string value;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= n) {
            return Fail(error, line_no, "dangling escape");
          }
          const char next = line[i + 1];
          if (next == '\\') {
            value += '\\';
          } else if (next == '"') {
            value += '"';
          } else if (next == 'n') {
            value += '\n';
          } else {
            return Fail(error, line_no, "unknown escape in label value");
          }
          i += 2;
        } else if (line[i] == '\n') {
          return Fail(error, line_no, "raw newline in label value");
        } else {
          value += line[i++];
        }
      }
      if (i >= n) {
        return Fail(error, line_no, "unterminated label value");
      }
      ++i;  // closing quote
      sample->labels.emplace_back(std::move(key), std::move(value));
      if (i < n && line[i] == ',') {
        ++i;
      } else if (i >= n || line[i] != '}') {
        return Fail(error, line_no, "expected , or } after label");
      }
    }
    if (i >= n) {
      return Fail(error, line_no, "unterminated label set");
    }
    ++i;  // closing brace
  }
  if (i >= n || line[i] != ' ') {
    return Fail(error, line_no, "expected space before value");
  }
  ++i;
  const std::string number = line.substr(i);
  if (number.empty()) {
    return Fail(error, line_no, "missing value");
  }
  char* end = nullptr;
  sample->value = std::strtod(number.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Fail(error, line_no, "bad value: " + number);
  }
  return true;
}

}  // namespace

bool ParsePrometheusText(const std::string& text, std::vector<PromSample>* out,
                         std::string* error) {
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    PromSample sample;
    if (!ParseSampleLine(line, line_no, &sample, error)) {
      return false;
    }
    out->push_back(std::move(sample));
  }
  return true;
}

}  // namespace obs
}  // namespace tempo
