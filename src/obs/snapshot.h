// Renderers for MetricsSnapshot: human text, machine JSON, and
// Prometheus text exposition format.
//
// All three render from the same deterministically ordered snapshot, so
// two snapshots of identical registry state produce byte-identical output
// in every format — pinned by tests/obs_test.cc.

#ifndef TEMPO_SRC_OBS_SNAPSHOT_H_
#define TEMPO_SRC_OBS_SNAPSHOT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace tempo {
namespace obs {

// Aligned, human-readable table. Histograms render count/mean/p50/p90/p99.
std::string RenderText(const MetricsSnapshot& snapshot);

// One JSON object: {"metrics": [{"name": ..., "labels": {...}, ...}]}.
std::string RenderJson(const MetricsSnapshot& snapshot);

// Prometheus text exposition format (# HELP / # TYPE, name{label="v"}
// value). Histograms emit cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`, counters emit a `_total`-suffixed series if the
// name does not already end in `_total`.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

// One sample line of the exposition format, as parsed back.
struct PromSample {
  std::string name;
  Labels labels;  // escapes undone, registration order preserved
  double value = 0.0;
};

// Strict parser for the subset of the Prometheus text format that
// RenderPrometheus emits: comment/HELP/TYPE lines are skipped, every other
// non-empty line must be `name{k="v",...} value` with the three-escape
// rule inside quoted values. Proves a scrape is well-formed by round-trip
// (tests/obs_test.cc); false on the first malformed line.
bool ParsePrometheusText(const std::string& text, std::vector<PromSample>* out,
                         std::string* error = nullptr);

}  // namespace obs
}  // namespace tempo

#endif  // TEMPO_SRC_OBS_SNAPSHOT_H_
