// Jiffy arithmetic for the Linux model.
//
// The studied kernel (2.6.23.9) drives its standard timer wheel from a
// periodic tick at HZ=250 — one jiffy is 4 ms — and expresses all wheel
// expiries as absolute jiffy counts since boot. round_jiffies (2.6.20+)
// rounds an expiry to a whole second so imprecise timers batch their
// wakeups (Section 2.1).

#ifndef TEMPO_SRC_OSLINUX_JIFFIES_H_
#define TEMPO_SRC_OSLINUX_JIFFIES_H_

#include <cstdint>

#include "src/sim/time.h"

namespace tempo {

// Timer interrupt frequency of the modelled kernel.
inline constexpr int64_t kLinuxHz = 250;

// Duration of one jiffy (4 ms at HZ=250).
inline constexpr SimDuration kJiffy = kSecond / kLinuxHz;

// Absolute jiffy count since boot.
using Jiffies = uint64_t;

// Converts a duration to jiffies, rounding up (a timer must never fire
// early; this is the quantisation visible in Figures 8-11 as the absence of
// sub-jiffy Linux timeouts).
constexpr Jiffies DurationToJiffies(SimDuration d) {
  if (d <= 0) {
    return 0;
  }
  return static_cast<Jiffies>((d + kJiffy - 1) / kJiffy);
}

// Converts an absolute sim time to the jiffy containing it (rounding down).
constexpr Jiffies TimeToJiffies(SimTime t) {
  if (t <= 0) {
    return 0;
  }
  return static_cast<Jiffies>(t / kJiffy);
}

// Converts a jiffy count to sim time / duration.
constexpr SimTime JiffiesToTime(Jiffies j) { return static_cast<SimTime>(j) * kJiffy; }

// round_jiffies: rounds an absolute jiffy value up to the next whole second
// boundary, so that imprecise timers expire in batches. Values already on a
// boundary are unchanged.
constexpr Jiffies RoundJiffies(Jiffies j) {
  const Jiffies rem = j % static_cast<Jiffies>(kLinuxHz);
  if (rem == 0) {
    return j;
  }
  return j + (static_cast<Jiffies>(kLinuxHz) - rem);
}

// round_jiffies_relative: rounds a relative jiffy delta so that now+delta
// lands on a whole second.
constexpr Jiffies RoundJiffiesRelative(Jiffies delta, Jiffies now) {
  return RoundJiffies(now + delta) - now;
}

}  // namespace tempo

#endif  // TEMPO_SRC_OSLINUX_JIFFIES_H_
