#include "src/oslinux/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tempo {

LinuxKernel::LinuxKernel(Simulator* sim, TraceSink* sink)
    : LinuxKernel(sim, sink, Options{}) {}

LinuxKernel::LinuxKernel(Simulator* sim, TraceSink* sink, Options options)
    : LinuxKernel(&sim->domain(0), sink, options) {}

LinuxKernel::LinuxKernel(ClockDomain* domain, TraceSink* sink)
    : LinuxKernel(domain, sink, Options{}) {}

LinuxKernel::LinuxKernel(ClockDomain* domain, TraceSink* sink, Options options)
    : domain_(domain), sink_(sink), options_(options) {}

void LinuxKernel::Boot() {
  assert(!booted_);
  booted_ = true;
  jiffies_ = TimeToJiffies(domain_->Now());
  ScheduleNextTick();
}

Jiffies LinuxKernel::jiffies() const { return TimeToJiffies(domain_->Now()); }

LinuxTimer* LinuxKernel::InitTimer(const std::string& callsite, std::function<void()> fn,
                                   Pid pid, Tid tid, bool deferrable, CallsiteId parent) {
  auto timer = std::make_unique<LinuxTimer>();
  timer->id = next_timer_id_++;
  timer->callsite = callsites_.Intern(callsite, parent);
  timer->pid = pid;
  timer->tid = tid;
  timer->deferrable = deferrable;
  timer->user = pid != kKernelPid;
  timer->function = std::move(fn);
  LinuxTimer* raw = timer.get();
  timers_.push_back(std::move(timer));
  Log(TimerOp::kInit, *raw, 0, 0, 0);
  return raw;
}

void LinuxKernel::Log(TimerOp op, const LinuxTimer& t, SimDuration timeout, SimTime expiry,
                      uint16_t extra_flags) {
  TraceRecord r;
  r.timestamp = domain_->Now();
  r.timer = t.id;
  r.timeout = timeout;
  r.expiry = expiry;
  r.callsite = t.callsite;
  r.stack = callsites_.InternStack(callsites_.Chain(t.callsite));
  r.pid = t.pid;
  r.tid = t.tid;
  r.op = op;
  r.flags = static_cast<uint16_t>(extra_flags | kFlagJiffyWheel);
  if (t.user) {
    r.flags |= kFlagUser;
  }
  if (t.deferrable) {
    r.flags |= kFlagDeferrable;
  }
  sink_->Log(r);
}

void LinuxKernel::Arm(LinuxTimer* timer, Jiffies expires, SimDuration observed_timeout,
                      uint16_t extra_flags) {
  const SimTime now = domain_->Now();
  const Jiffies now_jiffies = jiffies();
  if (expires <= now_jiffies) {
    expires = now_jiffies + 1;  // the wheel never fires in the past
  }
  if (timer->pending) {
    // mod_timer on a pending timer re-arms in place: no cancel record.
    wheel_.Cancel(timer->wheel_handle);
    ForgetWakeup(*timer);
  }
  timer->pending = true;
  timer->expires = expires;
  timer->set_time = now;
  timer->last_timeout = observed_timeout;
  const SimTime expiry_time = JiffiesToTime(expires);
  timer->wheel_handle = wheel_.Schedule(expiry_time, [this, timer](TimerHandle) {
    // __run_timers: detach, log the expiry, run the callback in bottom-half
    // context (the callback may re-arm this or any other timer).
    timer->pending = false;
    ForgetWakeup(*timer);
    Log(TimerOp::kExpire, *timer, timer->last_timeout, JiffiesToTime(timer->expires), 0);
    if (timer->function) {
      timer->function();
    }
  });
  if (!timer->deferrable) {
    pending_wakeups_.insert(expires);
  }
  Log(TimerOp::kSet, *timer, observed_timeout, expiry_time, extra_flags);
  if (!timer->deferrable) {
    // A deferrable timer must not wake an idle CPU: it never reprograms a
    // parked dynticks tick (the 2.6.22 semantics).
    ReprogramTickIfNeeded(expires);
  }
}

void LinuxKernel::ForgetWakeup(const LinuxTimer& timer) {
  if (timer.deferrable) {
    return;
  }
  auto it = pending_wakeups_.find(timer.expires);
  if (it != pending_wakeups_.end()) {
    pending_wakeups_.erase(it);
  }
}

void LinuxKernel::ModTimer(LinuxTimer* timer, Jiffies expires, bool rounded) {
  const SimTime now = domain_->Now();
  const Jiffies now_jiffies = jiffies();
  const Jiffies effective = expires <= now_jiffies ? now_jiffies + 1 : expires;
  const SimDuration observed = JiffiesToTime(effective) - now;
  Arm(timer, expires, observed, rounded ? kFlagRounded : uint16_t{0});
}

void LinuxKernel::ModTimerRelative(LinuxTimer* timer, SimDuration timeout, bool round) {
  const Jiffies now_jiffies = jiffies();
  Jiffies expires = now_jiffies + DurationToJiffies(timeout);
  if (round) {
    expires = RoundJiffies(expires);
  }
  const Jiffies effective = expires <= now_jiffies ? now_jiffies + 1 : expires;
  // The caller computed the absolute expiry "some time ago": at the
  // __mod_timer tracepoint the observed relative value exhibits up to ~2 ms
  // of conversion jitter (Section 3.1). The expiry itself stays exact.
  SimDuration observed = JiffiesToTime(effective) - domain_->Now();
  if (options_.max_set_jitter > 0 && domain_->rng().Bernoulli(options_.jitter_probability)) {
    const SimDuration jitter = static_cast<SimDuration>(
        domain_->rng().Uniform(0, static_cast<double>(options_.max_set_jitter)));
    observed = std::max<SimDuration>(0, observed - jitter);
  }
  Arm(timer, expires, observed, round ? kFlagRounded : uint16_t{0});
}

void LinuxKernel::ModTimerUser(LinuxTimer* timer, SimDuration timeout) {
  // Timeouts entering via system calls are relative and are logged exactly
  // as supplied, with no conversion jitter (Section 3.1).
  timer->user = true;
  const Jiffies expires = jiffies() + DurationToJiffies(timeout);
  Arm(timer, expires, timeout, 0);
}

bool LinuxKernel::DelTimer(LinuxTimer* timer) {
  if (!timer->pending) {
    ++noop_deletes_;  // deleting an already-deleted timer: common in traces
    return false;
  }
  wheel_.Cancel(timer->wheel_handle);
  ForgetWakeup(*timer);
  timer->pending = false;
  Log(TimerOp::kCancel, *timer, timer->last_timeout, JiffiesToTime(timer->expires), 0);
  return true;
}

LinuxHrTimer* LinuxKernel::InitHrTimer(const std::string& callsite, std::function<void()> fn,
                                       Pid pid, Tid tid) {
  auto timer = std::make_unique<LinuxHrTimer>();
  timer->id = next_timer_id_++;
  timer->callsite = callsites_.Intern(callsite);
  timer->pid = pid;
  timer->tid = tid;
  timer->function = std::move(fn);
  LinuxHrTimer* raw = timer.get();
  hr_timers_.push_back(std::move(timer));
  LogHr(TimerOp::kInit, *raw, 0, 0);
  return raw;
}

void LinuxKernel::LogHr(TimerOp op, const LinuxHrTimer& t, SimDuration timeout, SimTime expiry) {
  TraceRecord r;
  r.timestamp = domain_->Now();
  r.timer = t.id;
  r.timeout = timeout;
  r.expiry = expiry;
  r.callsite = t.callsite;
  r.stack = callsites_.InternStack(callsites_.Chain(t.callsite));
  r.pid = t.pid;
  r.tid = t.tid;
  r.op = op;
  r.flags = kFlagHighRes;
  if (t.pid != kKernelPid) {
    r.flags |= kFlagUser;
  }
  sink_->Log(r);
}

void LinuxKernel::StartHrTimer(LinuxHrTimer* timer, SimDuration timeout) {
  const SimTime now = domain_->Now();
  if (timer->pending) {
    hr_tree_.Cancel(timer->tree_handle);
  }
  timer->pending = true;
  timer->expiry = now + std::max<SimDuration>(timeout, 0);
  timer->set_time = now;
  timer->last_timeout = timeout;
  timer->tree_handle = hr_tree_.Schedule(timer->expiry, [this, timer](TimerHandle) {
    timer->pending = false;
    LogHr(TimerOp::kExpire, *timer, timer->last_timeout, timer->expiry);
    if (timer->function) {
      timer->function();
    }
  });
  LogHr(TimerOp::kSet, *timer, timeout, timer->expiry);
  ReprogramHrEvent();
}

bool LinuxKernel::CancelHrTimer(LinuxHrTimer* timer) {
  if (!timer->pending) {
    return false;
  }
  hr_tree_.Cancel(timer->tree_handle);
  timer->pending = false;
  LogHr(TimerOp::kCancel, *timer, timer->last_timeout, timer->expiry);
  ReprogramHrEvent();
  return true;
}

void LinuxKernel::OnHrInterrupt() {
  const SimTime now = domain_->Now();
  domain_->cpu().OnInterrupt(now, /*timer=*/true);
  hr_event_ = kInvalidEventId;
  hr_event_time_ = kNeverTime;
  hr_tree_.Advance(now);
  ReprogramHrEvent();
  domain_->cpu().EnterIdle(now);
}

void LinuxKernel::ReprogramHrEvent() {
  const SimTime next = hr_tree_.NextExpiry();
  if (next == hr_event_time_) {
    return;
  }
  if (hr_event_ != kInvalidEventId) {
    domain_->Cancel(hr_event_);
    hr_event_ = kInvalidEventId;
    hr_event_time_ = kNeverTime;
  }
  if (next != kNeverTime) {
    hr_event_ = domain_->ScheduleAt(next, [this] { OnHrInterrupt(); });
    hr_event_time_ = next;
  }
}

void LinuxKernel::OnTick() {
  const SimTime now = domain_->Now();
  domain_->cpu().OnInterrupt(now, /*timer=*/true);
  const Jiffies previous = jiffies_;
  jiffies_ = TimeToJiffies(now);
  if (jiffies_ > previous + 1) {
    ticks_skipped_ += jiffies_ - previous - 1;  // dynticks savings
  }
  ++ticks_serviced_;
  tick_event_ = kInvalidEventId;
  // Callbacks run by __run_timers re-arm timers; ScheduleNextTick below
  // accounts for them all at once, so per-arm reprogramming is suppressed
  // (it would schedule duplicate tick interrupts).
  in_tick_ = true;
  wheel_.Advance(now);
  in_tick_ = false;
  ScheduleNextTick();
  domain_->cpu().EnterIdle(now);
}

void LinuxKernel::ScheduleNextTick() {
  Jiffies next = jiffies_ + 1;
  if (options_.dynticks) {
    if (pending_wakeups_.empty()) {
      // Fully idle: park the tick entirely; a later ModTimer reprograms it.
      tick_scheduled_for_ = 0;
      return;
    }
    const Jiffies needed = *pending_wakeups_.begin();
    if (needed > next) {
      next = needed;  // skipped ticks are accounted when the wakeup lands
    }
  }
  tick_scheduled_for_ = next;
  tick_event_ = domain_->ScheduleAt(JiffiesToTime(next), [this] { OnTick(); });
}

void LinuxKernel::ReprogramTickIfNeeded(Jiffies needed) {
  if (!options_.dynticks || !booted_ || in_tick_) {
    return;
  }
  if (tick_event_ != kInvalidEventId && tick_scheduled_for_ <= needed) {
    return;
  }
  if (tick_event_ != kInvalidEventId) {
    domain_->Cancel(tick_event_);
    tick_event_ = kInvalidEventId;
  }
  const Jiffies next = std::max(jiffies() + 1, needed);
  tick_scheduled_for_ = next;
  tick_event_ = domain_->ScheduleAt(JiffiesToTime(next), [this] { OnTick(); });
}

}  // namespace tempo
