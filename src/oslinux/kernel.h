// Model of the Linux 2.6.23 timer subsystem.
//
// Implements the interface the paper instruments (Section 2.1):
//   init_timer / __mod_timer / del_timer driving a cascading timer wheel at
//   HZ=250, __run_timers called from the periodic tick, plus the 2.6.16+
//   high-resolution timer facility, round_jiffies (2.6.20), deferrable
//   timers (2.6.22) and dynticks (2.6.21).
//
// Every operation is logged to a TraceSink exactly where the paper put its
// tracepoints: arming is observed inside __mod_timer with the *absolute*
// jiffy expiry (so kernel-side relative timeouts exhibit up to ~2 ms of
// conversion jitter, Section 3.1), cancellation in del_timer, and expiry in
// __run_timers. User-space timeouts are logged at the syscall boundary with
// the exact relative value (no jitter) — see syscalls.h.

#ifndef TEMPO_SRC_OSLINUX_KERNEL_H_
#define TEMPO_SRC_OSLINUX_KERNEL_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "src/oslinux/jiffies.h"
#include "src/sim/simulator.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/tree_queue.h"
#include "src/trace/buffer.h"
#include "src/trace/callsite.h"

namespace tempo {

// A kernel timer structure (struct timer_list). Statically allocated by its
// owning subsystem and reused for repeated timeouts, which is what gives
// Linux timers their stable identity in traces (Section 4.1.1).
struct LinuxTimer {
  TimerId id = kInvalidTimerId;
  CallsiteId callsite = kUnknownCallsite;
  Pid pid = kKernelPid;
  Tid tid = 0;
  bool deferrable = false;
  bool user = false;               // armed on behalf of user space (syscall)
  std::function<void()> function;  // expiry callback (bottom-half context)

  // Wheel state (owned by LinuxKernel).
  bool pending = false;
  Jiffies expires = 0;             // absolute jiffies
  SimTime set_time = 0;            // when last armed
  SimDuration last_timeout = 0;    // relative timeout as last observed
  TimerHandle wheel_handle = kInvalidTimerHandle;
};

// A high-resolution timer (struct hrtimer), kept in a time-ordered tree
// with nanosecond resolution.
struct LinuxHrTimer {
  TimerId id = kInvalidTimerId;
  CallsiteId callsite = kUnknownCallsite;
  Pid pid = kKernelPid;
  Tid tid = 0;
  std::function<void()> function;

  bool pending = false;
  SimTime expiry = 0;
  SimTime set_time = 0;
  SimDuration last_timeout = 0;
  TimerHandle tree_handle = kInvalidTimerHandle;
};

// The Linux kernel timer subsystem model.
class LinuxKernel {
 public:
  struct Options {
    // Enable the 2.6.21 dynticks feature: the periodic tick is suppressed
    // while idle and the CPU sleeps until the next non-deferrable timer.
    bool dynticks = false;
    // Maximum conversion jitter applied to *observed* kernel-side relative
    // timeouts (the expiry itself is exact). The paper measured up to 2 ms.
    SimDuration max_set_jitter = 3 * kMillisecond / 2;
    // Fraction of kernel-side sets that see noticeable jitter.
    double jitter_probability = 0.35;
  };

  // `sink` receives all trace records; it must outlive the kernel. The
  // Simulator* overloads pin the kernel to domain 0 (the classic
  // single-CPU layout); the ClockDomain* overload pins it to one simulated
  // CPU of a multi-domain simulator — its clock interrupts, timer wheels
  // and RNG draws all live on that domain's clock.
  LinuxKernel(Simulator* sim, TraceSink* sink);
  LinuxKernel(Simulator* sim, TraceSink* sink, Options options);
  LinuxKernel(ClockDomain* domain, TraceSink* sink);
  LinuxKernel(ClockDomain* domain, TraceSink* sink, Options options);
  LinuxKernel(const LinuxKernel&) = delete;
  LinuxKernel& operator=(const LinuxKernel&) = delete;

  // Starts the periodic tick. Must be called once before running.
  void Boot();

  Simulator& sim() { return domain_->sim(); }
  // The clock domain (simulated CPU) this kernel instance is pinned to.
  ClockDomain& domain() { return *domain_; }
  CallsiteRegistry& callsites() { return callsites_; }
  // Current jiffy count. Computed from virtual time so it never goes stale
  // while the periodic tick is suppressed (dynticks).
  Jiffies jiffies() const;

  // --- Standard timer interface (timer wheel) ---

  // init_timer/setup_timer: allocates and initialises a timer structure
  // owned by the kernel (subsystems keep the raw pointer). Logs kInit.
  LinuxTimer* InitTimer(const std::string& callsite, std::function<void()> fn,
                        Pid pid = kKernelPid, Tid tid = 0, bool deferrable = false,
                        CallsiteId parent = kUnknownCallsite);

  // __mod_timer with an absolute jiffy expiry (the native interface).
  // Re-arming a pending timer reschedules it without a cancel record.
  void ModTimer(LinuxTimer* timer, Jiffies expires, bool rounded = false);

  // Convenience used by kernel subsystems: computes expires = jiffies +
  // timeout, applying conversion jitter to the *observed* timeout value.
  void ModTimerRelative(LinuxTimer* timer, SimDuration timeout, bool round = false);

  // Arm on behalf of a user-space syscall: relative value is logged exactly
  // (measured at the system call), flagged kFlagUser.
  void ModTimerUser(LinuxTimer* timer, SimDuration timeout);

  // del_timer / del_timer_sync. Returns true if the timer was pending
  // (logs kCancel); deleting a non-pending timer is a harmless no-op, which
  // the paper observed repeatedly in traces.
  bool DelTimer(LinuxTimer* timer);

  bool TimerPending(const LinuxTimer* timer) const { return timer->pending; }

  // --- High-resolution timers ---

  LinuxHrTimer* InitHrTimer(const std::string& callsite, std::function<void()> fn,
                            Pid pid = kKernelPid, Tid tid = 0);
  void StartHrTimer(LinuxHrTimer* timer, SimDuration timeout);
  bool CancelHrTimer(LinuxHrTimer* timer);

  // --- Statistics ---
  uint64_t ticks_serviced() const { return ticks_serviced_; }
  uint64_t ticks_skipped() const { return ticks_skipped_; }  // dynticks savings
  uint64_t noop_deletes() const { return noop_deletes_; }
  uint64_t timers_allocated() const { return static_cast<uint64_t>(timers_.size()); }

 private:
  void Log(TimerOp op, const LinuxTimer& t, SimDuration timeout, SimTime expiry,
           uint16_t extra_flags);
  // Core arming path shared by the ModTimer variants; logs a kSet record
  // with `observed_timeout` as the value seen at the tracepoint.
  void Arm(LinuxTimer* timer, Jiffies expires, SimDuration observed_timeout,
           uint16_t extra_flags);
  void ForgetWakeup(const LinuxTimer& timer);
  void LogHr(TimerOp op, const LinuxHrTimer& t, SimDuration timeout, SimTime expiry);
  void OnTick();
  void ScheduleNextTick();
  void ReprogramTickIfNeeded(Jiffies needed);
  void OnHrInterrupt();
  void ReprogramHrEvent();

  ClockDomain* domain_;
  TraceSink* sink_;
  Options options_;
  CallsiteRegistry callsites_;

  Jiffies jiffies_ = 0;
  bool booted_ = false;
  bool in_tick_ = false;  // suppress tick reprogramming during __run_timers
  EventId tick_event_ = kInvalidEventId;
  Jiffies tick_scheduled_for_ = 0;

  HierarchicalWheelTimerQueue wheel_{kJiffy};
  // Pending non-deferrable expiries; what dynticks consults to pick the
  // next mandatory wakeup.
  std::multiset<Jiffies> pending_wakeups_;

  TreeTimerQueue hr_tree_;
  EventId hr_event_ = kInvalidEventId;
  SimTime hr_event_time_ = kNeverTime;

  std::deque<std::unique_ptr<LinuxTimer>> timers_;
  std::deque<std::unique_ptr<LinuxHrTimer>> hr_timers_;
  TimerId next_timer_id_ = 1;

  uint64_t ticks_serviced_ = 0;
  uint64_t ticks_skipped_ = 0;
  uint64_t noop_deletes_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSLINUX_KERNEL_H_
