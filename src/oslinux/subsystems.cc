#include "src/oslinux/subsystems.h"

#include <utility>

namespace tempo {

// A strictly periodic kernel ticker: expires and immediately re-arms with
// the same relative value — the paper's "periodic" pattern.
struct KernelSubsystems::Periodic {
  LinuxKernel* kernel = nullptr;
  LinuxTimer* timer = nullptr;
  SimDuration period = 0;
  bool round = false;

  void Fire() { kernel->ModTimerRelative(timer, period, round); }
};

KernelSubsystems::KernelSubsystems(LinuxKernel* kernel, KernelSubsystemsOptions options)
    : kernel_(kernel), options_(options) {}

KernelSubsystems::~KernelSubsystems() = default;

void KernelSubsystems::StartPeriodic(const char* callsite, SimDuration period) {
  auto periodic = std::make_unique<Periodic>();
  Periodic* raw = periodic.get();
  raw->kernel = kernel_;
  raw->period = period;
  raw->round = options_.use_round_jiffies && period >= kSecond;
  raw->timer = kernel_->InitTimer(callsite, [raw] { raw->Fire(); }, kKernelPid, 0,
                                  options_.deferrable_periodics && period >= kSecond);
  periodics_.push_back(std::move(periodic));
  // Daemons and drivers initialise at different points during boot, so the
  // first expiry is phase-staggered. Without this, integer-second periodics
  // would stay artificially aligned forever, hiding exactly the wakeup
  // scatter that round_jiffies exists to repair.
  const SimDuration phase = static_cast<SimDuration>(
      kernel_->sim().rng().Uniform(0.05, ToSeconds(period)) * kSecond);
  kernel_->ModTimerRelative(raw->timer, phase, raw->round);
}

void KernelSubsystems::Start() {
  if (options_.workqueue_1s) {
    StartPeriodic("kernel/workqueue_timer", 1 * kSecond);
  }
  if (options_.workqueue_2s) {
    StartPeriodic("kernel/workqueue", 2 * kSecond);
  }
  if (options_.writeback_5s) {
    StartPeriodic("mm/writeback", 5 * kSecond);
  }
  if (options_.usb_poll) {
    StartPeriodic("usb/hc_status_poll", 248 * kMillisecond);
  }
  if (options_.clocksource_watchdog) {
    StartPeriodic("time/clocksource_watchdog", 500 * kMillisecond);
  }
  if (options_.e1000_watchdog) {
    StartPeriodic("net/e1000_watchdog", 2 * kSecond);
  }
  if (options_.packet_scheduler) {
    StartPeriodic("net/packet_scheduler", 5 * kSecond);
  }
  if (options_.arp) {
    StartPeriodic("net/arp_periodic", 2 * kSecond);
    StartPeriodic("net/arp_neigh", 4 * kSecond);
    StartPeriodic("net/arp_cache_flush", 8 * kSecond);
    arp_timeout_ = kernel_->InitTimer("net/arp_timeout", nullptr);
    ScheduleLanEvent();
  }
  if (options_.console_blank) {
    console_blank_ = kernel_->InitTimer("tty/console_blank", nullptr);
    kernel_->ModTimerRelative(console_blank_, 600 * kSecond);
    ScheduleConsoleActivity();
  }
  if (options_.block_io || options_.ide) {
    block_unplug_ = kernel_->InitTimer("block/unplug_timeout", nullptr);
    ide_timeout_ = kernel_->InitTimer("ide/command_timeout", nullptr);
    if (options_.block_io_rate > 0) {
      ScheduleBlockIoEvent();
    }
  }
}

void KernelSubsystems::ScheduleLanEvent() {
  if (options_.lan_event_rate <= 0) {
    return;
  }
  const SimDuration gap = static_cast<SimDuration>(
      kernel_->sim().rng().Exponential(1.0 / options_.lan_event_rate) * kSecond);
  kernel_->sim().ScheduleAfter(gap, [this] {
    // ARP resolution: a 5 s "are you still there" timeout that is canceled
    // at a random interval after being set, when the reply arrives — the
    // pattern the paper traces to LAN activity (Section 4.3).
    kernel_->ModTimerRelative(arp_timeout_, 5 * kSecond);
    const SimDuration reply_after = static_cast<SimDuration>(
        kernel_->sim().rng().Uniform(0.002, 4.8) * kSecond);
    LinuxTimer* timeout = arp_timeout_;
    kernel_->sim().ScheduleAfter(reply_after, [this, timeout] {
      kernel_->DelTimer(timeout);  // no-op if the timeout already expired
    });
    ScheduleLanEvent();
  });
}

void KernelSubsystems::ScheduleConsoleActivity() {
  if (options_.console_activity_rate <= 0) {
    return;
  }
  const SimDuration gap = static_cast<SimDuration>(
      kernel_->sim().rng().Exponential(1.0 / options_.console_activity_rate) * kSecond);
  kernel_->sim().ScheduleAfter(gap, [this] {
    // Console activity defers the blank watchdog: re-armed to the same
    // relative value before it can expire (the "watchdog" pattern).
    kernel_->ModTimerRelative(console_blank_, 600 * kSecond);
    ScheduleConsoleActivity();
  });
}

void KernelSubsystems::SubmitBlockIo() {
  Rng& rng = kernel_->sim().rng();
  if (options_.block_io && block_unplug_ != nullptr) {
    // Block-layer unplug: 1-jiffy timeout, usually canceled when the queue
    // is unplugged by a subsequent request or completion.
    kernel_->ModTimerRelative(block_unplug_, kJiffy);
    const SimDuration unplug_after =
        static_cast<SimDuration>(rng.Uniform(0.0002, 0.006) * kSecond);
    LinuxTimer* unplug = block_unplug_;
    kernel_->sim().ScheduleAfter(unplug_after, [this, unplug] { kernel_->DelTimer(unplug); });
  }
  if (options_.ide && ide_timeout_ != nullptr && ide_inflight_ == 0) {
    // IDE command timeout: 30 s watchdog per command, canceled on
    // completion a few milliseconds later.
    ++ide_inflight_;
    kernel_->ModTimerRelative(ide_timeout_, 30 * kSecond);
    const SimDuration done_after =
        static_cast<SimDuration>(rng.Uniform(0.001, 0.02) * kSecond);
    kernel_->sim().ScheduleAfter(done_after, [this] {
      kernel_->DelTimer(ide_timeout_);
      ide_inflight_ = 0;
    });
  }
}

void KernelSubsystems::ScheduleBlockIoEvent() {
  const SimDuration gap = static_cast<SimDuration>(
      kernel_->sim().rng().Exponential(1.0 / options_.block_io_rate) * kSecond);
  kernel_->sim().ScheduleAfter(gap, [this] {
    SubmitBlockIo();
    ScheduleBlockIoEvent();
  });
}

}  // namespace tempo
