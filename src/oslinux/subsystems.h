// Kernel-internal timer clients of the Linux model.
//
// These are the origins of the frequent kernel timeout values the paper
// tabulates in Table 3: periodic housekeeping (workqueues, page write-back,
// USB status polling, the clocksource watchdog, ARP maintenance, the e1000
// driver watchdog), per-I/O timeouts (block-layer unplug at 1 jiffy, IDE
// command timeout at 30 s) and watchdogs (console blanking). Each runs the
// exact pattern the paper classifies it under (Section 4.1.1).

#ifndef TEMPO_SRC_OSLINUX_SUBSYSTEMS_H_
#define TEMPO_SRC_OSLINUX_SUBSYSTEMS_H_

#include <memory>
#include <vector>

#include "src/oslinux/kernel.h"

namespace tempo {

// Configuration for the background kernel activity of a workload.
struct KernelSubsystemsOptions {
  bool workqueue_1s = true;            // kernel workqueue timer, 1 s periodic
  bool workqueue_2s = true;            // second workqueue, 2 s periodic
  bool writeback_5s = true;            // dirty page write-back, 5 s periodic
  bool usb_poll = true;                // USB host-controller status poll, 248 ms
  bool clocksource_watchdog = true;    // clocksource watchdog, 0.5 s periodic
  bool e1000_watchdog = true;          // e1000 driver watchdog, 2 s periodic
  bool packet_scheduler = false;       // packet scheduler, 5 s periodic (under net load)
  bool arp = true;                     // ARP: 2 s/4 s periodic + 5 s timeout + 8 s flush
  bool console_blank = true;           // console blank watchdog, 600 s, deferred on activity
  bool block_io = true;                // block I/O unplug timeout, 1 jiffy per request
  bool ide = true;                     // IDE command timeout, 30 s per command
  bool use_round_jiffies = false;      // route imprecise periodics through round_jiffies
  bool deferrable_periodics = false;   // mark imprecise periodics deferrable (2.6.22)

  // Poisson rate (events/s) of LAN broadcast chatter; each event arms the
  // 5 s ARP timeout which is canceled when the reply arrives.
  double lan_event_rate = 0.15;
  // Poisson rate (events/s) of block I/O requests (drives block_io + ide).
  double block_io_rate = 0.0;
  // Poisson rate (events/s) of console activity deferring the blank watchdog.
  double console_activity_rate = 1.0 / 120.0;
};

// Instantiates and runs the configured kernel subsystems on a LinuxKernel.
class KernelSubsystems {
 public:
  KernelSubsystems(LinuxKernel* kernel, KernelSubsystemsOptions options);
  KernelSubsystems(const KernelSubsystems&) = delete;
  KernelSubsystems& operator=(const KernelSubsystems&) = delete;
  ~KernelSubsystems();

  // Arms all configured timers. Call after LinuxKernel::Boot().
  void Start();

  // Injects one block-I/O request (arming the unplug + IDE timeouts), in
  // addition to the Poisson background rate. Workloads with disk activity
  // (e.g. the web server's logging) call this.
  void SubmitBlockIo();

 private:
  struct Periodic;
  void StartPeriodic(const char* callsite, SimDuration period);
  void ScheduleLanEvent();
  void ScheduleBlockIoEvent();
  void ScheduleConsoleActivity();

  LinuxKernel* kernel_;
  KernelSubsystemsOptions options_;
  std::vector<std::unique_ptr<Periodic>> periodics_;

  LinuxTimer* arp_timeout_ = nullptr;
  LinuxTimer* console_blank_ = nullptr;
  LinuxTimer* block_unplug_ = nullptr;
  LinuxTimer* ide_timeout_ = nullptr;
  uint64_t ide_inflight_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSLINUX_SUBSYSTEMS_H_
