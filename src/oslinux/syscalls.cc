#include "src/oslinux/syscalls.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tempo {

void SelectChannel::Select(SimDuration timeout, WakeCallback cb) {
  assert(!blocked_ && "thread already blocked in select");
  blocked_ = true;
  block_start_ = kernel_->sim().Now();
  timeout_ = timeout;
  cb_ = std::move(cb);
  if (timeout == kNeverTime) {
    timer_armed_ = false;
    return;  // infinite block: no timer armed, nothing traced
  }
  timer_armed_ = true;
  kernel_->ModTimerUser(timer_, timeout);
}

bool SelectChannel::Wake() {
  if (!blocked_) {
    return false;
  }
  blocked_ = false;
  SimDuration remaining = 0;
  if (timer_armed_) {
    kernel_->DelTimer(timer_);
    timer_armed_ = false;
    const SimDuration elapsed = kernel_->sim().Now() - block_start_;
    remaining = std::max<SimDuration>(0, timeout_ - elapsed);
  } else {
    remaining = kNeverTime;
  }
  WakeCallback cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) {
    cb(remaining, /*timed_out=*/false);
  }
  return true;
}

SelectChannel* LinuxSyscalls::Channel(Pid pid, Tid tid, const std::string& callsite) {
  auto key = std::make_pair(pid, tid);
  auto it = channels_.find(key);
  if (it != channels_.end()) {
    return it->second.get();
  }
  auto channel = std::unique_ptr<SelectChannel>(new SelectChannel());
  SelectChannel* raw = channel.get();
  raw->kernel_ = kernel_;
  raw->pid_ = pid;
  raw->tid_ = tid;
  // The per-task sleep timer: its expiry callback completes the blocked
  // call with remaining == 0 (timed out).
  raw->timer_ = kernel_->InitTimer(callsite, [raw] {
    if (!raw->blocked_) {
      return;
    }
    raw->blocked_ = false;
    raw->timer_armed_ = false;
    SelectChannel::WakeCallback cb = std::move(raw->cb_);
    raw->cb_ = nullptr;
    if (cb) {
      cb(0, /*timed_out=*/true);
    }
  }, pid, tid);
  channels_.emplace(key, std::move(channel));
  return raw;
}

void LinuxSyscalls::Nanosleep(Pid pid, Tid tid, const std::string& callsite,
                              SimDuration duration, std::function<void()> done) {
  auto key = std::make_pair(pid, tid);
  auto it = sleep_timers_.find(key);
  LinuxTimer* timer = nullptr;
  if (it == sleep_timers_.end()) {
    timer = kernel_->InitTimer(callsite, nullptr, pid, tid);
    sleep_timers_.emplace(key, timer);
  } else {
    timer = it->second;
  }
  timer->function = std::move(done);
  kernel_->ModTimerUser(timer, duration);
}

void LinuxSyscalls::Alarm(Pid pid, const std::string& callsite, SimDuration timeout,
                          std::function<void()> signal) {
  auto it = alarm_timers_.find(pid);
  LinuxTimer* timer = nullptr;
  if (it == alarm_timers_.end()) {
    timer = kernel_->InitTimer(callsite, [this, pid] {
      auto handler = alarm_handlers_.find(pid);
      if (handler != alarm_handlers_.end() && handler->second) {
        handler->second();
      }
    }, pid, /*tid=*/0);
    alarm_timers_.emplace(pid, timer);
  } else {
    timer = it->second;
  }
  if (timeout <= 0) {
    // alarm(0) cancels any pending alarm.
    kernel_->DelTimer(timer);
    alarm_handlers_.erase(pid);
    return;
  }
  alarm_handlers_[pid] = std::move(signal);
  kernel_->ModTimerUser(timer, timeout);
}

PosixTimer* LinuxSyscalls::TimerCreate(Pid pid, const std::string& callsite,
                                       std::function<void()> callback) {
  auto timer = std::unique_ptr<PosixTimer>(new PosixTimer());
  PosixTimer* raw = timer.get();
  raw->kernel_ = kernel_;
  raw->callback_ = std::move(callback);
  raw->timer_ = kernel_->InitHrTimer(callsite, [raw] { raw->Fire(); }, pid);
  posix_timers_.push_back(std::move(timer));
  return raw;
}

void PosixTimer::Settime(SimDuration value, SimDuration interval) {
  if (value <= 0) {
    if (armed_) {
      kernel_->CancelHrTimer(timer_);
      armed_ = false;
    }
    interval_ = 0;
    return;
  }
  interval_ = interval;
  armed_ = true;
  kernel_->StartHrTimer(timer_, value);
}

void PosixTimer::Fire() {
  armed_ = false;
  if (callback_) {
    callback_();
  }
  if (interval_ > 0) {
    armed_ = true;
    kernel_->StartHrTimer(timer_, interval_);
  }
}

}  // namespace tempo
