// User-space timer entry points of the Linux model.
//
// The paper observes (Section 2.1) that only timer_settime and alarm arm a
// timer without blocking; every other user-space timeout is the latest time
// of return from a blocking call — dominated by select/poll event loops.
// A crucial Linux semantic for the study: when select returns early due to
// file-descriptor activity, the kernel WRITES BACK the remaining time into
// the timeout argument, and applications idiomatically re-issue select with
// that remainder — producing the countdown sawtooth of Figure 4.

#ifndef TEMPO_SRC_OSLINUX_SYSCALLS_H_
#define TEMPO_SRC_OSLINUX_SYSCALLS_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/oslinux/kernel.h"

namespace tempo {

class LinuxSyscalls;

// Per-thread blocking-timeout channel: models the per-task sleep timer used
// by select/poll/epoll_wait. One outstanding call per thread; the timer
// struct is reused across calls, so it has a stable trace identity.
class SelectChannel {
 public:
  // `remaining` is what the kernel wrote back; `timed_out` distinguishes
  // expiry from fd activity.
  using WakeCallback = std::function<void(SimDuration remaining, bool timed_out)>;

  // Blocks with `timeout`; kNeverTime blocks forever (no timer armed).
  void Select(SimDuration timeout, WakeCallback cb);

  // Delivers fd activity: cancels the timer, invokes the callback with the
  // remaining time. Returns false if the thread is not blocked.
  bool Wake();

  bool blocked() const { return blocked_; }
  Pid pid() const { return pid_; }
  Tid tid() const { return tid_; }

 private:
  friend class LinuxSyscalls;
  SelectChannel() = default;

  LinuxKernel* kernel_ = nullptr;
  LinuxTimer* timer_ = nullptr;  // reused per-task timer struct
  Pid pid_ = kKernelPid;
  Tid tid_ = 0;
  bool blocked_ = false;
  bool timer_armed_ = false;
  SimTime block_start_ = 0;
  SimDuration timeout_ = 0;
  WakeCallback cb_;
};

// A POSIX interval timer (timer_create/timer_settime), backed by hrtimers
// as in Linux >= 2.6.16.
class PosixTimer {
 public:
  // Arms with initial expiration `value` and period `interval`
  // (timer_settime). value == 0 disarms the timer.
  void Settime(SimDuration value, SimDuration interval);

  bool armed() const { return armed_; }

 private:
  friend class LinuxSyscalls;
  PosixTimer() = default;
  void Fire();

  LinuxKernel* kernel_ = nullptr;
  LinuxHrTimer* timer_ = nullptr;
  std::function<void()> callback_;
  bool armed_ = false;
  SimDuration interval_ = 0;
};

// Facade over the timeout-carrying system calls.
class LinuxSyscalls {
 public:
  explicit LinuxSyscalls(LinuxKernel* kernel) : kernel_(kernel) {}
  LinuxSyscalls(const LinuxSyscalls&) = delete;
  LinuxSyscalls& operator=(const LinuxSyscalls&) = delete;

  // Returns the (stable) blocking channel for a thread; creates it on first
  // use with the given call-site label, e.g. "Xorg/select".
  SelectChannel* Channel(Pid pid, Tid tid, const std::string& callsite);

  // sys_nanosleep: sleeps `duration`, then calls `done`. Not interruptible
  // in this model.
  void Nanosleep(Pid pid, Tid tid, const std::string& callsite, SimDuration duration,
                 std::function<void()> done);

  // alarm(2): delivers SIGALRM via `signal` after `timeout`; a timeout of 0
  // cancels the pending alarm. One alarm per process.
  void Alarm(Pid pid, const std::string& callsite, SimDuration timeout,
             std::function<void()> signal);

  // timer_create: allocates a POSIX timer delivering to `callback`.
  PosixTimer* TimerCreate(Pid pid, const std::string& callsite, std::function<void()> callback);

 private:
  LinuxKernel* kernel_;
  std::map<std::pair<Pid, Tid>, std::unique_ptr<SelectChannel>> channels_;
  std::map<std::pair<Pid, Tid>, LinuxTimer*> sleep_timers_;
  std::map<Pid, LinuxTimer*> alarm_timers_;
  std::map<Pid, std::function<void()>> alarm_handlers_;
  std::deque<std::unique_ptr<PosixTimer>> posix_timers_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSLINUX_SYSCALLS_H_
