#include "src/oslinux/timer_stats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tempo {

void TimerStatsCollector::Enable(SimTime now) {
  enabled_ = true;
  enabled_at_ = now;
  last_time_ = now;
  total_ = 0;
  counts_.clear();
}

void TimerStatsCollector::Disable(SimTime now) {
  enabled_ = false;
  last_time_ = now;
}

void TimerStatsCollector::Log(const TraceRecord& record) {
  if (!enabled_) {
    return;
  }
  last_time_ = record.timestamp;
  if (record.op != TimerOp::kSet && record.op != TimerOp::kBlock) {
    return;
  }
  ++total_;
  ++counts_[{record.callsite, record.pid}];
}

std::vector<TimerStatsCollector::Row> TimerStatsCollector::Rows() const {
  std::vector<Row> rows;
  rows.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    rows.push_back(Row{count, key.second, key.first});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.callsite < b.callsite;
  });
  return rows;
}

std::string TimerStatsCollector::Report(const CallsiteRegistry& callsites) const {
  std::ostringstream out;
  out << "Timer Stats Version: v0.2 (tempo)\n";
  char header[64];
  std::snprintf(header, sizeof(header), "Sample period: %.3f s\n",
                ToSeconds(sample_period()));
  out << header;
  for (const Row& row : Rows()) {
    char line[192];
    std::snprintf(line, sizeof(line), "%10llu, %5d %s\n",
                  static_cast<unsigned long long>(row.count), row.pid,
                  callsites.Name(row.callsite).c_str());
    out << line;
  }
  out << total_ << " total events\n";
  return out.str();
}

}  // namespace tempo
