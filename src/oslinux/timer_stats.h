// The /proc/timer_stats debug facility.
//
// Section 3.1: "Linux already includes functionality to collect timer
// statistics as part of the kernel debug code, providing a rough estimation
// of timer usage in the Linux kernel. However, in order to observe the
// details and duration of different timers, additional information needs to
// be observed" — which is why the study built full tracing instead.
//
// tempo provides the facility anyway, both because a downstream user wants
// the cheap always-on counter view, and because it demonstrates concretely
// what the paper means: timer_stats can tell you WHO sets timers and HOW
// OFTEN, but not lifetimes, cancellation fractions, or values over time.

#ifndef TEMPO_SRC_OSLINUX_TIMER_STATS_H_
#define TEMPO_SRC_OSLINUX_TIMER_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "src/trace/buffer.h"
#include "src/trace/callsite.h"

namespace tempo {

// A timer_stats collector: a TraceSink counting arming operations per
// (call-site, pid). Attach it (possibly via TeeSink) where a RelayBuffer
// would go; Enable/Disable mirror `echo 1 > /proc/timer_stats`.
class TimerStatsCollector : public TraceSink {
 public:
  void Log(const TraceRecord& record) override;

  void Enable(SimTime now);
  void Disable(SimTime now);
  bool enabled() const { return enabled_; }

  struct Row {
    uint64_t count = 0;
    Pid pid = kKernelPid;
    CallsiteId callsite = kUnknownCallsite;
  };

  // Rows sorted by count, descending — the /proc/timer_stats order.
  std::vector<Row> Rows() const;

  // Renders the classic report ("<count>, <pid> <comm> <function>").
  std::string Report(const CallsiteRegistry& callsites) const;

  uint64_t total_events() const { return total_; }
  SimDuration sample_period() const { return last_time_ - enabled_at_; }

 private:
  bool enabled_ = false;
  SimTime enabled_at_ = 0;
  SimTime last_time_ = 0;
  uint64_t total_ = 0;
  std::map<std::pair<CallsiteId, Pid>, uint64_t> counts_;
};

// Fans one record stream out to several sinks (e.g. the study's RelayBuffer
// plus a TimerStatsCollector).
class TeeSink : public TraceSink {
 public:
  void Add(TraceSink* sink) { sinks_.push_back(sink); }
  void Log(const TraceRecord& record) override {
    for (TraceSink* sink : sinks_) {
      sink->Log(record);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSLINUX_TIMER_STATS_H_
