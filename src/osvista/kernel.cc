#include "src/osvista/kernel.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace tempo {

VistaKernel::VistaKernel(Simulator* sim, TraceSink* sink)
    : VistaKernel(sim, sink, Options{}) {}

VistaKernel::VistaKernel(Simulator* sim, TraceSink* sink, Options options)
    : VistaKernel(&sim->domain(0), sink, options) {}

VistaKernel::VistaKernel(ClockDomain* domain, TraceSink* sink)
    : VistaKernel(domain, sink, Options{}) {}

VistaKernel::VistaKernel(ClockDomain* domain, TraceSink* sink, Options options)
    : domain_(domain), sink_(sink), options_(options) {}

void VistaKernel::Boot() {
  assert(!booted_);
  booted_ = true;
  ScheduleNextTick();
}

KTimer* VistaKernel::AllocateTimer(const std::string& callsite, Pid pid, Tid tid,
                                   std::function<void()> dpc, bool dynamic,
                                   CallsiteId parent) {
  KTimer* raw = nullptr;
  if (dynamic && !free_timers_.empty()) {
    // Recycled allocation: same storage, and therefore the SAME trace
    // identity — the address aliasing that makes Vista timer identity
    // useless for correlation (Section 3.3). kFlagDynamicAlloc tells the
    // analysis to cluster by call-site instead.
    auto timer = std::move(free_timers_.back());
    free_timers_.pop_back();
    raw = timer.get();
    timers_.push_back(std::move(timer));
  } else {
    timers_.push_back(std::make_unique<KTimer>());
    raw = timers_.back().get();
    raw->id = next_timer_id_++;  // identity == storage address
  }
  raw->callsite = callsites_.Intern(callsite, parent);
  raw->stack = callsites_.InternStack(callsites_.Chain(raw->callsite));
  raw->pid = pid;
  raw->tid = tid;
  raw->dynamic = dynamic;
  raw->dpc = std::move(dpc);
  raw->pending = false;
  return raw;
}

void VistaKernel::Log(TimerOp op, const KTimer& t, SimDuration timeout, SimTime expiry,
                      uint16_t extra_flags) {
  TraceRecord r;
  r.timestamp = domain_->Now();
  r.timer = t.id;
  r.timeout = timeout;
  r.expiry = expiry;
  r.callsite = t.callsite;
  r.stack = t.stack;
  r.pid = t.pid;
  r.tid = t.tid;
  r.op = op;
  r.flags = extra_flags;
  if (t.pid != kKernelPid) {
    r.flags |= kFlagUser;
  }
  if (t.dynamic) {
    r.flags |= kFlagDynamicAlloc;
  }
  sink_->Log(r);
}

void VistaKernel::KeSetTimer(KTimer* timer, SimDuration timeout) {
  const SimTime now = domain_->Now();
  if (timeout < 0) {
    timeout = 0;
  }
  if (timer->pending) {
    table_.Cancel(timer->table_handle);  // implicit re-arm, no cancel record
  }
  timer->pending = true;
  timer->due = now + timeout;
  timer->set_time = now;
  timer->last_timeout = timeout;
  timer->table_handle = table_.Schedule(timer->due, [this, timer](TimerHandle) {
    // Fired from the clock-interrupt DPC that processes the timer table.
    timer->pending = false;
    Log(TimerOp::kExpire, *timer, timer->last_timeout, timer->due, 0);
    if (timer->dpc) {
      timer->dpc();
    }
  });
  Log(TimerOp::kSet, *timer, timeout, timer->due, 0);
  MaybeReprogramTick(timer->due);
}

bool VistaKernel::KeCancelTimer(KTimer* timer) {
  if (!timer->pending) {
    return false;
  }
  table_.Cancel(timer->table_handle);
  timer->pending = false;
  Log(TimerOp::kCancel, *timer, timer->last_timeout, timer->due, 0);
  return true;
}

void VistaKernel::FreeTimer(KTimer* timer) {
  if (timer->pending) {
    table_.Cancel(timer->table_handle);
    timer->pending = false;
  }
  timer->dpc = nullptr;
  // Move ownership to the free list. Linear scan from the back is fine:
  // timers are almost always freed shortly after allocation.
  for (auto it = timers_.rbegin(); it != timers_.rend(); ++it) {
    if (it->get() == timer) {
      free_timers_.push_back(std::move(*it));
      timers_.erase(std::next(it).base());
      return;
    }
  }
}

VistaKernel::Wait* VistaKernel::BlockThread(Pid pid, Tid tid, const std::string& callsite,
                                            SimDuration timeout,
                                            std::function<void(bool satisfied)> on_wake) {
  // Reuse completed wait slots; each thread blocks on at most one wait.
  Wait* wait = nullptr;
  for (auto& w : waits_) {
    if (w->done_) {
      wait = w.get();
      break;
    }
  }
  if (wait == nullptr) {
    waits_.push_back(std::unique_ptr<Wait>(new Wait()));
    wait = waits_.back().get();
  }
  wait->kernel_ = this;
  wait->pid_ = pid;
  wait->tid_ = tid;
  wait->done_ = false;
  wait->block_start_ = domain_->Now();
  wait->timeout_ = timeout;
  wait->callsite_ = callsites_.Intern(callsite);
  wait->on_wake_ = std::move(on_wake);
  wait->has_timeout_ = timeout != kNeverTime;

  // The dedicated per-thread wait KTIMER: stable identity, fast-path
  // insertion into the timer table (bypasses KeSetTimer — we log kBlock
  // instead of kSet, as the paper's instrumentation does).
  KTimer*& slot = wait_timers_[std::make_pair(pid, tid)];
  if (slot == nullptr) {
    timers_.push_back(std::make_unique<KTimer>());
    slot = timers_.back().get();
    slot->id = next_timer_id_++;
    slot->pid = pid;
    slot->tid = tid;
    slot->dynamic = false;
  }
  wait->timer_ = slot;
  wait->timer_->callsite = wait->callsite_;
  wait->timer_->stack = callsites_.InternStack(callsites_.Chain(wait->callsite_));

  TraceRecord r;
  r.timestamp = wait->block_start_;
  r.timer = wait->timer_->id;
  r.timeout = wait->has_timeout_ ? timeout : 0;
  r.expiry = wait->has_timeout_ ? wait->block_start_ + timeout : 0;
  r.callsite = wait->callsite_;
  r.stack = wait->timer_->stack;
  r.pid = pid;
  r.tid = tid;
  r.op = TimerOp::kBlock;
  r.flags = pid != kKernelPid ? kFlagUser : uint16_t{0};
  sink_->Log(r);

  if (wait->has_timeout_) {
    KTimer* kt = wait->timer_;
    kt->pending = true;
    kt->due = wait->block_start_ + timeout;
    kt->set_time = wait->block_start_;
    kt->last_timeout = timeout;
    kt->table_handle = table_.Schedule(kt->due, [this, wait](TimerHandle) {
      wait->timer_->pending = false;
      CompleteWait(wait, /*satisfied=*/false);
    });
    MaybeReprogramTick(kt->due);
  }
  return wait;
}

bool VistaKernel::Signal(Wait* wait) {
  if (wait == nullptr || wait->done_) {
    return false;
  }
  if (wait->has_timeout_ && wait->timer_->pending) {
    table_.Cancel(wait->timer_->table_handle);
    wait->timer_->pending = false;
  }
  CompleteWait(wait, /*satisfied=*/true);
  return true;
}

void VistaKernel::CompleteWait(Wait* wait, bool satisfied) {
  wait->done_ = true;
  TraceRecord r;
  r.timestamp = domain_->Now();
  r.timer = wait->timer_->id;
  r.timeout = wait->has_timeout_ ? wait->timeout_ : 0;
  r.expiry = wait->block_start_;  // unblock records carry the block start so
                                  // analysis recovers the wait duration
  r.callsite = wait->callsite_;
  r.stack = wait->timer_->stack;
  r.pid = wait->pid_;
  r.tid = wait->tid_;
  r.op = TimerOp::kUnblock;
  r.flags = wait->pid_ != kKernelPid ? kFlagUser : uint16_t{0};
  if (satisfied) {
    r.flags |= kFlagWaitSatisfied;
  }
  sink_->Log(r);
  if (wait->on_wake_) {
    auto cb = std::move(wait->on_wake_);
    wait->on_wake_ = nullptr;
    cb(satisfied);
  }
}

SimDuration VistaKernel::effective_tick() const {
  SimDuration tick = options_.clock_tick;
  if (!resolution_requests_.empty()) {
    tick = std::min(tick, *resolution_requests_.begin());
  }
  return std::max<SimDuration>(tick, kMillisecond);  // 1 ms floor, as on NT
}

void VistaKernel::BeginTimerResolution(SimDuration period) {
  resolution_requests_.insert(period);
  // Take effect immediately: pull the next interrupt onto the finer grid.
  if (booted_ && tick_event_ != kInvalidEventId) {
    domain_->Cancel(tick_event_);
    tick_event_ = kInvalidEventId;
    ScheduleNextTick();
  }
}

void VistaKernel::EndTimerResolution(SimDuration period) {
  auto it = resolution_requests_.find(period);
  if (it != resolution_requests_.end()) {
    resolution_requests_.erase(it);
  }
}

void VistaKernel::OnClockInterrupt() {
  const SimTime now = domain_->Now();
  domain_->cpu().OnInterrupt(now, /*timer=*/true);
  ++clock_interrupts_;
  tick_event_ = kInvalidEventId;
  table_.Advance(now);
  ScheduleNextTick();
  domain_->cpu().EnterIdle(now);
}

void VistaKernel::ScheduleNextTick() {
  const SimDuration tick = effective_tick();
  SimTime next = domain_->Now() + tick;
  if (options_.coalesce_ticks) {
    const SimTime due = table_.NextExpiry();
    if (due == kNeverTime) {
      // Nothing pending: take one tick 16x out to keep the clock alive.
      next = domain_->Now() + 16 * tick;
      ticks_coalesced_ += 15;
    } else if (due > next) {
      // Skip to the tick at or after the next due time.
      const uint64_t skip =
          static_cast<uint64_t>((due - domain_->Now() + tick - 1) / tick);
      ticks_coalesced_ += skip > 0 ? skip - 1 : 0;
      next = domain_->Now() + static_cast<SimDuration>(skip) * tick;
    }
  }
  tick_scheduled_for_ = next;
  tick_event_ = domain_->ScheduleAt(next, [this] { OnClockInterrupt(); });
}

void VistaKernel::MaybeReprogramTick(SimTime due) {
  if (!options_.coalesce_ticks || !booted_ || tick_event_ == kInvalidEventId) {
    return;
  }
  if (due >= tick_scheduled_for_) {
    return;
  }
  domain_->Cancel(tick_event_);
  const SimTime earliest = domain_->Now() + effective_tick();
  tick_scheduled_for_ = std::max(earliest, due);
  tick_event_ = domain_->ScheduleAt(tick_scheduled_for_, [this] { OnClockInterrupt(); });
}

}  // namespace tempo
