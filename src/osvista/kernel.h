// Model of the Windows Vista (NT) kernel timer facilities.
//
// All of Vista's timer interfaces bottom out in KTIMER objects kept in a
// timer table that the clock-interrupt DPC processes (Section 2.2). The
// model reproduces the structural properties the paper measures:
//
//   * KTIMERs are usually allocated on the fly and not reused, so the trace
//     has no stable timer identity — analysis must cluster by call-site
//     (kFlagDynamicAlloc on the records);
//   * expiry is processed at clock-interrupt granularity (15.625 ms by
//     default), so sub-tick timeouts are delivered "at essentially random
//     times" relative to their duration (Figures 8-11, Vista panes);
//   * thread waits (WaitForSingleObject et al.) use a dedicated per-thread
//     KTIMER with fast-path insertion that bypasses KeSetTimer, so they are
//     instrumented separately as block/unblock events carrying the
//     user-supplied timeout and a wait-satisfied boolean (Section 3.3).

#ifndef TEMPO_SRC_OSVISTA_KERNEL_H_
#define TEMPO_SRC_OSVISTA_KERNEL_H_

#include <deque>
#include <map>
#include <set>
#include <functional>
#include <memory>
#include <string>

#include "src/sim/simulator.h"
#include "src/timer/tree_queue.h"
#include "src/trace/buffer.h"
#include "src/trace/callsite.h"

namespace tempo {

// Default clock interrupt period (64 Hz).
inline constexpr SimDuration kVistaClockTick = 15625 * kMicrosecond;

// An NT kernel timer object. Most are allocated per use (dynamic); the
// per-thread wait timers are the stable exception.
struct KTimer {
  TimerId id = kInvalidTimerId;
  CallsiteId callsite = kUnknownCallsite;
  StackId stack = kEmptyStack;
  Pid pid = kKernelPid;
  Tid tid = 0;
  bool dynamic = true;              // freshly allocated, not reused
  std::function<void()> dpc;        // deferred procedure call on expiry

  bool pending = false;
  SimTime due = 0;
  SimTime set_time = 0;
  SimDuration last_timeout = 0;
  TimerHandle table_handle = kInvalidTimerHandle;
};

// The Vista kernel timer subsystem model.
class VistaKernel {
 public:
  struct Options {
    // Clock interrupt period. Vista adjusts this dynamically; tests can
    // lower it to model high-resolution multimedia timers.
    SimDuration clock_tick;
    // Skip clock interrupts with no due timers (Vista's tick coalescing /
    // "processing timers according to observed CPU load").
    bool coalesce_ticks;

    Options() : clock_tick(kVistaClockTick), coalesce_ticks(false) {}
  };

  // The Simulator* overloads pin the kernel to domain 0 (the classic
  // single-CPU layout); the ClockDomain* overload pins it to one simulated
  // CPU of a multi-domain simulator — its clock interrupt, timer table and
  // RNG draws all live on that domain's clock.
  VistaKernel(Simulator* sim, TraceSink* sink);
  VistaKernel(Simulator* sim, TraceSink* sink, Options options);
  VistaKernel(ClockDomain* domain, TraceSink* sink);
  VistaKernel(ClockDomain* domain, TraceSink* sink, Options options);
  VistaKernel(const VistaKernel&) = delete;
  VistaKernel& operator=(const VistaKernel&) = delete;

  // Starts the clock interrupt.
  void Boot();

  Simulator& sim() { return domain_->sim(); }
  // The clock domain (simulated CPU) this kernel instance is pinned to.
  ClockDomain& domain() { return *domain_; }
  CallsiteRegistry& callsites() { return callsites_; }

  // --- KTIMER interface ---

  // Allocates a KTIMER. `dynamic` timers model per-call heap allocation:
  // storage (and thus trace identity) is recycled from freed timers, so
  // successive logical timeouts may alias one identity and one logical
  // timeout may span many — records carry kFlagDynamicAlloc so the
  // analysis clusters by call-site instead. Allocation is not traced.
  KTimer* AllocateTimer(const std::string& callsite, Pid pid, Tid tid,
                        std::function<void()> dpc, bool dynamic = true,
                        CallsiteId parent = kUnknownCallsite);

  // KeSetTimer: arms for `timeout` from now (negative NT "relative" times
  // map to positive durations here). Re-arming a pending timer implicitly
  // cancels it first (NT semantics), without a cancel record.
  void KeSetTimer(KTimer* timer, SimDuration timeout);

  // KeCancelTimer. Returns whether the timer was pending.
  bool KeCancelTimer(KTimer* timer);

  // Frees a dynamically allocated timer (cancels if pending, without a
  // cancel record — mirroring object deletion).
  void FreeTimer(KTimer* timer);

  // --- Timer resolution (timeBeginPeriod / timeEndPeriod) ---

  // Multimedia applications request a finer clock-interrupt period; the
  // effective period is the smallest outstanding request (never below
  // 1 ms), restored when requests are released — the mechanism behind
  // "Vista dynamically adjusts the frequency of the periodic timer
  // interrupt" (Section 1).
  void BeginTimerResolution(SimDuration period);
  void EndTimerResolution(SimDuration period);
  SimDuration effective_tick() const;

  // --- Thread waits (dispatcher objects) ---

  // WaitForSingleObject/KeDelayExecutionThread with timeout. Logs a kBlock
  // record; on wake logs kUnblock with kFlagWaitSatisfied if `Signal` beat
  // the timeout. The returned WaitHandle can be signalled once.
  class Wait;
  Wait* BlockThread(Pid pid, Tid tid, const std::string& callsite, SimDuration timeout,
                    std::function<void(bool satisfied)> on_wake);

  // Signals a waiting thread (the object it waited on became available).
  // Returns false if the wait already completed.
  bool Signal(Wait* wait);

  // --- Statistics ---
  uint64_t clock_interrupts() const { return clock_interrupts_; }
  uint64_t ticks_coalesced() const { return ticks_coalesced_; }
  uint64_t timers_allocated() const { return next_timer_id_ - 1; }

 private:
  void Log(TimerOp op, const KTimer& t, SimDuration timeout, SimTime expiry,
           uint16_t extra_flags);
  void OnClockInterrupt();
  void ScheduleNextTick();
  void CompleteWait(Wait* wait, bool satisfied);
  // With tick coalescing, a newly armed timer nearer than the scheduled
  // interrupt must pull the interrupt forward.
  void MaybeReprogramTick(SimTime due);

  ClockDomain* domain_;
  TraceSink* sink_;
  Options options_;
  CallsiteRegistry callsites_;

  bool booted_ = false;
  EventId tick_event_ = kInvalidEventId;
  SimTime tick_scheduled_for_ = kNeverTime;
  std::map<std::pair<Pid, Tid>, KTimer*> wait_timers_;

  // The timer table; expiry is only *processed* on clock interrupts, which
  // is where the quantisation comes from.
  TreeTimerQueue table_;
  // Outstanding timeBeginPeriod requests.
  std::multiset<SimDuration> resolution_requests_;

  std::deque<std::unique_ptr<KTimer>> timers_;
  std::deque<std::unique_ptr<KTimer>> free_timers_;
  std::deque<std::unique_ptr<Wait>> waits_;
  TimerId next_timer_id_ = 1;

  uint64_t clock_interrupts_ = 0;
  uint64_t ticks_coalesced_ = 0;
};

// Outstanding thread wait state.
class VistaKernel::Wait {
 public:
  bool done() const { return done_; }
  Tid tid() const { return tid_; }

 private:
  friend class VistaKernel;
  VistaKernel* kernel_ = nullptr;
  KTimer* timer_ = nullptr;  // per-thread wait timer (stable identity)
  Pid pid_ = kKernelPid;
  Tid tid_ = 0;
  bool done_ = false;
  bool has_timeout_ = false;
  SimTime block_start_ = 0;
  SimDuration timeout_ = 0;
  CallsiteId callsite_ = kUnknownCallsite;
  std::function<void(bool)> on_wake_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSVISTA_KERNEL_H_
