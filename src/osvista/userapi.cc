#include "src/osvista/userapi.h"

#include <algorithm>
#include <utility>

namespace tempo {

// Win32 clamps GUI timer periods to USER_TIMER_MINIMUM (10 ms).
namespace {
constexpr SimDuration kUserTimerMinimum = 10 * kMillisecond;
}  // namespace

// --- NtTimer ---

NtTimer* VistaUserApi::NtCreateTimer(Pid pid, Tid tid, const std::string& callsite,
                                     std::function<void()> apc) {
  auto timer = std::unique_ptr<NtTimer>(new NtTimer());
  NtTimer* raw = timer.get();
  raw->kernel_ = kernel_;
  raw->apc_ = std::move(apc);
  // The kernel object lives as long as the handle: stable identity.
  raw->ktimer_ = kernel_->AllocateTimer(callsite, pid, tid, [raw] { raw->Fire(); },
                                        /*dynamic=*/false);
  nt_timers_.push_back(std::move(timer));
  return raw;
}

void NtTimer::Set(SimDuration due, SimDuration period) {
  period_ = period;
  kernel_->KeSetTimer(ktimer_, due);
}

bool NtTimer::Cancel() {
  period_ = 0;
  return kernel_->KeCancelTimer(ktimer_);
}

void NtTimer::Fire() {
  if (apc_) {
    apc_();
  }
  if (period_ > 0) {
    kernel_->KeSetTimer(ktimer_, period_);
  }
}

// --- ThreadpoolPool ---

ThreadpoolPool* VistaUserApi::CreatePool(Pid pid, Tid tid, const std::string& name) {
  auto pool = std::unique_ptr<ThreadpoolPool>(new ThreadpoolPool());
  ThreadpoolPool* raw = pool.get();
  raw->kernel_ = kernel_;
  raw->pid_ = pid;
  raw->tid_ = tid;
  raw->ktimer_ = kernel_->AllocateTimer(name + "/ntdll_threadpool", pid, tid,
                                        [raw] { raw->OnKernelTimer(); }, /*dynamic=*/false);
  pools_.push_back(std::move(pool));
  return raw;
}

ThreadpoolTimer* ThreadpoolPool::CreateTimer(std::function<void()> callback) {
  auto timer = std::unique_ptr<ThreadpoolTimer>(new ThreadpoolTimer());
  ThreadpoolTimer* raw = timer.get();
  raw->pool_ = this;
  raw->callback_ = std::move(callback);
  timers_.push_back(std::move(timer));
  return raw;
}

void ThreadpoolPool::SetEntry(ThreadpoolTimer* timer, SimDuration due) {
  if (timer->active_) {
    ring_.Cancel(timer->handle_);
  }
  timer->active_ = true;
  const SimTime expiry = kernel_->sim().Now() + std::max<SimDuration>(due, 0);
  timer->handle_ = ring_.Schedule(expiry, [this, timer](TimerHandle) {
    timer->active_ = false;
    if (timer->callback_) {
      timer->callback_();
    }
    if (timer->period_ > 0) {
      SetEntry(timer, timer->period_);
    }
  });
  Rearm();
}

void ThreadpoolTimer::Set(SimDuration due, SimDuration period) {
  period_ = period;
  if (due <= 0) {
    Cancel();
    return;
  }
  pool_->SetEntry(this, due);
}

void ThreadpoolTimer::Cancel() {
  if (!active_) {
    return;
  }
  active_ = false;
  pool_->ring_.Cancel(handle_);
  pool_->Rearm();
}

void ThreadpoolPool::Rearm() {
  // Multiplex the whole ring onto the single kernel timer: arm it for the
  // earliest user-level due time. The kernel trace therefore sees one timer
  // re-set to constantly varying values.
  const SimTime next = ring_.NextExpiry();
  if (next == kNeverTime) {
    kernel_->KeCancelTimer(ktimer_);
    return;
  }
  const SimDuration due = std::max<SimDuration>(0, next - kernel_->sim().Now());
  kernel_->KeSetTimer(ktimer_, due);
}

void ThreadpoolPool::OnKernelTimer() {
  ring_.Advance(kernel_->sim().Now());
  Rearm();
}

// --- MessageQueue (Win32 GUI timers) ---

struct MessageQueue::GuiTimer {
  uint32_t id = 0;
  MessageQueue* queue = nullptr;
  KTimer* ktimer = nullptr;
  SimDuration elapse = 0;
  std::function<void()> on_wm_timer;
  bool alive = false;

  void Fire() {
    if (!alive) {
      return;
    }
    // The APC posted a WM_TIMER message; dispatching it waits for the GUI
    // thread's message loop, adding a few milliseconds of latency.
    Simulator& sim = queue->kernel_->sim();
    const SimDuration dispatch_latency =
        static_cast<SimDuration>(sim.rng().Uniform(0.0001, 0.004) * kSecond);
    sim.ScheduleAfter(dispatch_latency, [this] {
      if (alive && on_wm_timer) {
        on_wm_timer();
      }
    });
    // Win32 GUI timers are periodic: re-arm for the next WM_TIMER.
    queue->kernel_->KeSetTimer(ktimer, elapse);
  }
};

MessageQueue::~MessageQueue() = default;

MessageQueue* VistaUserApi::CreateMessageQueue(Pid pid, Tid tid, const std::string& name) {
  auto queue = std::unique_ptr<MessageQueue>(new MessageQueue());
  MessageQueue* raw = queue.get();
  raw->kernel_ = kernel_;
  raw->pid_ = pid;
  raw->tid_ = tid;
  raw->name_ = name;
  raw->callsite_ = kernel_->callsites().Intern(name + "/SetTimer");
  queues_.push_back(std::move(queue));
  return raw;
}

uint32_t MessageQueue::SetTimer(SimDuration elapse, std::function<void()> on_wm_timer) {
  elapse = std::max(elapse, kUserTimerMinimum);
  auto timer = std::make_unique<GuiTimer>();
  GuiTimer* raw = timer.get();
  raw->id = next_id_++;
  raw->queue = this;
  raw->elapse = elapse;
  raw->on_wm_timer = std::move(on_wm_timer);
  raw->alive = true;
  raw->ktimer = kernel_->AllocateTimer(name_ + "/SetTimer", pid_, tid_,
                                       [raw] { raw->Fire(); }, /*dynamic=*/true);
  timers_.push_back(std::move(timer));
  kernel_->KeSetTimer(raw->ktimer, elapse);
  return raw->id;
}

bool MessageQueue::KillTimer(uint32_t id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if ((*it)->id == id) {
      GuiTimer* t = it->get();
      if (!t->alive) {
        return false;
      }
      t->alive = false;
      kernel_->KeCancelTimer(t->ktimer);
      kernel_->FreeTimer(t->ktimer);
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

// --- AfdSelect (Winsock select) ---

AfdSelect* VistaUserApi::Select(Pid pid, Tid tid, const std::string& callsite,
                                SimDuration timeout, std::function<void(bool)> cb) {
  AfdSelect* raw = nullptr;
  if (!free_selects_.empty()) {
    auto slot = std::move(free_selects_.back());
    free_selects_.pop_back();
    raw = slot.get();
    selects_.push_back(std::move(slot));
  } else {
    selects_.push_back(std::unique_ptr<AfdSelect>(new AfdSelect()));
    raw = selects_.back().get();
  }
  raw->api_ = this;
  raw->kernel_ = kernel_;
  raw->done_ = false;
  raw->cb_ = std::move(cb);
  // afd.sys allocates a fresh KTIMER per ioctl: dynamic identity.
  raw->ktimer_ = kernel_->AllocateTimer(callsite, pid, tid, [raw] {
    raw->done_ = true;
    auto callback = std::move(raw->cb_);
    raw->cb_ = nullptr;
    raw->kernel_->FreeTimer(raw->ktimer_);
    raw->ktimer_ = nullptr;
    raw->api_->Recycle(raw);
    if (callback) {
      callback(/*timed_out=*/true);
    }
  }, /*dynamic=*/true);
  kernel_->KeSetTimer(raw->ktimer_, timeout);
  return raw;
}

void VistaUserApi::Recycle(AfdSelect* select) {
  // Completed calls are recycled; scan from the back, where recent
  // allocations live.
  for (auto it = selects_.rbegin(); it != selects_.rend(); ++it) {
    if (it->get() == select) {
      free_selects_.push_back(std::move(*it));
      selects_.erase(std::next(it).base());
      return;
    }
  }
}

bool AfdSelect::Complete() {
  if (done_) {
    return false;
  }
  done_ = true;
  kernel_->KeCancelTimer(ktimer_);
  kernel_->FreeTimer(ktimer_);
  ktimer_ = nullptr;
  auto callback = std::move(cb_);
  cb_ = nullptr;
  api_->Recycle(this);
  if (callback) {
    callback(/*timed_out=*/false);
  }
  return true;
}

// --- MultiWait (WaitForMultipleObjects) ---

MultiWait* VistaUserApi::WaitForMultipleObjects(Pid pid, Tid tid,
                                                const std::string& callsite, size_t count,
                                                SimDuration timeout,
                                                std::function<void(int)> on_wake) {
  // Reuse a completed slot if one exists.
  MultiWait* raw = nullptr;
  for (auto& w : multi_waits_) {
    if (w->wait_ == nullptr || w->wait_->done()) {
      raw = w.get();
      break;
    }
  }
  if (raw == nullptr) {
    multi_waits_.push_back(std::unique_ptr<MultiWait>(new MultiWait()));
    raw = multi_waits_.back().get();
  }
  raw->kernel_ = kernel_;
  raw->count_ = count;
  raw->result_ = -1;
  raw->wait_ = kernel_->BlockThread(
      pid, tid, callsite, timeout, [raw, cb = std::move(on_wake)](bool satisfied) {
        if (!satisfied) {
          raw->result_ = -1;  // WAIT_TIMEOUT
        }
        if (cb) {
          cb(raw->result_);
        }
      });
  return raw;
}

bool MultiWait::Signal(size_t index) {
  if (index >= count_ || wait_ == nullptr || wait_->done()) {
    return false;
  }
  result_ = static_cast<int>(index);
  return kernel_->Signal(wait_);
}

bool MultiWait::done() const { return wait_ == nullptr || wait_->done(); }

// --- Sleep ---

void VistaUserApi::Sleep(Pid pid, Tid tid, const std::string& callsite, SimDuration duration,
                         std::function<void()> done) {
  kernel_->BlockThread(pid, tid, callsite, duration,
                       [done = std::move(done)](bool) {
                         if (done) {
                           done();
                         }
                       });
}

}  // namespace tempo
