// Vista user-level timer interfaces, layered over the kernel KTIMER model.
//
// Section 2.2 describes the stack: NTDLL's threadpool timers multiplex a
// user-level ring over a single kernel timer; Win32 exposes waitable timers
// (NtSetTimer, APC delivery) and GUI timers (SetTimer -> WM_TIMER messages
// dispatched by the thread's message loop); Winsock select is a blocking
// ioctl on afd.sys that allocates a *fresh* KTIMER per call. Each layer is
// a multiplexer, and each hides identity from the layer below — the
// instrumentation challenge of Section 3.3.

#ifndef TEMPO_SRC_OSVISTA_USERAPI_H_
#define TEMPO_SRC_OSVISTA_USERAPI_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/osvista/kernel.h"
#include "src/timer/tree_queue.h"

namespace tempo {

class VistaUserApi;
class ThreadpoolPool;

// An NT waitable timer (NtCreateTimer/NtSetTimer/NtCancelTimer). The kernel
// object persists for the handle's lifetime, optionally periodic.
class NtTimer {
 public:
  // NtSetTimer: arms for `due`, then every `period` if period > 0.
  void Set(SimDuration due, SimDuration period = 0);
  // NtCancelTimer.
  bool Cancel();

 private:
  friend class VistaUserApi;
  NtTimer() = default;
  void Fire();

  VistaKernel* kernel_ = nullptr;
  KTimer* ktimer_ = nullptr;
  std::function<void()> apc_;
  SimDuration period_ = 0;
};

// A timer in a user-level threadpool ring.
class ThreadpoolTimer {
 public:
  // SetThreadpoolTimer: due time, optional period. due <= 0 deactivates.
  void Set(SimDuration due, SimDuration period = 0);
  void Cancel();

 private:
  friend class ThreadpoolPool;
  ThreadpoolTimer() = default;

  ThreadpoolPool* pool_ = nullptr;
  std::function<void()> callback_;
  TimerHandle handle_ = kInvalidTimerHandle;
  SimDuration period_ = 0;
  bool active_ = false;
};

// NTDLL's user-level timer pool: a private ring of timers multiplexed over
// a single kernel KTIMER which is re-armed to the earliest due time. From
// the kernel trace's point of view this is ONE timer set to ever-changing
// values — a select-like "other" pattern.
class ThreadpoolPool {
 public:
  ThreadpoolTimer* CreateTimer(std::function<void()> callback);

 private:
  friend class VistaUserApi;
  ThreadpoolPool() = default;
  void Rearm();
  void OnKernelTimer();
  void SetEntry(ThreadpoolTimer* timer, SimDuration due);

  VistaKernel* kernel_ = nullptr;
  Pid pid_ = kKernelPid;
  Tid tid_ = 0;
  KTimer* ktimer_ = nullptr;
  TreeTimerQueue ring_;
  std::deque<std::unique_ptr<ThreadpoolTimer>> timers_;

  friend class ThreadpoolTimer;
};

// A Win32 GUI thread's message queue with SetTimer/KillTimer. Expiries are
// delivered as WM_TIMER messages: the kernel timer fires (APC inserts the
// message), then the message waits for the dispatch loop — adding the
// user-visible latency the paper notes for GUI timers.
class MessageQueue {
 public:
  // SetTimer: periodic WM_TIMER every `elapse` until KillTimer. Returns the
  // timer id. Win32 clamps elapse to a minimum (USER_TIMER_MINIMUM, 10 ms).
  uint32_t SetTimer(SimDuration elapse, std::function<void()> on_wm_timer);
  bool KillTimer(uint32_t id);
  ~MessageQueue();

 private:
  friend class VistaUserApi;
  MessageQueue() = default;
  struct GuiTimer;

  VistaKernel* kernel_ = nullptr;
  Pid pid_ = kKernelPid;
  Tid tid_ = 0;
  std::string name_;
  CallsiteId callsite_ = kUnknownCallsite;
  std::deque<std::unique_ptr<GuiTimer>> timers_;
  uint32_t next_id_ = 1;
};

// A WaitForMultipleObjects wait: wait-any over N synchronisation objects
// plus a timeout, implemented over the kernel's dispatcher-wait fast path
// (one per-thread KTIMER regardless of the object count).
class MultiWait {
 public:
  // Signals object `index`; wakes the thread if it is still waiting.
  // Returns false if the wait already completed or the index is invalid.
  bool Signal(size_t index);

  bool done() const;
  // Index of the signalling object, or -1 for a timeout. Valid after
  // completion.
  int result() const { return result_; }

 private:
  friend class VistaUserApi;
  MultiWait() = default;

  VistaKernel* kernel_ = nullptr;
  VistaKernel::Wait* wait_ = nullptr;
  size_t count_ = 0;
  int result_ = -1;
};

// A blocked Winsock select call (ioctl on afd.sys with a fresh KTIMER).
class AfdSelect {
 public:
  // Completes the ioctl because the socket became ready; cancels the
  // timeout. Returns false if the call already completed.
  bool Complete();

  bool done() const { return done_; }

 private:
  friend class VistaUserApi;
  AfdSelect() = default;

  VistaUserApi* api_ = nullptr;
  VistaKernel* kernel_ = nullptr;
  KTimer* ktimer_ = nullptr;
  bool done_ = false;
  std::function<void(bool timed_out)> cb_;
};

// Facade constructing the user-level objects.
class VistaUserApi {
 public:
  explicit VistaUserApi(VistaKernel* kernel) : kernel_(kernel) {}
  VistaUserApi(const VistaUserApi&) = delete;
  VistaUserApi& operator=(const VistaUserApi&) = delete;

  // NtCreateTimer: `apc` runs on each expiry.
  NtTimer* NtCreateTimer(Pid pid, Tid tid, const std::string& callsite,
                         std::function<void()> apc);

  // Creates a threadpool timer ring for a process (CreateThreadpoolTimer).
  ThreadpoolPool* CreatePool(Pid pid, Tid tid, const std::string& name);

  // Creates a GUI thread message queue.
  MessageQueue* CreateMessageQueue(Pid pid, Tid tid, const std::string& name);

  // Winsock select with timeout: fresh KTIMER per call. `cb(timed_out)`.
  AfdSelect* Select(Pid pid, Tid tid, const std::string& callsite, SimDuration timeout,
                    std::function<void(bool timed_out)> cb);

  // Sleep(ms): thread wait with timeout that always expires.
  void Sleep(Pid pid, Tid tid, const std::string& callsite, SimDuration duration,
             std::function<void()> done);

  // WaitForMultipleObjects (wait-any): blocks `tid` on `count` objects with
  // `timeout` (kNeverTime for INFINITE). `on_wake(index)` receives the
  // signalling object's index or -1 on timeout.
  MultiWait* WaitForMultipleObjects(Pid pid, Tid tid, const std::string& callsite,
                                    size_t count, SimDuration timeout,
                                    std::function<void(int)> on_wake);

 private:
  friend class AfdSelect;

  // Moves a completed select call to the free list for reuse.
  void Recycle(AfdSelect* select);

  VistaKernel* kernel_;
  std::deque<std::unique_ptr<NtTimer>> nt_timers_;
  std::deque<std::unique_ptr<ThreadpoolPool>> pools_;
  std::deque<std::unique_ptr<MessageQueue>> queues_;
  std::deque<std::unique_ptr<AfdSelect>> selects_;
  std::deque<std::unique_ptr<AfdSelect>> free_selects_;
  std::deque<std::unique_ptr<MultiWait>> multi_waits_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_OSVISTA_USERAPI_H_
