#include "src/sim/clock_domain.h"

#include <cassert>
#include <utility>

#include "src/sim/simulator.h"

namespace tempo {

ClockDomain::ClockDomain(Simulator* sim, size_t index, uint64_t rng_seed,
                         obs::Counter* metric_events, obs::Gauge* metric_queue_hwm)
    : sim_(sim),
      index_(index),
      rng_(rng_seed),
      metric_events_(metric_events),
      metric_queue_hwm_(metric_queue_hwm) {}

EventId ClockDomain::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  const EventId id = queue_.Schedule(at, std::move(fn));
  if (metric_queue_hwm_ != nullptr) {
    metric_queue_hwm_->Max(static_cast<int64_t>(queue_.Size()));
  }
  return id;
}

EventId ClockDomain::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool ClockDomain::Cancel(EventId id) { return queue_.Cancel(id); }

namespace {

// State of one periodic series. The token returned to the caller is the
// only shared_ptr; scheduled events hold weak_ptrs, so dropping the token
// makes the next firing a no-op and the chain stops rescheduling.
struct PeriodicState {
  SimDuration period;
  std::function<void()> fn;
};

void FirePeriodic(ClockDomain* domain, const std::weak_ptr<PeriodicState>& weak) {
  std::shared_ptr<PeriodicState> state = weak.lock();
  if (state == nullptr) {
    return;  // token dropped: series canceled
  }
  state->fn();
  domain->ScheduleAfter(state->period,
                        [domain, weak] { FirePeriodic(domain, weak); });
}

}  // namespace

ClockDomain::PeriodicToken ClockDomain::SchedulePeriodic(SimDuration period,
                                                         std::function<void()> fn) {
  if (period <= 0) {
    period = 1;
  }
  auto state = std::make_shared<PeriodicState>();
  state->period = period;
  state->fn = std::move(fn);
  std::weak_ptr<PeriodicState> weak = state;
  ScheduleAfter(period, [this, weak] { FirePeriodic(this, weak); });
  return state;
}

SimTime ClockDomain::Post(size_t target, SimDuration latency, std::function<void()> fn) {
  const SimDuration lookahead = sim_->lookahead();
  if (latency < lookahead) {
    latency = lookahead;  // the conservative-window contract
  }
  const SimTime at = now_ + latency;
  outbox_.push_back(CrossPost{target % sim_->cpu_count(), at, post_seq_++, std::move(fn)});
  return at;
}

void ClockDomain::StepOne() {
  EventQueue::Fired fired = queue_.Pop();
  now_ = fired.at;
  ++events_executed_;
  if (metric_events_ != nullptr) {
    metric_events_->Inc();
  }
  fired.fn();
}

void ClockDomain::ExecuteWindow(SimTime limit) {
  // NextTime() returns kNeverTime on an empty queue, which never compares
  // <= limit (limit < kNeverTime by construction in RunWindows).
  while (queue_.NextTime() <= limit) {
    StepOne();
  }
}

}  // namespace tempo
