// Per-CPU clock domain for the tempo discrete-event simulator.
//
// A ClockDomain is one simulated CPU's share of the simulation: its own
// virtual clock, pending-event queue, CPU accounting model, RNG stream and
// cross-domain mailbox. Domains advance independently inside a conservative
// time window (lookahead = the minimum cross-CPU latency, set on the owning
// Simulator), which is what lets N domains execute on N worker threads with
// results byte-identical to the serial driver:
//
//   * Everything a domain touches while executing a window — queue, clock,
//     RNG, Cpu, obs instruments — is domain-local. No locks, no atomics.
//   * The only cross-domain channel is Post(): an IPI-style message whose
//     delivery latency is clamped to at least the lookahead, so it always
//     lands beyond the current window and is merged into the receiver's
//     queue at the next barrier, in a deterministic (time, sender, sequence)
//     order that does not depend on thread interleaving.
//
// Code running inside a domain's events must use the domain's clock and
// RNG, never another domain's (and not Simulator::Now(), which reads the
// globally committed window start). The OS personalities take a domain
// handle for exactly this reason.

#ifndef TEMPO_SRC_SIM_CLOCK_DOMAIN_H_
#define TEMPO_SRC_SIM_CLOCK_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace tempo {

class Simulator;

// One simulated CPU's clock, event queue, RNG stream and mailbox.
class ClockDomain {
 public:
  ClockDomain(const ClockDomain&) = delete;
  ClockDomain& operator=(const ClockDomain&) = delete;

  // This domain's virtual time. Inside an event callback this is the
  // firing event's timestamp, exactly like the single-CPU simulator.
  SimTime Now() const { return now_; }

  // CPU index of this domain within the owning simulator.
  size_t index() const { return index_; }

  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }

  // Schedules `fn` on this domain at absolute time `at` (clamped to the
  // domain's current time). Must be called from this domain's own events,
  // or from the driving thread while the simulation is not running.
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` after `delay` (clamped to >= 0) on this domain.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event on this domain; false if it already fired or
  // was canceled. Same calling rules as ScheduleAt.
  bool Cancel(EventId id);

  // Keeps `fn` firing on this domain every `period` for as long as the
  // returned token is held (see Simulator::SchedulePeriodic).
  using PeriodicToken = std::shared_ptr<void>;
  [[nodiscard]] PeriodicToken SchedulePeriodic(SimDuration period,
                                               std::function<void()> fn);

  // Sends `fn` to domain `target` (an IPI, a remote wakeup, a cross-CPU
  // work item). Delivery happens at the receiver's clock at time
  // now + max(latency, lookahead): the clamp is what makes the window
  // barrier conservative, mirroring real inter-processor interrupt cost.
  // Posts are merged into the receiver's queue at the next window barrier
  // in (delivery time, sender index, send order) order, so the delivery
  // schedule is identical however many worker threads drive the run.
  // Posting to this domain itself is allowed. Returns the delivery time.
  SimTime Post(size_t target, SimDuration latency, std::function<void()> fn);

  // Number of events this domain has executed.
  uint64_t events_executed() const { return events_executed_; }

  // Live (scheduled, not yet fired or canceled) events on this domain.
  size_t PendingEvents() const { return queue_.Size(); }

  Rng& rng() { return rng_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }

 private:
  friend class Simulator;

  // One undelivered cross-domain message.
  struct CrossPost {
    size_t target = 0;
    SimTime at = 0;     // delivery time at the receiver
    uint64_t seq = 0;   // sender-local send order (mailbox tiebreaker)
    std::function<void()> fn;
  };

  ClockDomain(Simulator* sim, size_t index, uint64_t rng_seed,
              obs::Counter* metric_events, obs::Gauge* metric_queue_hwm);

  // Runs one event (requires a non-empty queue) and advances the clock.
  void StepOne();

  // Executes every local event with timestamp <= `limit` (the current
  // window's inclusive upper bound). Only touches domain-local state.
  void ExecuteWindow(SimTime limit);

  Simulator* sim_;
  size_t index_;
  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  EventQueue queue_;
  Rng rng_;
  Cpu cpu_;

  // Outgoing cross-domain posts accumulated during the current window;
  // drained by the Simulator at the barrier (never concurrently with
  // ExecuteWindow).
  std::vector<CrossPost> outbox_;
  uint64_t post_seq_ = 0;

  // Per-domain obs instruments (nullptr when the owning simulator's
  // stats_label is empty).
  obs::Counter* metric_events_ = nullptr;
  obs::Gauge* metric_queue_hwm_ = nullptr;
};

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_CLOCK_DOMAIN_H_
