#include "src/sim/cpu.h"

namespace tempo {

void Cpu::EnterIdle(SimTime now) {
  if (idle_) {
    return;
  }
  idle_ = true;
  idle_since_ = now;
}

void Cpu::ExitIdle(SimTime now) {
  if (!idle_) {
    return;
  }
  idle_ = false;
  idle_time_ += now - idle_since_;
  ++wakeups_;
}

void Cpu::OnInterrupt(SimTime now, bool timer) {
  ++interrupts_;
  if (timer) {
    ++timer_interrupts_;
  }
  ExitIdle(now);
}

void Cpu::Finish(SimTime now) {
  if (idle_) {
    idle_time_ += now - idle_since_;
    idle_since_ = now;
  }
}

}  // namespace tempo
