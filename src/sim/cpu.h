// CPU accounting model.
//
// The simulator is functional, not cycle-accurate; this model exists to
// answer the questions the paper asks of the hardware:
//   * how many times was the CPU woken from idle (power proxy, Section 5.3)?
//   * how many timer interrupts were serviced?
//   * how many cycles did instrumentation itself consume (Section 3.2)?
// Cycle accounting uses a fixed clock frequency matching the paper's Linux
// testbed (Intel Xeon X5355 @ 2.66 GHz).

#ifndef TEMPO_SRC_SIM_CPU_H_
#define TEMPO_SRC_SIM_CPU_H_

#include <cstdint>

#include "src/sim/time.h"

namespace tempo {

// Tracks interrupts, idle residency and wakeups for one simulated CPU.
class Cpu {
 public:
  // `ghz` is the nominal clock frequency used for cycle<->time conversion.
  explicit Cpu(double ghz = 2.66) : hz_(ghz * 1e9) {}

  // Marks the CPU idle (entering a low-power C-state) at `now`.
  void EnterIdle(SimTime now);

  // Marks the CPU busy at `now`. If it was idle, counts a wakeup and
  // accumulates idle residency.
  void ExitIdle(SimTime now);

  // Records delivery of a hardware interrupt at `now`. An interrupt
  // delivered while idle implicitly wakes the CPU (counted via ExitIdle).
  // `timer` distinguishes periodic-tick/timer interrupts from device ones.
  void OnInterrupt(SimTime now, bool timer);

  // Charges `cycles` of work to the CPU (e.g. instrumentation overhead).
  void ChargeCycles(uint64_t cycles) { charged_cycles_ += cycles; }

  // Finalizes idle accounting at end-of-run.
  void Finish(SimTime now);

  // Converts a cycle count into simulated time at the nominal frequency.
  SimDuration CyclesToDuration(uint64_t cycles) const {
    return static_cast<SimDuration>(static_cast<double>(cycles) / hz_ * 1e9);
  }

  bool idle() const { return idle_; }
  uint64_t wakeups() const { return wakeups_; }
  uint64_t interrupts() const { return interrupts_; }
  uint64_t timer_interrupts() const { return timer_interrupts_; }
  uint64_t charged_cycles() const { return charged_cycles_; }
  SimDuration idle_time() const { return idle_time_; }

 private:
  double hz_;
  bool idle_ = false;
  SimTime idle_since_ = 0;
  SimDuration idle_time_ = 0;
  uint64_t wakeups_ = 0;
  uint64_t interrupts_ = 0;
  uint64_t timer_interrupts_ = 0;
  uint64_t charged_cycles_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_CPU_H_
