#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace tempo {

EventId EventQueue::Schedule(SimTime at, std::function<void()> fn) {
  const EventId id = next_seq_++;
  auto slot = std::make_shared<std::function<void()>>(std::move(fn));
  index_.emplace_back(id, slot);
  heap_.push(Entry{at, id, std::move(slot)});
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // index_ is sorted by id (ids are assigned monotonically), so binary
  // search the live suffix.
  auto begin = index_.begin() + static_cast<ptrdiff_t>(index_head_);
  auto it = std::lower_bound(begin, index_.end(), id,
                             [](const auto& p, EventId want) { return p.first < want; });
  if (it == index_.end() || it->first != id) {
    return false;
  }
  auto slot = it->second.lock();
  if (!slot || !*slot) {
    return false;  // already fired or already canceled
  }
  *slot = nullptr;
  assert(live_ > 0);
  --live_;
  return true;
}

SimTime EventQueue::NextTime() const {
  // The heap head may be a canceled entry; we cannot drop it here without
  // mutating, so scan conservatively via const_cast-free copy of behaviour:
  // canceled entries are dropped in Pop()/DropCanceledHead(). For NextTime
  // we only need an upper bound that is exact when the head is live, which
  // Simulator guarantees by calling DropCanceledHead() via Pop(). To keep
  // the answer exact we treat this method as logically non-const mutation of
  // the lazy-deletion state.
  auto* self = const_cast<EventQueue*>(this);
  self->DropCanceledHead();
  if (heap_.empty()) {
    return kNeverTime;
  }
  return heap_.top().at;
}

void EventQueue::DropCanceledHead() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.fn && *top.fn) {
      return;
    }
    heap_.pop();
  }
  // Heap drained: compact the id index.
  index_.clear();
  index_head_ = 0;
}

EventQueue::Fired EventQueue::Pop() {
  DropCanceledHead();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  assert(live_ > 0);
  --live_;
  Fired fired{top.at, top.id, std::move(*top.fn)};
  *top.fn = nullptr;  // mark fired so Cancel() on this id returns false
  // Compact the index prefix: everything with id <= this one that is dead.
  while (index_head_ < index_.size()) {
    auto slot = index_[index_head_].second.lock();
    if (slot && *slot) {
      break;
    }
    ++index_head_;
  }
  if (index_head_ > 4096 && index_head_ * 2 > index_.size()) {
    index_.erase(index_.begin(), index_.begin() + static_cast<ptrdiff_t>(index_head_));
    index_head_ = 0;
  }
  return fired;
}

}  // namespace tempo
