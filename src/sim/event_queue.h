// Pending-event priority queue for the discrete-event simulator.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which the OS models rely on: a clock interrupt scheduled before a device
// interrupt at the same tick is delivered first.

#ifndef TEMPO_SRC_SIM_EVENT_QUEUE_H_
#define TEMPO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace tempo {

// Opaque identifier of a scheduled event; 0 is "invalid".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// A time-ordered queue of one-shot callbacks with O(log n) insertion and
// cancellation-by-flag (lazy deletion).
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `fn` to run at absolute time `at`. Returns an id usable with
  // Cancel(). `at` may be in the past relative to previously popped events;
  // the Simulator guards against that, not the queue.
  EventId Schedule(SimTime at, std::function<void()> fn);

  // Cancels a pending event. Returns false if the event already ran, was
  // already canceled, or the id is unknown.
  bool Cancel(EventId id);

  // True if no live (non-canceled) events remain.
  bool Empty() const { return live_ == 0; }

  // Number of live events.
  size_t Size() const { return live_; }

  // Time of the earliest live event; kNeverTime if empty.
  SimTime NextTime() const;

  // Removes and returns the earliest live event. Requires !Empty().
  struct Fired {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  Fired Pop();

  // Total events ever scheduled (live + fired + canceled). Monotonic.
  uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    SimTime at;
    EventId id;  // also the FIFO tiebreaker: ids increase monotonically
    std::shared_ptr<std::function<void()>> fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return id > other.id;
    }
  };

  void DropCanceledHead();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Canceled events keep their heap slot but have their function reset;
  // `live_` tracks the number of entries with a live function.
  size_t live_ = 0;
  EventId next_seq_ = 1;
  // Map from id to the shared function slot, so Cancel can clear it.
  // We use a sorted vector window keyed by monotonically increasing ids.
  std::vector<std::pair<EventId, std::weak_ptr<std::function<void()>>>> index_;
  size_t index_head_ = 0;  // compacted prefix
};

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_EVENT_QUEUE_H_
