#include "src/sim/process.h"

namespace tempo {

ProcessTable::ProcessTable() {
  // pid 0 is always the kernel; tid 0 is its housekeeping thread.
  processes_.push_back(Process{kKernelPid, "kernel", /*is_kernel=*/true});
  thread_owner_.push_back(kKernelPid);
}

Pid ProcessTable::AddProcess(const std::string& name, bool is_kernel) {
  const Pid pid = static_cast<Pid>(processes_.size());
  processes_.push_back(Process{pid, name, is_kernel});
  return pid;
}

Tid ProcessTable::AddThread(Pid pid) {
  const Tid tid = static_cast<Tid>(thread_owner_.size());
  thread_owner_.push_back(pid);
  return tid;
}

}  // namespace tempo
