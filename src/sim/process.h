// Process and thread registry.
//
// The paper's analysis keys trace records by process id and thread id to
// split user-space from kernel activity (Tables 1-2) and to build the
// per-process rate timelines of Figure 1. tempo keeps a flat registry; the
// OS models own the actual behaviour of their processes.

#ifndef TEMPO_SRC_SIM_PROCESS_H_
#define TEMPO_SRC_SIM_PROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tempo {

// Process identifier; pid 0 is the kernel itself.
using Pid = int32_t;
// Thread identifier, unique across the system.
using Tid = int32_t;

inline constexpr Pid kKernelPid = 0;

// Static description of a simulated process.
struct Process {
  Pid pid = kKernelPid;
  std::string name;
  // True for the kernel pseudo-process and kernel subsystem actors; trace
  // records from kernel processes count as "kernel" accesses in Tables 1-2.
  bool is_kernel = false;
};

// Registry of processes and threads. Registration order determines ids,
// keeping runs deterministic.
class ProcessTable {
 public:
  ProcessTable();

  // Registers a process and returns its pid (>= 1 for user processes).
  Pid AddProcess(const std::string& name, bool is_kernel = false);

  // Registers a thread belonging to `pid` and returns its tid.
  Tid AddThread(Pid pid);

  // Looks up a process; pid must be valid.
  const Process& Get(Pid pid) const { return processes_.at(static_cast<size_t>(pid)); }

  // Owning process of a thread; tid must be valid.
  Pid ThreadProcess(Tid tid) const { return thread_owner_.at(static_cast<size_t>(tid)); }

  const std::vector<Process>& processes() const { return processes_; }

 private:
  std::vector<Process> processes_;
  std::vector<Pid> thread_owner_;  // indexed by tid
};

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_PROCESS_H_
