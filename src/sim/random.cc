#include "src/sim/random.h"

#include <cmath>

namespace tempo {

namespace {

// SplitMix64: used only to expand the seed into generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller transform; we deliberately discard the second variate to keep
  // the stream position a simple function of the call count.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Pareto(double xm, double alpha) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xd1f04e57a7e5eedULL); }

}  // namespace tempo
