// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in tempo (network latency, workload think time,
// scheduling jitter) flows through an explicitly seeded Rng so that every
// trace is exactly reproducible. The generator is xoshiro256** seeded via
// SplitMix64; distributions are implemented locally rather than via
// <random> so that results are identical across standard libraries.

#ifndef TEMPO_SRC_SIM_RANDOM_H_
#define TEMPO_SRC_SIM_RANDOM_H_

#include <cstdint>

namespace tempo {

// Deterministic random number generator with common distributions.
//
// Not thread-safe; simulations are single-threaded by design.
class Rng {
 public:
  // Seeds the generator. Two Rng instances with equal seeds produce
  // identical streams on all platforms.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Returns the next raw 64-bit value.
  uint64_t NextU64();

  // Returns a value uniformly distributed in [0, 1).
  double NextDouble();

  // Returns a value uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  // Returns an integer uniformly distributed in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Normally distributed value (Box-Muller; one value per call).
  double Normal(double mean, double stddev);

  // Log-normally distributed value; mu/sigma are the parameters of the
  // underlying normal distribution.
  double LogNormal(double mu, double sigma);

  // Pareto-distributed value with scale xm (> 0) and shape alpha (> 0).
  // Heavy-tailed; used for request sizes and pathological wait times.
  double Pareto(double xm, double alpha);

  // Forks an independent generator whose stream is a deterministic function
  // of this generator's current state. Used to give subsystems their own
  // streams so adding a consumer does not perturb the others.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_RANDOM_H_
