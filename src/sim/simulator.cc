#include "src/sim/simulator.h"

#include <utility>

namespace tempo {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  return queue_.Schedule(at, std::move(fn));
}

EventId Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return queue_.Cancel(id); }

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.Pop();
  now_ = fired.at;
  ++events_executed_;
  fired.fn();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      break;
    }
    Step();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  cpu_.Finish(now_);
}

}  // namespace tempo
