#include "src/sim/simulator.h"

#include <utility>

#include "src/obs/probe.h"

namespace tempo {

Simulator::Simulator(uint64_t seed)
    : rng_(seed),
      metric_events_(obs::Registry::Global().GetCounter(
          "sim_events_executed", {}, "Events executed by the sim event loop")),
      metric_queue_hwm_(obs::Registry::Global().GetGauge(
          "sim_event_queue_depth_hwm", {},
          "High-water mark of live events in the pending-event queue")) {}

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  const EventId id = queue_.Schedule(at, std::move(fn));
  metric_queue_hwm_->Max(static_cast<int64_t>(queue_.Size()));
  return id;
}

EventId Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return queue_.Cancel(id); }

namespace {

// State of one periodic series. The token returned to the caller is the
// only shared_ptr; scheduled events hold weak_ptrs, so dropping the token
// makes the next firing a no-op and the chain stops rescheduling.
struct PeriodicState {
  SimDuration period;
  std::function<void()> fn;
};

void FirePeriodic(Simulator* sim, const std::weak_ptr<PeriodicState>& weak) {
  std::shared_ptr<PeriodicState> state = weak.lock();
  if (state == nullptr) {
    return;  // token dropped: series canceled
  }
  state->fn();
  sim->ScheduleAfter(state->period, [sim, weak] { FirePeriodic(sim, weak); });
}

}  // namespace

Simulator::PeriodicToken Simulator::SchedulePeriodic(SimDuration period,
                                                     std::function<void()> fn) {
  if (period <= 0) {
    period = 1;
  }
  auto state = std::make_shared<PeriodicState>();
  state->period = period;
  state->fn = std::move(fn);
  std::weak_ptr<PeriodicState> weak = state;
  ScheduleAfter(period, [this, weak] { FirePeriodic(this, weak); });
  return state;
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.Pop();
  now_ = fired.at;
  ++events_executed_;
  metric_events_->Inc();
  fired.fn();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      break;
    }
    Step();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
  cpu_.Finish(now_);
}

namespace {

// The simulator whose virtual clock backs the obs probe clock. A plain
// global: the probe clock is a captureless function pointer, and tempo
// processes drive one simulation at a time.
Simulator* g_probe_clock_sim = nullptr;

uint64_t SimProbeClock() {
  return static_cast<uint64_t>(g_probe_clock_sim->Now());
}

}  // namespace

void InstallSimProbeClock(Simulator* sim) {
  g_probe_clock_sim = sim;
  obs::SetProbeClock(sim != nullptr ? &SimProbeClock : nullptr);
}

}  // namespace tempo
