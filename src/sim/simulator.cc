#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "src/obs/probe.h"

namespace tempo {

namespace {

// The simulator whose virtual clock backs the obs probe clock. A plain
// global: the probe clock is a captureless function pointer, and tempo
// processes drive one simulation at a time. ~Simulator() uninstalls
// itself, so this can never dangle past the simulator's lifetime.
Simulator* g_probe_clock_sim = nullptr;

uint64_t SimProbeClock() {
  return static_cast<uint64_t>(g_probe_clock_sim->Now());
}

// Derives domain i's RNG seed from the master seed. Domain 0 keeps the
// master seed verbatim so a 1-CPU simulator reproduces the classic
// single-threaded streams bit for bit; the others get SplitMix64-scrambled
// independent streams.
uint64_t DomainSeed(uint64_t seed, size_t index) {
  if (index == 0) {
    return seed;
  }
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(index);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Simulator::Simulator(uint64_t seed) : Simulator(Options{.seed = seed}) {}

Simulator::Simulator(const Options& options)
    : lookahead_(std::max<SimDuration>(1, options.lookahead)) {
  const size_t cpus = std::max<size_t>(1, options.cpus);
  obs::Registry& reg = obs::Registry::Global();
  domains_.reserve(cpus);
  for (size_t i = 0; i < cpus; ++i) {
    obs::Counter* events = nullptr;
    obs::Gauge* hwm = nullptr;
    if (!options.stats_label.empty()) {
      const obs::Labels labels = {{"cpu", std::to_string(i)},
                                  {"sim", options.stats_label}};
      events = reg.GetCounter("sim_events_executed", labels,
                              "Events executed by the sim event loop");
      hwm = reg.GetGauge("sim_event_queue_depth_hwm", labels,
                         "High-water mark of live events in the pending-event queue");
      // The gauge is per-instance, not per-process: a fresh simulator
      // re-baselines it so back-to-back sims sharing a label never report
      // a stale high-water mark (two sims *alive at once* must still use
      // distinct labels, like TimerService).
      hwm->Set(0);
    }
    domains_.push_back(std::unique_ptr<ClockDomain>(
        new ClockDomain(this, i, DomainSeed(options.seed, i), events, hwm)));
  }
}

Simulator::~Simulator() {
  if (g_probe_clock_sim == this) {
    InstallSimProbeClock(nullptr);
  }
}

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  return domain(0).ScheduleAt(at, std::move(fn));
}

EventId Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return domain(0).ScheduleAfter(delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return domain(0).Cancel(id); }

Simulator::PeriodicToken Simulator::SchedulePeriodic(SimDuration period,
                                                     std::function<void()> fn) {
  return domain(0).SchedulePeriodic(period, std::move(fn));
}

uint64_t Simulator::events_executed() const {
  uint64_t total = 0;
  for (const auto& d : domains_) {
    total += d->events_executed_;
  }
  return total;
}

size_t Simulator::PendingEvents() const {
  size_t total = 0;
  for (const auto& d : domains_) {
    total += d->queue_.Size() + d->outbox_.size();
  }
  return total;
}

void Simulator::FinishCpus() {
  for (auto& d : domains_) {
    d->cpu_.Finish(d->now_);
  }
}

bool Simulator::Step() {
  ClockDomain& d0 = *domains_[0];
  const SimTime next = d0.queue_.NextTime();
  if (next == kNeverTime) {
    return false;
  }
  // Publish the event's timestamp before running it, so probe-clock reads
  // inside the callback see the firing time (classic semantics).
  committed_now_.store(next, std::memory_order_relaxed);
  d0.StepOne();
  return true;
}

void Simulator::RunLegacy(SimTime deadline) {
  // The classic event-at-a-time loop on the boot CPU, preserved exactly
  // for single-CPU simulators (every trace produced before clock domains
  // existed reproduces bit for bit).
  ClockDomain& d0 = *domains_[0];
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    const SimTime next = d0.queue_.NextTime();
    if (next == kNeverTime || next > deadline) {
      break;
    }
    Step();
  }
  if (deadline != kNeverTime && !stop_.load(std::memory_order_relaxed) &&
      d0.now_ < deadline) {
    d0.now_ = deadline;
    committed_now_.store(deadline, std::memory_order_relaxed);
  }
  // Finalize idle accounting on every exit path — Run() used to skip this,
  // making wakeup/idle stats disagree between the two drivers.
  FinishCpus();
}

void Simulator::Run() {
  if (domains_.size() == 1) {
    RunLegacy(kNeverTime);
    return;
  }
  RunWindows(kNeverTime, 1);
}

void Simulator::RunUntil(SimTime deadline) {
  if (domains_.size() == 1) {
    RunLegacy(deadline);
    return;
  }
  RunWindows(deadline, 1);
}

void Simulator::RunParallel(size_t threads) {
  if (domains_.size() == 1) {
    RunLegacy(kNeverTime);
    return;
  }
  RunWindows(kNeverTime, threads == 0 ? domains_.size() : threads);
}

void Simulator::RunUntilParallel(SimTime deadline, size_t threads) {
  if (domains_.size() == 1) {
    RunLegacy(deadline);
    return;
  }
  RunWindows(deadline, threads == 0 ? domains_.size() : threads);
}

size_t Simulator::DeliverMailboxes() {
  struct Delivery {
    size_t target;
    SimTime at;
    size_t sender;
    uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<Delivery> all;
  for (size_t sender = 0; sender < domains_.size(); ++sender) {
    for (ClockDomain::CrossPost& post : domains_[sender]->outbox_) {
      all.push_back(Delivery{post.target, post.at, sender, post.seq, std::move(post.fn)});
    }
    domains_[sender]->outbox_.clear();
  }
  // (time, sender, send order) per receiver: the delivery schedule is a
  // pure function of what the domains posted, not of thread interleaving.
  std::sort(all.begin(), all.end(), [](const Delivery& a, const Delivery& b) {
    return std::tie(a.target, a.at, a.sender, a.seq) <
           std::tie(b.target, b.at, b.sender, b.seq);
  });
  for (Delivery& d : all) {
    ClockDomain& dom = *domains_[d.target];
    // Post() clamps latency to the lookahead, so delivery can never land
    // in the receiver's executed past.
    assert(d.at >= dom.now_);
    dom.ScheduleAt(d.at, std::move(d.fn));
  }
  return all.size();
}

namespace {

// Barrier-style worker pool: the coordinator publishes one window limit per
// generation, workers execute their (static, round-robin) share of the
// domains, the coordinator waits for all of them. The mutex hand-offs give
// the barrier the happens-before edges the domain state needs.
class WindowPool {
 public:
  // `exec` runs one domain up to the window limit; it must be callable
  // concurrently for distinct domain indices.
  WindowPool(size_t domain_count, size_t threads,
             std::function<void(size_t, SimTime)> exec)
      : exec_(std::move(exec)),
        domain_count_(domain_count),
        worker_count_(std::min(threads, domain_count)) {
    workers_.reserve(worker_count_);
    for (size_t w = 0; w < worker_count_; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  WindowPool(const WindowPool&) = delete;
  WindowPool& operator=(const WindowPool&) = delete;

  ~WindowPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }

  // Executes every domain up to `limit`; returns once all are done.
  void RunWindow(SimTime limit) {
    std::unique_lock<std::mutex> lock(mu_);
    limit_ = limit;
    pending_ = worker_count_;
    ++generation_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop(size_t id) {
    uint64_t seen = 0;
    while (true) {
      SimTime limit;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (shutdown_) {
          return;
        }
        limit = limit_;
      }
      for (size_t d = id; d < domain_count_; d += worker_count_) {
        exec_(d, limit);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) {
          done_cv_.notify_one();
        }
      }
    }
  }

  const std::function<void(size_t, SimTime)> exec_;
  const size_t domain_count_;
  const size_t worker_count_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  SimTime limit_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

void Simulator::RunWindows(SimTime deadline, size_t threads) {
  stop_.store(false, std::memory_order_relaxed);
  const bool drain = deadline == kNeverTime;
  std::unique_ptr<WindowPool> pool;
  if (threads > 1) {
    pool = std::make_unique<WindowPool>(
        domains_.size(), threads,
        [this](size_t d, SimTime limit) { domains_[d]->ExecuteWindow(limit); });
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    DeliverMailboxes();
    SimTime t = kNeverTime;
    for (const auto& d : domains_) {
      t = std::min(t, d->queue_.NextTime());
    }
    if (t == kNeverTime || (!drain && t > deadline)) {
      break;  // outboxes were just drained, so nothing is in flight either
    }
    // The window is the half-open interval [t, t + lookahead): posts made
    // inside it are delivered at >= t + lookahead, i.e. never into a
    // window that is already executing.
    committed_now_.store(t, std::memory_order_relaxed);
    SimTime limit = t > kNeverTime - lookahead_ ? kNeverTime - 1 : t + lookahead_ - 1;
    if (!drain) {
      limit = std::min(limit, deadline);
    }
    if (pool != nullptr) {
      pool->RunWindow(limit);
    } else {
      for (auto& d : domains_) {
        d->ExecuteWindow(limit);
      }
    }
  }
  if (!drain && !stop_.load(std::memory_order_relaxed)) {
    for (auto& d : domains_) {
      if (d->now_ < deadline) {
        d->now_ = deadline;
      }
    }
    committed_now_.store(deadline, std::memory_order_relaxed);
  }
  FinishCpus();
}

void InstallSimProbeClock(Simulator* sim) {
  g_probe_clock_sim = sim;
  obs::SetProbeClock(sim != nullptr ? &SimProbeClock : nullptr);
}

}  // namespace tempo
