// The tempo discrete-event simulator.
//
// A Simulator owns virtual time, the pending-event queue, the RNG, the CPU
// model and the process registry. OS models (src/oslinux, src/osvista) build
// their clock interrupts and timer subsystems on top of ScheduleAt/Cancel;
// workloads never touch the event queue directly, only OS timer APIs —
// mirroring the layering the paper describes in Section 2.

#ifndef TEMPO_SRC_SIM_SIMULATOR_H_
#define TEMPO_SRC_SIM_SIMULATOR_H_

#include <functional>
#include <memory>

#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/process.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace tempo {

// Single-threaded discrete-event simulation driver.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `at`. Events scheduled in the past fire
  // at the current time (never travel backwards). Returns a cancelable id.
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` after `delay` (clamped to >= 0).
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event; false if it already fired or was canceled.
  bool Cancel(EventId id);

  // Keeps `fn` firing every `period` (first firing one period from now) for
  // as long as the returned token is held; dropping the token cancels the
  // series after at most one more already-scheduled firing's bookkeeping
  // (the callback itself will not run again). Background services — e.g. a
  // RelayDrainer polling trace channels — hook the event loop this way
  // without managing their own rescheduling.
  using PeriodicToken = std::shared_ptr<void>;
  [[nodiscard]] PeriodicToken SchedulePeriodic(SimDuration period,
                                               std::function<void()> fn);

  // Runs one event; returns false if the queue is empty.
  bool Step();

  // Runs until the queue is empty or Stop() is called.
  void Run();

  // Runs until virtual time reaches `deadline` (events at exactly `deadline`
  // are executed), the queue drains, or Stop() is called. Time advances to
  // `deadline` even if the queue drained earlier.
  void RunUntil(SimTime deadline);

  // Runs for `duration` more virtual time.
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Requests that Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }

  // Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  // Number of live (scheduled, not yet fired or canceled) events.
  size_t PendingEvents() const { return queue_.Size(); }

  Rng& rng() { return rng_; }
  Cpu& cpu() { return cpu_; }
  ProcessTable& processes() { return processes_; }
  const ProcessTable& processes() const { return processes_; }

 private:
  SimTime now_ = 0;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
  EventQueue queue_;
  Rng rng_;
  Cpu cpu_;
  ProcessTable processes_;

  // Self-metrics (obs registry instruments, resolved once).
  obs::Counter* metric_events_ = nullptr;
  obs::Gauge* metric_queue_hwm_ = nullptr;
};

// Makes the obs probe clock read this simulator's virtual time (in
// nanoseconds) instead of the TSC, so metrics snapshots are deterministic
// and sim-mode runs perform no wall-clock reads. Pass nullptr to restore
// the default wall clock.
void InstallSimProbeClock(Simulator* sim);

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_SIMULATOR_H_
