// The tempo discrete-event simulator.
//
// A Simulator owns virtual time, per-CPU clock domains (clock_domain.h),
// the RNG, the CPU models and the process registry. OS models
// (src/oslinux, src/osvista) build their clock interrupts and timer
// subsystems on top of a domain's ScheduleAt/Cancel; workloads never touch
// the event queues directly, only OS timer APIs — mirroring the layering
// the paper describes in Section 2.
//
// Parallel execution model (CHRONOS-style per-CPU contexts): with
// Options::cpus = N the simulator owns N ClockDomains and advances them in
// conservative windows of `lookahead` virtual nanoseconds. Within a window
// every domain only touches domain-local state, so the windows can run on
// worker threads (RunParallel / RunUntilParallel); cross-domain events go
// through each domain's mailbox with latency >= lookahead and are merged
// at the barrier in a deterministic order. A threaded run is byte-identical
// to the serial run of the same seed — parallelism never costs determinism.

#ifndef TEMPO_SRC_SIM_SIMULATOR_H_
#define TEMPO_SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/clock_domain.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/process.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace tempo {

// Discrete-event simulation driver over one or more per-CPU clock domains.
class Simulator {
 public:
  struct Options {
    uint64_t seed = 1;
    // Number of simulated CPUs (clock domains). 1 keeps the classic
    // single-threaded event loop.
    size_t cpus = 1;
    // Conservative window width: the minimum cross-domain (IPI) latency.
    // Posts with a smaller latency are clamped up to this. Larger values
    // mean fewer barriers (faster) but coarser cross-CPU timing.
    SimDuration lookahead = kMicrosecond;
    // Obs instrument label for this instance; instruments are registered
    // per domain as sim_*{cpu="<i>",sim="<label>"}. Two simulators alive
    // at once must use distinct labels (instruments are shared by label);
    // an empty label suppresses sim self-metrics entirely.
    std::string stats_label = "sim";
  };

  explicit Simulator(uint64_t seed = 1);
  explicit Simulator(const Options& options);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  // Uninstalls the sim probe clock if it still points at this instance
  // (InstallSimProbeClock), so a destroyed simulator can never be read
  // through a dangling probe-clock pointer.
  ~Simulator();

  // Globally committed virtual time: the current event's timestamp on a
  // single-CPU simulator, the current window start on a multi-CPU one.
  // Event callbacks on domain d should read domain(d).Now().
  SimTime Now() const { return committed_now_.load(std::memory_order_relaxed); }

  // Number of clock domains (simulated CPUs).
  size_t cpu_count() const { return domains_.size(); }

  // The per-CPU clock domain handles.
  ClockDomain& domain(size_t i) { return *domains_[i]; }
  const ClockDomain& domain(size_t i) const { return *domains_[i]; }

  // Cross-domain lookahead (minimum IPI latency).
  SimDuration lookahead() const { return lookahead_; }

  // --- Boot-CPU (domain 0) conveniences ---
  //
  // The classic single-CPU API; all of it delegates to domain 0, so code
  // written against the single-threaded simulator runs unchanged.

  // Schedules `fn` at absolute time `at` on domain 0. Events scheduled in
  // the past fire at the current time (never travel backwards). Returns a
  // cancelable id.
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` after `delay` (clamped to >= 0) on domain 0.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending domain-0 event; false if it already fired or was
  // canceled.
  bool Cancel(EventId id);

  // Keeps `fn` firing every `period` (first firing one period from now) for
  // as long as the returned token is held; dropping the token cancels the
  // series after at most one more already-scheduled firing's bookkeeping
  // (the callback itself will not run again). Background services — e.g. a
  // RelayDrainer polling trace channels — hook the event loop this way
  // without managing their own rescheduling.
  using PeriodicToken = ClockDomain::PeriodicToken;
  [[nodiscard]] PeriodicToken SchedulePeriodic(SimDuration period,
                                               std::function<void()> fn);

  Rng& rng() { return domain(0).rng(); }
  Cpu& cpu() { return domain(0).cpu(); }

  // --- Drivers ---

  // Runs one domain-0 event; returns false if its queue is empty. Only
  // meaningful on a single-CPU simulator (multi-CPU runs use the window
  // drivers below).
  bool Step();

  // Runs until every queue is empty or Stop() is called. Finalizes each
  // domain's idle accounting (Cpu::Finish) on every exit path.
  void Run();

  // Runs until virtual time reaches `deadline` (events at exactly
  // `deadline` are executed), the queues drain, or Stop() is called. Every
  // domain's clock advances to `deadline` even if its queue drained
  // earlier.
  void RunUntil(SimTime deadline);

  // Runs for `duration` more virtual time.
  void RunFor(SimDuration duration) { RunUntil(Now() + duration); }

  // Threaded equivalents: advance the domains on `threads` worker threads
  // (0 = one per domain), window by window. Produce byte-identical results
  // to Run()/RunUntil() for the same seed. Events executing concurrently
  // belong to different domains and must only touch domain-local state
  // (their domain's clock/RNG/Cpu and structures pinned to that domain).
  void RunParallel(size_t threads = 0);
  void RunUntilParallel(SimTime deadline, size_t threads = 0);

  // Requests that the run return. Single-CPU: after the current event.
  // Multi-CPU: at the end of the current window (both drivers agree, so
  // stopping cannot break serial/threaded identity). Callable from any
  // domain's events.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  // Number of events executed so far, across all domains. Quiescent read.
  uint64_t events_executed() const;

  // Number of live (scheduled, not yet fired or canceled) events across
  // all domains, plus undelivered cross-domain posts. Quiescent read.
  size_t PendingEvents() const;

  ProcessTable& processes() { return processes_; }
  const ProcessTable& processes() const { return processes_; }

 private:
  friend class ClockDomain;

  // Windowed driver shared by the serial and threaded multi-CPU paths.
  // `deadline` == kNeverTime means run to drain. `threads` == 1 executes
  // windows inline in domain-index order.
  void RunWindows(SimTime deadline, size_t threads);

  // Moves every outbox entry into its target domain's queue, in
  // (delivery time, sender index, send order) order. Returns the number
  // delivered. Runs only at a barrier (no domain is executing).
  size_t DeliverMailboxes();

  // Single-CPU fast path preserving the classic event-at-a-time loop.
  void RunLegacy(SimTime deadline);

  // Finalizes idle accounting on every domain at its local clock.
  void FinishCpus();

  SimDuration lookahead_;
  std::atomic<SimTime> committed_now_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<ClockDomain>> domains_;
  ProcessTable processes_;
};

// Makes the obs probe clock read this simulator's committed virtual time
// (in nanoseconds) instead of the TSC, so metrics snapshots are
// deterministic and sim-mode runs perform no wall-clock reads. Pass
// nullptr to restore the default wall clock. The installed simulator
// auto-uninstalls itself on destruction.
void InstallSimProbeClock(Simulator* sim);

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_SIMULATOR_H_
