#include "src/sim/time.h"

#include <cmath>
#include <cstdio>

namespace tempo {

std::string FormatDuration(SimDuration d) {
  const char* sign = "";
  if (d < 0) {
    sign = "-";
    d = -d;
  }
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.6gs", sign, ToSeconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.6gms", sign, ToMilliseconds(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.6gus",
                  sign, static_cast<double>(d) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldns", sign, static_cast<long long>(d));
  }
  return buf;
}

}  // namespace tempo
