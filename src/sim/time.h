// Virtual time types for the tempo discrete-event simulator.
//
// All simulated time is kept in signed 64-bit nanoseconds. Using a plain
// integral type (rather than std::chrono) keeps the arithmetic transparent in
// the OS models, which constantly convert between nanoseconds, jiffies
// (Linux, 4 ms at HZ=250) and clock-interrupt ticks (Vista, 15.625 ms), just
// like the kernels they model.

#ifndef TEMPO_SRC_SIM_TIME_H_
#define TEMPO_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace tempo {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

// Sentinel for "no time" / "never".
inline constexpr SimTime kNeverTime = INT64_MAX;

// Converts a duration in (fractional) seconds to SimDuration.
constexpr SimDuration FromSeconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

// Converts a duration in (fractional) milliseconds to SimDuration.
constexpr SimDuration FromMilliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

// Converts a duration in (fractional) microseconds to SimDuration.
constexpr SimDuration FromMicroseconds(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

// Converts a SimTime / SimDuration to fractional seconds.
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Converts a SimTime / SimDuration to fractional milliseconds.
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// Formats a duration with an adaptive unit suffix, e.g. "1.5ms", "7200s".
// Intended for human-readable analysis output, not for parsing.
std::string FormatDuration(SimDuration d);

}  // namespace tempo

#endif  // TEMPO_SRC_SIM_TIME_H_
