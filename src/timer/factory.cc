#include <memory>

#include "src/timer/hashed_wheel.h"
#include "src/timer/heap_queue.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/queue.h"
#include "src/timer/tree_queue.h"

namespace tempo {

std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name) {
  return MakeTimerQueue(name, name);
}

std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name,
                                           const std::string& stats_label) {
  if (name == "heap") {
    return std::make_unique<HeapTimerQueue>(stats_label);
  }
  if (name == "tree") {
    return std::make_unique<TreeTimerQueue>(stats_label);
  }
  if (name == "hashed_wheel") {
    return std::make_unique<HashedWheelTimerQueue>(kMillisecond, 256, stats_label);
  }
  if (name == "hierarchical_wheel") {
    return std::make_unique<HierarchicalWheelTimerQueue>(kMillisecond, stats_label);
  }
  return nullptr;
}

std::vector<std::string> TimerQueueNames() {
  return {"heap", "tree", "hashed_wheel", "hierarchical_wheel"};
}

TimerQueueStats TimerQueueStats::For(const std::string& queue) {
  obs::Registry& reg = obs::Registry::Global();
  const char* ops_help = "Timer-queue operations by implementation and op";
  const char* lat_help = "Timer-queue operation latency in probe-clock cycles";
  TimerQueueStats stats;
  stats.set_ops = reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "set"}}, ops_help);
  stats.cancel_ops =
      reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "cancel"}}, ops_help);
  stats.expire_ops =
      reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "expire"}}, ops_help);
  stats.set_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "set"}}, lat_help);
  stats.cancel_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "cancel"}}, lat_help);
  stats.advance_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "advance"}}, lat_help);
  return stats;
}

}  // namespace tempo
