#include <memory>

#include "src/timer/hashed_wheel.h"
#include "src/timer/heap_queue.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/queue.h"
#include "src/timer/tree_queue.h"

namespace tempo {

std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name) {
  if (name == "heap") {
    return std::make_unique<HeapTimerQueue>();
  }
  if (name == "tree") {
    return std::make_unique<TreeTimerQueue>();
  }
  if (name == "hashed_wheel") {
    return std::make_unique<HashedWheelTimerQueue>();
  }
  if (name == "hierarchical_wheel") {
    return std::make_unique<HierarchicalWheelTimerQueue>();
  }
  return nullptr;
}

std::vector<std::string> TimerQueueNames() {
  return {"heap", "tree", "hashed_wheel", "hierarchical_wheel"};
}

}  // namespace tempo
