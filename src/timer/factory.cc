// Factory and TimerQueue base-class behaviour: the options constructor,
// the batch-entry-point defaults, and the monotonic-Advance boundary check.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/timer/hashed_wheel.h"
#include "src/timer/heap_queue.h"
#include "src/timer/hierarchical_wheel.h"
#include "src/timer/lawn.h"
#include "src/timer/queue.h"
#include "src/timer/tree_queue.h"

namespace tempo {

size_t TimerQueue::Advance(SimTime now) {
  if (now < advance_watermark_) {
    // The contract says `now` must not go backwards; catch the violation
    // here so no implementation's hand/cascade state can be corrupted.
    ++backwards_advances_;
#ifndef NDEBUG
    std::fprintf(stderr,
                 "TimerQueue::Advance: clock went backwards (%lld < %lld) on %s\n",
                 static_cast<long long>(now),
                 static_cast<long long>(advance_watermark_), Name().c_str());
    std::abort();
#endif
    now = advance_watermark_;  // release: clamp to the high-water mark
  }
  advance_watermark_ = now;
  return AdvanceTo(now);
}

void TimerQueue::ScheduleBatch(std::span<TimerBatchEntry> entries,
                               const TimerQueueCallback& cb) {
  for (TimerBatchEntry& entry : entries) {
    entry.handle = Schedule(entry.expiry, cb);
  }
}

size_t TimerQueue::CancelBatch(std::span<const TimerHandle> handles) {
  size_t canceled = 0;
  for (const TimerHandle handle : handles) {
    canceled += Cancel(handle) ? 1 : 0;
  }
  return canceled;
}

std::unique_ptr<TimerQueue> MakeTimerQueue(const TimerQueueOptions& options) {
  const std::string& label =
      options.stats_label.empty() ? options.name : options.stats_label;
  if (options.name == "heap") {
    return std::make_unique<HeapTimerQueue>(label);
  }
  if (options.name == "tree") {
    return std::make_unique<TreeTimerQueue>(label);
  }
  if (options.name == "hashed_wheel") {
    return std::make_unique<HashedWheelTimerQueue>(options.granularity,
                                                   options.wheel_slots, label);
  }
  if (options.name == "hierarchical_wheel") {
    return std::make_unique<HierarchicalWheelTimerQueue>(options.granularity, label);
  }
  if (options.name == "lawn") {
    return std::make_unique<LawnTimerQueue>(options.granularity, label);
  }
  return nullptr;
}

std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name) {
  TimerQueueOptions options;
  options.name = name;
  return MakeTimerQueue(options);
}

std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name,
                                           const std::string& stats_label) {
  TimerQueueOptions options;
  options.name = name;
  options.stats_label = stats_label;
  return MakeTimerQueue(options);
}

std::vector<std::string> TimerQueueNames() {
  return {"heap", "tree", "hashed_wheel", "hierarchical_wheel", "lawn"};
}

TimerQueueStats TimerQueueStats::For(const std::string& queue) {
  obs::Registry& reg = obs::Registry::Global();
  const char* ops_help = "Timer-queue operations by implementation and op";
  const char* lat_help = "Timer-queue operation latency in probe-clock cycles";
  TimerQueueStats stats;
  stats.set_ops = reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "set"}}, ops_help);
  stats.cancel_ops =
      reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "cancel"}}, ops_help);
  stats.expire_ops =
      reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "expire"}}, ops_help);
  stats.resched_ops =
      reg.GetCounter("timer_ops", {{"queue", queue}, {"op", "reschedule"}}, ops_help);
  stats.set_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "set"}}, lat_help);
  stats.cancel_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "cancel"}}, lat_help);
  stats.advance_cycles =
      reg.GetHistogram("timer_op_cycles", {{"queue", queue}, {"op", "advance"}}, lat_help);
  return stats;
}

}  // namespace tempo
