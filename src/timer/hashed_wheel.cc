#include "src/timer/hashed_wheel.h"

#include <algorithm>
#include <utility>

namespace tempo {

HashedWheelTimerQueue::HashedWheelTimerQueue(SimDuration granularity, size_t slots,
                                             const std::string& stats_label)
    : granularity_(granularity > 0 ? granularity : kMillisecond),
      slots_(slots > 0 ? slots : 256),
      stats_(TimerQueueStats::For(stats_label)) {}

uint64_t HashedWheelTimerQueue::TickFor(SimTime expiry) const {
  if (expiry < 0) {
    expiry = 0;
  }
  // Round up so a timer never fires before its expiry.
  uint64_t tick = (static_cast<uint64_t>(expiry) + static_cast<uint64_t>(granularity_) - 1) /
                  static_cast<uint64_t>(granularity_);
  // Entries must land strictly ahead of the hand or they would wait a full
  // revolution; expired entries fire on the next tick instead.
  return std::max(tick, current_tick_ + 1);
}

TimerHandle HashedWheelTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  const uint64_t tick = TickFor(expiry);
  const size_t slot = static_cast<size_t>(tick % slots_.size());
  slots_[slot].push_back(Node{tick, handle, std::move(cb)});
  auto it = std::prev(slots_[slot].end());
  index_.emplace(handle, std::make_pair(slot, it));
  ++size_;
  if (cache_valid_ && tick < cached_next_tick_) {
    cached_next_tick_ = tick;
  }
  return handle;
}

bool HashedWheelTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return false;
  }
  const uint64_t tick = it->second.second->tick;
  slots_[it->second.first].erase(it->second.second);
  index_.erase(it);
  --size_;
  if (size_ == 0) {
    cached_next_tick_ = UINT64_MAX;
    cache_valid_ = true;
  } else if (cache_valid_ && tick <= cached_next_tick_) {
    // Removed an entry at the minimum; another node may share the tick, so
    // the true minimum is unknown until the next lazy rescan.
    cache_valid_ = false;
  }
  return true;
}

TimerHandle HashedWheelTimerQueue::Reschedule(TimerHandle handle, SimTime new_expiry) {
  obs::ScopedProbe probe(stats_.set_cycles);
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return kInvalidTimerHandle;
  }
  stats_.resched_ops->Inc();
  const uint64_t old_tick = it->second.second->tick;
  const uint64_t tick = TickFor(new_expiry);
  if (tick != old_tick) {
    // Splice the node into its new slot without touching the callback.
    Slot& from = slots_[it->second.first];
    const size_t to_slot = static_cast<size_t>(tick % slots_.size());
    slots_[to_slot].splice(slots_[to_slot].end(), from, it->second.second);
    it->second.first = to_slot;
    it->second.second->tick = tick;
    // Removal side of the move: taking away a node at the cached minimum
    // leaves the true minimum unknown until the next lazy rescan.
    if (cache_valid_ && old_tick <= cached_next_tick_) {
      cache_valid_ = false;
    }
    // Insertion side: an earlier tick can only lower a still-valid cache.
    if (cache_valid_ && tick < cached_next_tick_) {
      cached_next_tick_ = tick;
    }
  }
  return handle;
}

size_t HashedWheelTimerQueue::MemoryBytes() const {
  size_t bytes = slots_.capacity() * sizeof(Slot);
  for (const Slot& slot : slots_) {
    bytes += timer_internal::ListBytes(slot);
  }
  return bytes + timer_internal::NodeMapBytes(index_);
}

size_t HashedWheelTimerQueue::AdvanceTo(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  const uint64_t target_tick =
      static_cast<uint64_t>(std::max<SimTime>(now, 0)) / static_cast<uint64_t>(granularity_);
  size_t fired = 0;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    Slot& slot = slots_[static_cast<size_t>(current_tick_ % slots_.size())];
    // Detach due entries first so callbacks that schedule or cancel other
    // timers cannot invalidate the traversal.
    Slot due;
    for (auto it = slot.begin(); it != slot.end();) {
      ++entries_examined_;
      if (it->tick == current_tick_) {
        auto next = std::next(it);
        index_.erase(it->handle);
        due.splice(due.end(), slot, it);
        --size_;
        it = next;
      } else {
        ++it;  // a later revolution; leave in place
      }
    }
    // The hand may have passed (and fired) the cached minimum; anything
    // the callbacks scheduled lands strictly ahead of the hand, so the
    // cache is refreshable only by a rescan.
    if (size_ == 0) {
      cached_next_tick_ = UINT64_MAX;
      cache_valid_ = true;
    } else if (cache_valid_ && cached_next_tick_ <= current_tick_) {
      cache_valid_ = false;
    }
    for (Node& node : due) {
      node.cb(node.handle);
      ++fired;
    }
  }
  stats_.expire_ops->Inc(fired);
  return fired;
}

uint64_t HashedWheelTimerQueue::NextTickScan() const {
  // A wheel has no cheap global minimum; scan forward slot by slot from the
  // hand, tracking the best candidate. This is the cost dynticks pays on a
  // wheel-based design, one of the motivations for hrtimers' tree.
  uint64_t best = UINT64_MAX;
  for (size_t offset = 1; offset <= slots_.size(); ++offset) {
    const uint64_t tick_floor = current_tick_ + offset;
    const Slot& slot = slots_[static_cast<size_t>(tick_floor % slots_.size())];
    for (const Node& n : slot) {
      best = std::min(best, n.tick);
    }
    if (best <= tick_floor) {
      break;  // nothing in later slots can beat a hit in this revolution
    }
  }
  return best;
}

SimTime HashedWheelTimerQueue::NextExpiry() const {
  if (size_ == 0) {
    return kNeverTime;
  }
  if (!cache_valid_) {
    cached_next_tick_ = NextTickScan();
    cache_valid_ = true;
    ++next_expiry_scans_;
  }
  return static_cast<SimTime>(cached_next_tick_ * static_cast<uint64_t>(granularity_));
}

SimTime HashedWheelTimerQueue::NextExpiryScan() const {
  if (size_ == 0) {
    return kNeverTime;
  }
  return static_cast<SimTime>(NextTickScan() * static_cast<uint64_t>(granularity_));
}

}  // namespace tempo
