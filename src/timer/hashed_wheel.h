// Hashed timing wheel (Varghese & Lauck, SOSP'87, scheme 6).

#ifndef TEMPO_SRC_TIMER_HASHED_WHEEL_H_
#define TEMPO_SRC_TIMER_HASHED_WHEEL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// A single circular array of slots; an entry for tick T lives in slot
// T % kSlots and carries its absolute tick, so entries more than one
// revolution out are skipped (not cascaded) when the hand passes. Expected
// O(1) per operation when timeouts are within a few revolutions.
class HashedWheelTimerQueue : public TimerQueue {
 public:
  // `granularity` is the tick width; `slots` the wheel size.
  explicit HashedWheelTimerQueue(SimDuration granularity = kMillisecond, size_t slots = 256);

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  size_t Advance(SimTime now) override;
  size_t Size() const override { return size_; }
  SimTime NextExpiry() const override;
  std::string Name() const override { return "hashed_wheel"; }

  // Total slot-entry visits made by Advance; the "work" metric for E18.
  uint64_t entries_examined() const { return entries_examined_; }

 private:
  struct Node {
    uint64_t tick;  // absolute tick of expiry
    TimerHandle handle;
    TimerQueueCallback cb;
  };
  using Slot = std::list<Node>;

  uint64_t TickFor(SimTime expiry) const;

  SimDuration granularity_;
  std::vector<Slot> slots_;
  std::unordered_map<TimerHandle, std::pair<size_t, Slot::iterator>> index_;
  uint64_t current_tick_ = 0;  // ticks fully processed
  size_t size_ = 0;
  TimerHandle next_handle_ = 1;
  uint64_t entries_examined_ = 0;
  TimerQueueStats stats_ = TimerQueueStats::For("hashed_wheel");
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HASHED_WHEEL_H_
