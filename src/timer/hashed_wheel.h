// Hashed timing wheel (Varghese & Lauck, SOSP'87, scheme 6).

#ifndef TEMPO_SRC_TIMER_HASHED_WHEEL_H_
#define TEMPO_SRC_TIMER_HASHED_WHEEL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// A single circular array of slots; an entry for tick T lives in slot
// T % kSlots and carries its absolute tick, so entries more than one
// revolution out are skipped (not cascaded) when the hand passes. Expected
// O(1) per operation when timeouts are within a few revolutions.
class HashedWheelTimerQueue : public TimerQueue {
 public:
  // `granularity` is the tick width; `slots` the wheel size. `stats_label`
  // selects the obs instrument set; sharded wrappers pass a per-shard label
  // so concurrent instances never share an instrument.
  explicit HashedWheelTimerQueue(SimDuration granularity = kMillisecond, size_t slots = 256,
                                 const std::string& stats_label = "hashed_wheel");

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) override;
  size_t Size() const override { return size_; }
  // O(1): returns the cached minimum, rescanning only after an operation
  // that removed the earliest entry (cancel-of-min or a tick that fired it).
  SimTime NextExpiry() const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "hashed_wheel"; }

  // Reference slot-scan implementation of NextExpiry() — the seed
  // behaviour, kept for cross-checking the cache and for the regression
  // benchmark in bench/micro_timer_service.
  SimTime NextExpiryScan() const;

  // Total slot-entry visits made by Advance; the "work" metric for E18.
  uint64_t entries_examined() const { return entries_examined_; }

  // Rescans NextExpiry() had to perform because the cached minimum was
  // invalidated; the cache-effectiveness metric.
  uint64_t next_expiry_scans() const { return next_expiry_scans_; }

 protected:
  size_t AdvanceTo(SimTime now) override;

 private:
  struct Node {
    uint64_t tick;  // absolute tick of expiry
    TimerHandle handle;
    TimerQueueCallback cb;
  };
  using Slot = std::list<Node>;

  uint64_t TickFor(SimTime expiry) const;
  uint64_t NextTickScan() const;  // full scan; feeds the cache refresh

  SimDuration granularity_;
  std::vector<Slot> slots_;
  std::unordered_map<TimerHandle, std::pair<size_t, Slot::iterator>> index_;
  uint64_t current_tick_ = 0;  // ticks fully processed
  size_t size_ = 0;
  TimerHandle next_handle_ = 1;
  uint64_t entries_examined_ = 0;

  // Cached earliest pending tick; same discipline as the hierarchical
  // wheel (Schedule lowers, removal-at-minimum invalidates, NextExpiry()
  // lazily rescans). UINT64_MAX with a valid cache means "empty".
  mutable uint64_t cached_next_tick_ = UINT64_MAX;
  mutable bool cache_valid_ = true;
  mutable uint64_t next_expiry_scans_ = 0;

  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HASHED_WHEEL_H_
