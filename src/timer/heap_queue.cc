#include "src/timer/heap_queue.h"

#include <utility>

namespace tempo {

TimerHandle HeapTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  const TimerHandle handle = next_handle_++;
  callbacks_.emplace(handle, std::move(cb));
  heap_.push(Entry{expiry, handle});
  return handle;
}

bool HeapTimerQueue::Cancel(TimerHandle handle) { return callbacks_.erase(handle) > 0; }

void HeapTimerQueue::DropDeadHead() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().handle) == callbacks_.end()) {
    heap_.pop();
  }
}

size_t HeapTimerQueue::Advance(SimTime now) {
  size_t fired = 0;
  for (;;) {
    DropDeadHead();
    if (heap_.empty() || heap_.top().expiry > now) {
      break;
    }
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.handle);
    TimerQueueCallback cb = std::move(it->second);
    callbacks_.erase(it);
    cb(top.handle);
    ++fired;
  }
  return fired;
}

SimTime HeapTimerQueue::NextExpiry() const {
  DropDeadHead();
  return heap_.empty() ? kNeverTime : heap_.top().expiry;
}

}  // namespace tempo
