#include "src/timer/heap_queue.h"

#include <utility>

namespace tempo {

TimerHandle HeapTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  callbacks_.emplace(handle, std::move(cb));
  heap_.push(Entry{expiry, handle});
  return handle;
}

bool HeapTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  return callbacks_.erase(handle) > 0;
}

void HeapTimerQueue::DropDeadHead() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().handle) == callbacks_.end()) {
    heap_.pop();
  }
}

size_t HeapTimerQueue::Advance(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  size_t fired = 0;
  for (;;) {
    DropDeadHead();
    if (heap_.empty() || heap_.top().expiry > now) {
      break;
    }
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.handle);
    TimerQueueCallback cb = std::move(it->second);
    callbacks_.erase(it);
    cb(top.handle);
    ++fired;
  }
  stats_.expire_ops->Inc(fired);
  return fired;
}

SimTime HeapTimerQueue::NextExpiry() const {
  DropDeadHead();
  return heap_.empty() ? kNeverTime : heap_.top().expiry;
}

}  // namespace tempo
