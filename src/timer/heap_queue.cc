#include "src/timer/heap_queue.h"

#include <utility>

namespace tempo {

TimerHandle HeapTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  live_.emplace(handle, Live{expiry, std::move(cb)});
  heap_.push(Entry{expiry, handle});
  return handle;
}

bool HeapTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  return live_.erase(handle) > 0;
}

TimerHandle HeapTimerQueue::Reschedule(TimerHandle handle, SimTime new_expiry) {
  obs::ScopedProbe probe(stats_.set_cycles);
  auto it = live_.find(handle);
  if (it == live_.end()) {
    return kInvalidTimerHandle;
  }
  stats_.resched_ops->Inc();
  if (it->second.expiry == new_expiry) {
    return handle;  // already there; no stale entry needed
  }
  it->second.expiry = new_expiry;
  heap_.push(Entry{new_expiry, handle});  // the old entry goes stale
  return handle;
}

void HeapTimerQueue::DropDeadHead() const {
  while (!heap_.empty()) {
    auto it = live_.find(heap_.top().handle);
    if (it != live_.end() && it->second.expiry == heap_.top().expiry) {
      return;  // the head is a live, current entry
    }
    heap_.pop();  // canceled, fired, or superseded by a Reschedule
  }
}

size_t HeapTimerQueue::AdvanceTo(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  size_t fired = 0;
  for (;;) {
    DropDeadHead();
    if (heap_.empty() || heap_.top().expiry > now) {
      break;
    }
    const Entry top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.handle);
    TimerQueueCallback cb = std::move(it->second.cb);
    live_.erase(it);
    cb(top.handle);
    ++fired;
  }
  stats_.expire_ops->Inc(fired);
  return fired;
}

SimTime HeapTimerQueue::NextExpiry() const {
  DropDeadHead();
  return heap_.empty() ? kNeverTime : heap_.top().expiry;
}

size_t HeapTimerQueue::MemoryBytes() const {
  // heap_.size() includes stale entries — the memory cost of lazy
  // cancel/reschedule is real and should show up in bytes/timer.
  return heap_.size() * sizeof(Entry) + timer_internal::NodeMapBytes(live_);
}

}  // namespace tempo
