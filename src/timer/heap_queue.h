// Binary-heap timer queue with lazy cancellation.

#ifndef TEMPO_SRC_TIMER_HEAP_QUEUE_H_
#define TEMPO_SRC_TIMER_HEAP_QUEUE_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// O(log n) schedule/advance, O(1) cancel (lazy: canceled entries stay in the
// heap until they surface). The classic pre-timing-wheel design the wheels
// are benchmarked against.
class HeapTimerQueue : public TimerQueue {
 public:
  // `stats_label` selects the obs instrument set; sharded wrappers pass a
  // per-shard label so concurrent instances never share an instrument.
  explicit HeapTimerQueue(const std::string& stats_label = "heap")
      : stats_(TimerQueueStats::For(stats_label)) {}

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  size_t Advance(SimTime now) override;
  size_t Size() const override { return callbacks_.size(); }
  SimTime NextExpiry() const override;
  std::string Name() const override { return "heap"; }

 private:
  struct Entry {
    SimTime expiry;
    TimerHandle handle;
    bool operator>(const Entry& o) const {
      if (expiry != o.expiry) {
        return expiry > o.expiry;
      }
      return handle > o.handle;
    }
  };

  void DropDeadHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Live entries only; cancellation erases from this map.
  std::unordered_map<TimerHandle, TimerQueueCallback> callbacks_;
  TimerHandle next_handle_ = 1;
  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HEAP_QUEUE_H_
