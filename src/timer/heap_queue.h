// Binary-heap timer queue with lazy cancellation.

#ifndef TEMPO_SRC_TIMER_HEAP_QUEUE_H_
#define TEMPO_SRC_TIMER_HEAP_QUEUE_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// O(log n) schedule/advance, O(1) cancel (lazy: canceled entries stay in the
// heap until they surface). The classic pre-timing-wheel design the wheels
// are benchmarked against. Reschedule is lazy too: it records the new expiry
// and pushes a fresh heap entry; the superseded entry is recognised (its
// expiry no longer matches the live record) and dropped when it surfaces.
class HeapTimerQueue : public TimerQueue {
 public:
  // `stats_label` selects the obs instrument set; sharded wrappers pass a
  // per-shard label so concurrent instances never share an instrument.
  explicit HeapTimerQueue(const std::string& stats_label = "heap")
      : stats_(TimerQueueStats::For(stats_label)) {}

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) override;
  size_t Size() const override { return live_.size(); }
  SimTime NextExpiry() const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "heap"; }

 protected:
  size_t AdvanceTo(SimTime now) override;

 private:
  struct Entry {
    SimTime expiry;
    TimerHandle handle;
    bool operator>(const Entry& o) const {
      if (expiry != o.expiry) {
        return expiry > o.expiry;
      }
      return handle > o.handle;
    }
  };

  struct Live {
    SimTime expiry;  // current expiry; heap entries that disagree are stale
    TimerQueueCallback cb;
  };

  void DropDeadHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Live entries only; cancellation erases from this map.
  std::unordered_map<TimerHandle, Live> live_;
  TimerHandle next_handle_ = 1;
  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HEAP_QUEUE_H_
