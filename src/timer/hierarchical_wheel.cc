#include "src/timer/hierarchical_wheel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tempo {

namespace {

constexpr uint64_t kL0Mask = (1u << 8) - 1;
constexpr uint64_t kLnMask = (1u << 6) - 1;

// Bit offset of each level's slot index within the tick counter.
constexpr int kLevelShift[4] = {0, 8, 14, 20};
// Exclusive horizon (in ticks of delta) each level can hold.
constexpr uint64_t kLevelHorizon[4] = {1ull << 8, 1ull << 14, 1ull << 20, 1ull << 26};

}  // namespace

HierarchicalWheelTimerQueue::HierarchicalWheelTimerQueue(SimDuration granularity,
                                                         const std::string& stats_label)
    : granularity_(granularity > 0 ? granularity : kMillisecond),
      stats_(TimerQueueStats::For(stats_label)) {
  levels_[0].resize(kL0Slots);
  for (int i = 1; i < kLevels; ++i) {
    levels_[i].resize(kLnSlots);
  }
}

void HierarchicalWheelTimerQueue::Place(Node node) {
  uint64_t tick = node.tick;
  uint64_t delta = tick > current_tick_ ? tick - current_tick_ : 0;
  int level = 0;
  size_t slot = 0;
  if (delta < kLevelHorizon[0]) {
    level = 0;
    slot = static_cast<size_t>(tick & kL0Mask);
  } else if (delta < kLevelHorizon[1]) {
    level = 1;
    slot = static_cast<size_t>((tick >> kLevelShift[1]) & kLnMask);
  } else if (delta < kLevelHorizon[2]) {
    level = 2;
    slot = static_cast<size_t>((tick >> kLevelShift[2]) & kLnMask);
  } else {
    // Clamp beyond the top level's horizon, as Linux clamps beyond tv5.
    if (delta >= kLevelHorizon[3]) {
      tick = current_tick_ + kLevelHorizon[3] - 1;
      node.tick = tick;
    }
    level = 3;
    slot = static_cast<size_t>((tick >> kLevelShift[3]) & kLnMask);
  }
  Slot& list = levels_[level][slot];
  list.push_back(std::move(node));
  auto it = std::prev(list.end());
  index_[it->handle] = Location{level, slot, it};
  // Inserting can only lower the minimum; an invalid cache stays invalid
  // (the pending rescan will see this node too).
  if (cache_valid_ && tick < cached_next_tick_) {
    cached_next_tick_ = tick;
  }
}

TimerHandle HierarchicalWheelTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  if (expiry < 0) {
    expiry = 0;
  }
  uint64_t tick = (static_cast<uint64_t>(expiry) + static_cast<uint64_t>(granularity_) - 1) /
                  static_cast<uint64_t>(granularity_);
  tick = std::max(tick, current_tick_ + 1);
  Place(Node{tick, handle, std::move(cb)});
  ++size_;
  return handle;
}

bool HierarchicalWheelTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return false;
  }
  const Location& loc = it->second;
  const uint64_t tick = loc.it->tick;
  levels_[loc.level][loc.slot].erase(loc.it);
  index_.erase(it);
  --size_;
  if (size_ == 0) {
    cached_next_tick_ = UINT64_MAX;
    cache_valid_ = true;
  } else if (cache_valid_ && tick <= cached_next_tick_) {
    // Removed an entry at the minimum; another node may share the tick, so
    // the true minimum is unknown until the next lazy rescan.
    cache_valid_ = false;
  }
  return true;
}

void HierarchicalWheelTimerQueue::Cascade(int level, size_t slot) {
  Slot moved;
  moved.swap(levels_[level][slot]);
  for (Node& node : moved) {
    index_.erase(node.handle);
    ++cascades_;
    Place(std::move(node));
  }
}

void HierarchicalWheelTimerQueue::RunTick() {
  ++current_tick_;
  const size_t idx = static_cast<size_t>(current_tick_ & kL0Mask);
  if (idx == 0) {
    // Hand wrapped level 0: pull one bucket down from each level whose index
    // also wrapped — the "cascade" of __run_timers.
    for (int level = 1; level < kLevels; ++level) {
      const size_t lslot =
          static_cast<size_t>((current_tick_ >> kLevelShift[level]) & kLnMask);
      Cascade(level, lslot);
      if (lslot != 0) {
        break;
      }
    }
  }
  // Detach the due bucket completely before running callbacks: a callback
  // may cancel or re-arm other timers (including ones due this very tick),
  // and must not be able to corrupt the bucket being processed. A timer that
  // has been detached can no longer be canceled — the same semantics as
  // Linux's del_timer racing an already-dequeued callback.
  Slot due;
  due.swap(levels_[0][idx]);
  for (Node& node : due) {
    assert(node.tick <= current_tick_);
    index_.erase(node.handle);
  }
  size_ -= due.size();
  fired_this_tick_ = due.size();
  // Invalidate before the callbacks run: if the hand reached the cached
  // minimum it just fired (or is firing below). Callbacks that Schedule
  // against an invalid cache leave it invalid, which the lazy rescan fixes.
  if (size_ == 0) {
    cached_next_tick_ = UINT64_MAX;
    cache_valid_ = true;
  } else if (cache_valid_ && cached_next_tick_ <= current_tick_) {
    cache_valid_ = false;
  }
  for (Node& node : due) {
    node.cb(node.handle);
  }
}

TimerHandle HierarchicalWheelTimerQueue::Reschedule(TimerHandle handle,
                                                    SimTime new_expiry) {
  obs::ScopedProbe probe(stats_.set_cycles);
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return kInvalidTimerHandle;
  }
  stats_.resched_ops->Inc();
  const Location loc = it->second;
  Node node = std::move(*loc.it);
  levels_[loc.level][loc.slot].erase(loc.it);
  // Removal side of the move: the old tick may have been the cached
  // minimum; the true minimum is unknown until the next lazy rescan.
  if (cache_valid_ && node.tick <= cached_next_tick_) {
    cache_valid_ = false;
  }
  if (new_expiry < 0) {
    new_expiry = 0;
  }
  uint64_t tick = (static_cast<uint64_t>(new_expiry) +
                   static_cast<uint64_t>(granularity_) - 1) /
                  static_cast<uint64_t>(granularity_);
  node.tick = std::max(tick, current_tick_ + 1);
  Place(std::move(node));  // re-indexes the handle and lowers a valid cache
  return handle;
}

size_t HierarchicalWheelTimerQueue::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& level : levels_) {
    bytes += level.capacity() * sizeof(Slot);
    for (const Slot& slot : level) {
      bytes += timer_internal::ListBytes(slot);
    }
  }
  return bytes + timer_internal::NodeMapBytes(index_);
}

size_t HierarchicalWheelTimerQueue::AdvanceTo(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  const uint64_t target_tick =
      static_cast<uint64_t>(std::max<SimTime>(now, 0)) / static_cast<uint64_t>(granularity_);
  size_t fired = 0;
  while (current_tick_ < target_tick) {
    RunTick();
    fired += fired_this_tick_;
  }
  stats_.expire_ops->Inc(fired);
  return fired;
}

uint64_t HierarchicalWheelTimerQueue::NextTickScan() const {
  uint64_t best = UINT64_MAX;
  for (const auto& level : levels_) {
    for (const Slot& slot : level) {
      for (const Node& node : slot) {
        best = std::min(best, node.tick);
      }
    }
  }
  return best;
}

SimTime HierarchicalWheelTimerQueue::NextExpiry() const {
  if (size_ == 0) {
    return kNeverTime;
  }
  if (!cache_valid_) {
    cached_next_tick_ = NextTickScan();
    cache_valid_ = true;
    ++next_expiry_scans_;
  }
  return static_cast<SimTime>(cached_next_tick_ * static_cast<uint64_t>(granularity_));
}

SimTime HierarchicalWheelTimerQueue::NextExpiryScan() const {
  if (size_ == 0) {
    return kNeverTime;
  }
  return static_cast<SimTime>(NextTickScan() * static_cast<uint64_t>(granularity_));
}

}  // namespace tempo
