// Hierarchical timing wheel with cascading (Varghese & Lauck scheme 7;
// the Linux 2.6 tv1..tv5 "cascading wheel" design).

#ifndef TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_
#define TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// Four levels of 256/64/64/64 slots over a base tick. Level 0 holds timers
// expiring within 256 ticks; higher levels hold coarser buckets which are
// *cascaded* (re-distributed into finer levels) when the hand reaches them —
// exactly the structure behind Linux's __run_timers.
class HierarchicalWheelTimerQueue : public TimerQueue {
 public:
  // `stats_label` selects the obs instrument set; sharded wrappers pass a
  // per-shard label so concurrent instances never share an instrument.
  explicit HierarchicalWheelTimerQueue(SimDuration granularity = kMillisecond,
                                       const std::string& stats_label = "hierarchical_wheel");

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) override;
  size_t Size() const override { return size_; }
  // O(1): returns the cached minimum, rescanning only after an operation
  // that removed the earliest entry (cancel-of-min or a tick that fired it).
  SimTime NextExpiry() const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "hierarchical_wheel"; }

  // Reference O(slots x nodes) implementation of NextExpiry() — the seed
  // behaviour, kept for cross-checking the cache and for the regression
  // benchmark in bench/micro_timer_service.
  SimTime NextExpiryScan() const;

  // Number of entries moved between levels by cascades (work metric).
  uint64_t cascades() const { return cascades_; }

  // Full rescans NextExpiry() had to perform because the cached minimum was
  // invalidated; the cache-effectiveness metric.
  uint64_t next_expiry_scans() const { return next_expiry_scans_; }

 protected:
  size_t AdvanceTo(SimTime now) override;

 private:
  static constexpr int kLevels = 4;
  static constexpr size_t kL0Bits = 8;                  // 256 slots
  static constexpr size_t kLnBits = 6;                  // 64 slots
  static constexpr size_t kL0Slots = 1u << kL0Bits;
  static constexpr size_t kLnSlots = 1u << kLnBits;

  struct Node {
    uint64_t tick;
    TimerHandle handle;
    TimerQueueCallback cb;
  };
  using Slot = std::list<Node>;

  struct Location {
    int level;
    size_t slot;
    Slot::iterator it;
  };

  // Places a node into the right level/slot for its tick given the hand.
  void Place(Node node);
  void RunTick();     // advance hand one tick, cascading as needed
  void Cascade(int level, size_t slot);
  uint64_t NextTickScan() const;  // full scan; feeds the cache refresh

  SimDuration granularity_;
  std::array<std::vector<Slot>, kLevels> levels_;
  std::unordered_map<TimerHandle, Location> index_;
  uint64_t current_tick_ = 0;
  size_t size_ = 0;
  TimerHandle next_handle_ = 1;
  uint64_t cascades_ = 0;
  size_t fired_this_tick_ = 0;

  // Cached earliest pending tick, maintained incrementally: Schedule can
  // only lower it, Cancel/RunTick invalidate it when they remove an entry
  // at the minimum, and NextExpiry() lazily rescans while invalid. UINT64_MAX
  // with a valid cache means "empty".
  mutable uint64_t cached_next_tick_ = UINT64_MAX;
  mutable bool cache_valid_ = true;
  mutable uint64_t next_expiry_scans_ = 0;

  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_
