// Hierarchical timing wheel with cascading (Varghese & Lauck scheme 7;
// the Linux 2.6 tv1..tv5 "cascading wheel" design).

#ifndef TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_
#define TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

// Four levels of 256/64/64/64 slots over a base tick. Level 0 holds timers
// expiring within 256 ticks; higher levels hold coarser buckets which are
// *cascaded* (re-distributed into finer levels) when the hand reaches them —
// exactly the structure behind Linux's __run_timers.
class HierarchicalWheelTimerQueue : public TimerQueue {
 public:
  explicit HierarchicalWheelTimerQueue(SimDuration granularity = kMillisecond);

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  size_t Advance(SimTime now) override;
  size_t Size() const override { return size_; }
  SimTime NextExpiry() const override;
  std::string Name() const override { return "hierarchical_wheel"; }

  // Number of entries moved between levels by cascades (work metric).
  uint64_t cascades() const { return cascades_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr size_t kL0Bits = 8;                  // 256 slots
  static constexpr size_t kLnBits = 6;                  // 64 slots
  static constexpr size_t kL0Slots = 1u << kL0Bits;
  static constexpr size_t kLnSlots = 1u << kLnBits;

  struct Node {
    uint64_t tick;
    TimerHandle handle;
    TimerQueueCallback cb;
  };
  using Slot = std::list<Node>;

  struct Location {
    int level;
    size_t slot;
    Slot::iterator it;
  };

  // Places a node into the right level/slot for its tick given the hand.
  void Place(Node node);
  void RunTick();     // advance hand one tick, cascading as needed
  void Cascade(int level, size_t slot);

  SimDuration granularity_;
  std::array<std::vector<Slot>, kLevels> levels_;
  std::unordered_map<TimerHandle, Location> index_;
  uint64_t current_tick_ = 0;
  size_t size_ = 0;
  TimerHandle next_handle_ = 1;
  uint64_t cascades_ = 0;
  size_t fired_this_tick_ = 0;
  TimerQueueStats stats_ = TimerQueueStats::For("hierarchical_wheel");
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_HIERARCHICAL_WHEEL_H_
