#include "src/timer/lawn.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace tempo {

LawnTimerQueue::LawnTimerQueue(SimDuration granularity, const std::string& stats_label)
    : granularity_(granularity > 0 ? granularity : kMillisecond),
      stats_(TimerQueueStats::For(stats_label)) {}

SimTime LawnTimerQueue::Quantise(SimTime expiry, SimTime now,
                                 uint64_t* ttl_ticks) const {
  const SimTime ttl = expiry > now ? expiry - now : 0;
  // Round up, and never below one tick: the effective expiry must land
  // strictly ahead of the watermark or Advance could loop (and a timer must
  // never fire before its requested expiry).
  uint64_t ticks = (static_cast<uint64_t>(ttl) + static_cast<uint64_t>(granularity_) - 1) /
                   static_cast<uint64_t>(granularity_);
  if (ticks == 0) {
    ticks = 1;
  }
  *ttl_ticks = ticks;
  return now + static_cast<SimTime>(ticks * static_cast<uint64_t>(granularity_));
}

uint32_t LawnTimerQueue::QueueForTtl(uint64_t ttl_ticks) {
  auto [it, inserted] =
      queue_for_ttl_.try_emplace(ttl_ticks, static_cast<uint32_t>(queues_.size()));
  if (inserted) {
    queues_.emplace_back();
    queues_.back().ttl_ticks = ttl_ticks;
  }
  return it->second;
}

uint32_t LawnTimerQueue::AllocNode() {
  if (!free_nodes_.empty()) {
    const uint32_t n = free_nodes_.back();
    free_nodes_.pop_back();
    return n;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void LawnTimerQueue::FreeNode(uint32_t node) {
  pool_[node].cb = nullptr;  // release captured resources while parked
  free_nodes_.push_back(node);
}

void LawnTimerQueue::Append(uint32_t queue_index, uint32_t node) {
  TtlQueue& q = queues_[queue_index];
  Node& n = pool_[node];
  n.queue = queue_index;
  n.next = kNil;
  n.prev = q.tail;
  if (q.tail != kNil) {
    pool_[q.tail].next = node;
  } else {
    q.head = node;
  }
  q.tail = node;
  if (q.live++ == 0) {
    q.active_pos = static_cast<uint32_t>(active_.size());
    active_.push_back(queue_index);
  }
}

void LawnTimerQueue::Unlink(uint32_t node) {
  Node& n = pool_[node];
  TtlQueue& q = queues_[n.queue];
  if (n.prev != kNil) {
    pool_[n.prev].next = n.next;
  } else {
    q.head = n.next;
  }
  if (n.next != kNil) {
    pool_[n.next].prev = n.prev;
  } else {
    q.tail = n.prev;
  }
  if (--q.live == 0) {
    // Swap-pop the queue out of the active set in O(1).
    const uint32_t pos = q.active_pos;
    const uint32_t moved = active_.back();
    active_[pos] = moved;
    queues_[moved].active_pos = pos;
    active_.pop_back();
    q.active_pos = kNil;
  }
}

void LawnTimerQueue::NoteRemovalAt(SimTime expiry) {
  if (size_ == 0) {
    cached_min_ = kNeverTime;
    cache_valid_ = true;
  } else if (cache_valid_ && expiry <= cached_min_) {
    // Removed an entry at the minimum; another head may share the expiry,
    // so the true minimum is unknown until the next lazy rescan.
    cache_valid_ = false;
  }
}

TimerHandle LawnTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  uint64_t ttl_ticks = 0;
  const SimTime effective = Quantise(expiry, now_, &ttl_ticks);
  const uint32_t queue_index = QueueForTtl(ttl_ticks);
  const uint32_t node = AllocNode();
  Node& n = pool_[node];
  n.expiry = effective;
  n.handle = handle;
  n.cb = std::move(cb);
  Append(queue_index, node);
  index_.emplace(handle, node);
  ++size_;
  // Inserting can only lower the minimum; an invalid cache stays invalid
  // (the pending rescan will see this node too).
  if (cache_valid_ && effective < cached_min_) {
    cached_min_ = effective;
  }
  return handle;
}

bool LawnTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return false;
  }
  const uint32_t node = it->second;
  const SimTime expiry = pool_[node].expiry;
  Unlink(node);
  FreeNode(node);
  index_.erase(it);
  --size_;
  NoteRemovalAt(expiry);
  return true;
}

TimerHandle LawnTimerQueue::Reschedule(TimerHandle handle, SimTime new_expiry) {
  obs::ScopedProbe probe(stats_.set_cycles);
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return kInvalidTimerHandle;
  }
  stats_.resched_ops->Inc();
  const uint32_t node = it->second;
  const SimTime old_expiry = pool_[node].expiry;
  Unlink(node);
  // Removal side of the move: the old expiry may have been the cached
  // minimum; the true minimum is unknown until the next lazy rescan.
  if (cache_valid_ && old_expiry <= cached_min_) {
    cache_valid_ = false;
  }
  uint64_t ttl_ticks = 0;
  const SimTime effective = Quantise(new_expiry, now_, &ttl_ticks);
  pool_[node].expiry = effective;
  // Re-appending keeps the FIFO invariant: the tail of a TTL queue always
  // carries the largest effective expiry, because `effective` here equals
  // what a fresh Schedule at the current watermark would compute.
  Append(QueueForTtl(ttl_ticks), node);
  if (cache_valid_ && effective < cached_min_) {
    cached_min_ = effective;
  }
  return handle;
}

size_t LawnTimerQueue::AdvanceTo(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  now_ = now;
  // Phase 1: detach the due prefix of every active FIFO. Heads are the
  // oldest (smallest-expiry) entries of each queue, so each FIFO's due set
  // is exactly its prefix. Detach fully before running callbacks so a
  // callback that schedules or cancels cannot corrupt the traversal; a
  // detached timer can no longer be canceled (same semantics as the wheels).
  std::vector<uint32_t> due;
  due.swap(due_scratch_);
  for (size_t i = 0; i < active_.size();) {
    TtlQueue& q = queues_[active_[i]];
    while (q.head != kNil && pool_[q.head].expiry <= now) {
      const uint32_t node = q.head;
      q.head = pool_[node].next;
      if (q.head != kNil) {
        pool_[q.head].prev = kNil;
      } else {
        q.tail = kNil;
      }
      --q.live;
      index_.erase(pool_[node].handle);
      due.push_back(node);
    }
    if (q.live == 0) {
      const uint32_t moved = active_.back();
      active_[i] = moved;
      queues_[moved].active_pos = static_cast<uint32_t>(i);
      active_.pop_back();
      q.active_pos = kNil;
      // Re-examine index i: it now holds the swapped-in queue.
    } else {
      ++i;
    }
  }
  const size_t fired = due.size();
  size_ -= fired;
  // Invalidate before the callbacks run: the minimum may just have fired.
  // Callbacks that Schedule against an invalid cache leave it invalid,
  // which the lazy rescan fixes.
  if (size_ == 0) {
    cached_min_ = kNeverTime;
    cache_valid_ = true;
  } else if (cache_valid_ && cached_min_ <= now) {
    cache_valid_ = false;
  }
  // Phase 2: global expiry order across queues. Ties break by handle, i.e.
  // scheduling order, so runs are deterministic for equal expiries.
  std::sort(due.begin(), due.end(), [this](uint32_t a, uint32_t b) {
    return std::tie(pool_[a].expiry, pool_[a].handle) <
           std::tie(pool_[b].expiry, pool_[b].handle);
  });
  for (const uint32_t node : due) {
    const TimerHandle handle = pool_[node].handle;
    TimerQueueCallback cb = std::move(pool_[node].cb);
    FreeNode(node);  // recycle before the callback so it can re-schedule
    cb(handle);
  }
  due.clear();
  due_scratch_.swap(due);  // keep the scratch capacity for the next call
  stats_.expire_ops->Inc(fired);
  return fired;
}

SimTime LawnTimerQueue::NextExpiry() const {
  if (size_ == 0) {
    return kNeverTime;
  }
  if (!cache_valid_) {
    // The minimum pending expiry is the minimum over the active FIFO heads:
    // O(k) in the number of distinct TTL buckets, independent of Size().
    SimTime best = kNeverTime;
    for (const uint32_t queue_index : active_) {
      best = std::min(best, pool_[queues_[queue_index].head].expiry);
    }
    cached_min_ = best;
    cache_valid_ = true;
    ++head_scans_;
  }
  return cached_min_;
}

size_t LawnTimerQueue::MemoryBytes() const {
  return pool_.size() * sizeof(Node) + free_nodes_.capacity() * sizeof(uint32_t) +
         queues_.capacity() * sizeof(TtlQueue) + active_.capacity() * sizeof(uint32_t) +
         due_scratch_.capacity() * sizeof(uint32_t) +
         timer_internal::NodeMapBytes(queue_for_ttl_) +
         timer_internal::NodeMapBytes(index_);
}

}  // namespace tempo
