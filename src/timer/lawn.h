// "Timer Lawn" queue (Lev-Libfeld, arXiv:1906.10860): an unbound,
// low-latency timer structure for large-scale, high-throughput systems.
//
// The lawn's bet is the same one this paper's traces justify empirically:
// real systems arm timers from a *small set of distinct timeout durations*
// (the 0.204 s TCP RTO, the 0.04 s delayed ACK, the 3 s SYN-ACK, the
// 7200 s keepalive, the eponymous 30 s...). Instead of one priority
// structure ordered by absolute expiry, the lawn keeps one FIFO per
// distinct TTL. Because simulated time only moves forward, arrivals
// appending to a per-TTL FIFO are automatically expiry-sorted — so:
//
//   * Schedule  = append to the tail of the TTL's FIFO       O(1)
//   * Cancel    = unlink a doubly-linked node                 O(1)
//   * Reschedule= unlink + append under the new TTL           O(1)
//   * Advance   = pop due heads off each active FIFO          O(k + fired)
//   * NextExpiry= cached min over k FIFO heads                O(1) amortised
//
// where k is the number of distinct TTLs — bounded by the workload, not by
// the number of pending timers ("unbound" capacity at flat per-op cost).
// TTLs are quantised to `granularity` ticks so adversarial continuous
// timeouts degrade gracefully into a bounded set of buckets; like the
// wheels, the lawn may fire up to one tick late and never fires early.
//
// Nodes live in a slab (index-linked, freelist-recycled) so a steady-state
// million-timer population allocates nothing on the hot path.

#ifndef TEMPO_SRC_TIMER_LAWN_H_
#define TEMPO_SRC_TIMER_LAWN_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/timer/queue.h"

namespace tempo {

class LawnTimerQueue : public TimerQueue {
 public:
  // `granularity` is the TTL quantum; `stats_label` selects the obs
  // instrument set (sharded wrappers pass a per-shard label so concurrent
  // instances never share an instrument).
  explicit LawnTimerQueue(SimDuration granularity = kMillisecond,
                          const std::string& stats_label = "lawn");

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) override;
  size_t Size() const override { return size_; }
  SimTime NextExpiry() const override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "lawn"; }

  // Distinct TTL buckets ever observed — the lawn's "k". The structure is
  // O(1) per op only while this stays small; the C10M bench reports it.
  size_t ttl_buckets() const { return queues_.size(); }

  // Head rescans NextExpiry() had to perform because the cached minimum
  // was invalidated (each costs O(active buckets)).
  uint64_t head_scans() const { return head_scans_; }

 protected:
  size_t AdvanceTo(SimTime now) override;

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    SimTime expiry = 0;  // quantised effective expiry
    TimerHandle handle = kInvalidTimerHandle;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint32_t queue = kNil;  // owning TTL FIFO, index into queues_
    TimerQueueCallback cb;
  };

  // One per-TTL FIFO. `active_pos` is its slot in active_ (kNil when
  // empty), so activation state updates in O(1).
  struct TtlQueue {
    uint64_t ttl_ticks = 0;
    uint32_t head = kNil;
    uint32_t tail = kNil;
    uint32_t live = 0;
    uint32_t active_pos = kNil;
  };

  uint32_t QueueForTtl(uint64_t ttl_ticks);
  uint32_t AllocNode();
  void FreeNode(uint32_t node);
  void Append(uint32_t queue_index, uint32_t node);
  // Unlinks a node from its FIFO, deactivating the FIFO if it empties.
  // Callers pair this with NoteRemovalAt to keep the cached minimum honest.
  void Unlink(uint32_t node);
  // Effective (quantised) expiry for a request at absolute `expiry`, given
  // the watermark `now`; also yields the TTL bucket it belongs to.
  SimTime Quantise(SimTime expiry, SimTime now, uint64_t* ttl_ticks) const;
  void NoteRemovalAt(SimTime expiry);

  SimDuration granularity_;
  std::deque<Node> pool_;
  std::vector<uint32_t> free_nodes_;
  std::vector<TtlQueue> queues_;
  std::unordered_map<uint64_t, uint32_t> queue_for_ttl_;
  std::vector<uint32_t> active_;  // indices of non-empty queues
  std::unordered_map<TimerHandle, uint32_t> index_;
  // Scratch for Advance: detached due nodes, sorted before firing.
  std::vector<uint32_t> due_scratch_;
  size_t size_ = 0;
  TimerHandle next_handle_ = 1;
  SimTime now_ = 0;  // last Advance watermark (for TTL computation)
  mutable uint64_t head_scans_ = 0;

  // Cached earliest pending effective expiry, maintained with the same
  // discipline as the wheels: Schedule can only lower it, removal at the
  // minimum invalidates it, NextExpiry() lazily rescans the active heads.
  mutable SimTime cached_min_ = kNeverTime;
  mutable bool cache_valid_ = true;

  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_LAWN_H_
