// Common interface for timer-queue data structures.
//
// Section 2 of the paper describes a timer subsystem as "a multiplexer for
// timers": a priority queue of outstanding timers over a single lower-level
// timer, typically implemented with a variant of Varghese & Lauck's timing
// wheels. This module provides the classic implementations behind one
// interface so their costs can be compared (experiment E18) and their
// behaviour cross-checked by property tests:
//
//   * HeapTimerQueue          binary heap, O(log n) ops (classic Unix)
//   * TreeTimerQueue          red-black tree, O(log n) (Linux hrtimers)
//   * HashedWheelTimerQueue   hashed timing wheel, O(1) expected (scheme 6)
//   * HierarchicalWheelTimerQueue  hierarchical wheel with cascading,
//                             O(1) amortised (scheme 7; Linux tv1-tv5)
//   * LawnTimerQueue          per-TTL FIFO lawn, O(1) unbound
//                             (Lev-Libfeld's "Timer Lawn")
//
// The interface is the v2 redesign grown for the million-connection server
// scenario: an options-struct factory, a Reschedule fast path (RTO backoff
// and keepalive re-arm move a timer far more often than they create one),
// batch entry points, a memory-accounting hook, and a monotonic-clock
// contract enforced at the API boundary rather than trusted to callers.

#ifndef TEMPO_SRC_TIMER_QUEUE_H_
#define TEMPO_SRC_TIMER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/sim/time.h"

namespace tempo {

// Handle to a scheduled entry; 0 is invalid. Handles are stable across
// Reschedule: a connection can keep one handle per timer for its lifetime.
using TimerHandle = uint64_t;
inline constexpr TimerHandle kInvalidTimerHandle = 0;

// Callback invoked on expiry. Receives the handle so periodic clients can
// re-arm without extra captures. Hot-path note: a trivially copyable
// closure of at most two pointers (e.g. {object*, index, kind}) fits
// std::function's small-object buffer and never heap-allocates — the C10M
// server depends on this (see src/net/server.cc's static_assert).
using TimerQueueCallback = std::function<void(TimerHandle)>;

// One entry of a ScheduleBatch call: `expiry` in, `handle` out.
struct TimerBatchEntry {
  SimTime expiry = 0;
  TimerHandle handle = kInvalidTimerHandle;
};

// Abstract timer multiplexer.
class TimerQueue {
 public:
  virtual ~TimerQueue() = default;

  // Schedules a callback for absolute time `expiry`. Expiries in the past
  // fire on the next Advance. Returns a fresh handle.
  virtual TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) = 0;

  // Cancels a pending entry; false if unknown, fired, or already canceled.
  virtual bool Cancel(TimerHandle handle) = 0;

  // Moves a pending entry to a new expiry, keeping its handle and callback
  // — the RTO-backoff / keepalive-re-arm fast path, cheaper than
  // Cancel+Schedule because the callback is never touched and no new
  // handle is minted. Returns the handle on success, kInvalidTimerHandle
  // when the entry is unknown, fired, or canceled.
  virtual TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) = 0;

  // Schedules every entry with the shared callback, writing each fresh
  // handle back into its entry. One shared callback (copied per entry;
  // keep it SBO-small) is the batch contract — per-entry contexts belong
  // in the handle mapping of the caller.
  virtual void ScheduleBatch(std::span<TimerBatchEntry> entries,
                             const TimerQueueCallback& cb);

  // Cancels every handle in the span; returns how many were live. Invalid
  // and already-dead handles are skipped, not errors.
  virtual size_t CancelBatch(std::span<const TimerHandle> handles);

  // Fires all entries with expiry <= now (in expiry order up to the
  // queue's resolution). Returns the number fired.
  //
  // `now` must not go backwards. The contract is enforced here, at the API
  // boundary: a backwards clock aborts in debug builds and is clamped to
  // the high-water mark (and counted in backwards_advances()) in release
  // builds, so it can never corrupt wheel state.
  size_t Advance(SimTime now);

  // Number of pending (live) entries.
  virtual size_t Size() const = 0;

  // Earliest pending expiry, or kNeverTime when empty. Used by dynticks to
  // program the next wakeup.
  virtual SimTime NextExpiry() const = 0;

  // Approximate bytes of heap owned by the queue for its current pending
  // set (nodes, index entries, slot arrays). The accounting hook behind
  // the C10M bytes/timer benchmarks; estimates, not malloc truth.
  virtual size_t MemoryBytes() const = 0;

  // Implementation name for reports.
  virtual std::string Name() const = 0;

  // Advance calls that tried to move the clock backwards (release builds
  // clamp them; debug builds abort). Zero in a correct caller.
  uint64_t backwards_advances() const { return backwards_advances_; }

  // High-water mark of Advance — the queue's notion of "now".
  SimTime advance_watermark() const { return advance_watermark_; }

 protected:
  // The implementation's advance step. `now` is already validated to be
  // monotonic (>= every previous value it was called with).
  virtual size_t AdvanceTo(SimTime now) = 0;

 private:
  SimTime advance_watermark_ = 0;
  uint64_t backwards_advances_ = 0;
};

// Self-metrics bundle shared by every timer-queue implementation: op
// counters and op-latency histograms labelled by implementation name.
// Instances of the same implementation share instruments (the registry
// aggregates per label set); pointers are resolved once, at queue
// construction, so the hot paths never do a name lookup.
struct TimerQueueStats {
  obs::Counter* set_ops = nullptr;
  obs::Counter* cancel_ops = nullptr;
  obs::Counter* expire_ops = nullptr;
  obs::Counter* resched_ops = nullptr;
  obs::Histogram* set_cycles = nullptr;
  obs::Histogram* cancel_cycles = nullptr;
  obs::Histogram* advance_cycles = nullptr;

  // Instruments for `timer_ops{queue=<queue>,op=...}` and
  // `timer_op_cycles{queue=<queue>,op=...}`.
  static TimerQueueStats For(const std::string& queue);
};

// Construction options for the factory — the single way to make a queue.
struct TimerQueueOptions {
  // Implementation: "heap", "tree", "hashed_wheel", "hierarchical_wheel",
  // "lawn" (see TimerQueueNames()).
  std::string name = "hierarchical_wheel";
  // Instrument set label; defaults to `name`. Concurrent holders (the
  // sharded TimerService) must use distinct labels: instruments with equal
  // labels are shared, and shared instruments may only be updated from one
  // thread / one lock at a time.
  std::string stats_label;
  // Tick width for the quantising structures (both wheels and the lawn).
  SimDuration granularity = kMillisecond;
  // Slot count for the hashed wheel.
  size_t wheel_slots = 256;
};

// Creates a queue from options. Returns nullptr for unknown names.
std::unique_ptr<TimerQueue> MakeTimerQueue(const TimerQueueOptions& options);

// Deprecated v1 factory overloads, kept as thin wrappers so out-of-tree
// callers keep compiling. New code passes TimerQueueOptions.
[[deprecated("pass TimerQueueOptions")]]
std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name);
[[deprecated("pass TimerQueueOptions")]]
std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name,
                                           const std::string& stats_label);

// Names of all available implementations, for parameterised tests/benches
// and for the shared --queue flag validation in tools/common.
std::vector<std::string> TimerQueueNames();

namespace timer_internal {

// Rough heap cost of a node-based container's bookkeeping: per-element node
// (value plus two pointers of allocator/link overhead) and, for hash maps,
// the bucket array. Shared by the MemoryBytes() implementations; estimates
// by design — the bench compares backends, not mallocs.
template <typename Map>
size_t NodeMapBytes(const Map& map) {
  return map.bucket_count() * sizeof(void*) +
         map.size() * (sizeof(typename Map::value_type) + 2 * sizeof(void*));
}

template <typename Tree>
size_t TreeBytes(const Tree& tree) {
  // Three pointers + colour per red-black node.
  return tree.size() * (sizeof(typename Tree::value_type) + 4 * sizeof(void*));
}

template <typename List>
size_t ListBytes(const List& list) {
  return list.size() * (sizeof(typename List::value_type) + 2 * sizeof(void*));
}

}  // namespace timer_internal

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_QUEUE_H_
