// Common interface for timer-queue data structures.
//
// Section 2 of the paper describes a timer subsystem as "a multiplexer for
// timers": a priority queue of outstanding timers over a single lower-level
// timer, typically implemented with a variant of Varghese & Lauck's timing
// wheels. This module provides the classic implementations behind one
// interface so their costs can be compared (experiment E18) and their
// behaviour cross-checked by property tests:
//
//   * HeapTimerQueue          binary heap, O(log n) ops (classic Unix)
//   * TreeTimerQueue          red-black tree, O(log n) (Linux hrtimers)
//   * HashedWheelTimerQueue   hashed timing wheel, O(1) expected (scheme 6)
//   * HierarchicalWheelTimerQueue  hierarchical wheel with cascading,
//                             O(1) amortised (scheme 7; Linux tv1-tv5)

#ifndef TEMPO_SRC_TIMER_QUEUE_H_
#define TEMPO_SRC_TIMER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/sim/time.h"

namespace tempo {

// Handle to a scheduled entry; 0 is invalid.
using TimerHandle = uint64_t;
inline constexpr TimerHandle kInvalidTimerHandle = 0;

// Callback invoked on expiry. Receives the handle so periodic clients can
// re-arm without extra captures.
using TimerQueueCallback = std::function<void(TimerHandle)>;

// Abstract timer multiplexer.
class TimerQueue {
 public:
  virtual ~TimerQueue() = default;

  // Schedules a callback for absolute time `expiry`. Expiries in the past
  // fire on the next Advance. Returns a fresh handle.
  virtual TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) = 0;

  // Cancels a pending entry; false if unknown, fired, or already canceled.
  virtual bool Cancel(TimerHandle handle) = 0;

  // Fires all entries with expiry <= now (in expiry order up to the queue's
  // resolution). Returns the number fired. `now` must not go backwards.
  virtual size_t Advance(SimTime now) = 0;

  // Number of pending (live) entries.
  virtual size_t Size() const = 0;

  // Earliest pending expiry, or kNeverTime when empty. Used by dynticks to
  // program the next wakeup.
  virtual SimTime NextExpiry() const = 0;

  // Implementation name for reports.
  virtual std::string Name() const = 0;
};

// Self-metrics bundle shared by every timer-queue implementation: op
// counters and op-latency histograms labelled by implementation name.
// Instances of the same implementation share instruments (the registry
// aggregates per label set); pointers are resolved once, at queue
// construction, so the hot paths never do a name lookup.
struct TimerQueueStats {
  obs::Counter* set_ops = nullptr;
  obs::Counter* cancel_ops = nullptr;
  obs::Counter* expire_ops = nullptr;
  obs::Histogram* set_cycles = nullptr;
  obs::Histogram* cancel_cycles = nullptr;
  obs::Histogram* advance_cycles = nullptr;

  // Instruments for `timer_ops{queue=<queue>,op=...}` and
  // `timer_op_cycles{queue=<queue>,op=...}`.
  static TimerQueueStats For(const std::string& queue);
};

// Creates a queue by name: "heap", "tree", "hashed_wheel",
// "hierarchical_wheel". Returns nullptr for unknown names.
std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name);

// Same, but reporting into the instrument set labelled `stats_label`
// instead of the implementation name. Concurrent holders (the sharded
// TimerService) must use distinct labels: instruments with equal labels are
// shared, and shared instruments may only be updated from one thread / one
// lock at a time.
std::unique_ptr<TimerQueue> MakeTimerQueue(const std::string& name,
                                           const std::string& stats_label);

// Names of all available implementations, for parameterised tests/benches.
std::vector<std::string> TimerQueueNames();

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_QUEUE_H_
