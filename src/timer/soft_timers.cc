#include "src/timer/soft_timers.h"

#include <algorithm>
#include <utility>

namespace tempo {

SoftTimerFacility::SoftTimerFacility(Simulator* sim, Options options)
    : sim_(sim), options_(options) {}

void SoftTimerFacility::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  sim_->ScheduleAfter(options_.fallback_period, [this] { OnFallbackTick(); });
}

TimerHandle SoftTimerFacility::Schedule(SimDuration timeout, std::function<void()> fn) {
  const SimTime expiry = sim_->Now() + std::max<SimDuration>(timeout, 0);
  auto fn_ptr = std::make_shared<std::function<void()>>(std::move(fn));
  const TimerHandle handle = queue_.Schedule(expiry, [this, fn_ptr](TimerHandle h) {
    auto it = expiries_.find(h);
    if (it != expiries_.end()) {
      const SimDuration delay = sim_->Now() - it->second;
      total_delay_ += delay;
      max_delay_ = std::max(max_delay_, delay);
      expiries_.erase(it);
    }
    ++fired_;
    (*fn_ptr)();
  });
  expiries_.emplace(handle, expiry);
  return handle;
}

bool SoftTimerFacility::Cancel(TimerHandle handle) {
  expiries_.erase(handle);
  return queue_.Cancel(handle);
}

size_t SoftTimerFacility::RunDue() { return queue_.Advance(sim_->Now()); }

size_t SoftTimerFacility::TriggerState() {
  ++checks_;
  sim_->cpu().ChargeCycles(options_.check_cost_cycles);
  return RunDue();
}

void SoftTimerFacility::OnFallbackTick() {
  ++fallback_ticks_;
  sim_->cpu().OnInterrupt(sim_->Now(), /*timer=*/true);
  RunDue();
  sim_->ScheduleAfter(options_.fallback_period, [this] { OnFallbackTick(); });
  sim_->cpu().EnterIdle(sim_->Now());
}

}  // namespace tempo
