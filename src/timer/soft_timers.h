// Soft timers (Aron & Druschel, TOCS 2000) — related work the paper uses
// to frame the overhead/precision trade-off of timer facilities.
//
// Instead of programming a hardware interrupt per expiry, soft timers are
// checked at "trigger states": convenient points the kernel passes through
// anyway (system-call returns, exception exits, idle-loop iterations). A
// low-frequency hardware fallback bounds the worst-case delay when trigger
// states are scarce. The result is microsecond-precision timing whose cost
// scales with work the CPU was already doing — at the price of stochastic
// delivery latency.
//
// The facility is modelled here on the simulator: clients schedule
// callbacks; the host signals TriggerState() wherever its code would pass
// a trigger point; a periodic fallback tick guarantees progress.

#ifndef TEMPO_SRC_TIMER_SOFT_TIMERS_H_
#define TEMPO_SRC_TIMER_SOFT_TIMERS_H_

#include <cstdint>

#include "src/sim/simulator.h"
#include "src/timer/tree_queue.h"

namespace tempo {

// A soft-timer facility over one simulator.
class SoftTimerFacility {
 public:
  struct Options {
    // Fallback hardware tick period bounding worst-case delivery delay
    // (the paper's era used ~1-10 ms).
    SimDuration fallback_period;
    // Cycles charged per trigger-state check (Aron & Druschel measured a
    // handful of cycles when no timer is due).
    uint64_t check_cost_cycles;

    Options() : fallback_period(10 * kMillisecond), check_cost_cycles(15) {}
  };

  SoftTimerFacility(Simulator* sim, Options options);
  explicit SoftTimerFacility(Simulator* sim) : SoftTimerFacility(sim, Options()) {}
  SoftTimerFacility(const SoftTimerFacility&) = delete;
  SoftTimerFacility& operator=(const SoftTimerFacility&) = delete;

  // Starts the fallback tick.
  void Start();

  // Schedules `fn` for `timeout` from now; fires at the first trigger
  // state or fallback tick at/after the expiry.
  TimerHandle Schedule(SimDuration timeout, std::function<void()> fn);

  bool Cancel(TimerHandle handle);

  // The host kernel passed a trigger state (syscall return, idle loop...):
  // check for due soft timers. Returns the number fired.
  size_t TriggerState();

  // --- cost/precision accounting ---
  uint64_t checks() const { return checks_; }
  uint64_t fallback_ticks() const { return fallback_ticks_; }
  uint64_t fired() const { return fired_; }
  // Sum and max of (delivery time - expiry time) over fired timers.
  SimDuration total_delay() const { return total_delay_; }
  SimDuration max_delay() const { return max_delay_; }
  double mean_delay_us() const {
    return fired_ == 0 ? 0.0
                       : static_cast<double>(total_delay_) /
                             static_cast<double>(fired_) / 1000.0;
  }

 private:
  void OnFallbackTick();
  size_t RunDue();

  Simulator* sim_;
  Options options_;
  TreeTimerQueue queue_;
  // Expiry stamps for delay accounting, parallel to queue handles.
  std::map<TimerHandle, SimTime> expiries_;
  bool started_ = false;
  uint64_t checks_ = 0;
  uint64_t fallback_ticks_ = 0;
  uint64_t fired_ = 0;
  SimDuration total_delay_ = 0;
  SimDuration max_delay_ = 0;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_SOFT_TIMERS_H_
