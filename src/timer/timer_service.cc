#include "src/timer/timer_service.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace tempo {

namespace {

// Process-wide thread ordinal: each thread gets a stable small integer on
// first use, so `ordinal % shard_count` spreads threads round-robin over
// shards regardless of how many services exist.
std::atomic<size_t> g_thread_ordinal_source{0};

size_t ThreadOrdinal() {
  thread_local const size_t ordinal =
      g_thread_ordinal_source.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TimerService::TimerService() : TimerService(Options()) {}

TimerService::TimerService(Options options)
    : queue_name_(options.queue), trace_callsite_(options.trace_callsite) {
  size_t count = options.shards;
  if (count == 0) {
    count = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::string label =
      options.stats_label.empty() ? options.queue : options.stats_label;
  obs::Registry& reg = obs::Registry::Global();
  const char* ops_help = "TimerService operations by shard and op";
  const char* lock_help = "TimerService shard-lock acquisitions that blocked";
  const char* cache_help =
      "TimerService per-shard deadline-cache outcomes (hit: published "
      "deadline survived the op; miss: it had to be republished)";
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string shard_label = label + "@" + std::to_string(i);
    if (options.trace != nullptr) {
      shard->trace = options.trace->Register("timer_service/" + shard_label);
    }
    TimerQueueOptions queue_options;
    queue_options.name = options.queue;
    queue_options.stats_label = shard_label;
    queue_options.granularity = options.granularity;
    shard->queue = MakeTimerQueue(queue_options);
    if (shard->queue == nullptr) {
      // Unknown implementation: fall back rather than crash, matching the
      // factory's nullptr contract while keeping the service usable.
      queue_options.name = "hierarchical_wheel";
      shard->queue = MakeTimerQueue(queue_options);
      queue_name_ = "hierarchical_wheel";
    }
    const obs::Labels base = {{"service", label}, {"shard", std::to_string(i)}};
    auto with = [&base](const char* key, const char* value) {
      obs::Labels labels = base;
      labels.emplace_back(key, value);
      return labels;
    };
    shard->set_ops = reg.GetCounter("timer_service_ops", with("op", "set"), ops_help);
    shard->cancel_ops = reg.GetCounter("timer_service_ops", with("op", "cancel"), ops_help);
    shard->expire_ops = reg.GetCounter("timer_service_ops", with("op", "expire"), ops_help);
    shard->resched_ops =
        reg.GetCounter("timer_service_ops", with("op", "reschedule"), ops_help);
    shard->contended = reg.GetCounter("timer_service_lock_contended", base, lock_help);
    shard->cache_hits =
        reg.GetCounter("timer_service_deadline_cache", with("result", "hit"), cache_help);
    shard->cache_misses =
        reg.GetCounter("timer_service_deadline_cache", with("result", "miss"), cache_help);
    shards_.push_back(std::move(shard));
  }
  const obs::Labels service_labels = {{"service", label}};
  gauge_shards_ = reg.GetGauge("timer_service_shards", service_labels,
                               "Number of shards in the TimerService");
  gauge_advance_calls_ = reg.GetGauge("timer_service_advance_calls", service_labels,
                                      "AdvanceAll invocations");
  gauge_shards_skipped_ =
      reg.GetGauge("timer_service_advance_shards_skipped", service_labels,
                   "Shards AdvanceAll skipped because their deadline was not due");
  gauge_shards_advanced_ =
      reg.GetGauge("timer_service_advance_shards_advanced", service_labels,
                   "Shards AdvanceAll locked and advanced");
  gauge_shards_->Set(static_cast<int64_t>(count));
}

std::unique_lock<std::mutex> TimerService::LockShard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock.lock();
    shard.contended->Inc();  // now under mu, safe to touch the instrument
  }
  return lock;
}

void TimerService::RepublishDeadline(Shard& shard) {
  const SimTime next = shard.queue->NextExpiry();
  if (next == shard.next_expiry.load(std::memory_order_relaxed)) {
    shard.cache_hits->Inc();
    return;
  }
  shard.next_expiry.store(next, std::memory_order_release);
  shard.cache_misses->Inc();
}

void TimerService::TraceOp(Shard& shard, TimerOp op, TimerHandle handle,
                           SimTime expiry) {
  const SimTime now = trace_now_.load(std::memory_order_relaxed);
  if (now > shard.trace_clock) {
    shard.trace_clock = now;
  }
  TraceRecord record;
  record.timestamp = shard.trace_clock;
  record.timer = handle;
  record.expiry = expiry;
  if (op == TimerOp::kSet && expiry > shard.trace_clock) {
    record.timeout = expiry - shard.trace_clock;
  }
  record.callsite = trace_callsite_;
  record.op = op;
  shard.trace->TryLog(record);
}

TimerHandle TimerService::ScheduleLocked(size_t index, Shard& shard, SimTime expiry,
                                         TimerQueueCallback cb) {
  if (shard.trace != nullptr) {
    // Wrap the callback so expiry is logged from wherever it fires —
    // always under this shard's lock, inside AdvanceShardLocked.
    cb = [this, &shard, index, expiry, inner = std::move(cb)](TimerHandle local) {
      TraceOp(shard, TimerOp::kExpire,
              (static_cast<uint64_t>(index + 1) << kShardShift) | (local & kLocalMask),
              expiry);
      inner(local);
    };
  }
  const TimerHandle local = shard.queue->Schedule(expiry, std::move(cb));
  shard.set_ops->Inc();
  shard.live.store(shard.queue->Size(), std::memory_order_relaxed);
  const SimTime published = shard.next_expiry.load(std::memory_order_relaxed);
  if (expiry >= published) {
    // A later timer cannot move the minimum: the published deadline stays
    // valid with no queue query at all — the schedule fast path.
    shard.cache_hits->Inc();
  } else {
    RepublishDeadline(shard);
  }
  const TimerHandle handle =
      (static_cast<uint64_t>(index + 1) << kShardShift) | (local & kLocalMask);
  if (shard.trace != nullptr) {
    TraceOp(shard, TimerOp::kSet, handle, expiry);
  }
  return handle;
}

TimerHandle TimerService::Schedule(SimTime expiry, TimerQueueCallback cb) {
  return ScheduleOn(ThreadOrdinal(), expiry, std::move(cb));
}

TimerHandle TimerService::ScheduleOn(size_t shard_index, SimTime expiry, TimerQueueCallback cb) {
  const size_t index = shard_index % shards_.size();
  Shard& shard = *shards_[index];
  std::unique_lock<std::mutex> lock = LockShard(shard);
  return ScheduleLocked(index, shard, expiry, std::move(cb));
}

void TimerService::ScheduleBatchOn(size_t shard_index, std::span<TimerBatchEntry> entries,
                                   const TimerQueueCallback& cb) {
  const size_t index = shard_index % shards_.size();
  Shard& shard = *shards_[index];
  std::unique_lock<std::mutex> lock = LockShard(shard);
  if (shard.trace != nullptr) {
    // Tracing wraps each callback with its own expiry, so the batch
    // degenerates to the per-entry path (still under one lock).
    for (TimerBatchEntry& entry : entries) {
      entry.handle = ScheduleLocked(index, shard, entry.expiry, cb);
    }
    return;
  }
  shard.queue->ScheduleBatch(entries, cb);
  shard.set_ops->Inc(entries.size());
  shard.live.store(shard.queue->Size(), std::memory_order_relaxed);
  RepublishDeadline(shard);
  for (TimerBatchEntry& entry : entries) {
    entry.handle =
        (static_cast<uint64_t>(index + 1) << kShardShift) | (entry.handle & kLocalMask);
  }
}

bool TimerService::Cancel(TimerHandle handle) {
  const uint64_t shard_bits = handle >> kShardShift;
  if (shard_bits == 0 || shard_bits > shards_.size()) {
    return false;
  }
  Shard& shard = *shards_[static_cast<size_t>(shard_bits - 1)];
  std::unique_lock<std::mutex> lock = LockShard(shard);
  if (!shard.queue->Cancel(handle & kLocalMask)) {
    return false;
  }
  shard.cancel_ops->Inc();
  shard.live.store(shard.queue->Size(), std::memory_order_relaxed);
  RepublishDeadline(shard);
  if (shard.trace != nullptr) {
    TraceOp(shard, TimerOp::kCancel, handle, 0);
  }
  return true;
}

size_t TimerService::CancelBatch(std::span<const TimerHandle> handles) {
  // Group handles by owning shard so each shard lock is taken at most once
  // no matter how the batch interleaves shards (teardown hands us every
  // connection's handles in connection order, i.e. round-robin by shard).
  std::vector<std::vector<TimerHandle>> by_shard(shards_.size());
  for (const TimerHandle handle : handles) {
    const uint64_t shard_bits = handle >> kShardShift;
    if (shard_bits == 0 || shard_bits > shards_.size()) {
      continue;  // invalid handles are skipped, not errors
    }
    by_shard[static_cast<size_t>(shard_bits - 1)].push_back(handle);
  }
  size_t canceled = 0;
  for (size_t index = 0; index < by_shard.size(); ++index) {
    const std::vector<TimerHandle>& group = by_shard[index];
    if (group.empty()) {
      continue;
    }
    Shard& shard = *shards_[index];
    std::unique_lock<std::mutex> lock = LockShard(shard);
    size_t live_canceled = 0;
    for (const TimerHandle handle : group) {
      if (shard.queue->Cancel(handle & kLocalMask)) {
        ++live_canceled;
        if (shard.trace != nullptr) {
          TraceOp(shard, TimerOp::kCancel, handle, 0);
        }
      }
    }
    if (live_canceled > 0) {
      shard.cancel_ops->Inc(live_canceled);
      shard.live.store(shard.queue->Size(), std::memory_order_relaxed);
      RepublishDeadline(shard);
    }
    canceled += live_canceled;
  }
  return canceled;
}

TimerHandle TimerService::Reschedule(TimerHandle handle, SimTime new_expiry) {
  const uint64_t shard_bits = handle >> kShardShift;
  if (shard_bits == 0 || shard_bits > shards_.size()) {
    return kInvalidTimerHandle;
  }
  Shard& shard = *shards_[static_cast<size_t>(shard_bits - 1)];
  std::unique_lock<std::mutex> lock = LockShard(shard);
  if (shard.queue->Reschedule(handle & kLocalMask, new_expiry) == kInvalidTimerHandle) {
    return kInvalidTimerHandle;
  }
  shard.resched_ops->Inc();
  // The move may have raised the old minimum or lowered the new one;
  // either way the published deadline must be requeried.
  RepublishDeadline(shard);
  if (shard.trace != nullptr) {
    // A reschedule is a re-arm: record it as a set at the new expiry. The
    // expiry stamped on the eventual expire record is the original one the
    // scheduled wrapper captured — a known approximation.
    TraceOp(shard, TimerOp::kSet, handle, new_expiry);
  }
  return handle;
}

size_t TimerService::AdvanceShardLocked(Shard& shard, SimTime now) {
  const size_t fired = shard.queue->Advance(now);
  shard.expire_ops->Inc(fired);
  shard.live.store(shard.queue->Size(), std::memory_order_relaxed);
  RepublishDeadline(shard);
  return fired;
}

void TimerService::SetTraceTime(SimTime now) {
  SimTime seen = trace_now_.load(std::memory_order_relaxed);
  while (now > seen &&
         !trace_now_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

size_t TimerService::AdvanceAll(SimTime now) {
  SetTraceTime(now);
  size_t fired = 0;
  uint64_t skipped = 0;
  uint64_t advanced = 0;
  for (auto& shard : shards_) {
    if (shard->next_expiry.load(std::memory_order_acquire) > now) {
      ++skipped;
      continue;
    }
    std::unique_lock<std::mutex> lock = LockShard(*shard);
    fired += AdvanceShardLocked(*shard, now);
    ++advanced;
  }
  advance_calls_.fetch_add(1, std::memory_order_relaxed);
  shards_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  shards_advanced_.fetch_add(advanced, std::memory_order_relaxed);
  return fired;
}

size_t TimerService::AdvanceShard(size_t shard_index, SimTime now) {
  SetTraceTime(now);
  Shard& shard = *shards_[shard_index % shards_.size()];
  advance_calls_.fetch_add(1, std::memory_order_relaxed);
  if (shard.next_expiry.load(std::memory_order_acquire) > now) {
    shards_skipped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  std::unique_lock<std::mutex> lock = LockShard(shard);
  const size_t fired = AdvanceShardLocked(shard, now);
  shards_advanced_.fetch_add(1, std::memory_order_relaxed);
  return fired;
}

SimTime TimerService::ShardNextExpiry(size_t shard) const {
  return shards_[shard % shards_.size()]->next_expiry.load(std::memory_order_acquire);
}

SimTime TimerService::GlobalNextExpiry() const {
  SimTime best = kNeverTime;
  for (const auto& shard : shards_) {
    best = std::min(best, shard->next_expiry.load(std::memory_order_acquire));
  }
  return best;
}

size_t TimerService::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->live.load(std::memory_order_relaxed);
  }
  return total;
}

size_t TimerService::MemoryBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->queue->MemoryBytes();
  }
  return total;
}

uint64_t TimerService::set_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->set_ops->value();
  }
  return total;
}

uint64_t TimerService::cancel_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cancel_ops->value();
  }
  return total;
}

uint64_t TimerService::expire_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->expire_ops->value();
  }
  return total;
}

uint64_t TimerService::reschedule_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->resched_ops->value();
  }
  return total;
}

uint64_t TimerService::contended_locks() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->contended->value();
  }
  return total;
}

uint64_t TimerService::deadline_cache_hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cache_hits->value();
  }
  return total;
}

uint64_t TimerService::deadline_cache_misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cache_misses->value();
  }
  return total;
}

void TimerService::PublishStats() {
  gauge_advance_calls_->Set(static_cast<int64_t>(advance_calls()));
  gauge_shards_skipped_->Set(static_cast<int64_t>(shards_skipped()));
  gauge_shards_advanced_->Set(static_cast<int64_t>(shards_advanced()));
}

}  // namespace tempo
