// Sharded, thread-safe timer front-end.
//
// The paper's timer subsystems are single-threaded multiplexers; a
// production-scale system serving millions of connections cannot funnel
// every set/cancel through one lock and one structure. TimerService
// partitions timer load across N shards (CHRONOS-style per-context
// partitioning), each wrapping one TimerQueue implementation behind a
// fine-grained mutex, and keeps the two operations the OS models hammer —
// earliest-deadline lookup (every hardware-reprogram decision) and "is
// anything due?" — off the locks entirely:
//
//   * Each shard publishes its earliest pending deadline in an atomic,
//     maintained incrementally on Schedule/Cancel/Advance — never by
//     scanning the shard from the read path (Lawn's cheap-minimum lesson).
//   * GlobalNextExpiry() is a lock-free read of the per-shard atomics.
//   * AdvanceAll(now) locks only the shards whose published deadline is
//     due; idle shards are skipped without touching their mutex.
//
// Handles encode their owning shard, so Cancel routes directly with no
// global index. Per-shard obs instruments (op counters, lock-contention
// counter, deadline-cache hit rate) are updated only under the owning
// shard's mutex; take registry snapshots from a quiescent thread.

#ifndef TEMPO_SRC_TIMER_TIMER_SERVICE_H_
#define TEMPO_SRC_TIMER_TIMER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/timer/queue.h"
#include "src/trace/record.h"
#include "src/trace/relay.h"

namespace tempo {

class TimerService {
 public:
  struct Options {
    // Number of shards; 0 means std::thread::hardware_concurrency().
    size_t shards = 0;
    // Underlying TimerQueue implementation, by factory name.
    std::string queue = "hierarchical_wheel";
    // Tick width passed through to the quantising backends (both wheels
    // and the lawn); ignored by heap and tree.
    SimDuration granularity = kMillisecond;
    // Instrument label prefix; defaults to the queue name. Two services
    // alive at once must use distinct labels (instruments are shared by
    // label and are not thread-safe across services).
    std::string stats_label;
    // Optional relay tracing: when set, every shard registers its own
    // channel ("timer_service/<label>@<shard>") in this set and logs
    // kSet / kCancel / kExpire records through it under the shard lock —
    // the lock makes the shard's interleaved callers one logical producer,
    // so the whole sharded service traces concurrently with no extra
    // synchronisation. The set must outlive the service.
    RelayChannelSet* trace = nullptr;
    // Call site stamped on the records (intern one per service).
    CallsiteId trace_callsite = kUnknownCallsite;
  };

  TimerService();  // default options
  explicit TimerService(Options options);
  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  // Schedules on the calling thread's home shard (threads are spread over
  // shards round-robin, so a thread keeps hitting the same shard and
  // disjoint thread sets contend on disjoint locks). Thread-safe.
  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb);

  // Explicit shard placement (index taken modulo the shard count); the
  // deterministic single-threaded driver's interface. Thread-safe.
  TimerHandle ScheduleOn(size_t shard, SimTime expiry, TimerQueueCallback cb);

  // Schedules a batch on one shard under a single lock acquisition,
  // rewriting each entry's handle with the shard encoding. Same shared-
  // callback contract as TimerQueue::ScheduleBatch. Thread-safe; the bulk
  // arm path for connection setup storms.
  void ScheduleBatchOn(size_t shard, std::span<TimerBatchEntry> entries,
                       const TimerQueueCallback& cb);

  // Routes to the owning shard via the handle encoding. False for invalid,
  // unknown, fired or already-canceled handles. Thread-safe.
  bool Cancel(TimerHandle handle);

  // Cancels a batch of handles, grouping by owning shard so each shard's
  // lock is taken at most once. Returns how many were live. Thread-safe;
  // the bulk disarm path for connection teardown storms.
  size_t CancelBatch(std::span<const TimerHandle> handles);

  // Moves a pending timer to a new expiry, keeping handle and callback —
  // the RTO-backoff / keepalive re-arm fast path, one shard lock and no
  // handle churn. Returns the handle, or kInvalidTimerHandle when the
  // timer is unknown, fired, or canceled. Thread-safe.
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry);

  // Fires everything due at `now`, locking only shards whose published
  // deadline is <= now. Returns the number fired. Thread-safe, though
  // expiry order across concurrently advanced shards is unspecified.
  size_t AdvanceAll(SimTime now);

  // Advances a single shard (index taken modulo the shard count) to `now`,
  // skipping the lock when the shard's published deadline is not due.
  // Returns the number fired. Thread-safe; this is the per-CPU driving
  // interface — pin shard i to clock domain i and AdvanceAll's work really
  // does run in parallel, one shard per simulated CPU.
  size_t AdvanceShard(size_t shard, SimTime now);

  // The published earliest deadline of one shard (modulo the shard count).
  // Lock-free, same staleness contract as GlobalNextExpiry().
  SimTime ShardNextExpiry(size_t shard) const;

  // Earliest published deadline across all shards, kNeverTime when idle.
  // Lock-free: reads one atomic per shard; the result is exact while the
  // service is quiescent and a safe lower-resolution hint under concurrent
  // mutation (like a real kernel's next-event heuristic).
  SimTime GlobalNextExpiry() const;

  // Total live timers (sum of per-shard atomic sizes). Lock-free.
  size_t Size() const;

  // Approximate bytes held by the underlying queues for the pending set
  // (sum of per-shard TimerQueue::MemoryBytes; locks each shard briefly).
  size_t MemoryBytes() const;

  size_t shard_count() const { return shards_.size(); }
  const std::string& queue_name() const { return queue_name_; }

  // Service-wide aggregates, for tools and tests. Monotonic.
  uint64_t advance_calls() const { return advance_calls_.load(std::memory_order_relaxed); }
  uint64_t shards_skipped() const { return shards_skipped_.load(std::memory_order_relaxed); }
  uint64_t shards_advanced() const { return shards_advanced_.load(std::memory_order_relaxed); }
  // Sums of the per-shard obs counters (quiescent reads).
  uint64_t set_count() const;
  uint64_t cancel_count() const;
  uint64_t expire_count() const;
  uint64_t reschedule_count() const;
  uint64_t contended_locks() const;
  uint64_t deadline_cache_hits() const;
  uint64_t deadline_cache_misses() const;

  // Publishes the service-wide aggregates into obs gauges
  // (timer_service_advance_calls / _shards_skipped / _shards_advanced).
  // Call from a quiescent thread before snapshotting the registry.
  void PublishStats();

  // Advances the clock used to stamp trace records (monotonic: earlier
  // values are ignored). AdvanceAll folds its `now` in automatically; call
  // this from the driving clock when Schedule/Cancel timestamps matter.
  // No-op when tracing is off. Thread-safe.
  void SetTraceTime(SimTime now);

  // Handle encoding, public for clients that observe queue-local handles
  // (a timer callback receives the local handle; comparing it against a
  // stored service handle's low bits detects stale fires): the shard index
  // lives in the top bits, biased by one so a service handle is never 0
  // and never collides with a bare queue handle.
  static constexpr int kShardShift = 48;
  static constexpr uint64_t kLocalMask = (uint64_t{1} << kShardShift) - 1;

 private:

  struct alignas(64) Shard {
    std::mutex mu;
    std::unique_ptr<TimerQueue> queue;  // guarded by mu
    // Published earliest deadline and live count; written under mu with
    // release, read lock-free with acquire.
    std::atomic<SimTime> next_expiry{kNeverTime};
    std::atomic<size_t> live{0};
    // Relay trace channel and its per-shard clock mirror (guarded by mu;
    // the mirror keeps the channel's timestamps nondecreasing even if
    // SetTraceTime races with ops on other shards).
    RelayChannel* trace = nullptr;
    SimTime trace_clock = 0;
    // Obs instruments, updated only under mu.
    obs::Counter* set_ops = nullptr;
    obs::Counter* cancel_ops = nullptr;
    obs::Counter* expire_ops = nullptr;
    obs::Counter* resched_ops = nullptr;
    obs::Counter* contended = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
  };

  // Locks the shard, counting the acquisition as contended if it blocked.
  std::unique_lock<std::mutex> LockShard(Shard& shard);
  TimerHandle ScheduleLocked(size_t index, Shard& shard, SimTime expiry, TimerQueueCallback cb);
  size_t AdvanceShardLocked(Shard& shard, SimTime now);
  // Republishes the shard's deadline; counts a cache hit when the
  // published value was still correct and a miss when it had to change.
  void RepublishDeadline(Shard& shard);
  // Logs one record to the shard's trace channel (no-op when tracing is
  // off). Must hold the shard lock.
  void TraceOp(Shard& shard, TimerOp op, TimerHandle handle, SimTime expiry);

  std::string queue_name_;
  CallsiteId trace_callsite_ = kUnknownCallsite;
  std::atomic<SimTime> trace_now_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> advance_calls_{0};
  std::atomic<uint64_t> shards_skipped_{0};
  std::atomic<uint64_t> shards_advanced_{0};
  obs::Gauge* gauge_shards_ = nullptr;
  obs::Gauge* gauge_advance_calls_ = nullptr;
  obs::Gauge* gauge_shards_skipped_ = nullptr;
  obs::Gauge* gauge_shards_advanced_ = nullptr;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_TIMER_SERVICE_H_
