#include "src/timer/tree_queue.h"

#include <utility>

namespace tempo {

TimerHandle TreeTimerQueue::Schedule(SimTime expiry, TimerQueueCallback cb) {
  obs::ScopedProbe probe(stats_.set_cycles);
  stats_.set_ops->Inc();
  const TimerHandle handle = next_handle_++;
  auto it = tree_.emplace(expiry, std::make_pair(handle, std::move(cb)));
  index_.emplace(handle, it);
  return handle;
}

bool TreeTimerQueue::Cancel(TimerHandle handle) {
  obs::ScopedProbe probe(stats_.cancel_cycles);
  stats_.cancel_ops->Inc();
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return false;
  }
  tree_.erase(it->second);
  index_.erase(it);
  return true;
}

TimerHandle TreeTimerQueue::Reschedule(TimerHandle handle, SimTime new_expiry) {
  obs::ScopedProbe probe(stats_.set_cycles);
  auto it = index_.find(handle);
  if (it == index_.end()) {
    return kInvalidTimerHandle;
  }
  stats_.resched_ops->Inc();
  // Extract the multimap node, rekey it, and put it back: the callback is
  // moved zero times and no allocation happens.
  auto node = tree_.extract(it->second);
  node.key() = new_expiry;
  it->second = tree_.insert(std::move(node));
  return handle;
}

size_t TreeTimerQueue::MemoryBytes() const {
  return timer_internal::TreeBytes(tree_) + timer_internal::NodeMapBytes(index_);
}

size_t TreeTimerQueue::AdvanceTo(SimTime now) {
  obs::ScopedProbe probe(stats_.advance_cycles);
  size_t fired = 0;
  while (!tree_.empty() && tree_.begin()->first <= now) {
    auto it = tree_.begin();
    const TimerHandle handle = it->second.first;
    TimerQueueCallback cb = std::move(it->second.second);
    index_.erase(handle);
    tree_.erase(it);
    cb(handle);
    ++fired;
  }
  stats_.expire_ops->Inc(fired);
  return fired;
}

}  // namespace tempo
