// Red-black-tree timer queue (the Linux hrtimer design).

#ifndef TEMPO_SRC_TIMER_TREE_QUEUE_H_
#define TEMPO_SRC_TIMER_TREE_QUEUE_H_

#include <map>
#include <unordered_map>

#include "src/timer/queue.h"

namespace tempo {

// O(log n) schedule, O(log n) eager cancel, in-order expiry with full
// (nanosecond) resolution — the structure Linux adopted for hrtimers
// (Gleixner & Niehaus, OLS'06) because wheels quantise to a tick.
class TreeTimerQueue : public TimerQueue {
 public:
  // `stats_label` selects the obs instrument set; sharded wrappers pass a
  // per-shard label so concurrent instances never share an instrument.
  explicit TreeTimerQueue(const std::string& stats_label = "tree")
      : stats_(TimerQueueStats::For(stats_label)) {}

  TimerHandle Schedule(SimTime expiry, TimerQueueCallback cb) override;
  bool Cancel(TimerHandle handle) override;
  TimerHandle Reschedule(TimerHandle handle, SimTime new_expiry) override;
  size_t Size() const override { return tree_.size(); }
  SimTime NextExpiry() const override {
    return tree_.empty() ? kNeverTime : tree_.begin()->first;
  }
  size_t MemoryBytes() const override;
  std::string Name() const override { return "tree"; }

 protected:
  size_t AdvanceTo(SimTime now) override;

 private:
  using Tree = std::multimap<SimTime, std::pair<TimerHandle, TimerQueueCallback>>;
  Tree tree_;
  std::unordered_map<TimerHandle, Tree::iterator> index_;
  TimerHandle next_handle_ = 1;
  TimerQueueStats stats_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TIMER_TREE_QUEUE_H_
