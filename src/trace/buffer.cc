#include "src/trace/buffer.h"

#include <utility>

namespace tempo {

void NullSink::Log(const TraceRecord& record) {
  (void)record;
  ++dropped_;
}

RelayBuffer::RelayBuffer(size_t capacity) : capacity_(capacity) {}

void RelayBuffer::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
  }
  if (records_.size() >= capacity_) {
    ++dropped_;  // relayfs semantics: drop new, keep old
    return;
  }
  records_.push_back(record);
}

std::vector<TraceRecord> RelayBuffer::TakeRecords() {
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  dropped_ = 0;
  return out;
}

void EtwSession::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
  }
  records_.push_back(record);
}

std::vector<TraceRecord> EtwSession::TakeRecords() {
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  return out;
}

}  // namespace tempo
