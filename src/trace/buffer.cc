#include "src/trace/buffer.h"

#include <utility>

namespace tempo {

namespace {

obs::Counter* SinkCounter(const char* name, const char* sink, const char* help) {
  return obs::Registry::Global().GetCounter(name, {{"sink", sink}}, help);
}

constexpr char kLoggedHelp[] = "Trace records accepted by the sink";
constexpr char kDroppedHelp[] = "Trace records dropped or discarded by the sink";
constexpr char kChargedHelp[] = "CPU cycles charged for logging, by sink";

}  // namespace

NullSink::NullSink()
    : metric_discarded_(SinkCounter("trace_records_dropped", "null", kDroppedHelp)) {}

void NullSink::Log(const TraceRecord& record) {
  (void)record;
  ++discarded_;
  metric_discarded_->Inc();
}

RelayBuffer::RelayBuffer(size_t capacity)
    : capacity_(capacity),
      metric_logged_(SinkCounter("trace_records_logged", "relay", kLoggedHelp)),
      metric_dropped_(SinkCounter("trace_records_dropped", "relay", kDroppedHelp)),
      metric_charged_(SinkCounter("trace_charged_cycles", "relay", kChargedHelp)) {}

void RelayBuffer::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
    metric_charged_->Inc(cost_cycles_);
  }
  if (records_.size() >= capacity_) {
    ++dropped_;  // relayfs semantics: drop new, keep old
    metric_dropped_->Inc();
    return;
  }
  records_.push_back(record);
  metric_logged_->Inc();
}

std::vector<TraceRecord> RelayBuffer::TakeRecords() {
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  dropped_ = 0;
  return out;
}

EtwSession::EtwSession()
    : metric_logged_(SinkCounter("trace_records_logged", "etw", kLoggedHelp)),
      metric_charged_(SinkCounter("trace_charged_cycles", "etw", kChargedHelp)) {}

void EtwSession::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
    metric_charged_->Inc(cost_cycles_);
  }
  records_.push_back(record);
  metric_logged_->Inc();
}

std::vector<TraceRecord> EtwSession::TakeRecords() {
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  return out;
}

}  // namespace tempo
