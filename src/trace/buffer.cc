#include "src/trace/buffer.h"

#include <utility>

namespace tempo {

namespace {

obs::Counter* SinkCounter(const char* name, const char* sink, const char* help) {
  return obs::Registry::Global().GetCounter(name, {{"sink", sink}}, help);
}

constexpr char kLoggedHelp[] = "Trace records accepted by the sink";
constexpr char kDroppedHelp[] = "Trace records dropped or discarded by the sink";
constexpr char kChargedHelp[] = "CPU cycles charged for logging, by sink";

}  // namespace

NullSink::NullSink()
    : metric_discarded_(SinkCounter("trace_records_dropped", "null", kDroppedHelp)) {}

void NullSink::Log(const TraceRecord& record) {
  (void)record;
  ++discarded_;
  metric_discarded_->Inc();
}

RelayBuffer::RelayBuffer(size_t capacity)
    : capacity_(capacity),
      channel_("relay_buffer", RelayChannelConfig::ForCapacity(capacity)),
      metric_logged_(SinkCounter("trace_records_logged", "relay", kLoggedHelp)),
      metric_dropped_(SinkCounter("trace_records_dropped", "relay", kDroppedHelp)),
      metric_charged_(SinkCounter("trace_charged_cycles", "relay", kChargedHelp)) {}

void RelayBuffer::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
    metric_charged_->Inc(cost_cycles_);
  }
  // The shim enforces the exact requested capacity; the channel's geometry
  // (rounded up to whole sub-buffers, plus flush slack) never drops first.
  if (logged_ >= capacity_) {
    ++dropped_;  // relayfs semantics: drop new, keep old
    metric_dropped_->Inc();
    return;
  }
  channel_.TryLog(record);
  if (live_tap_ != nullptr) {
    live_tap_->TryLog(record);
  }
  ++logged_;
  metric_logged_->Inc();
}

void RelayBuffer::Sync() const {
  channel_.FlushOpen();
  channel_.Harvest(&records_);
}

const std::vector<TraceRecord>& RelayBuffer::records() const {
  Sync();
  return records_;
}

std::vector<TraceRecord> RelayBuffer::TakeRecords() {
  Sync();
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  logged_ = 0;
  dropped_ = 0;
  return out;
}

EtwSession::EtwSession()
    : channel_("etw_session"),
      metric_logged_(SinkCounter("trace_records_logged", "etw", kLoggedHelp)),
      metric_charged_(SinkCounter("trace_charged_cycles", "etw", kChargedHelp)) {}

void EtwSession::Log(const TraceRecord& record) {
  if (cpu_ != nullptr) {
    cpu_->ChargeCycles(cost_cycles_);
    metric_charged_->Inc(cost_cycles_);
  }
  if (!channel_.TryLog(record)) {
    // Ring full: spill it into the materialized vector and retry — the
    // session is unbounded, so the record must not be lost.
    Sync();
    channel_.TryLog(record);
  }
  if (live_tap_ != nullptr) {
    live_tap_->TryLog(record);
  }
  metric_logged_->Inc();
}

void EtwSession::Sync() const {
  channel_.FlushOpen();
  channel_.Harvest(&records_);
}

const std::vector<TraceRecord>& EtwSession::records() const {
  Sync();
  return records_;
}

std::vector<TraceRecord> EtwSession::TakeRecords() {
  Sync();
  std::vector<TraceRecord> out = std::move(records_);
  records_.clear();
  return out;
}

}  // namespace tempo
