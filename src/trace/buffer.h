// Trace sinks: legacy adapters over the relay-channel recording path.
//
// The Linux study used relayfs with a 512 MiB in-kernel buffer: ordered,
// lossless up to capacity, with new events *dropped* (never overwriting old
// ones) on overflow. The Vista study used ETW, effectively unbounded for the
// trace lengths involved. Since the relay rework both are thin shims over a
// RelayChannel (relay.h): records take the same lock-free sub-buffer path
// the multi-producer pipeline uses, and the classes here only add the
// legacy conveniences — a materialized `records()` vector, exact capacity
// accounting, CPU cycle charging — on top.
//
// Logging itself costs CPU: the paper measured 236 cycles per record
// (Section 3.2). Sinks charge a configurable per-record cycle cost to the
// simulated CPU so the overhead experiment can be re-run.

#ifndef TEMPO_SRC_TRACE_BUFFER_H_
#define TEMPO_SRC_TRACE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/trace/record.h"
#include "src/trace/relay.h"

namespace tempo {

// Per-record instrumentation cost measured in the paper (Section 3.2).
inline constexpr uint64_t kPaperLogCostCycles = 236;

// Abstract destination for trace records. Legacy interface: the hot
// recording path is RelayChannel::TryLog (non-virtual); TraceSink remains
// for callers that want pluggable single-threaded sinks.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Logs one record. Implementations may drop it (bounded buffers).
  virtual void Log(const TraceRecord& record) = 0;
};

// Sink that discards everything; stands in for the "unmodified kernel" runs
// used to measure instrumentation perturbation. It deliberately charges no
// CPU cycles — that is the point of the baseline — but it does count the
// records it swallows, so a perturbation experiment can still verify that
// both runs *attempted* the same amount of logging. The count is exposed as
// `discarded()` (not `dropped()`): nothing was lost to overflow as in
// RelayBuffer; every record was discarded by design.
class NullSink : public TraceSink {
 public:
  NullSink();

  void Log(const TraceRecord& record) override;

  uint64_t discarded() const { return discarded_; }

 private:
  uint64_t discarded_ = 0;
  obs::Counter* metric_discarded_;
};

// TraceSink adapter over a relay channel: lets legacy TraceSink callers
// feed the channel/drainer pipeline. The virtual call is the adapter's
// price; hot paths should hold the RelayChannel* directly.
class ChannelSink : public TraceSink {
 public:
  explicit ChannelSink(RelayChannel* channel) : channel_(channel) {}

  void Log(const TraceRecord& record) override {
    if (cpu_ != nullptr) {
      cpu_->ChargeCycles(cost_cycles_);
    }
    channel_->TryLog(record);
  }

  // Attaches a CPU to charge `cost_cycles` per logged record.
  void AttachCpu(Cpu* cpu, uint64_t cost_cycles = kPaperLogCostCycles) {
    cpu_ = cpu;
    cost_cycles_ = cost_cycles;
  }

  RelayChannel* channel() const { return channel_; }

 private:
  RelayChannel* channel_;
  Cpu* cpu_ = nullptr;
  uint64_t cost_cycles_ = kPaperLogCostCycles;
};

// Bounded, ordered trace buffer with relayfs overflow semantics: once the
// buffer is full, new records are dropped and counted; existing records are
// never overwritten. Backed by a private RelayChannel; `records()` and
// `TakeRecords()` harvest it on demand, so single-threaded callers see the
// same materialized-vector behaviour as before the relay rework.
class RelayBuffer : public TraceSink {
 public:
  // `capacity` is the maximum number of records retained. The default is
  // the paper's 512 MiB relayfs buffer expressed in records — derived from
  // sizeof(TraceRecord) in relay.h, not hard-coded.
  explicit RelayBuffer(size_t capacity = kRelayDefaultCapacity);

  void Log(const TraceRecord& record) override;

  // Attaches a CPU to charge `cost_cycles` per logged record.
  void AttachCpu(Cpu* cpu, uint64_t cost_cycles = kPaperLogCostCycles) {
    cpu_ = cpu;
    cost_cycles_ = cost_cycles;
  }

  // Tees every *accepted* record into `tap` as well (e.g. a channel a live
  // drainer polls while the run executes); nullptr disables. Records this
  // buffer drops are not teed, so the live view matches the recorded trace.
  void SetLiveTap(RelayChannel* tap) { live_tap_ = tap; }

  const std::vector<TraceRecord>& records() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t logged() const { return logged_; }

  // Releases the stored records (e.g. to hand to the analysis pipeline
  // without copying) and resets the buffer.
  std::vector<TraceRecord> TakeRecords();

 private:
  // Harvests everything logged so far out of the channel into records_.
  void Sync() const;

  size_t capacity_;
  mutable RelayChannel channel_;              // Sync flushes + harvests it
  mutable std::vector<TraceRecord> records_;  // harvested on demand
  uint64_t logged_ = 0;   // records accepted since the last TakeRecords
  uint64_t dropped_ = 0;  // resets with TakeRecords, unlike the channel's
  RelayChannel* live_tap_ = nullptr;
  Cpu* cpu_ = nullptr;
  uint64_t cost_cycles_ = kPaperLogCostCycles;
  obs::Counter* metric_logged_;
  obs::Counter* metric_dropped_;
  obs::Counter* metric_charged_;
};

// ETW-style session: unbounded buffer (bounded only by memory), same record
// format. Backed by a small RelayChannel ring that spills into the
// materialized vector whenever it fills, so no record is ever dropped.
// Vista instrumentation additionally captures stacks; those live in the
// records' `stack` field via CallsiteRegistry::InternStack.
class EtwSession : public TraceSink {
 public:
  EtwSession();

  void Log(const TraceRecord& record) override;

  void AttachCpu(Cpu* cpu, uint64_t cost_cycles = kPaperLogCostCycles) {
    cpu_ = cpu;
    cost_cycles_ = cost_cycles;
  }

  // Tees every record into `tap` as well; nullptr disables. ETW sessions
  // never drop, so the tee sees exactly the recorded stream.
  void SetLiveTap(RelayChannel* tap) { live_tap_ = tap; }

  const std::vector<TraceRecord>& records() const;
  std::vector<TraceRecord> TakeRecords();

 private:
  void Sync() const;

  mutable RelayChannel channel_;
  mutable std::vector<TraceRecord> records_;
  RelayChannel* live_tap_ = nullptr;
  Cpu* cpu_ = nullptr;
  uint64_t cost_cycles_ = kPaperLogCostCycles;
  obs::Counter* metric_logged_;
  obs::Counter* metric_charged_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_BUFFER_H_
