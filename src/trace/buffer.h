// Trace buffers: relayfs-style bounded ring and ETW-style session.
//
// The Linux study used relayfs with a 512 MiB in-kernel buffer: ordered,
// lossless up to capacity, with new events *dropped* (never overwriting old
// ones) on overflow. The Vista study used ETW, effectively unbounded for the
// trace lengths involved. Both are modelled here over a common sink
// interface so the OS models can log through either.
//
// Logging itself costs CPU: the paper measured 236 cycles per record
// (Section 3.2). Buffers charge a configurable per-record cycle cost to the
// simulated CPU so the overhead experiment can be re-run.

#ifndef TEMPO_SRC_TRACE_BUFFER_H_
#define TEMPO_SRC_TRACE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/cpu.h"
#include "src/trace/record.h"

namespace tempo {

// Per-record instrumentation cost measured in the paper (Section 3.2).
inline constexpr uint64_t kPaperLogCostCycles = 236;

// Abstract destination for trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Logs one record. Implementations may drop it (bounded buffers).
  virtual void Log(const TraceRecord& record) = 0;
};

// Sink that discards everything; stands in for the "unmodified kernel" runs
// used to measure instrumentation perturbation. It deliberately charges no
// CPU cycles — that is the point of the baseline — but it does count the
// records it swallows, so a perturbation experiment can still verify that
// both runs *attempted* the same amount of logging. The count is exposed as
// `discarded()` (not `dropped()`): nothing was lost to overflow as in
// RelayBuffer; every record was discarded by design.
class NullSink : public TraceSink {
 public:
  NullSink();

  void Log(const TraceRecord& record) override;

  uint64_t discarded() const { return discarded_; }

 private:
  uint64_t discarded_ = 0;
  obs::Counter* metric_discarded_;
};

// Bounded, ordered trace buffer with relayfs overflow semantics: once the
// buffer is full, new records are dropped and counted; existing records are
// never overwritten.
class RelayBuffer : public TraceSink {
 public:
  // `capacity` is the maximum number of records retained. The default
  // corresponds to the paper's 512 MiB buffer at 48 bytes/record scaled down
  // for simulation (the traces in this repo fit comfortably).
  explicit RelayBuffer(size_t capacity = 8u << 20);

  void Log(const TraceRecord& record) override;

  // Attaches a CPU to charge `cost_cycles` per logged record.
  void AttachCpu(Cpu* cpu, uint64_t cost_cycles = kPaperLogCostCycles) {
    cpu_ = cpu;
    cost_cycles_ = cost_cycles;
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t logged() const { return records_.size(); }

  // Releases the stored records (e.g. to hand to the analysis pipeline
  // without copying) and resets the buffer.
  std::vector<TraceRecord> TakeRecords();

 private:
  size_t capacity_;
  std::vector<TraceRecord> records_;
  uint64_t dropped_ = 0;
  Cpu* cpu_ = nullptr;
  uint64_t cost_cycles_ = kPaperLogCostCycles;
  obs::Counter* metric_logged_;
  obs::Counter* metric_dropped_;
  obs::Counter* metric_charged_;
};

// ETW-style session: unbounded buffer (bounded only by memory), same record
// format. Vista instrumentation additionally captures stacks; those live in
// the records' `stack` field via CallsiteRegistry::InternStack.
class EtwSession : public TraceSink {
 public:
  EtwSession();

  void Log(const TraceRecord& record) override;

  void AttachCpu(Cpu* cpu, uint64_t cost_cycles = kPaperLogCostCycles) {
    cpu_ = cpu;
    cost_cycles_ = cost_cycles;
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> TakeRecords();

 private:
  std::vector<TraceRecord> records_;
  Cpu* cpu_ = nullptr;
  uint64_t cost_cycles_ = kPaperLogCostCycles;
  obs::Counter* metric_logged_;
  obs::Counter* metric_charged_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_BUFFER_H_
