#include "src/trace/callsite.h"

#include <cassert>

namespace tempo {

CallsiteRegistry::CallsiteRegistry() {
  // Slot 0: the unknown call-site / empty stack.
  names_.push_back("?");
  parents_.push_back(kUnknownCallsite);
  by_name_.emplace("?", kUnknownCallsite);
  stacks_.emplace_back();
}

CallsiteId CallsiteRegistry::Intern(const std::string& name, CallsiteId parent) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  const CallsiteId id = static_cast<CallsiteId>(names_.size());
  names_.push_back(name);
  parents_.push_back(parent);
  by_name_.emplace(name, id);
  return id;
}

const std::string& CallsiteRegistry::Name(CallsiteId id) const {
  assert(id < names_.size());
  return names_[id];
}

CallsiteId CallsiteRegistry::Parent(CallsiteId id) const {
  assert(id < parents_.size());
  return parents_[id];
}

std::vector<CallsiteId> CallsiteRegistry::Chain(CallsiteId id) const {
  std::vector<CallsiteId> chain;
  while (id != kUnknownCallsite && chain.size() < 64) {
    chain.push_back(id);
    id = Parent(id);
  }
  return chain;
}

StackId CallsiteRegistry::InternStack(const std::vector<CallsiteId>& frames) {
  if (frames.empty()) {
    return kEmptyStack;
  }
  std::string key;
  key.reserve(frames.size() * sizeof(CallsiteId));
  for (CallsiteId f : frames) {
    key.append(reinterpret_cast<const char*>(&f), sizeof(f));
  }
  auto it = stacks_by_key_.find(key);
  if (it != stacks_by_key_.end()) {
    return it->second;
  }
  const StackId id = static_cast<StackId>(stacks_.size());
  stacks_.push_back(frames);
  stacks_by_key_.emplace(std::move(key), id);
  return id;
}

const std::vector<CallsiteId>& CallsiteRegistry::Stack(StackId id) const {
  assert(id < stacks_.size());
  return stacks_[id];
}

}  // namespace tempo
