// Call-site and call-stack interning, with provenance links.
//
// The paper stresses (Sections 3, 5.2) that raw timer logs are almost
// useless without knowing *who* set the timer: timers are multiplexed
// through layers (application select loop -> syscall -> kernel wheel), so
// the instrumentation records stack traces and the analysis clusters
// operations by call-site. tempo interns call-site names once and lets a
// call-site declare a provenance parent, forming the "dynamic tree of timer
// facilities" of Section 2.

#ifndef TEMPO_SRC_TRACE_CALLSITE_H_
#define TEMPO_SRC_TRACE_CALLSITE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/record.h"

namespace tempo {

// Interns call-site names ("tcp/retransmit", "firefox/poll_fd") and call
// stacks (leaf-first CallsiteId sequences). Ids are dense and deterministic
// given registration order.
class CallsiteRegistry {
 public:
  CallsiteRegistry();

  // Interns `name`, optionally recording `parent` as its provenance parent
  // (the facility this one multiplexes onto). Re-interning an existing name
  // returns the existing id and leaves its parent unchanged.
  CallsiteId Intern(const std::string& name, CallsiteId parent = kUnknownCallsite);

  // Returns the name for an id ("?" for kUnknownCallsite).
  const std::string& Name(CallsiteId id) const;

  // Provenance parent of a call-site (kUnknownCallsite for roots).
  CallsiteId Parent(CallsiteId id) const;

  // Full provenance chain, leaf first, root last.
  std::vector<CallsiteId> Chain(CallsiteId id) const;

  // Interns a call stack (leaf first). The empty stack is kEmptyStack.
  StackId InternStack(const std::vector<CallsiteId>& frames);

  // Frames of an interned stack, leaf first.
  const std::vector<CallsiteId>& Stack(StackId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<CallsiteId> parents_;
  std::unordered_map<std::string, CallsiteId> by_name_;
  std::vector<std::vector<CallsiteId>> stacks_;
  std::unordered_map<std::string, StackId> stacks_by_key_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_CALLSITE_H_
