#include "src/trace/chunked.h"

#include <cstring>
#include <utility>

#include "src/trace/wire.h"

#if defined(__unix__) || defined(__APPLE__)
#define TEMPO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tempo {

namespace {

constexpr size_t kMagicSize = sizeof(wire::kTraceMagic);
// u64 footer offset + trailer magic.
constexpr size_t kTrailerSize = 8 + kMagicSize;
// Per v2 index entry: u64 chunk offset + u32 record count.
constexpr size_t kIndexEntrySize = 12;
// Per v3 index entry: u64 offset, u32 stored bytes, u32 records, then the
// zone map (u64 min/max timestamp, u64 pid digest, u8 op mask).
constexpr size_t kV3IndexEntrySize = 8 + 4 + 4 + 8 + 8 + 8 + 1;
// Smallest possible v3 chunk: 9-byte chunk header + 10 stripes of at
// least [u8 codec][u32 length] each.
constexpr uint64_t kV3MinChunkBytes = 9 + 10 * 5;

std::nullopt_t Fail(TraceReadError reason, TraceReadError* error) {
  if (error != nullptr) {
    *error = reason;
  }
  return std::nullopt;
}

// Reads exactly `length` bytes at `offset` into `out`.
bool ReadAt(std::FILE* file, uint64_t offset, size_t length, uint8_t* out) {
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0) {
    return false;
  }
  return std::fread(out, 1, length, file) == length;
}

TraceReadError ChunkParseError(ChunkParse parse) {
  switch (parse) {
    case ChunkParse::kOk:
      break;
    case ChunkParse::kTruncated:
      return TraceReadError::kTruncated;
    case ChunkParse::kCorrupt:
      return TraceReadError::kCorrupt;
    case ChunkParse::kCodec:
      return TraceReadError::kCodec;
  }
  return TraceReadError::kCorrupt;
}

}  // namespace

TraceChunkReader::MappedFile::~MappedFile() {
#if TEMPO_HAVE_MMAP
  if (data != nullptr && size > 0) {
    ::munmap(const_cast<uint8_t*>(data), size);
  }
#endif
}

std::optional<TraceChunkReader> TraceChunkReader::Open(const std::string& path,
                                                       TraceReadError* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Fail(TraceReadError::kIo, error);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Fail(TraceReadError::kIo, error);
  }
  const long end = std::ftell(file);
  if (end < 0) {
    return Fail(TraceReadError::kIo, error);
  }
  const uint64_t file_size = static_cast<uint64_t>(end);

  // The header (magic, version, call-site table, record count) has no
  // length prefix, so read a window from the start and grow it until the
  // table parses or the file is exhausted.
  TraceChunkReader reader;
  reader.path_ = path;
  size_t window = std::min<uint64_t>(file_size, 64 * 1024);
  std::vector<uint8_t> head;
  uint64_t payload_start = 0;
  for (;;) {
    head.resize(window);
    if (!ReadAt(file, 0, window, head.data())) {
      return Fail(TraceReadError::kIo, error);
    }
    wire::Reader parse(head.data(), head.size());
    const uint8_t* magic = parse.Raw(kMagicSize);
    if (magic == nullptr ||
        std::memcmp(magic, wire::kTraceMagic, kMagicSize) != 0) {
      return Fail(TraceReadError::kMagic, error);
    }
    if (!parse.Read32(&reader.version_)) {
      return Fail(TraceReadError::kTruncated, error);
    }
    if (reader.version_ != kTraceFileVersion &&
        reader.version_ != kTraceFileVersionChunked &&
        reader.version_ != kTraceFileVersionColumnar) {
      return Fail(TraceReadError::kVersion, error);
    }
    reader.callsites_ = CallsiteRegistry();
    const wire::TableParse table = wire::ReadCallsiteTable(&parse, &reader.callsites_);
    if (table == wire::TableParse::kCorrupt) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    uint32_t chunk_capacity = 0;
    bool fixed_fields_ok = false;
    if (table == wire::TableParse::kOk) {
      fixed_fields_ok = parse.Read64(&reader.record_count_);
      if (fixed_fields_ok && reader.version_ != kTraceFileVersion) {
        fixed_fields_ok = parse.Read32(&chunk_capacity);
      }
    }
    if (table == wire::TableParse::kTruncated || !fixed_fields_ok) {
      if (window < file_size) {
        window = std::min<uint64_t>(file_size, window * 2);
        continue;  // header larger than the window — grow and reparse
      }
      return Fail(TraceReadError::kTruncated, error);
    }
    payload_start = parse.offset();

    if (reader.version_ == kTraceFileVersionColumnar) {
      // v3: the payload is variable-sized, so everything comes from the
      // index footer; validate it for contiguity and record coverage.
      if (chunk_capacity == 0) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      const uint64_t chunk_count =
          (reader.record_count_ + chunk_capacity - 1) / chunk_capacity;
      if (chunk_count > file_size / kV3MinChunkBytes + 1) {
        return Fail(TraceReadError::kTruncated, error);
      }
      const uint64_t tail_size = 4 + chunk_count * kV3IndexEntrySize + kTrailerSize;
      if (file_size < payload_start + tail_size) {
        return Fail(TraceReadError::kTruncated, error);
      }
      const uint64_t index_offset = file_size - tail_size;

      uint8_t trailer[kTrailerSize];
      if (!ReadAt(file, file_size - kTrailerSize, kTrailerSize, trailer)) {
        return Fail(TraceReadError::kIo, error);
      }
      if (std::memcmp(trailer + 8, wire::kTraceIndexMagic, kMagicSize) != 0) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      if (wire::Get64(trailer) != index_offset) {
        return Fail(TraceReadError::kCorrupt, error);
      }

      std::vector<uint8_t> index_bytes(4 + chunk_count * kV3IndexEntrySize);
      if (!ReadAt(file, index_offset, index_bytes.size(), index_bytes.data())) {
        return Fail(TraceReadError::kIo, error);
      }
      wire::Reader index(index_bytes.data(), index_bytes.size());
      uint32_t indexed_chunks = 0;
      index.Read32(&indexed_chunks);
      if (indexed_chunks != chunk_count) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      reader.chunks_.reserve(chunk_count);
      uint64_t next_offset = payload_start;
      for (uint64_t c = 0; c < chunk_count; ++c) {
        ChunkRef chunk;
        uint64_t min_ts = 0;
        uint64_t max_ts = 0;
        uint32_t stored = 0;
        index.Read64(&chunk.offset);
        index.Read32(&stored);
        index.Read32(&chunk.records);
        index.Read64(&min_ts);
        index.Read64(&max_ts);
        index.Read64(&chunk.zone.pid_digest);
        const uint8_t* op_mask = index.Raw(1);
        chunk.stored_bytes = stored;
        chunk.zone.valid = true;
        chunk.zone.min_timestamp = static_cast<SimTime>(min_ts);
        chunk.zone.max_timestamp = static_cast<SimTime>(max_ts);
        chunk.zone.op_mask = *op_mask;
        const uint32_t expected_count =
            c + 1 < chunk_count || reader.record_count_ % chunk_capacity == 0
                ? chunk_capacity
                : static_cast<uint32_t>(reader.record_count_ % chunk_capacity);
        // Chunks must tile [payload_start, index_offset) exactly.
        if (chunk.offset != next_offset || chunk.records != expected_count ||
            chunk.stored_bytes < kV3MinChunkBytes ||
            chunk.offset + chunk.stored_bytes > index_offset) {
          return Fail(TraceReadError::kCorrupt, error);
        }
        next_offset = chunk.offset + chunk.stored_bytes;
        reader.payload_bytes_ += chunk.stored_bytes;
        reader.chunks_.push_back(chunk);
      }
      if (next_offset != index_offset) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      break;
    }

    if (reader.record_count_ > file_size / kEncodedRecordSize) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const uint64_t payload_bytes = reader.record_count_ * kEncodedRecordSize;
    reader.payload_bytes_ = payload_bytes;

    if (reader.version_ == kTraceFileVersion) {
      // v1 has no index: records are contiguous and fixed width, so chunk
      // boundaries are synthesized at the default capacity.
      if (file_size < payload_start + payload_bytes) {
        return Fail(TraceReadError::kTruncated, error);
      }
      for (uint64_t first = 0; first < reader.record_count_;
           first += kDefaultChunkRecords) {
        const uint64_t take =
            std::min<uint64_t>(kDefaultChunkRecords, reader.record_count_ - first);
        reader.chunks_.push_back(
            ChunkRef{payload_start + first * kEncodedRecordSize,
                     static_cast<uint32_t>(take), take * kEncodedRecordSize,
                     ChunkZone{}});
      }
      break;
    }

    // v2: validate the index footer against the header-derived layout.
    if (chunk_capacity == 0) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    const uint64_t chunk_count =
        (reader.record_count_ + chunk_capacity - 1) / chunk_capacity;
    const uint64_t index_offset = payload_start + payload_bytes;
    const uint64_t expected_size =
        index_offset + 4 + chunk_count * kIndexEntrySize + kTrailerSize;
    if (file_size < expected_size) {
      return Fail(TraceReadError::kTruncated, error);
    }
    if (file_size != expected_size) {
      return Fail(TraceReadError::kCorrupt, error);
    }

    uint8_t trailer[kTrailerSize];
    if (!ReadAt(file, file_size - kTrailerSize, kTrailerSize, trailer)) {
      return Fail(TraceReadError::kIo, error);
    }
    if (std::memcmp(trailer + 8, wire::kTraceIndexMagic, kMagicSize) != 0 ||
        wire::Get64(trailer) != index_offset) {
      return Fail(TraceReadError::kCorrupt, error);
    }

    std::vector<uint8_t> index_bytes(4 + chunk_count * kIndexEntrySize);
    if (!ReadAt(file, index_offset, index_bytes.size(), index_bytes.data())) {
      return Fail(TraceReadError::kIo, error);
    }
    wire::Reader index(index_bytes.data(), index_bytes.size());
    uint32_t indexed_chunks = 0;
    index.Read32(&indexed_chunks);
    if (indexed_chunks != chunk_count) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    reader.chunks_.reserve(chunk_count);
    for (uint64_t c = 0; c < chunk_count; ++c) {
      uint64_t offset = 0;
      uint32_t count = 0;
      index.Read64(&offset);
      index.Read32(&count);
      const uint32_t expected_count =
          c + 1 < chunk_count || reader.record_count_ % chunk_capacity == 0
              ? chunk_capacity
              : static_cast<uint32_t>(reader.record_count_ % chunk_capacity);
      if (offset != payload_start + c * uint64_t{chunk_capacity} * kEncodedRecordSize ||
          count != expected_count) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      reader.chunks_.push_back(ChunkRef{offset, count,
                                        uint64_t{count} * kEncodedRecordSize,
                                        ChunkZone{}});
    }
    break;
  }

#if TEMPO_HAVE_MMAP
  // Map the validated file read-only so cursors decode straight from the
  // page cache. Failure is not an error — cursors fall back to stdio.
  if (file_size > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        auto map = std::make_shared<MappedFile>();
        map->data = static_cast<const uint8_t*>(base);
        map->size = file_size;
        reader.map_ = std::move(map);
      }
    }
  }
#endif
  return reader;
}

TraceChunkReader::Cursor::Cursor(const TraceChunkReader* reader) : reader_(reader) {
  if (reader->map_ == nullptr) {
    file_ = std::fopen(reader->path_.c_str(), "rb");
    if (file_ == nullptr) {
      failed_ = true;
      error_ = TraceReadError::kIo;
    }
  }
}

TraceChunkReader::Cursor::~Cursor() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

TraceChunkReader::Cursor::Cursor(Cursor&& other) noexcept
    : reader_(other.reader_),
      file_(std::exchange(other.file_, nullptr)),
      raw_(std::move(other.raw_)),
      decoded_(std::move(other.decoded_)),
      scratch_(std::move(other.scratch_)),
      last_mask_(other.last_mask_),
      failed_(other.failed_),
      error_(other.error_) {}

TraceChunkReader::Cursor& TraceChunkReader::Cursor::operator=(Cursor&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    reader_ = other.reader_;
    file_ = std::exchange(other.file_, nullptr);
    raw_ = std::move(other.raw_);
    decoded_ = std::move(other.decoded_);
    scratch_ = std::move(other.scratch_);
    last_mask_ = other.last_mask_;
    failed_ = other.failed_;
    error_ = other.error_;
  }
  return *this;
}

const uint8_t* TraceChunkReader::Cursor::ChunkBytes(const ChunkRef& chunk) {
  if (reader_->map_ != nullptr) {
    // Open validated that every chunk lies inside the file.
    return reader_->map_->data + chunk.offset;
  }
  raw_.resize(static_cast<size_t>(chunk.stored_bytes));
  if (!ReadAt(file_, chunk.offset, raw_.size(), raw_.data())) {
    return nullptr;
  }
  return raw_.data();
}

std::span<const TraceRecord> TraceChunkReader::Cursor::Read(size_t index,
                                                            uint16_t field_mask) {
  if (failed_ || index >= reader_->chunks_.size()) {
    failed_ = true;
    return {};
  }
  const ChunkRef& chunk = reader_->chunks_[index];
  const uint8_t* bytes = ChunkBytes(chunk);
  if (bytes == nullptr) {
    failed_ = true;
    error_ = TraceReadError::kIo;
    return {};
  }
  if (reader_->version_ == kTraceFileVersionColumnar) {
    // Recycle the row buffer when the previous decode left every field
    // outside this mask at its default (same record count, and the
    // previous mask wrote no field this mask won't overwrite) — skips a
    // full re-initialisation pass per chunk.
    const bool recycle = decoded_.size() == chunk.records &&
                         (last_mask_ & ~field_mask) == 0;
    if (!recycle) {
      decoded_.clear();
    }
    const ChunkParse parse = DecodeV3Chunk(bytes, static_cast<size_t>(chunk.stored_bytes),
                                           chunk.records, &scratch_, &decoded_, field_mask,
                                           recycle);
    if (parse != ChunkParse::kOk) {
      failed_ = true;
      error_ = ChunkParseError(parse);
      last_mask_ = kAllTraceFields + 1;
      return {};
    }
    last_mask_ = field_mask;
    // Stacks are not persisted, so decoded records must surface the
    // in-memory "no stack" id. An unprojected stack field is already
    // default-initialised to it — skipping the pass over the records
    // matters when projection made decoding this chunk cheap.
    if ((field_mask & kFieldStack) != 0) {
      for (TraceRecord& record : decoded_) {
        record.stack = kEmptyStack;
      }
    }
    return std::span<const TraceRecord>(decoded_.data(), decoded_.size());
  }
  decoded_.clear();
  decoded_.reserve(chunk.records);
  for (uint32_t i = 0; i < chunk.records; ++i) {
    auto record = DecodeRecord(bytes + static_cast<size_t>(i) * kEncodedRecordSize);
    if (!record.has_value()) {
      failed_ = true;
      error_ = TraceReadError::kCorrupt;
      return {};
    }
    record->stack = kEmptyStack;
    decoded_.push_back(*record);
  }
  return std::span<const TraceRecord>(decoded_.data(), decoded_.size());
}

}  // namespace tempo
