#include "src/trace/chunked.h"

#include <cstring>
#include <utility>

#include "src/trace/codec.h"
#include "src/trace/wire.h"

namespace tempo {

namespace {

constexpr size_t kMagicSize = sizeof(wire::kTraceMagic);
// u64 footer offset + trailer magic.
constexpr size_t kTrailerSize = 8 + kMagicSize;
// Per index entry: u64 chunk offset + u32 record count.
constexpr size_t kIndexEntrySize = 12;

std::nullopt_t Fail(TraceReadError reason, TraceReadError* error) {
  if (error != nullptr) {
    *error = reason;
  }
  return std::nullopt;
}

// Reads exactly `length` bytes at `offset` into `out`.
bool ReadAt(std::FILE* file, uint64_t offset, size_t length, uint8_t* out) {
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0) {
    return false;
  }
  return std::fread(out, 1, length, file) == length;
}

}  // namespace

std::optional<TraceChunkReader> TraceChunkReader::Open(const std::string& path,
                                                       TraceReadError* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Fail(TraceReadError::kIo, error);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Fail(TraceReadError::kIo, error);
  }
  const long end = std::ftell(file);
  if (end < 0) {
    return Fail(TraceReadError::kIo, error);
  }
  const uint64_t file_size = static_cast<uint64_t>(end);

  // The header (magic, version, call-site table, record count) has no
  // length prefix, so read a window from the start and grow it until the
  // table parses or the file is exhausted.
  TraceChunkReader reader;
  reader.path_ = path;
  size_t window = std::min<uint64_t>(file_size, 64 * 1024);
  std::vector<uint8_t> head;
  uint64_t payload_start = 0;
  for (;;) {
    head.resize(window);
    if (!ReadAt(file, 0, window, head.data())) {
      return Fail(TraceReadError::kIo, error);
    }
    wire::Reader parse(head.data(), head.size());
    const uint8_t* magic = parse.Raw(kMagicSize);
    if (magic == nullptr ||
        std::memcmp(magic, wire::kTraceMagic, kMagicSize) != 0) {
      return Fail(TraceReadError::kMagic, error);
    }
    if (!parse.Read32(&reader.version_)) {
      return Fail(TraceReadError::kTruncated, error);
    }
    if (reader.version_ != kTraceFileVersion &&
        reader.version_ != kTraceFileVersionChunked) {
      return Fail(TraceReadError::kVersion, error);
    }
    reader.callsites_ = CallsiteRegistry();
    const wire::TableParse table = wire::ReadCallsiteTable(&parse, &reader.callsites_);
    if (table == wire::TableParse::kCorrupt) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    uint32_t chunk_capacity = 0;
    bool fixed_fields_ok = false;
    if (table == wire::TableParse::kOk) {
      fixed_fields_ok = parse.Read64(&reader.record_count_);
      if (fixed_fields_ok && reader.version_ == kTraceFileVersionChunked) {
        fixed_fields_ok = parse.Read32(&chunk_capacity);
      }
    }
    if (table == wire::TableParse::kTruncated || !fixed_fields_ok) {
      if (window < file_size) {
        window = std::min<uint64_t>(file_size, window * 2);
        continue;  // header larger than the window — grow and reparse
      }
      return Fail(TraceReadError::kTruncated, error);
    }
    payload_start = parse.offset();

    if (reader.record_count_ > file_size / kEncodedRecordSize) {
      return Fail(TraceReadError::kTruncated, error);
    }
    const uint64_t payload_bytes = reader.record_count_ * kEncodedRecordSize;

    if (reader.version_ == kTraceFileVersion) {
      // v1 has no index: records are contiguous and fixed width, so chunk
      // boundaries are synthesized at the default capacity.
      if (file_size < payload_start + payload_bytes) {
        return Fail(TraceReadError::kTruncated, error);
      }
      for (uint64_t first = 0; first < reader.record_count_;
           first += kDefaultChunkRecords) {
        const uint64_t take =
            std::min<uint64_t>(kDefaultChunkRecords, reader.record_count_ - first);
        reader.chunks_.push_back(
            ChunkRef{payload_start + first * kEncodedRecordSize,
                     static_cast<uint32_t>(take)});
      }
      return reader;
    }

    // v2: validate the index footer against the header-derived layout.
    if (chunk_capacity == 0) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    const uint64_t chunk_count =
        (reader.record_count_ + chunk_capacity - 1) / chunk_capacity;
    const uint64_t index_offset = payload_start + payload_bytes;
    const uint64_t expected_size =
        index_offset + 4 + chunk_count * kIndexEntrySize + kTrailerSize;
    if (file_size < expected_size) {
      return Fail(TraceReadError::kTruncated, error);
    }
    if (file_size != expected_size) {
      return Fail(TraceReadError::kCorrupt, error);
    }

    uint8_t trailer[kTrailerSize];
    if (!ReadAt(file, file_size - kTrailerSize, kTrailerSize, trailer)) {
      return Fail(TraceReadError::kIo, error);
    }
    if (std::memcmp(trailer + 8, wire::kTraceIndexMagic, kMagicSize) != 0 ||
        wire::Get64(trailer) != index_offset) {
      return Fail(TraceReadError::kCorrupt, error);
    }

    std::vector<uint8_t> index_bytes(4 + chunk_count * kIndexEntrySize);
    if (!ReadAt(file, index_offset, index_bytes.size(), index_bytes.data())) {
      return Fail(TraceReadError::kIo, error);
    }
    wire::Reader index(index_bytes.data(), index_bytes.size());
    uint32_t indexed_chunks = 0;
    index.Read32(&indexed_chunks);
    if (indexed_chunks != chunk_count) {
      return Fail(TraceReadError::kCorrupt, error);
    }
    reader.chunks_.reserve(chunk_count);
    for (uint64_t c = 0; c < chunk_count; ++c) {
      uint64_t offset = 0;
      uint32_t count = 0;
      index.Read64(&offset);
      index.Read32(&count);
      const uint32_t expected_count =
          c + 1 < chunk_count || reader.record_count_ % chunk_capacity == 0
              ? chunk_capacity
              : static_cast<uint32_t>(reader.record_count_ % chunk_capacity);
      if (offset != payload_start + c * uint64_t{chunk_capacity} * kEncodedRecordSize ||
          count != expected_count) {
        return Fail(TraceReadError::kCorrupt, error);
      }
      reader.chunks_.push_back(ChunkRef{offset, count});
    }
    return reader;
  }
}

TraceChunkReader::Cursor::Cursor(const TraceChunkReader* reader)
    : reader_(reader), file_(std::fopen(reader->path_.c_str(), "rb")) {
  if (file_ == nullptr) {
    failed_ = true;
    error_ = TraceReadError::kIo;
  }
}

TraceChunkReader::Cursor::~Cursor() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

TraceChunkReader::Cursor::Cursor(Cursor&& other) noexcept
    : reader_(other.reader_),
      file_(std::exchange(other.file_, nullptr)),
      raw_(std::move(other.raw_)),
      decoded_(std::move(other.decoded_)),
      failed_(other.failed_),
      error_(other.error_) {}

TraceChunkReader::Cursor& TraceChunkReader::Cursor::operator=(Cursor&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    reader_ = other.reader_;
    file_ = std::exchange(other.file_, nullptr);
    raw_ = std::move(other.raw_);
    decoded_ = std::move(other.decoded_);
    failed_ = other.failed_;
    error_ = other.error_;
  }
  return *this;
}

std::span<const TraceRecord> TraceChunkReader::Cursor::Read(size_t index) {
  if (failed_ || index >= reader_->chunks_.size()) {
    failed_ = true;
    return {};
  }
  const ChunkRef& chunk = reader_->chunks_[index];
  raw_.resize(static_cast<size_t>(chunk.records) * kEncodedRecordSize);
  if (!ReadAt(file_, chunk.offset, raw_.size(), raw_.data())) {
    failed_ = true;
    error_ = TraceReadError::kIo;
    return {};
  }
  decoded_.clear();
  decoded_.reserve(chunk.records);
  for (uint32_t i = 0; i < chunk.records; ++i) {
    auto record = DecodeRecord(raw_.data() + static_cast<size_t>(i) * kEncodedRecordSize);
    if (!record.has_value()) {
      failed_ = true;
      error_ = TraceReadError::kCorrupt;
      return {};
    }
    record->stack = kEmptyStack;
    decoded_.push_back(*record);
  }
  return std::span<const TraceRecord>(decoded_.data(), decoded_.size());
}

}  // namespace tempo
