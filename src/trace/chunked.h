// Streaming access to trace files, chunk by chunk.
//
// TraceChunkReader opens a trace file, parses only the header (call-site
// table) and the chunk index, and then hands out fixed-size batches of
// decoded records on demand — the whole trace is never materialized. For
// chunked v2 files the index comes from the footer; v1 files have no
// index, but their records are contiguous and fixed width, so the reader
// synthesizes chunk boundaries arithmetically and serves them the same
// way. Consumers therefore never care which version is on disk.
//
// Concurrency model: the reader itself is immutable after Open and safe
// to share across threads. Each worker thread creates its own Cursor,
// which owns a private file handle and decode buffer; Cursor::Read seeks
// to any chunk in any order, so N workers can stream disjoint chunk
// ranges in parallel (this is what analysis/pipeline.h does).

#ifndef TEMPO_SRC_TRACE_CHUNKED_H_
#define TEMPO_SRC_TRACE_CHUNKED_H_

#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/callsite.h"
#include "src/trace/file.h"

namespace tempo {

class TraceChunkReader {
 public:
  // One chunk's location on disk.
  struct ChunkRef {
    uint64_t offset = 0;  // absolute file offset of the first record
    uint32_t records = 0;
  };

  // Parses the header and chunk index of `path`. On failure returns
  // nullopt with the reason in `*error` when given.
  static std::optional<TraceChunkReader> Open(const std::string& path,
                                              TraceReadError* error = nullptr);

  uint32_t version() const { return version_; }
  uint64_t record_count() const { return record_count_; }
  size_t chunk_count() const { return chunks_.size(); }
  const ChunkRef& chunk(size_t index) const { return chunks_[index]; }
  const CallsiteRegistry& callsites() const { return callsites_; }
  const std::string& path() const { return path_; }

  // A per-thread read position: private file handle + decode buffer.
  // Spans returned by Read are valid until the next Read on the same
  // cursor (or its destruction).
  class Cursor {
   public:
    explicit Cursor(const TraceChunkReader* reader);
    ~Cursor();
    Cursor(Cursor&& other) noexcept;
    Cursor& operator=(Cursor&& other) noexcept;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    // Decodes chunk `index`. Returns an empty span and sets error() on
    // I/O failure or a corrupt record; an empty trace has no chunks, so
    // an empty result always means failure.
    std::span<const TraceRecord> Read(size_t index);

    bool ok() const { return !failed_; }
    TraceReadError error() const { return error_; }

   private:
    const TraceChunkReader* reader_;
    std::FILE* file_ = nullptr;
    std::vector<uint8_t> raw_;
    std::vector<TraceRecord> decoded_;
    bool failed_ = false;
    TraceReadError error_ = TraceReadError::kIo;
  };

  // Opens a new private file handle for one consumer thread.
  Cursor MakeCursor() const { return Cursor(this); }

 private:
  TraceChunkReader() = default;

  std::string path_;
  uint32_t version_ = 0;
  uint64_t record_count_ = 0;
  std::vector<ChunkRef> chunks_;
  CallsiteRegistry callsites_;
};

}  // namespace tempo

#endif  // TEMPO_SRC_TRACE_CHUNKED_H_
